"""Aggregated results of one campaign run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["CampaignFailure", "CampaignResult", "ScenarioResult"]


@dataclass(frozen=True)
class CampaignFailure:
    """One structure group that failed instead of producing results.

    A campaign no longer aborts wholesale when one scenario group raises: the
    group's scenarios are recorded here (``stage`` names the pipeline step
    that failed) and the run continues with the remaining groups, yielding a
    *partial* :class:`CampaignResult`.
    """

    #: Names of the scenarios lost with this group (campaign order).
    scenario_names: tuple[str, ...]
    #: Campaign indices of those scenarios.
    scenario_indices: tuple[int, ...]
    geometry_name: str
    #: Pipeline stage that raised (``"discretize"``, ``"assemble+solve"``...).
    stage: str
    #: ``repr`` of the exception (kept as text so results stay picklable).
    error: str

    def summary(self) -> dict[str, Any]:
        return {
            "scenarios": list(self.scenario_names),
            "geometry": self.geometry_name,
            "stage": self.stage,
            "error": self.error,
        }


@dataclass
class ScenarioResult:
    """Outcome of one scenario of a campaign.

    ``kind`` records how the scenario was obtained (``"assemble"``,
    ``"injection"`` or ``"soil-scale"`` — see
    :class:`repro.campaign.planner.ScenarioPlan`); derived scenarios carry
    the base scenario's name in ``base_name`` and near-zero timings.
    """

    name: str
    index: int
    kind: str
    base_name: str
    geometry_name: str
    n_elements: int
    n_dofs: int
    gpr: float
    soil_scale: float
    #: Solved leakage density at every dof [A/m] (scenario scaling applied).
    dof_values: np.ndarray
    total_current: float
    equivalent_resistance: float
    solver_iterations: int
    assemble_seconds: float = 0.0
    solve_seconds: float = 0.0
    evaluate_seconds: float = 0.0
    #: Safety assessment (``None`` when the campaign skips it).
    max_touch_voltage: float | None = None
    max_step_voltage: float | None = None
    tolerable_touch_voltage: float | None = None
    tolerable_step_voltage: float | None = None
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def verdicts(self) -> dict[str, bool] | None:
        """IEEE Std 80 verdicts (``None`` without a safety assessment)."""
        if self.max_touch_voltage is None:
            return None
        touch_ok = self.max_touch_voltage <= self.tolerable_touch_voltage
        step_ok = self.max_step_voltage <= self.tolerable_step_voltage
        return {"touch": touch_ok, "step": step_ok, "compliant": touch_ok and step_ok}

    def summary(self) -> dict[str, Any]:
        """Row used by reports and snapshots."""
        row: dict[str, Any] = {
            "scenario": self.name,
            "geometry": self.geometry_name,
            "kind": self.kind,
            "base": self.base_name,
            "n_elements": self.n_elements,
            "gpr_v": self.gpr,
            "soil_scale": self.soil_scale,
            "Req_ohm": self.equivalent_resistance,
            "total_current_ka": self.total_current / 1.0e3,
            "iterations": self.solver_iterations,
            "seconds": self.assemble_seconds + self.solve_seconds + self.evaluate_seconds,
        }
        verdicts = self.verdicts
        if verdicts is not None:
            row.update(
                {
                    "max_touch_v": self.max_touch_voltage,
                    "max_step_v": self.max_step_voltage,
                    "tolerable_touch_v": self.tolerable_touch_voltage,
                    "tolerable_step_v": self.tolerable_step_voltage,
                    "compliant": verdicts["compliant"],
                }
            )
        return row


@dataclass
class CampaignResult:
    """Everything a campaign run produced.

    ``scenarios`` is ordered like the campaign's scenario list (not the
    cost-ordered execution sequence).  ``cache_stats`` aggregates the
    cross-scenario reuse counters: the process-wide geometry cache's hit/miss
    delta over the run, the cluster-plan cache, and — when a persistent
    worker pool executed the assemblies — the pool's dispatch/respawn
    statistics.
    """

    name: str
    scenarios: list[ScenarioResult]
    plan_summary: dict[str, Any]
    timings: dict[str, float]
    cache_stats: dict[str, Any]
    metadata: dict[str, Any] = field(default_factory=dict)
    #: Structure groups that failed (empty on a clean run).
    failures: list[CampaignFailure] = field(default_factory=list)

    @property
    def n_scenarios(self) -> int:
        """Number of scenario results."""
        return len(self.scenarios)

    @property
    def is_partial(self) -> bool:
        """Whether any structure group failed instead of producing results."""
        return bool(self.failures)

    @property
    def total_seconds(self) -> float:
        """End-to-end wall time of the campaign run [s]."""
        return float(self.timings.get("total", 0.0))

    def scenario(self, name: str) -> ScenarioResult:
        """Look a scenario result up by name."""
        for result in self.scenarios:
            if result.name == name:
                return result
        raise KeyError(f"no scenario named {name!r} in campaign {self.name!r}")

    def solutions(self) -> dict[str, np.ndarray]:
        """Per-scenario dof vectors keyed by scenario name."""
        return {result.name: result.dof_values for result in self.scenarios}

    def table(self) -> list[dict[str, Any]]:
        """Summary rows of every scenario (campaign order)."""
        return [result.summary() for result in self.scenarios]

    def compliance(self) -> dict[str, bool | None]:
        """Per-scenario compliance verdicts (``None`` without assessment)."""
        return {
            result.name: (result.verdicts or {}).get("compliant")
            for result in self.scenarios
        }

    def summary(self) -> dict[str, Any]:
        """Compact campaign-level record (used by the snapshot benchmark)."""
        record = {
            "campaign": self.name,
            "n_scenarios": self.n_scenarios,
            **self.plan_summary,
            "timings": dict(self.timings),
            "cache_stats": dict(self.cache_stats),
            **{k: v for k, v in self.metadata.items() if np.isscalar(v) or v is None},
        }
        if self.failures:
            record["n_failures"] = len(self.failures)
            record["failures"] = [failure.summary() for failure in self.failures]
        return record
