"""Campaign planner: group scenarios by shared structure, order work by cost.

The planner decides *what is actually built* for a campaign:

* scenarios sharing a :class:`~repro.campaign.spec.GeometryVariant` share one
  mesh discretisation, one cluster tree/block partition and the cached
  in-plane pair geometry;
* scenarios sharing a full *structure key* — geometry, base soil and
  tolerance — share one assembled operator and one solve: within such a group
  only the soil scale factor and the injection GPR differ, and the solution
  is exactly linear in both (``x(s·soil, g) = (s/s_b)(g/g_b) · x(s_b·soil,
  g_b)``, because the influence matrix scales by ``1/s`` and the right-hand
  side by ``g``).  The first scenario of a group (campaign order) is its
  *base*; the others are derived by scalar algebra.

Execution order is deterministic and cost-aware: geometry groups (and the
structure groups inside them) run in the descending-cost order produced by
:func:`repro.parallel.costs.partition_block_work` — the same LPT machinery
that shards the hierarchical block work — applied to the planner's
deterministic per-group cost estimate (``elements²`` assemble+solve work
units plus ``elements`` per derived scenario row).  The flattened
:meth:`CampaignPlan.iter_structures` sequence doubles as the canonical group
order that concurrent runners commit in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.campaign.spec import Campaign, GeometryVariant, ScenarioSpec
from repro.parallel.costs import partition_block_work

__all__ = ["CampaignPlan", "GeometryGroup", "ScenarioPlan", "StructureGroup", "plan_campaign"]

#: Reuse classes a planned scenario can fall into.
REUSE_KINDS = ("assemble", "soil-scale", "injection")


@dataclass(frozen=True)
class ScenarioPlan:
    """How one scenario is obtained.

    ``kind`` is ``"assemble"`` (the group base: full assemble + solve),
    ``"injection"`` (same operator and soil scale as the base, only the GPR
    differs) or ``"soil-scale"`` (soil scale differs too).  Derived scenarios
    carry the exact scalar ratios applied to the base solution.
    """

    spec: ScenarioSpec
    index: int
    kind: str
    base_index: int
    gpr_ratio: float = 1.0
    scale_ratio: float = 1.0

    @property
    def is_base(self) -> bool:
        """Whether this plan performs the group's assemble + solve."""
        return self.kind == "assemble"


@dataclass(frozen=True)
class StructureGroup:
    """Scenarios sharing geometry, base soil and tolerance (one assembly)."""

    geometry: GeometryVariant
    soil: Any
    tolerance: float
    plans: tuple[ScenarioPlan, ...]
    cost_units: float

    @property
    def base(self) -> ScenarioPlan:
        """The plan that assembles and solves (always the first)."""
        return self.plans[0]


@dataclass(frozen=True)
class GeometryGroup:
    """Structure groups sharing one geometry variant (one discretisation)."""

    geometry: GeometryVariant
    structures: tuple[StructureGroup, ...]
    cost_units: float


@dataclass(frozen=True)
class CampaignPlan:
    """The executable plan of a campaign."""

    campaign: Campaign
    geometry_groups: tuple[GeometryGroup, ...]
    reuse_counts: dict[str, int] = field(default_factory=dict)

    @property
    def n_assemblies(self) -> int:
        """Number of full assemble+solve runs the plan performs."""
        return self.reuse_counts.get("assemble", 0)

    def iter_plans(self):
        """Every scenario plan in execution order."""
        for geometry_group in self.geometry_groups:
            for structure in geometry_group.structures:
                yield from structure.plans

    def iter_structures(self):
        """Every ``(geometry_group, structure_group)`` pair in execution order.

        This flattened sequence is the campaign's **canonical group order**:
        the runner starts groups in it and — regardless of
        ``group_concurrency`` or completion timing — commits results,
        checkpoint stores, manifest rows and trace subtrees in it, which is
        what keeps concurrent campaigns bit-identical to sequential ones.
        Geometry-major on purpose: consecutive groups share the discretised
        grid and mesh caches.
        """
        for geometry_group in self.geometry_groups:
            for structure in geometry_group.structures:
                yield geometry_group, structure

    def summary(self) -> dict[str, Any]:
        """Compact description used by results and reports."""
        return {
            "n_scenarios": self.campaign.n_scenarios,
            "n_geometry_groups": len(self.geometry_groups),
            "n_structure_groups": sum(
                len(g.structures) for g in self.geometry_groups
            ),
            "n_assemblies": self.n_assemblies,
            "reuse_counts": dict(self.reuse_counts),
        }


def _lpt_order(costs: list[float]) -> list[int]:
    """Descending-cost execution order through the LPT partition machinery.

    ``partition_block_work(costs, 1)`` assigns every "block" to the single
    worker in LPT order — descending cost, ties broken by index — which is
    exactly the deterministic order the campaign executes groups in (heaviest
    first, so a shared pool's workers warm up on the dominant group).
    """
    if not costs:
        return []
    return [int(i) for i in partition_block_work(np.asarray(costs, dtype=float), 1)[0]]


def plan_campaign(campaign: Campaign) -> CampaignPlan:
    """Group a campaign's scenarios by shared structure and order the work."""
    # ---- structure groups (insertion order = campaign order) ----
    structure_members: dict[tuple, list[tuple[int, ScenarioSpec]]] = {}
    for index, spec in enumerate(campaign.scenarios):
        structure_members.setdefault(spec.structure_key(), []).append((index, spec))

    reuse_counts = {kind: 0 for kind in REUSE_KINDS}
    structures_by_geometry: dict[GeometryVariant, list[StructureGroup]] = {}
    for key, members in structure_members.items():
        base_index, base_spec = members[0]
        plans: list[ScenarioPlan] = [
            ScenarioPlan(spec=base_spec, index=base_index, kind="assemble", base_index=base_index)
        ]
        reuse_counts["assemble"] += 1
        for index, spec in members[1:]:
            kind = "injection" if spec.soil_scale == base_spec.soil_scale else "soil-scale"
            reuse_counts[kind] += 1
            plans.append(
                ScenarioPlan(
                    spec=spec,
                    index=index,
                    kind=kind,
                    base_index=base_index,
                    gpr_ratio=spec.gpr / base_spec.gpr,
                    scale_ratio=spec.soil_scale / base_spec.soil_scale,
                )
            )
        geometry = base_spec.geometry
        # Deterministic per-group cost: the assemble+solve work scales with
        # elements² (dense-equivalent block work), each derived scenario adds
        # one elements-sized pass (scalar rescale + safety evaluation rows).
        elements = float(geometry.estimated_elements())
        cost = elements**2 + elements * (len(plans) - 1)
        structures_by_geometry.setdefault(geometry, []).append(
            StructureGroup(
                geometry=geometry,
                soil=base_spec.soil,
                tolerance=base_spec.tolerance,
                plans=tuple(plans),
                cost_units=cost,
            )
        )

    # ---- order structure groups inside each geometry, then the geometries ----
    geometry_groups: list[GeometryGroup] = []
    for geometry, structures in structures_by_geometry.items():
        order = _lpt_order([s.cost_units for s in structures])
        ordered = tuple(structures[i] for i in order)
        geometry_groups.append(
            GeometryGroup(
                geometry=geometry,
                structures=ordered,
                cost_units=float(sum(s.cost_units for s in ordered)),
            )
        )
    order = _lpt_order([g.cost_units for g in geometry_groups])
    return CampaignPlan(
        campaign=campaign,
        geometry_groups=tuple(geometry_groups[i] for i in order),
        reuse_counts=reuse_counts,
    )
