"""Ready-made demo campaign shared by the CLI, the example and the benchmark.

One parameterised scenario generator keeps the three entry points — ``python
-m repro campaign``, ``examples/campaign_study.py`` and
``benchmarks/bench_campaign.py`` — on the same workload: a shared reticulated
grid in flat and corner-rodded variants, analysed under a two-layer and a
uniform soil family with soil-scale (seasonal moisture) and injection-GPR
(fault-severity) variants.  Scenarios are emitted structure-major — a group's
base first, its derived variants right after — so truncating to any
``n_scenarios`` keeps the reuse ratio high.
"""

from __future__ import annotations

from repro.campaign.spec import Campaign, GeometryVariant, ScenarioSpec
from repro.exceptions import ReproError
from repro.soil.two_layer import TwoLayerSoil
from repro.soil.uniform import UniformSoil
from repro.timing import wall_clock

__all__ = ["demo_campaign", "standalone_scenario_run"]

def standalone_scenario_run(campaign: Campaign, spec: ScenarioSpec, workers: int = 1):
    """One scenario as an independent ``GroundingAnalysis`` (the pre-campaign
    per-scenario workflow), configured exactly like the campaign's scenarios.

    Shared by ``benchmarks/bench_campaign.py`` and
    ``examples/campaign_study.py`` so the cold baseline they compare the
    campaign engine against cannot drift between the two.  Returns
    ``(dof_values, wall_seconds)``; the wall time includes the safety raster
    when the campaign assesses safety.  Callers wanting a *cold* run clear
    the process-wide geometry cache first.
    """
    import dataclasses

    from repro.bem.formulation import GroundingAnalysis
    from repro.kernels.truncation import AdaptiveControl

    start = wall_clock()
    hierarchical = campaign.hierarchical
    if hierarchical is not None:
        hierarchical = dataclasses.replace(
            hierarchical, workers=int(workers), tolerance=spec.tolerance
        )
    if isinstance(campaign.adaptive, str):  # "tolerance": follow the scenario
        adaptive = AdaptiveControl(tolerance=spec.tolerance)
    else:
        adaptive = campaign.adaptive
    analysis = GroundingAnalysis(
        spec.geometry.build_grid(),
        spec.effective_soil(),
        gpr=spec.gpr,
        element_type=campaign.element_type,
        n_gauss=campaign.n_gauss,
        series_control=campaign.series_control,
        solver=campaign.solver,
        solver_tolerance=campaign.solver_tolerance,
        validate=False,
        adaptive=adaptive,
        hierarchical=hierarchical,
    ).run()
    if campaign.assess_safety:
        analysis.evaluator().surface_potential_over_grid(
            margin=campaign.safety_margin,
            n_x=campaign.safety_raster,
            n_y=campaign.safety_raster,
        )
    return analysis.dof_values, wall_clock() - start


#: (label, soil scale factor, injection GPR [V]) variants per structure group.
#: The first entry is the group's base; the others reuse its operator/solve.
_VARIANTS = (
    ("base", 1.0, 10_000.0),
    ("fault5kV", 1.0, 5_000.0),
    ("wet", 1.25, 10_000.0),
    ("fault15kV", 1.0, 15_000.0),
    ("dry", 0.8, 12_500.0),
)


def demo_campaign(
    n_scenarios: int = 12,
    nx: int = 8,
    ny: int = 8,
    spacing: float = 5.0,
    hierarchical=True,
    tolerance: float = 1.0e-8,
    solver_tolerance: float = 1.0e-10,
    assess_safety: bool = True,
    name: str = "demo-campaign",
) -> Campaign:
    """A grounding study over a shared ``nx x ny`` grid (up to 20 scenarios).

    Parameters
    ----------
    n_scenarios:
        How many scenarios to emit (1..20).
    nx, ny, spacing:
        Mesh counts and mesh spacing [m] of the shared grid.
    hierarchical:
        ``True`` (default) uses the hierarchical engine with its default
        control — the configuration a persistent worker pool accelerates;
        a :class:`~repro.cluster.operator.HierarchicalControl` instance is
        used as-is; ``None``/``False`` assembles densely.
    tolerance:
        Matrix accuracy tolerance of every scenario.
    solver_tolerance:
        PCG relative residual tolerance.  Benchmarks comparing the campaign
        against standalone runs at 1e-10 solve at 1e-12, so the one-PCG-
        iteration flip between near-identical systems stays far below the
        comparison level.
    assess_safety:
        Whether the campaign computes touch/step verdicts.
    """
    width, height = spacing * nx, spacing * ny
    flat = GeometryVariant(name="flat", width=width, height=height, nx=nx, ny=ny)
    rodded = GeometryVariant(
        name="rodded", width=width, height=height, nx=nx, ny=ny, rods="corners"
    )
    soils = (
        ("tl", TwoLayerSoil(0.005, 0.016, 1.0)),  # the Barberá-like two-layer soil
        ("uni", UniformSoil(0.01)),
    )

    scenarios: list[ScenarioSpec] = []
    for geometry in (flat, rodded):
        for soil_label, soil in soils:
            for variant, scale, gpr in _VARIANTS:
                scenarios.append(
                    ScenarioSpec(
                        name=f"{geometry.name}-{soil_label}-{variant}",
                        geometry=geometry,
                        soil=soil,
                        soil_scale=scale,
                        gpr=gpr,
                        tolerance=tolerance,
                    )
                )
    if not 1 <= n_scenarios <= len(scenarios):
        raise ReproError(
            f"n_scenarios must lie in 1..{len(scenarios)}, got {n_scenarios}"
        )

    if hierarchical is False:
        hierarchical = None
    elif hierarchical is True:
        from repro.cluster.operator import HierarchicalControl

        hierarchical = HierarchicalControl()
    return Campaign(
        name=name,
        scenarios=tuple(scenarios[:n_scenarios]),
        hierarchical=hierarchical,
        solver_tolerance=solver_tolerance,
        assess_safety=assess_safety,
    )
