"""Declarative description of a batch grounding study.

A campaign is a list of :class:`ScenarioSpec` entries over shared analysis
settings.  Every spec is a plain frozen value object — geometry variant, soil
model, soil scale factor, injection GPR, accuracy tolerance — so the planner
can group scenarios by *structural equality* (hashable keys) instead of
heuristics, and so campaigns can be built programmatically (design sweeps,
CLI, benchmarks) without touching solver objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.bem.elements import ElementType
from repro.constants import DEFAULT_GAUSS_POINTS, DEFAULT_GPR
from repro.exceptions import ReproError
from repro.geometry.builder import GridBuilder
from repro.geometry.grid import GroundingGrid
from repro.kernels.series import SeriesControl
from repro.soil.base import SoilModel
from repro.soil.multilayer import MultiLayerSoil
from repro.soil.two_layer import TwoLayerSoil
from repro.soil.uniform import UniformSoil

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.operator import HierarchicalControl
    from repro.kernels.truncation import AdaptiveControl

__all__ = ["Campaign", "GeometryVariant", "ScenarioSpec", "scaled_soil"]

#: Rod placements a geometry variant understands.
_ROD_PLACEMENTS = ("none", "corners", "perimeter")


def scaled_soil(soil: SoilModel, factor: float) -> SoilModel:
    """The soil with every layer conductivity multiplied by ``factor``.

    Scaling all conductivities by a common factor leaves the layer contrasts
    (and therefore the image-series structure) unchanged while the kernel —
    and with it the whole influence matrix — scales by ``1 / factor``.  This
    is the algebraic fact the campaign planner exploits to reuse an assembled
    operator across soil-scale variants.
    """
    if not np.isfinite(factor) or factor <= 0.0:
        raise ReproError(f"the soil scale factor must be positive, got {factor!r}")
    if factor == 1.0:  # contracts: disable=API001 -- exact scale sentinel declared by the user, never a computed ratio
        return soil
    conductivities = tuple(g * float(factor) for g in soil.conductivities)
    if soil.n_layers == 1:
        return UniformSoil(conductivities[0])
    if soil.n_layers == 2:
        return TwoLayerSoil(conductivities[0], conductivities[1], soil.thicknesses[0])
    return MultiLayerSoil(conductivities, soil.thicknesses)


@dataclass(frozen=True)
class GeometryVariant:
    """One grid-geometry candidate of a campaign (a reticulated mesh + rods).

    The variant is declarative — :meth:`build_grid` materialises the
    :class:`~repro.geometry.grid.GroundingGrid` on demand — and hashable, so
    scenarios sharing a geometry are grouped exactly (same mesh, same cluster
    tree, same cached pair geometry).

    Parameters
    ----------
    name:
        Label used in reports.
    width, height:
        Plan dimensions [m].
    nx, ny:
        Number of meshes along x and y.
    depth, conductor_radius, rod_radius, rod_length:
        Construction parameters [m]; ``rod_radius=None`` uses
        ``1.2 * conductor_radius`` (the design-optimiser convention).
    rods:
        ``"none"``, ``"corners"`` (the four plan corners) or ``"perimeter"``
        (every perimeter node).
    """

    name: str
    width: float
    height: float
    nx: int
    ny: int
    depth: float = 0.8
    conductor_radius: float = 6.0e-3
    rod_radius: float | None = None
    rod_length: float = 2.4
    rods: str = "none"

    def __post_init__(self) -> None:
        if not self.name:
            raise ReproError("a geometry variant needs a non-empty name")
        if self.width <= 0.0 or self.height <= 0.0:
            raise ReproError("the plan dimensions must be positive")
        if self.nx < 1 or self.ny < 1:
            raise ReproError("the mesh counts nx/ny must be at least 1")
        if self.rods not in _ROD_PLACEMENTS:
            raise ReproError(
                f"rods must be one of {_ROD_PLACEMENTS}, got {self.rods!r}"
            )

    def build_grid(self) -> GroundingGrid:
        """Materialise the grounding grid of this variant."""
        builder = GridBuilder(
            depth=self.depth,
            conductor_radius=self.conductor_radius,
            rod_radius=self.rod_radius
            if self.rod_radius is not None
            else self.conductor_radius * 1.2,
            rod_length=self.rod_length,
            name=self.name,
        )
        grid = builder.rectangular_mesh(self.width, self.height, self.nx, self.ny)
        if self.rods == "corners":
            builder.add_rods(
                grid,
                [
                    (0.0, 0.0),
                    (self.width, 0.0),
                    (0.0, self.height),
                    (self.width, self.height),
                ],
            )
        elif self.rods == "perimeter":
            builder.add_rods(grid, GridBuilder.perimeter_node_positions(grid)[:, :2])
        return grid

    def estimated_elements(self) -> int:
        """Deterministic element-count estimate (the planner's cost unit).

        Counts the conductor segments of the reticulated mesh plus the rods
        of the chosen placement — cheap (no grid is built) and exact enough
        for LPT ordering; only relative values matter.
        """
        segments = self.nx * (self.ny + 1) + self.ny * (self.nx + 1)
        if self.rods == "corners":
            segments += 4
        elif self.rods == "perimeter":
            segments += 2 * (self.nx + self.ny)
        return int(segments)


@dataclass(frozen=True)
class ScenarioSpec:
    """One scenario of a campaign.

    Parameters
    ----------
    name:
        Unique label inside the campaign.
    geometry:
        The grid-geometry variant.
    soil:
        Base soil model of the scenario's soil family.
    soil_scale:
        Common factor applied to every layer conductivity (see
        :func:`scaled_soil`).  Declared *explicitly* — rather than detected by
        comparing resistivity ratios — so the planner's operator reuse rests
        on exact algebra, never on floating-point key matching.
    gpr:
        Injection case: the Ground Potential Rise applied to the electrode
        [V].  Solutions are exactly linear in it.
    tolerance:
        Target relative matrix accuracy (drives both the adaptive evaluation
        layer and the hierarchical ACA compression).
    """

    name: str
    geometry: GeometryVariant
    soil: SoilModel
    soil_scale: float = 1.0
    gpr: float = DEFAULT_GPR
    tolerance: float = 1.0e-8

    def __post_init__(self) -> None:
        if not self.name:
            raise ReproError("a scenario needs a non-empty name")
        if not isinstance(self.geometry, GeometryVariant):
            raise ReproError(
                f"geometry must be a GeometryVariant, got {self.geometry!r}"
            )
        if not isinstance(self.soil, SoilModel):
            raise ReproError(f"soil must be a SoilModel, got {self.soil!r}")
        if not np.isfinite(self.soil_scale) or self.soil_scale <= 0.0:
            raise ReproError(f"soil_scale must be positive, got {self.soil_scale!r}")
        if not np.isfinite(self.gpr) or self.gpr <= 0.0:
            raise ReproError(f"the GPR must be positive, got {self.gpr!r}")
        if not 0.0 < self.tolerance < 1.0:
            raise ReproError(
                f"tolerance must lie strictly between 0 and 1, got {self.tolerance!r}"
            )

    def effective_soil(self) -> SoilModel:
        """The soil actually analysed: ``soil`` scaled by ``soil_scale``."""
        return scaled_soil(self.soil, self.soil_scale)

    def structure_key(self) -> tuple:
        """Grouping key: scenarios sharing it differ only in scale/injection."""
        return (self.geometry, self.soil, float(self.tolerance))


@dataclass(frozen=True)
class Campaign:
    """A batch study: scenarios plus the shared analysis settings.

    Parameters
    ----------
    name:
        Campaign label.
    scenarios:
        The scenario specs (unique names, at least one).
    element_type, n_gauss, series_control, solver, solver_tolerance:
        Shared discretisation/solver settings of every scenario.  Derived
        scenarios inherit the base scenario's solve, so a comparison against
        independent runs at level ``L`` should solve a couple of orders
        tighter than ``L`` (two near-identical systems can differ by one PCG
        iteration's correction, ~ the solver tolerance, when their final
        residuals straddle the stopping threshold).
    hierarchical:
        ``None`` assembles every scenario densely (small grids, the design
        optimiser's default); a
        :class:`~repro.cluster.operator.HierarchicalControl` switches the
        campaign to the matrix-free hierarchical engine — the configuration a
        persistent :class:`~repro.parallel.pool.WorkerPool` accelerates.
        Scenario tolerances override the control's tolerance per scenario.
    adaptive:
        Image-series evaluation engine: the default ``"tolerance"`` derives
        an :class:`~repro.kernels.truncation.AdaptiveControl` from each
        scenario's tolerance; an explicit ``AdaptiveControl`` is used as-is
        for every scenario; ``None`` forces the exact full-series engine
        (reference studies, the design optimiser's historical default).
    assess_safety:
        Compute the touch/step voltage raster and IEEE Std 80 verdicts per
        scenario (skipped entirely when ``False`` — e.g. pure scaling
        benchmarks).
    safety_raster, safety_margin:
        Resolution and margin [m] of the surface-potential raster of the
        safety assessment.
    fault_duration_s, body_weight_kg, surface_resistivity, surface_thickness:
        IEEE Std 80 tolerable-voltage parameters of the verdicts.
    group_concurrency:
        Number of structure groups the runner keeps in flight concurrently
        on the shared :class:`~repro.parallel.pool.WorkerPool` (default 1:
        sequential groups).  Results are bit-identical for any value — the
        runner commits groups in the plan's canonical order regardless of
        completion timing — so this is purely a throughput knob.  Values
        above 1 require the hierarchical engine with a worker pool.
    """

    name: str
    scenarios: tuple[ScenarioSpec, ...]
    element_type: ElementType = ElementType.LINEAR
    n_gauss: int = DEFAULT_GAUSS_POINTS
    series_control: SeriesControl = field(default_factory=SeriesControl)
    solver: str = "pcg"
    solver_tolerance: float = 1.0e-10
    hierarchical: "HierarchicalControl | bool | None" = None
    adaptive: "AdaptiveControl | str | None" = "tolerance"
    assess_safety: bool = True
    safety_raster: int = 15
    safety_margin: float = 10.0
    fault_duration_s: float = 0.5
    body_weight_kg: float = 70.0
    surface_resistivity: float | None = None
    surface_thickness: float = 0.1
    group_concurrency: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ReproError("a campaign needs a non-empty name")
        scenarios = tuple(self.scenarios)
        object.__setattr__(self, "scenarios", scenarios)
        if not scenarios:
            raise ReproError("a campaign needs at least one scenario")
        names = [spec.name for spec in scenarios]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise ReproError(f"scenario names must be unique; duplicated: {duplicates}")
        if not isinstance(self.element_type, ElementType):
            object.__setattr__(self, "element_type", ElementType(self.element_type))
        if self.n_gauss < 1:
            raise ReproError("n_gauss must be at least 1")
        if not 0.0 < self.solver_tolerance < 1.0:
            raise ReproError(
                f"solver_tolerance must lie strictly between 0 and 1, "
                f"got {self.solver_tolerance!r}"
            )
        if self.hierarchical is not None:
            from repro.cluster.operator import HierarchicalControl

            if self.hierarchical is True:
                object.__setattr__(self, "hierarchical", HierarchicalControl())
            elif not isinstance(self.hierarchical, HierarchicalControl):
                raise ReproError(
                    "hierarchical must be a HierarchicalControl instance, True or "
                    f"None, got {self.hierarchical!r}"
                )
            if self.solver not in ("pcg", "cg"):
                raise ReproError(
                    "the hierarchical engine is matrix-free; choose the 'pcg' or "
                    f"'cg' solver instead of {self.solver!r}"
                )
        if self.adaptive is not None and not isinstance(self.adaptive, str):
            from repro.kernels.truncation import AdaptiveControl

            if not isinstance(self.adaptive, AdaptiveControl):
                raise ReproError(
                    "adaptive must be 'tolerance', an AdaptiveControl or None, "
                    f"got {self.adaptive!r}"
                )
        elif isinstance(self.adaptive, str) and self.adaptive != "tolerance":
            raise ReproError(
                f"adaptive must be 'tolerance', an AdaptiveControl or None, "
                f"got {self.adaptive!r}"
            )
        if self.assess_safety and self.safety_raster < 3:
            raise ReproError("safety_raster must be at least 3 samples per axis")
        if int(self.group_concurrency) != self.group_concurrency or self.group_concurrency < 1:
            raise ReproError(
                f"group_concurrency must be a positive integer, "
                f"got {self.group_concurrency!r}"
            )
        object.__setattr__(self, "group_concurrency", int(self.group_concurrency))

    @property
    def n_scenarios(self) -> int:
        """Number of scenarios."""
        return len(self.scenarios)
