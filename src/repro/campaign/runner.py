"""Campaign runner: execute a plan with cross-scenario reuse on a shared pool.

The runner walks the cost-ordered groups of a
:class:`~repro.campaign.planner.CampaignPlan`:

* one mesh discretisation per geometry variant (and per distinct set of layer
  interface depths — rods are split at soil interfaces, so meshes are keyed
  on them);
* one full assemble + solve + safety raster per *structure group* (the
  group's base scenario), executed through the ordinary
  :func:`~repro.bem.assembly.assemble_system_steps` path — on the shared
  persistent :class:`~repro.parallel.pool.WorkerPool` when one is given, so
  repeated sharded assemblies reuse spawn-once workers instead of forking per
  call;
* derived scenarios obtained by exact scalar algebra: the solution is linear
  in the injection GPR and in the common soil conductivity scale
  (``x' = (s'/s_b)(g'/g_b) x_b``; resistance scales by ``s_b/s'``, touch and
  step voltages by the GPR ratio alone).

Independent structure groups can execute **concurrently** on the pool
(``Campaign.group_concurrency`` / the ``group_concurrency`` argument): each
group runs as a coroutine that yields its assembly's
:class:`~repro.parallel.executor.PoolJob` requests, and a single-threaded
scheduler multiplexes up to N groups over the pool's event loop
(:meth:`~repro.parallel.pool.WorkerPool.submit` /
:meth:`~repro.parallel.pool.WorkerPool.service`) — no helper threads, in the
spirit of the non-threaded concurrent interpreters the paper's group builds
on.  While one group's shards occupy the workers, the master advances another
group's solve/safety phases, hiding the master-side serial fraction.
Determinism is preserved by construction: groups *start* and *commit*
(results, checkpoint stores, manifest rows, trace subtrees) strictly in the
plan's canonical order (:meth:`~repro.campaign.planner.CampaignPlan.iter_structures`)
regardless of completion timing, and the pool pins every run's shards to
preferred workers so fault coordinates and health counters are functions of
submit order alone.  Results are therefore bit-identical for any
``group_concurrency``.

Everything reused is reported: the
:class:`~repro.campaign.result.CampaignResult` carries the planner's reuse
counts, the process-wide geometry-cache hit/miss delta of the run, the
cluster-plan cache counters and the pool statistics **as deltas over this
campaign** (a borrowed pool's lifetime counters span every campaign it
served; see ``cache_stats["pool"]``).
"""

from __future__ import annotations

import copy
import dataclasses
from typing import Any, Callable

import numpy as np

from repro.bem.assembly import AssemblyOptions, assemble_system_steps
from repro.bem.geometry_cache import default_geometry_cache
from repro.bem.potential import PotentialEvaluator
from repro.bem.safety import ieee80_tolerable_step, ieee80_tolerable_touch
from repro.campaign.checkpoint import CampaignCheckpoint, structure_fingerprint
from repro.campaign.planner import CampaignPlan, plan_campaign
from repro.campaign.result import CampaignFailure, CampaignResult, ScenarioResult
from repro.campaign.spec import Campaign
from repro.cluster.block_assembly import ClusterPlanCache
from repro.exceptions import ReproError
from repro.geometry.discretize import discretize_grid
from repro.kernels.base import kernel_for_soil
from repro.kernels.truncation import AdaptiveControl
from repro.observe import (
    NULL_TRACER,
    RunManifest,
    Tracer,
    aggregate_trace,
    ensure_tracer,
)
from repro.solvers import solve_system
from repro.timing import PhaseTimer, Timer

__all__ = ["run_campaign", "surface_safety_metrics"]

#: Touch voltages are assessed over the grid footprint plus this reach [m].
_TOUCH_REACH_M = 1.0


def surface_safety_metrics(
    evaluator: PotentialEvaluator, margin: float, raster: int
) -> tuple[float, float]:
    """Worst touch and step voltage over the assessed area [V].

    The surface potential is sampled over the grid's bounding box extended by
    ``margin``; the touch voltage is ``GPR - V`` over the footprint plus a
    one-metre reach, the step voltage the potential-gradient magnitude over
    the whole sampled area.  Shared by the campaign runner and the design
    optimiser (whose sweeps run as campaigns).
    """
    surface = evaluator.surface_potential_over_grid(
        margin=margin, n_x=raster, n_y=raster
    )
    lower, upper = evaluator.mesh.grid.bounding_box()
    in_reach_x = (surface.x >= lower[0] - _TOUCH_REACH_M) & (
        surface.x <= upper[0] + _TOUCH_REACH_M
    )
    in_reach_y = (surface.y >= lower[1] - _TOUCH_REACH_M) & (
        surface.y <= upper[1] + _TOUCH_REACH_M
    )
    touch_area = surface.values[np.ix_(in_reach_y, in_reach_x)]
    touch = float(evaluator.gpr - touch_area.min())
    grad_y, grad_x = np.gradient(surface.values, surface.y, surface.x)
    step = float(np.hypot(grad_x, grad_y).max())
    return touch, step


def _tolerable_limits(campaign: Campaign, soil, soil_scale: float) -> tuple[float, float]:
    """IEEE Std 80 tolerable touch/step limits of one scenario."""
    soil_resistivity = 1.0 / (soil.conductivities[0] * soil_scale)
    touch = ieee80_tolerable_touch(
        soil_resistivity,
        campaign.fault_duration_s,
        campaign.body_weight_kg,
        campaign.surface_resistivity,
        campaign.surface_thickness,
    )
    step = ieee80_tolerable_step(
        soil_resistivity,
        campaign.fault_duration_s,
        campaign.body_weight_kg,
        campaign.surface_resistivity,
        campaign.surface_thickness,
    )
    return float(touch), float(step)


@dataclasses.dataclass
class _GroupOutcome:
    """What one structure-group coroutine produced.

    Outcomes are buffered by the scheduler and *committed* — results folded,
    checkpoint stored, manifest row appended, branch trace grafted — strictly
    in the plan's canonical group order, whatever order the coroutines
    actually finished in.
    """

    kind: str  # "computed" | "restored" | "failed"
    results: "list[ScenarioResult] | None" = None
    failure: CampaignFailure | None = None
    manifest_row: "dict[str, Any] | None" = None
    group_key: str | None = None
    branch: Any = None  # the group's branch Tracer (grafted at commit)


def _group_steps(
    campaign: Campaign,
    geometry_group,
    structure,
    grid,
    meshes: dict,
    pool,
    cluster_cache: ClusterPlanCache,
    checkpoint_store,
    phases: PhaseTimer,
    tracer,
):
    """Coroutine of one structure group: discretize, then restore or compute.

    Yields the group's :class:`~repro.parallel.executor.PoolJob` requests
    (bubbled up from the assembly generators) and returns a
    :class:`_GroupOutcome` via ``StopIteration``.  Everything the group
    records lands on a *branch* tracer with its own span stack, so
    interleaved groups never corrupt each other's span nesting; the branch
    roots are grafted under the main tracer at commit time, in canonical
    order, and get identical content-derived ids either way.

    A :class:`~repro.exceptions.ReproError` — raised here, or thrown in by
    the scheduler when a pool run failed — becomes a ``"failed"`` outcome:
    one failed group must not abort the whole batch study (the pool replaces
    any workers the failing run still owned, so it stays usable).
    """
    geometry = geometry_group.geometry
    base_spec = structure.base.spec
    soil_eff = base_spec.effective_soil()
    branch = (
        Tracer(metrics=tracer.metrics, profile=tracer.profile)
        if tracer.enabled
        else NULL_TRACER
    )
    stage = "discretize"
    group_key = None
    manifest_row = None
    try:
        with phases.phase("discretize"):
            mesh_key = (geometry, soil_eff.thicknesses)
            mesh = meshes.get(mesh_key)
            if mesh is None:
                mesh = meshes[mesh_key] = discretize_grid(grid, soil=soil_eff)
        if checkpoint_store is not None or tracer.enabled:
            group_key = structure_fingerprint(mesh, soil_eff, structure, campaign)
        if tracer.enabled:
            manifest_row = {
                "fingerprint": group_key,
                "geometry": geometry.name,
                "base_scenario": base_spec.name,
                "n_elements": int(mesh.n_elements),
                "n_scenarios": len(structure.plans),
                "soil_layers": int(soil_eff.n_layers),
                "restored": False,
            }
        if checkpoint_store is not None:
            # A CheckpointError out of the store is a checkpoint problem,
            # not a discretisation one.
            stage = "restore"
            if checkpoint_store.has(group_key):
                if manifest_row is not None:
                    manifest_row["restored"] = True
                    branch.record_span(
                        "campaign.group",
                        geometry=geometry.name,
                        base=base_spec.name,
                        fingerprint=group_key,
                        n_scenarios=len(structure.plans),
                        restored=True,
                    )
                return _GroupOutcome(
                    kind="restored",
                    results=list(checkpoint_store.restore(group_key)),
                    manifest_row=manifest_row,
                    group_key=group_key,
                    branch=branch,
                )
        stage = "assemble+solve"
        with branch.span(
            "campaign.group",
            geometry=geometry.name,
            base=base_spec.name,
            fingerprint=group_key or "",
            n_elements=mesh.n_elements,
            n_scenarios=len(structure.plans),
            restored=False,
        ):
            group_results = yield from _run_structure_group(
                campaign, structure, grid, mesh, soil_eff, pool,
                cluster_cache, phases, branch,
            )
        return _GroupOutcome(
            kind="computed",
            results=group_results,
            manifest_row=manifest_row,
            group_key=group_key,
            branch=branch,
        )
    except ReproError as error:
        return _GroupOutcome(
            kind="failed",
            failure=CampaignFailure(
                scenario_names=tuple(p.spec.name for p in structure.plans),
                scenario_indices=tuple(p.index for p in structure.plans),
                geometry_name=geometry.name,
                stage=stage,
                error=repr(error),
            ),
            manifest_row=manifest_row,
            group_key=group_key,
            branch=branch,
        )


def _drive_group_steps(
    makers: "list[Callable[[], Any]]",
    concurrency: int,
    pool,
    commit: "Callable[[_GroupOutcome], None]",
) -> None:
    """Run the group coroutines, up to ``concurrency`` in flight, on ``pool``.

    ``makers[i]()`` creates the coroutine of canonical group ``i``.  Groups
    are *started* in canonical order (so shared grid/mesh/cluster caches warm
    in a deterministic sequence and the pool sees a deterministic submit
    order) and their outcomes are *committed* in canonical order — an
    early-finishing later group buffers until every earlier group committed.
    Between coroutine steps the scheduler drives the pool's event loop with
    :meth:`~repro.parallel.pool.WorkerPool.service`; a run that failed is
    thrown back into its coroutine as the error
    :meth:`~repro.parallel.pool.WorkerPool.result` would raise, where the
    group's ``except ReproError`` turns it into a failed outcome.
    """
    total = len(makers)
    active: "dict[int, list[Any]]" = {}  # position -> [coroutine, pool run]
    outcomes: "dict[int, _GroupOutcome]" = {}
    next_start = 0
    next_commit = 0

    def advance(position, steps, *, value=None, error=None, first=False):
        """Step one coroutine until it blocks on a pool run or returns."""
        while True:
            try:
                if error is not None:
                    request = steps.throw(error)
                elif first:
                    request = next(steps)
                else:
                    request = steps.send(value)
            except StopIteration as stop:
                active.pop(position, None)
                outcomes[position] = stop.value
                return
            error = None
            first = False
            try:
                run = pool.submit(
                    request.task,
                    request.partition,
                    batch_fn=request.batch_fn,
                    cost_hint=request.cost_hint,
                    label=request.label,
                )
            except ReproError as submit_error:
                # The serial backend executes inline, so task errors can
                # surface at submit time; route them into the coroutine.
                error = submit_error
                continue
            if run.done:  # inline completion (serial backend / degraded pool)
                try:
                    value = pool.result(run)
                except ReproError as run_error:
                    error = run_error
                continue
            active[position] = [steps, run]
            return

    while next_commit < total:
        while len(active) < concurrency and next_start < total:
            position = next_start
            next_start += 1
            advance(position, makers[position](), first=True)
        while next_commit in outcomes:
            commit(outcomes.pop(next_commit))
            next_commit += 1
        if next_commit >= total:
            return
        if len(active) < concurrency and next_start < total:
            continue  # a start slot freed up: keep the window full first
        resumed = False
        for position in sorted(active):  # canonical order among the ready
            steps, run = active[position]
            if not run.done:
                continue
            try:
                value = pool.result(run)
            except ReproError as run_error:
                advance(position, steps, error=run_error)
            else:
                advance(position, steps, value=value)
            resumed = True
            break
        if not resumed:
            pool.service()


def run_campaign(
    campaign: Campaign,
    pool=None,
    workers: int = 0,
    pool_backend: str = "process",
    plan: CampaignPlan | None = None,
    checkpoint=None,
    retry=None,
    fault_plan=None,
    tracer=None,
    group_concurrency: int | None = None,
) -> CampaignResult:
    """Execute a campaign and aggregate the per-scenario results.

    Parameters
    ----------
    campaign:
        The declarative campaign.
    pool:
        Optional shared persistent :class:`~repro.parallel.pool.WorkerPool`
        (requires ``campaign.hierarchical``).  The pool is *borrowed*: it is
        not closed by the runner, so several campaigns can share it.
    workers:
        Convenience: with no ``pool`` and ``workers >= 1``, the runner
        creates its own pool of that size for the duration of the run and
        closes it deterministically afterwards.
    pool_backend:
        Backend of a runner-created pool (``"process"`` or ``"serial"``).
    plan:
        Pre-computed plan (defaults to :func:`plan_campaign` on the spot).
    checkpoint:
        Optional path of a campaign checkpoint file.  Completed structure
        groups are persisted there (atomically, keyed by content
        fingerprints — see :mod:`repro.campaign.checkpoint`); a rerun with
        the same path restores matching groups and recomputes only the
        incomplete ones.
    retry:
        Optional :class:`~repro.resilience.RetryPolicy` for a runner-owned
        pool (requires ``workers``); a borrowed pool carries its own policy.
    fault_plan:
        Optional :class:`~repro.resilience.FaultPlan` armed in a runner-owned
        pool (chaos testing; requires ``workers``).
    tracer:
        Optional :class:`~repro.observe.Tracer`.  When enabled, the run
        records a ``campaign`` span tree (plan → one ``campaign.group`` per
        structure group → nested assembly/solve/scenario spans), keeps the
        campaign's counters/gauges in the tracer's shared registry, attaches
        a :class:`~repro.observe.RunManifest` dict to the result metadata
        under ``"manifest"`` and — when ``checkpoint`` is given — writes it
        next to the checkpoint file.  A runner-owned pool inherits the
        tracer, so its dispatch/retry events land in the same trace.
    group_concurrency:
        Number of structure groups kept in flight concurrently on the pool;
        overrides ``campaign.group_concurrency`` when given.  Values above 1
        require a pool (``pool`` or ``workers``).  Purely a throughput knob:
        results, checkpoint contents and the canonical trace projection are
        bit-identical for any value.

    Returns
    -------
    CampaignResult
        Per-scenario results in campaign order, plus timings, reuse counts,
        cache statistics and — when structure groups failed — their failure
        records (the run keeps going; see :attr:`CampaignResult.failures`).
    """
    if (pool is not None or workers) and campaign.hierarchical is None:
        raise ReproError(
            "a persistent worker pool executes the sharded hierarchical block "
            "protocol; give the campaign a HierarchicalControl to use one"
        )
    if pool is not None and workers:
        raise ReproError(
            "pass either a shared pool or a worker count for a runner-owned "
            f"pool, not both (got pool with {pool.n_workers} workers and "
            f"workers={workers})"
        )
    if (retry is not None or fault_plan is not None) and not workers:
        raise ReproError(
            "retry/fault_plan configure the runner-owned pool and require "
            "workers >= 1; a borrowed pool carries its own policy"
        )
    if group_concurrency is None:
        group_concurrency = campaign.group_concurrency
    group_concurrency = int(group_concurrency)
    if group_concurrency < 1:
        raise ReproError(
            f"group_concurrency must be >= 1, got {group_concurrency}"
        )
    if group_concurrency > 1 and pool is None and not workers:
        raise ReproError(
            "group_concurrency > 1 multiplexes structure groups over a "
            "worker pool; pass pool= or workers= (sequential groups need "
            "neither)"
        )
    tracer = ensure_tracer(tracer)
    phases = PhaseTimer()
    for key in ("plan", "discretize", "assemble", "solve", "evaluate", "derive"):
        phases.add(key, 0.0)  # pre-seed so the timings dict always has every phase
    engine = "hierarchical" if campaign.hierarchical is not None else "dense"

    total_timer = Timer().start()
    campaign_span = tracer.span(
        "campaign", name=campaign.name, engine=engine, solver=campaign.solver
    )
    with campaign_span:
        plan_timer = Timer()
        with plan_timer:
            plan = plan or plan_campaign(campaign)
        phases.add("plan", plan_timer.elapsed)
        if tracer.enabled:
            tracer.record_span(
                "campaign.plan",
                duration_seconds=plan_timer.elapsed,
                n_geometry_groups=len(plan.geometry_groups),
                n_structure_groups=sum(
                    len(group.structures) for group in plan.geometry_groups
                ),
            )

        own_pool = None
        if pool is None and workers:
            from repro.parallel.pool import WorkerPool

            pool = own_pool = WorkerPool(
                int(workers),
                backend=pool_backend,
                retry=retry,
                fault_plan=fault_plan,
                tracer=tracer,
            )
        restored_groups = 0
        computed_groups = 0
        failures: list[CampaignFailure] = []
        manifest_groups: list[dict[str, Any]] = []
        cluster_cache = ClusterPlanCache()
        results: dict[int, ScenarioResult] = {}
        # Everything below — including the checkpoint construction, which
        # raises CheckpointError on a corrupt file — runs under the finally
        # that closes a runner-owned pool: no code path may leak its worker
        # processes.
        try:
            tracer.annotate_volatile(
                pool_workers=pool.n_workers if pool is not None else 0,
                pool_backend=pool.backend if pool is not None else None,
                group_concurrency=group_concurrency,
            )
            checkpoint_store = (
                CampaignCheckpoint(checkpoint) if checkpoint is not None else None
            )
            geometry_cache_before = default_geometry_cache().stats()
            # Snapshot the pool's lifetime counters so the result reports
            # this campaign's delta — a borrowed pool's cumulative stats
            # would otherwise double-count earlier campaigns.
            pool_stats_before = dict(pool.stats) if pool is not None else {}
            pool_health_before = (
                dict(pool.health.counters()) if pool is not None else {}
            )

            ordered = list(plan.iter_structures())
            grids: dict[Any, Any] = {}  # geometry variant -> built grid
            meshes: dict[tuple, Any] = {}  # (geometry, interface depths) -> mesh

            def _make_group(geometry_group, structure):
                def make():
                    geometry = geometry_group.geometry
                    grid = grids.get(geometry)
                    if grid is None:
                        grid = grids[geometry] = geometry.build_grid()
                    return _group_steps(
                        campaign, geometry_group, structure, grid, meshes,
                        pool, cluster_cache, checkpoint_store, phases, tracer,
                    )

                return make

            def _commit(outcome: _GroupOutcome) -> None:
                nonlocal restored_groups, computed_groups
                if outcome.manifest_row is not None:
                    manifest_groups.append(outcome.manifest_row)
                if outcome.branch is not None:
                    tracer.graft(outcome.branch.roots)
                if outcome.kind == "failed":
                    failures.append(outcome.failure)
                    return
                if outcome.kind == "restored":
                    restored_groups += 1
                else:
                    computed_groups += 1
                for result in outcome.results:
                    results[result.index] = result
                if (
                    outcome.kind == "computed"
                    and checkpoint_store is not None
                    and outcome.group_key is not None
                ):
                    checkpoint_store.store(outcome.group_key, outcome.results)

            makers = [_make_group(gg, s) for gg, s in ordered]
            concurrency = min(group_concurrency, len(makers)) if makers else 1
            _drive_group_steps(makers, concurrency, pool, _commit)
        finally:
            if own_pool is not None:
                own_pool.close()

        geometry_cache_after = default_geometry_cache().stats()
        cache_stats: dict[str, Any] = {
            "geometry_cache": {
                "hits": geometry_cache_after["hits"] - geometry_cache_before["hits"],
                "misses": geometry_cache_after["misses"]
                - geometry_cache_before["misses"],
                "entries": geometry_cache_after["entries"],
            },
            "cluster_plan_cache": cluster_cache.stats(),
        }
        metadata: dict[str, Any] = {
            "engine": engine,
            "solver": campaign.solver,
            "pool_workers": pool.n_workers if pool is not None else 0,
            "pool_backend": pool.backend if pool is not None else None,
        }
        if checkpoint_store is not None:
            metadata["checkpoint"] = {
                "path": str(checkpoint_store.path),
                "restored_groups": restored_groups,
                "computed_groups": computed_groups,
            }
        if pool is not None:
            cache_stats["pool"] = {
                key: int(value) - int(pool_stats_before.get(key, 0))
                for key, value in pool.stats.items()
            }
        tracer.annotate(
            n_scenarios=len(results),
            n_failures=len(failures),
        )
    phases.add("total", total_timer.stop())
    timings = phases.as_dict()

    if tracer.enabled:
        metrics = tracer.metrics
        metrics.absorb(cache_stats["geometry_cache"], prefix="cache.geometry.")
        metrics.absorb(cache_stats["cluster_plan_cache"], prefix="cache.cluster_plan.")
        if pool is not None:
            metrics.absorb(
                {
                    key: int(value) - int(pool_health_before.get(key, 0))
                    for key, value in pool.health.counters().items()
                },
                prefix="pool.health.",
            )
        metrics.set_gauge("campaign.groups.computed", computed_groups)
        metrics.set_gauge("campaign.groups.restored", restored_groups)
        metrics.set_gauge("campaign.failures", len(failures))
        manifest = RunManifest(
            run={
                "campaign": campaign.name,
                "engine": engine,
                "solver": campaign.solver,
                "solver_tolerance": float(campaign.solver_tolerance),
                "element_type": campaign.element_type.value,
                "n_gauss": int(campaign.n_gauss),
                "pool_workers": metadata["pool_workers"],
                "pool_backend": metadata["pool_backend"],
                "n_scenarios": len(results),
                "n_failures": len(failures),
                "restored_groups": restored_groups,
                "computed_groups": computed_groups,
            },
            groups=manifest_groups,
            metrics=metrics.snapshot(),
            timings=dict(timings),
            trace=tracer.stats(),
            aggregate=aggregate_trace(tracer.roots),
        )
        metadata["manifest"] = manifest.as_dict()
        if checkpoint_store is not None:
            manifest.write(RunManifest.path_for(checkpoint_store.path))

    return CampaignResult(
        name=campaign.name,
        scenarios=[results[index] for index in sorted(results)],
        plan_summary=plan.summary(),
        timings=timings,
        cache_stats=cache_stats,
        metadata=metadata,
        failures=failures,
    )


def _run_structure_group(
    campaign: Campaign,
    structure,
    grid,
    mesh,
    soil_eff,
    pool,
    cluster_cache: ClusterPlanCache,
    phases: PhaseTimer,
    tracer,
):
    """Assemble + solve the group base, derive the rest by scalar algebra.

    A coroutine: the assembly's pool dispatches surface as yielded
    :class:`~repro.parallel.executor.PoolJob` requests (none for the dense or
    in-process engines), and the group's scenario results (campaign order)
    come back via ``StopIteration`` so the caller can fold them into the
    campaign — and persist them as one checkpoint unit.
    """
    base_plan = structure.base
    base_spec = base_plan.spec
    kernel = kernel_for_soil(soil_eff, campaign.series_control)
    hierarchical = campaign.hierarchical
    if hierarchical is not None:
        hierarchical = dataclasses.replace(hierarchical, tolerance=base_spec.tolerance)
    if isinstance(campaign.adaptive, str):  # "tolerance": follow the scenario
        adaptive = AdaptiveControl(tolerance=base_spec.tolerance)
    else:
        adaptive = campaign.adaptive
    options = AssemblyOptions(
        element_type=campaign.element_type,
        n_gauss=campaign.n_gauss,
        series_control=campaign.series_control,
        adaptive=adaptive,
        hierarchical=hierarchical,
    )

    assemble_timer = Timer()
    with assemble_timer:
        system = yield from assemble_system_steps(
            mesh,
            soil_eff,
            gpr=base_spec.gpr,
            options=options,
            kernel=kernel,
            pool=pool,
            cluster_cache=cluster_cache,
            tracer=tracer,
        )
    assemble_seconds = assemble_timer.elapsed
    phases.add("assemble", assemble_seconds)

    solve_timer = Timer()
    with solve_timer, tracer.span(
        "solve", method=campaign.solver, n_unknowns=int(system.n_dofs)
    ):
        on_iteration = None
        if tracer.enabled:
            metrics = tracer.metrics

            def on_iteration(iteration: int, residual: float) -> None:
                metrics.observe("campaign.solve.residual", residual)

        solved = solve_system(
            system.matrix,
            system.rhs,
            method=campaign.solver,
            tolerance=campaign.solver_tolerance,
            on_iteration=on_iteration,
        )
        # Bit-identical across worker counts (the sharded backend's
        # deterministic-reduction contract), hence deterministic attrs.
        tracer.annotate(
            iterations=int(solved.iterations),
            converged=bool(solved.converged),
            residual=float(solved.residual),
        )
    solve_seconds = solve_timer.elapsed
    phases.add("solve", solve_seconds)

    weights = system.dof_manager.assemble_basis_integrals()
    base_current = float(weights @ solved.solution)
    base_metadata = {
        "backend": system.metadata.get("backend"),
        "solver_converged": bool(solved.converged),
        # The materialised grid's facts, so downstream consumers (e.g. the
        # design optimiser) need not rebuild the geometry.
        "grid": {
            "total_length_m": float(grid.total_length),
            "n_rods": len(grid.rods),
            "summary": grid.summary(),
        },
    }

    base_touch = base_step = None
    evaluate_seconds = 0.0
    if campaign.assess_safety:
        evaluate_timer = Timer()
        with evaluate_timer, tracer.span(
            "campaign.evaluate", raster=int(campaign.safety_raster)
        ):
            evaluator = PotentialEvaluator(
                mesh,
                soil_eff,
                kernel,
                system.dof_manager,
                solved.solution,
                gpr=base_spec.gpr,
                adaptive=options.adaptive if options.adaptive is not None else "default",
            )
            base_touch, base_step = surface_safety_metrics(
                evaluator, campaign.safety_margin, campaign.safety_raster
            )
        evaluate_seconds = evaluate_timer.elapsed
        phases.add("evaluate", evaluate_seconds)

    group_results: list[ScenarioResult] = []
    for scenario_plan in structure.plans:
        spec = scenario_plan.spec
        derive_timer = Timer()
        with derive_timer:
            # Exact scaling algebra: the matrix is ``1/scale`` of the base
            # matrix and the rhs ``gpr`` times the basis integrals, so the
            # solution (and every linear functional of it) follows by scalar
            # multiplication.
            ratio = scenario_plan.scale_ratio * scenario_plan.gpr_ratio
            dof_values = (
                solved.solution if scenario_plan.is_base else solved.solution * ratio
            )
            current = base_current * ratio
            touch = step = tolerable_touch = tolerable_step = None
            if campaign.assess_safety:
                touch = base_touch * scenario_plan.gpr_ratio
                step = base_step * scenario_plan.gpr_ratio
                tolerable_touch, tolerable_step = _tolerable_limits(
                    campaign, spec.soil, spec.soil_scale
                )
        derive_seconds = derive_timer.elapsed
        if not scenario_plan.is_base:
            phases.add("derive", derive_seconds)
        if tracer.enabled:
            tracer.record_span(
                "campaign.scenario",
                duration_seconds=derive_seconds,
                name=spec.name,
                index=int(scenario_plan.index),
                kind=str(scenario_plan.kind),
                derived=not scenario_plan.is_base,
            )
        group_results.append(ScenarioResult(
            name=spec.name,
            index=scenario_plan.index,
            kind=scenario_plan.kind,
            base_name=base_spec.name,
            geometry_name=spec.geometry.name,
            n_elements=int(mesh.n_elements),
            n_dofs=int(system.n_dofs),
            gpr=float(spec.gpr),
            soil_scale=float(spec.soil_scale),
            dof_values=dof_values,
            total_current=current,
            equivalent_resistance=float(spec.gpr) / current,
            solver_iterations=int(solved.iterations),
            assemble_seconds=assemble_seconds if scenario_plan.is_base else 0.0,
            solve_seconds=solve_seconds if scenario_plan.is_base else 0.0,
            evaluate_seconds=evaluate_seconds if scenario_plan.is_base else derive_seconds,
            max_touch_voltage=touch,
            max_step_voltage=step,
            tolerable_touch_voltage=tolerable_touch,
            tolerable_step_voltage=tolerable_step,
            metadata=copy.deepcopy(base_metadata),  # results stay independent
        ))
    return group_results
