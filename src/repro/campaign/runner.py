"""Campaign runner: execute a plan with cross-scenario reuse on a shared pool.

The runner walks the cost-ordered groups of a
:class:`~repro.campaign.planner.CampaignPlan`:

* one mesh discretisation per geometry variant (and per distinct set of layer
  interface depths — rods are split at soil interfaces, so meshes are keyed
  on them);
* one full assemble + solve + safety raster per *structure group* (the
  group's base scenario), executed through the ordinary
  :func:`~repro.bem.assembly.assemble_system` path — on the shared persistent
  :class:`~repro.parallel.pool.WorkerPool` when one is given, so repeated
  sharded assemblies reuse spawn-once workers instead of forking per call;
* derived scenarios obtained by exact scalar algebra: the solution is linear
  in the injection GPR and in the common soil conductivity scale
  (``x' = (s'/s_b)(g'/g_b) x_b``; resistance scales by ``s_b/s'``, touch and
  step voltages by the GPR ratio alone).

Everything reused is reported: the
:class:`~repro.campaign.result.CampaignResult` carries the planner's reuse
counts, the process-wide geometry-cache hit/miss delta of the run, the
cluster-plan cache counters and the pool statistics.
"""

from __future__ import annotations

import copy
import dataclasses
from typing import Any

import numpy as np

from repro.bem.assembly import AssemblyOptions, assemble_system
from repro.bem.geometry_cache import default_geometry_cache
from repro.bem.potential import PotentialEvaluator
from repro.bem.safety import ieee80_tolerable_step, ieee80_tolerable_touch
from repro.campaign.checkpoint import CampaignCheckpoint, structure_fingerprint
from repro.campaign.planner import CampaignPlan, plan_campaign
from repro.campaign.result import CampaignFailure, CampaignResult, ScenarioResult
from repro.campaign.spec import Campaign
from repro.cluster.block_assembly import ClusterPlanCache
from repro.exceptions import ReproError
from repro.geometry.discretize import discretize_grid
from repro.kernels.base import kernel_for_soil
from repro.kernels.truncation import AdaptiveControl
from repro.observe import RunManifest, ensure_tracer
from repro.solvers import solve_system
from repro.timing import PhaseTimer, Timer

__all__ = ["run_campaign", "surface_safety_metrics"]

#: Touch voltages are assessed over the grid footprint plus this reach [m].
_TOUCH_REACH_M = 1.0


def surface_safety_metrics(
    evaluator: PotentialEvaluator, margin: float, raster: int
) -> tuple[float, float]:
    """Worst touch and step voltage over the assessed area [V].

    The surface potential is sampled over the grid's bounding box extended by
    ``margin``; the touch voltage is ``GPR - V`` over the footprint plus a
    one-metre reach, the step voltage the potential-gradient magnitude over
    the whole sampled area.  Shared by the campaign runner and the design
    optimiser (whose sweeps run as campaigns).
    """
    surface = evaluator.surface_potential_over_grid(
        margin=margin, n_x=raster, n_y=raster
    )
    lower, upper = evaluator.mesh.grid.bounding_box()
    in_reach_x = (surface.x >= lower[0] - _TOUCH_REACH_M) & (
        surface.x <= upper[0] + _TOUCH_REACH_M
    )
    in_reach_y = (surface.y >= lower[1] - _TOUCH_REACH_M) & (
        surface.y <= upper[1] + _TOUCH_REACH_M
    )
    touch_area = surface.values[np.ix_(in_reach_y, in_reach_x)]
    touch = float(evaluator.gpr - touch_area.min())
    grad_y, grad_x = np.gradient(surface.values, surface.y, surface.x)
    step = float(np.hypot(grad_x, grad_y).max())
    return touch, step


def _tolerable_limits(campaign: Campaign, soil, soil_scale: float) -> tuple[float, float]:
    """IEEE Std 80 tolerable touch/step limits of one scenario."""
    soil_resistivity = 1.0 / (soil.conductivities[0] * soil_scale)
    touch = ieee80_tolerable_touch(
        soil_resistivity,
        campaign.fault_duration_s,
        campaign.body_weight_kg,
        campaign.surface_resistivity,
        campaign.surface_thickness,
    )
    step = ieee80_tolerable_step(
        soil_resistivity,
        campaign.fault_duration_s,
        campaign.body_weight_kg,
        campaign.surface_resistivity,
        campaign.surface_thickness,
    )
    return float(touch), float(step)


def run_campaign(
    campaign: Campaign,
    pool=None,
    workers: int = 0,
    pool_backend: str = "process",
    plan: CampaignPlan | None = None,
    checkpoint=None,
    retry=None,
    fault_plan=None,
    tracer=None,
) -> CampaignResult:
    """Execute a campaign and aggregate the per-scenario results.

    Parameters
    ----------
    campaign:
        The declarative campaign.
    pool:
        Optional shared persistent :class:`~repro.parallel.pool.WorkerPool`
        (requires ``campaign.hierarchical``).  The pool is *borrowed*: it is
        not closed by the runner, so several campaigns can share it.
    workers:
        Convenience: with no ``pool`` and ``workers >= 1``, the runner
        creates its own pool of that size for the duration of the run and
        closes it deterministically afterwards.
    pool_backend:
        Backend of a runner-created pool (``"process"`` or ``"serial"``).
    plan:
        Pre-computed plan (defaults to :func:`plan_campaign` on the spot).
    checkpoint:
        Optional path of a campaign checkpoint file.  Completed structure
        groups are persisted there (atomically, keyed by content
        fingerprints — see :mod:`repro.campaign.checkpoint`); a rerun with
        the same path restores matching groups and recomputes only the
        incomplete ones.
    retry:
        Optional :class:`~repro.resilience.RetryPolicy` for a runner-owned
        pool (requires ``workers``); a borrowed pool carries its own policy.
    fault_plan:
        Optional :class:`~repro.resilience.FaultPlan` armed in a runner-owned
        pool (chaos testing; requires ``workers``).
    tracer:
        Optional :class:`~repro.observe.Tracer`.  When enabled, the run
        records a ``campaign`` span tree (plan → one ``campaign.group`` per
        structure group → nested assembly/solve/scenario spans), keeps the
        campaign's counters/gauges in the tracer's shared registry, attaches
        a :class:`~repro.observe.RunManifest` dict to the result metadata
        under ``"manifest"`` and — when ``checkpoint`` is given — writes it
        next to the checkpoint file.  A runner-owned pool inherits the
        tracer, so its dispatch/retry events land in the same trace.

    Returns
    -------
    CampaignResult
        Per-scenario results in campaign order, plus timings, reuse counts,
        cache statistics and — when structure groups failed — their failure
        records (the run keeps going; see :attr:`CampaignResult.failures`).
    """
    if (pool is not None or workers) and campaign.hierarchical is None:
        raise ReproError(
            "a persistent worker pool executes the sharded hierarchical block "
            "protocol; give the campaign a HierarchicalControl to use one"
        )
    if pool is not None and workers:
        raise ReproError(
            "pass either a shared pool or a worker count for a runner-owned "
            f"pool, not both (got pool with {pool.n_workers} workers and "
            f"workers={workers})"
        )
    if (retry is not None or fault_plan is not None) and not workers:
        raise ReproError(
            "retry/fault_plan configure the runner-owned pool and require "
            "workers >= 1; a borrowed pool carries its own policy"
        )
    tracer = ensure_tracer(tracer)
    phases = PhaseTimer()
    for key in ("plan", "discretize", "assemble", "solve", "evaluate", "derive"):
        phases.add(key, 0.0)  # pre-seed so the timings dict always has every phase
    engine = "hierarchical" if campaign.hierarchical is not None else "dense"

    total_timer = Timer().start()
    campaign_span = tracer.span(
        "campaign", name=campaign.name, engine=engine, solver=campaign.solver
    )
    with campaign_span:
        plan_timer = Timer()
        with plan_timer:
            plan = plan or plan_campaign(campaign)
        phases.add("plan", plan_timer.elapsed)
        if tracer.enabled:
            tracer.record_span(
                "campaign.plan",
                duration_seconds=plan_timer.elapsed,
                n_geometry_groups=len(plan.geometry_groups),
                n_structure_groups=sum(
                    len(group.structures) for group in plan.geometry_groups
                ),
            )

        own_pool = None
        if pool is None and workers:
            from repro.parallel.pool import WorkerPool

            pool = own_pool = WorkerPool(
                int(workers),
                backend=pool_backend,
                retry=retry,
                fault_plan=fault_plan,
                tracer=tracer,
            )
        tracer.annotate_volatile(
            pool_workers=pool.n_workers if pool is not None else 0,
            pool_backend=pool.backend if pool is not None else None,
        )

        checkpoint_store = (
            CampaignCheckpoint(checkpoint) if checkpoint is not None else None
        )
        restored_groups = 0
        computed_groups = 0
        failures: list[CampaignFailure] = []
        manifest_groups: list[dict[str, Any]] = []
        cluster_cache = ClusterPlanCache()
        geometry_cache_before = default_geometry_cache().stats()
        results: dict[int, ScenarioResult] = {}
        try:
            for geometry_group in plan.geometry_groups:
                grid = geometry_group.geometry.build_grid()
                meshes: dict[tuple, Any] = {}  # keyed by layer interface depths
                for structure in geometry_group.structures:
                    base_spec = structure.base.spec
                    soil_eff = base_spec.effective_soil()
                    stage = "discretize"
                    group_key = None
                    try:
                        with phases.phase("discretize"):
                            mesh_key = soil_eff.thicknesses
                            mesh = meshes.get(mesh_key)
                            if mesh is None:
                                mesh = meshes[mesh_key] = discretize_grid(
                                    grid, soil=soil_eff
                                )
                        if checkpoint_store is not None or tracer.enabled:
                            group_key = structure_fingerprint(
                                mesh, soil_eff, structure, campaign
                            )
                        if tracer.enabled:
                            manifest_groups.append(
                                {
                                    "fingerprint": group_key,
                                    "geometry": geometry_group.geometry.name,
                                    "base_scenario": base_spec.name,
                                    "n_elements": int(mesh.n_elements),
                                    "n_scenarios": len(structure.plans),
                                    "soil_layers": int(soil_eff.n_layers),
                                    "restored": False,
                                }
                            )
                        if checkpoint_store is not None and checkpoint_store.has(
                            group_key
                        ):
                            restored_groups += 1
                            if tracer.enabled:
                                manifest_groups[-1]["restored"] = True
                                tracer.record_span(
                                    "campaign.group",
                                    geometry=geometry_group.geometry.name,
                                    base=base_spec.name,
                                    fingerprint=group_key,
                                    n_scenarios=len(structure.plans),
                                    restored=True,
                                )
                            for result in checkpoint_store.restore(group_key):
                                results[result.index] = result
                            continue
                        stage = "assemble+solve"
                        with tracer.span(
                            "campaign.group",
                            geometry=geometry_group.geometry.name,
                            base=base_spec.name,
                            fingerprint=group_key or "",
                            n_elements=mesh.n_elements,
                            n_scenarios=len(structure.plans),
                            restored=False,
                        ):
                            group_results = _run_structure_group(
                                campaign, structure, grid, mesh, soil_eff, pool,
                                cluster_cache, phases, tracer,
                            )
                    except ReproError as error:
                        # One failed group must not abort the whole batch study:
                        # record it and keep going (the pool replaces any workers
                        # the failing run still owned, so it stays usable).
                        failures.append(
                            CampaignFailure(
                                scenario_names=tuple(
                                    p.spec.name for p in structure.plans
                                ),
                                scenario_indices=tuple(
                                    p.index for p in structure.plans
                                ),
                                geometry_name=geometry_group.geometry.name,
                                stage=stage,
                                error=repr(error),
                            )
                        )
                        continue
                    computed_groups += 1
                    for result in group_results:
                        results[result.index] = result
                    if checkpoint_store is not None and group_key is not None:
                        checkpoint_store.store(group_key, group_results)
        finally:
            if own_pool is not None:
                own_pool.close()

        geometry_cache_after = default_geometry_cache().stats()
        cache_stats: dict[str, Any] = {
            "geometry_cache": {
                "hits": geometry_cache_after["hits"] - geometry_cache_before["hits"],
                "misses": geometry_cache_after["misses"]
                - geometry_cache_before["misses"],
                "entries": geometry_cache_after["entries"],
            },
            "cluster_plan_cache": cluster_cache.stats(),
        }
        metadata: dict[str, Any] = {
            "engine": engine,
            "solver": campaign.solver,
            "pool_workers": pool.n_workers if pool is not None else 0,
            "pool_backend": pool.backend if pool is not None else None,
        }
        if checkpoint_store is not None:
            metadata["checkpoint"] = {
                "path": str(checkpoint_store.path),
                "restored_groups": restored_groups,
                "computed_groups": computed_groups,
            }
        if pool is not None:
            cache_stats["pool"] = dict(pool.stats)
        tracer.annotate(
            n_scenarios=len(results),
            n_failures=len(failures),
        )
    phases.add("total", total_timer.stop())
    timings = phases.as_dict()

    if tracer.enabled:
        metrics = tracer.metrics
        metrics.absorb(cache_stats["geometry_cache"], prefix="cache.geometry.")
        metrics.absorb(cache_stats["cluster_plan_cache"], prefix="cache.cluster_plan.")
        if pool is not None:
            metrics.absorb(pool.health.counters(), prefix="pool.health.")
        metrics.set_gauge("campaign.groups.computed", computed_groups)
        metrics.set_gauge("campaign.groups.restored", restored_groups)
        metrics.set_gauge("campaign.failures", len(failures))
        manifest = RunManifest(
            run={
                "campaign": campaign.name,
                "engine": engine,
                "solver": campaign.solver,
                "solver_tolerance": float(campaign.solver_tolerance),
                "element_type": campaign.element_type.value,
                "n_gauss": int(campaign.n_gauss),
                "pool_workers": metadata["pool_workers"],
                "pool_backend": metadata["pool_backend"],
                "n_scenarios": len(results),
                "n_failures": len(failures),
                "restored_groups": restored_groups,
                "computed_groups": computed_groups,
            },
            groups=manifest_groups,
            metrics=metrics.snapshot(),
            timings=dict(timings),
            trace=tracer.stats(),
        )
        metadata["manifest"] = manifest.as_dict()
        if checkpoint_store is not None:
            manifest.write(RunManifest.path_for(checkpoint_store.path))

    return CampaignResult(
        name=campaign.name,
        scenarios=[results[index] for index in sorted(results)],
        plan_summary=plan.summary(),
        timings=timings,
        cache_stats=cache_stats,
        metadata=metadata,
        failures=failures,
    )


def _run_structure_group(
    campaign: Campaign,
    structure,
    grid,
    mesh,
    soil_eff,
    pool,
    cluster_cache: ClusterPlanCache,
    phases: PhaseTimer,
    tracer,
) -> list[ScenarioResult]:
    """Assemble + solve the group base, derive the rest by scalar algebra.

    Returns the group's scenario results (campaign order) so the caller can
    fold them into the campaign — and persist them as one checkpoint unit.
    """
    base_plan = structure.base
    base_spec = base_plan.spec
    kernel = kernel_for_soil(soil_eff, campaign.series_control)
    hierarchical = campaign.hierarchical
    if hierarchical is not None:
        hierarchical = dataclasses.replace(hierarchical, tolerance=base_spec.tolerance)
    if isinstance(campaign.adaptive, str):  # "tolerance": follow the scenario
        adaptive = AdaptiveControl(tolerance=base_spec.tolerance)
    else:
        adaptive = campaign.adaptive
    options = AssemblyOptions(
        element_type=campaign.element_type,
        n_gauss=campaign.n_gauss,
        series_control=campaign.series_control,
        adaptive=adaptive,
        hierarchical=hierarchical,
    )

    assemble_timer = Timer()
    with assemble_timer:
        system = assemble_system(
            mesh,
            soil_eff,
            gpr=base_spec.gpr,
            options=options,
            kernel=kernel,
            pool=pool,
            cluster_cache=cluster_cache,
            tracer=tracer,
        )
    assemble_seconds = assemble_timer.elapsed
    phases.add("assemble", assemble_seconds)

    solve_timer = Timer()
    with solve_timer, tracer.span(
        "solve", method=campaign.solver, n_unknowns=int(system.n_dofs)
    ):
        on_iteration = None
        if tracer.enabled:
            metrics = tracer.metrics

            def on_iteration(iteration: int, residual: float) -> None:
                metrics.observe("campaign.solve.residual", residual)

        solved = solve_system(
            system.matrix,
            system.rhs,
            method=campaign.solver,
            tolerance=campaign.solver_tolerance,
            on_iteration=on_iteration,
        )
        # Bit-identical across worker counts (the sharded backend's
        # deterministic-reduction contract), hence deterministic attrs.
        tracer.annotate(
            iterations=int(solved.iterations),
            converged=bool(solved.converged),
            residual=float(solved.residual),
        )
    solve_seconds = solve_timer.elapsed
    phases.add("solve", solve_seconds)

    weights = system.dof_manager.assemble_basis_integrals()
    base_current = float(weights @ solved.solution)
    base_metadata = {
        "backend": system.metadata.get("backend"),
        "solver_converged": bool(solved.converged),
        # The materialised grid's facts, so downstream consumers (e.g. the
        # design optimiser) need not rebuild the geometry.
        "grid": {
            "total_length_m": float(grid.total_length),
            "n_rods": len(grid.rods),
            "summary": grid.summary(),
        },
    }

    base_touch = base_step = None
    evaluate_seconds = 0.0
    if campaign.assess_safety:
        evaluate_timer = Timer()
        with evaluate_timer, tracer.span(
            "campaign.evaluate", raster=int(campaign.safety_raster)
        ):
            evaluator = PotentialEvaluator(
                mesh,
                soil_eff,
                kernel,
                system.dof_manager,
                solved.solution,
                gpr=base_spec.gpr,
                adaptive=options.adaptive if options.adaptive is not None else "default",
            )
            base_touch, base_step = surface_safety_metrics(
                evaluator, campaign.safety_margin, campaign.safety_raster
            )
        evaluate_seconds = evaluate_timer.elapsed
        phases.add("evaluate", evaluate_seconds)

    group_results: list[ScenarioResult] = []
    for scenario_plan in structure.plans:
        spec = scenario_plan.spec
        derive_timer = Timer()
        with derive_timer:
            # Exact scaling algebra: the matrix is ``1/scale`` of the base
            # matrix and the rhs ``gpr`` times the basis integrals, so the
            # solution (and every linear functional of it) follows by scalar
            # multiplication.
            ratio = scenario_plan.scale_ratio * scenario_plan.gpr_ratio
            dof_values = (
                solved.solution if scenario_plan.is_base else solved.solution * ratio
            )
            current = base_current * ratio
            touch = step = tolerable_touch = tolerable_step = None
            if campaign.assess_safety:
                touch = base_touch * scenario_plan.gpr_ratio
                step = base_step * scenario_plan.gpr_ratio
                tolerable_touch, tolerable_step = _tolerable_limits(
                    campaign, spec.soil, spec.soil_scale
                )
        derive_seconds = derive_timer.elapsed
        if not scenario_plan.is_base:
            phases.add("derive", derive_seconds)
        if tracer.enabled:
            tracer.record_span(
                "campaign.scenario",
                duration_seconds=derive_seconds,
                name=spec.name,
                index=int(scenario_plan.index),
                kind=str(scenario_plan.kind),
                derived=not scenario_plan.is_base,
            )
        group_results.append(ScenarioResult(
            name=spec.name,
            index=scenario_plan.index,
            kind=scenario_plan.kind,
            base_name=base_spec.name,
            geometry_name=spec.geometry.name,
            n_elements=int(mesh.n_elements),
            n_dofs=int(system.n_dofs),
            gpr=float(spec.gpr),
            soil_scale=float(spec.soil_scale),
            dof_values=dof_values,
            total_current=current,
            equivalent_resistance=float(spec.gpr) / current,
            solver_iterations=int(solved.iterations),
            assemble_seconds=assemble_seconds if scenario_plan.is_base else 0.0,
            solve_seconds=solve_seconds if scenario_plan.is_base else 0.0,
            evaluate_seconds=evaluate_seconds if scenario_plan.is_base else derive_seconds,
            max_touch_voltage=touch,
            max_step_voltage=step,
            tolerable_touch_voltage=tolerable_touch,
            tolerable_step_voltage=tolerable_step,
            metadata=copy.deepcopy(base_metadata),  # results stay independent
        ))
    return group_results
