"""Scenario campaign engine: batch grounding studies with cross-scenario reuse.

The paper's end goal is not one matrix solve but grounding *studies* — many
geometry/soil/fault variants of the same installation analysed fast on the
same hardware.  This package turns such a study into a first-class object:

* :mod:`repro.campaign.spec` — declarative :class:`ScenarioSpec` /
  :class:`Campaign` objects (geometry variant × soil model × soil scale ×
  injection GPR × tolerance);
* :mod:`repro.campaign.planner` — groups scenarios by shared structure so the
  expensive artefacts are built once per group: the mesh per geometry
  variant, the cluster tree/block partition per geometry
  (:class:`~repro.cluster.block_assembly.ClusterPlanCache`), the in-plane pair
  geometry per mesh (the process-wide
  :class:`~repro.bem.geometry_cache.GeometryCache`), and — when only the
  injection current or a common soil scale factor changes — the assembled
  operator *and its solve* (solutions are exactly linear in the GPR and in
  the soil resistivity scale);
* :mod:`repro.campaign.runner` — executes the plan, optionally on a
  persistent :class:`~repro.parallel.pool.WorkerPool` so repeated sharded
  assemblies stop paying per-call fork+warmup, and aggregates a
  :class:`CampaignResult` (per-scenario GPR / touch / step safety verdicts,
  timings, reuse and cache-hit statistics).  A failing structure group is
  recorded as a :class:`CampaignFailure` instead of aborting the study, and
  ``run_campaign(checkpoint=path)`` persists completed groups so a killed
  campaign resumes recomputing only the incomplete ones
  (:mod:`repro.campaign.checkpoint`);
* :mod:`repro.campaign.study` — a ready-made demo campaign shared by the
  CLI (``python -m repro campaign``), ``examples/campaign_study.py`` and
  ``benchmarks/bench_campaign.py``.

Quick start::

    from repro.campaign import Campaign, GeometryVariant, ScenarioSpec, run_campaign
    from repro.cluster import HierarchicalControl
    from repro.soil import TwoLayerSoil

    geometry = GeometryVariant(name="60x40", width=60, height=40, nx=6, ny=4)
    soil = TwoLayerSoil(0.005, 0.016, 1.0)
    campaign = Campaign(
        name="demo",
        scenarios=(
            ScenarioSpec("base", geometry, soil, gpr=10_000.0),
            ScenarioSpec("hot", geometry, soil, gpr=15_000.0),        # injection reuse
            ScenarioSpec("wet", geometry, soil, soil_scale=1.25),     # operator-scale reuse
        ),
        hierarchical=HierarchicalControl(),
    )
    result = run_campaign(campaign, workers=2)
    for row in result.table():
        print(row)
"""

from repro.campaign.checkpoint import CampaignCheckpoint, structure_fingerprint
from repro.campaign.planner import CampaignPlan, ScenarioPlan, StructureGroup, plan_campaign
from repro.campaign.result import CampaignFailure, CampaignResult, ScenarioResult
from repro.campaign.runner import run_campaign
from repro.campaign.spec import Campaign, GeometryVariant, ScenarioSpec, scaled_soil
from repro.campaign.study import demo_campaign, standalone_scenario_run

__all__ = [
    "Campaign",
    "CampaignCheckpoint",
    "CampaignFailure",
    "CampaignPlan",
    "CampaignResult",
    "GeometryVariant",
    "ScenarioPlan",
    "ScenarioResult",
    "ScenarioSpec",
    "StructureGroup",
    "demo_campaign",
    "plan_campaign",
    "run_campaign",
    "scaled_soil",
    "standalone_scenario_run",
    "structure_fingerprint",
]
