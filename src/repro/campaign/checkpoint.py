"""Campaign checkpoint/resume: persist completed structure-group results.

A campaign killed mid-run (machine reclaimed, SIGKILL, power loss) should not
recompute the structure groups it already finished.  The checkpoint keys each
group's results on a **content fingerprint** — the same
:func:`~repro.bem.geometry_cache.array_fingerprint` machinery the geometry
and cluster-plan caches use — covering:

* the discretised mesh (element end points and radii, byte-exact),
* the effective soil (conductivities and thicknesses),
* every numeric knob that feeds the group's assemble/solve/safety pipeline,
* the group's scenario derivation table (indices, kinds, scaling ratios).

Matching on content rather than on names means a resumed run restores a
group **only** when it would recompute bit-identical results; any change to
the campaign invalidates exactly the groups it affects.

Writes are atomic (temp file + ``os.replace``), so a kill *during* a
checkpoint write leaves the previous consistent state on disk — the resumed
run recomputes at most the group whose write was interrupted.
"""

from __future__ import annotations

import os
import pickle
from hashlib import blake2b
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.bem.geometry_cache import array_fingerprint
from repro.exceptions import CheckpointError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.campaign.result import ScenarioResult
    from repro.campaign.spec import Campaign

__all__ = ["CampaignCheckpoint", "structure_fingerprint"]

#: On-disk format version; bump on incompatible payload changes.
_FORMAT_VERSION = 1


def structure_fingerprint(
    mesh: Any,
    soil_eff: Any,
    structure: Any,
    campaign: "Campaign",
) -> str:
    """Content fingerprint of one structure group's full computation.

    A pure function of everything that determines the group's results: the
    mesh bytes, the effective soil, the campaign's numeric knobs and the
    scenario derivation table.  Two runs agreeing on this key would produce
    bit-identical group results, so restoring from a checkpoint preserves the
    determinism contract.
    """
    p0, p1 = mesh.element_endpoints()
    mesh_digest = array_fingerprint(p0, p1, mesh.element_radii())
    base_spec = structure.base.spec
    parts = [
        f"format={_FORMAT_VERSION}",
        f"mesh={mesh_digest}",
        f"conductivities={tuple(soil_eff.conductivities)!r}",
        f"thicknesses={tuple(soil_eff.thicknesses)!r}",
        f"base_gpr={float(base_spec.gpr)!r}",
        f"base_scale={float(base_spec.soil_scale)!r}",
        f"tolerance={float(base_spec.tolerance)!r}",
        f"element_type={campaign.element_type!r}",
        f"n_gauss={campaign.n_gauss!r}",
        f"series={campaign.series_control!r}",
        f"adaptive={campaign.adaptive!r}",
        f"hierarchical={campaign.hierarchical!r}",
        f"solver={campaign.solver!r}",
        f"solver_tolerance={float(campaign.solver_tolerance)!r}",
        f"assess_safety={campaign.assess_safety!r}",
        f"safety={campaign.safety_margin!r},{campaign.safety_raster!r},"
        f"{campaign.fault_duration_s!r},{campaign.body_weight_kg!r},"
        f"{campaign.surface_resistivity!r},{campaign.surface_thickness!r}",
    ]
    for plan in structure.plans:
        parts.append(
            f"plan={plan.index}:{plan.spec.name}:{plan.kind}:"
            f"{plan.gpr_ratio!r}:{plan.scale_ratio!r}"
        )
    digest = blake2b(digest_size=16)
    for part in parts:
        digest.update(part.encode())
        digest.update(b"\x00")
    return digest.hexdigest()


class CampaignCheckpoint:
    """Fingerprint-keyed store of completed structure-group results.

    One pickle file holds ``{fingerprint: [ScenarioResult, ...]}``.  The file
    is read once at construction (a missing file starts empty — the normal
    first run) and rewritten atomically after every completed group, so the
    on-disk state is always a consistent prefix of the campaign.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._groups: dict[str, list["ScenarioResult"]] = {}
        self.restored_keys: set[str] = set()
        if self.path.exists():
            try:
                with open(self.path, "rb") as stream:
                    payload = pickle.load(stream)
            except (OSError, pickle.UnpicklingError, EOFError, AttributeError) as error:
                raise CheckpointError(
                    f"cannot read campaign checkpoint {self.path}: {error}"
                ) from error
            if (
                not isinstance(payload, dict)
                or payload.get("format") != _FORMAT_VERSION
            ):
                raise CheckpointError(
                    f"campaign checkpoint {self.path} has an unsupported format"
                )
            self._groups = dict(payload["groups"])

    @property
    def n_groups(self) -> int:
        """Number of completed structure groups currently stored."""
        return len(self._groups)

    def has(self, key: str) -> bool:
        return key in self._groups

    def restore(self, key: str) -> list["ScenarioResult"]:
        """The stored results of one group (marks the key as restored)."""
        self.restored_keys.add(key)
        return self._groups[key]

    def store(self, key: str, results: list["ScenarioResult"]) -> None:
        """Record one completed group and persist atomically."""
        self._groups[key] = list(results)
        self._flush()

    def _flush(self) -> None:
        payload = {"format": _FORMAT_VERSION, "groups": self._groups}
        # The temp name is unique per process: concurrent stores against one
        # checkpoint path (two campaigns, or a resumed run racing a stale
        # sibling) each stage their own file, and the atomic os.replace makes
        # the last full write win — never a torn mix of the two.
        tmp_path = self.path.with_name(f"{self.path.name}.{os.getpid()}.tmp")
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp_path, "wb") as stream:
                pickle.dump(payload, stream, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_path, self.path)
        except OSError as error:
            raise CheckpointError(
                f"cannot write campaign checkpoint {self.path}: {error}"
            ) from error
