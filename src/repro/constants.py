"""Physical constants and library-wide default parameters.

The defaults gathered here are the ones used throughout the paper's examples
(Sections 5 and 6):

* the Ground Potential Rise applied in both case studies is 10 kV,
* grounding conductors are buried at 0.8 m,
* the image series of the layered-soil kernels is truncated with a relative
  tolerance (the paper: "numerically added up until a tolerance is fulfilled or
  an upper limit of summands is achieved").
"""

from __future__ import annotations

#: Ground Potential Rise used in the paper's two case studies [V].
DEFAULT_GPR: float = 10_000.0

#: Burial depth of horizontal grid conductors in both case studies [m].
DEFAULT_BURIAL_DEPTH: float = 0.80

#: Default relative tolerance for truncating the layered-soil image series.
DEFAULT_SERIES_TOLERANCE: float = 1.0e-6

#: Hard cap on the number of image *groups* (series index ``n``) per kernel.
DEFAULT_MAX_IMAGE_GROUPS: int = 256

#: Default number of Gauss-Legendre points for the outer (Galerkin) integral.
DEFAULT_GAUSS_POINTS: int = 4

#: Default element size used when discretising conductors [m].  The paper uses
#: one element per physical grid segment; finer meshes are supported.
DEFAULT_MAX_ELEMENT_LENGTH: float = float("inf")

#: Conversion helpers.
MM_TO_M: float = 1.0e-3
KA_TO_A: float = 1.0e3
A_TO_KA: float = 1.0e-3

#: Numerical tolerance used in geometric predicates [m].
GEOMETRIC_TOLERANCE: float = 1.0e-9

#: Default body weight assumed by the IEEE Std 80 tolerable-voltage formulas [kg].
DEFAULT_BODY_WEIGHT_KG: float = 70.0

#: Default fault clearing time for the IEEE Std 80 tolerable-voltage formulas [s].
DEFAULT_FAULT_DURATION_S: float = 0.5
