"""Example 2 of the paper: the Balaidos substation grounding system.

Section 5.2 analyses a mesh of 107 conductors plus 67 vertical rods
(GPR = 10 kV) under three soil models, reported in Table 5.1:

=======  =============================================================  ========  ========
model    soil                                                           R_eq [Ω]  I [kA]
=======  =============================================================  ========  ========
``A``    uniform, γ = 0.020 (Ω·m)⁻¹                                     0.3366    29.71
``B``    two layers, γ₁ = 0.0025, γ₂ = 0.020 (Ω·m)⁻¹, h = 0.70 m        0.3522    28.39
``C``    two layers, γ₁ = 0.0025, γ₂ = 0.020 (Ω·m)⁻¹, h = 1.00 m        0.4860    20.58
=======  =============================================================  ========  ========

In model B the whole grid lies in the lower layer; in model C the horizontal
mesh lies in the upper layer while part of every rod reaches the lower one,
which activates the slower-converging cross-layer kernels (the reason the
paper's Table 6.3 shows model C costing five times more than model B).
"""

from __future__ import annotations

from typing import Any

from repro.bem.formulation import GroundingAnalysis
from repro.bem.results import AnalysisResults
from repro.exceptions import ExperimentError
from repro.geometry.grid import GroundingGrid
from repro.geometry.substations import balaidos_grid
from repro.kernels.series import SeriesControl
from repro.parallel.options import ParallelOptions
from repro.soil.base import SoilModel
from repro.soil.two_layer import TwoLayerSoil
from repro.soil.uniform import UniformSoil

__all__ = [
    "BALAIDOS_GPR",
    "BALAIDOS_PAPER_RESULTS",
    "BALAIDOS_MODELS",
    "balaidos_soil",
    "balaidos_case",
    "run_balaidos",
    "run_balaidos_all_models",
]

#: Ground Potential Rise of the study [V].
BALAIDOS_GPR = 10_000.0

#: The three soil models of the study.
BALAIDOS_MODELS = ("A", "B", "C")

#: Table 5.1 of the paper.
BALAIDOS_PAPER_RESULTS: dict[str, dict[str, float]] = {
    "A": {"equivalent_resistance_ohm": 0.3366, "total_current_ka": 29.71},
    "B": {"equivalent_resistance_ohm": 0.3522, "total_current_ka": 28.39},
    "C": {"equivalent_resistance_ohm": 0.4860, "total_current_ka": 20.58},
}


def balaidos_soil(model: str = "A") -> SoilModel:
    """Soil model ``A``, ``B`` or ``C`` of the Balaidos study."""
    model = str(model).upper()
    if model == "A":
        return UniformSoil(0.020)
    if model == "B":
        return TwoLayerSoil(0.0025, 0.020, 0.70)
    if model == "C":
        return TwoLayerSoil(0.0025, 0.020, 1.00)
    raise ExperimentError(f"unknown Balaidos soil model {model!r}; expected 'A', 'B' or 'C'")


def balaidos_case(model: str = "A") -> tuple[GroundingGrid, SoilModel, float]:
    """Grid, soil model and GPR of a Balaidos case."""
    return balaidos_grid(), balaidos_soil(model), BALAIDOS_GPR


def run_balaidos(
    model: str = "A",
    parallel: ParallelOptions | None = None,
    series_control: SeriesControl | None = None,
    solver: str = "pcg",
    collect_column_times: bool = False,
    **analysis_kwargs: Any,
) -> AnalysisResults:
    """Run the Balaidos analysis for one soil model."""
    grid, soil, gpr = balaidos_case(model)
    analysis = GroundingAnalysis(
        grid=grid,
        soil=soil,
        gpr=gpr,
        solver=solver,
        parallel=parallel,
        collect_column_times=collect_column_times,
        **({"series_control": series_control} if series_control is not None else {}),
        **analysis_kwargs,
    )
    results = analysis.run()
    results.metadata["case"] = f"balaidos/{model}"
    results.metadata["paper"] = BALAIDOS_PAPER_RESULTS.get(model, {})
    return results


def run_balaidos_all_models(
    parallel: ParallelOptions | None = None,
    **kwargs: Any,
) -> dict[str, AnalysisResults]:
    """Run all three soil models (the rows of the paper's Table 5.1)."""
    return {model: run_balaidos(model, parallel=parallel, **kwargs) for model in BALAIDOS_MODELS}
