"""Parallel-scaling experiment drivers (the paper's Section 6).

The three artefacts of the paper's parallel study are driven from here:

* :func:`measure_column_costs` — runs the sequential matrix generation of a
  case study and returns the per-column task costs (the workload profile that
  the OpenMP loop distributes), with optional repeat-and-reduce smoothing for
  jitter-prone coarse cases;
* :func:`deterministic_column_costs` — the *analytic* workload profile of a
  case (see :mod:`repro.parallel.costs`): host-independent and exactly
  reproducible, the recommended driver for simulator-based artefacts on
  slow or 1-core hosts;
* :func:`figure_6_1_curves` — speed-up versus processor count for the outer-
  and the inner-loop parallelisation (Fig. 6.1), obtained by replaying a cost
  profile in the machine simulator (and optionally validated against real
  process-pool runs on the locally available cores);
* :func:`table_6_2_speedups` — the schedule × chunk × processors speed-up table
  (Table 6.2);
* :func:`table_6_3_rows` — CPU time and speed-up of the Balaidos soil models
  A/B/C for several processor counts (Table 6.3).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.bem.assembly import AssemblyOptions, assemble_system
from repro.exceptions import ExperimentError
from repro.experiments.balaidos import balaidos_case
from repro.experiments.barbera import barbera_case
from repro.geometry.discretize import discretize_grid
from repro.kernels.base import kernel_for_soil
from repro.parallel.costs import analytic_column_costs, blend_costs, scale_costs
from repro.parallel.machine import MachineModel
from repro.parallel.options import Backend, LoopLevel, ParallelOptions
from repro.parallel.parallel_assembly import assemble_system_parallel
from repro.parallel.schedule import Schedule
from repro.parallel.simulator import ScheduleSimulator

__all__ = [
    "PAPER_TABLE_6_2",
    "PAPER_TABLE_6_3",
    "measure_column_costs",
    "deterministic_column_costs",
    "figure_6_1_curves",
    "resolve_case",
    "table_6_2_speedups",
    "table_6_3_rows",
    "measure_real_speedups",
]

#: Schedules evaluated in the paper's Table 6.2 (label → Schedule spec).
TABLE_6_2_SCHEDULES: tuple[str, ...] = (
    "Static",
    "Static,64",
    "Static,16",
    "Static,4",
    "Static,1",
    "Dynamic,64",
    "Dynamic,16",
    "Dynamic,4",
    "Dynamic,1",
    "Guided,64",
    "Guided,16",
    "Guided,4",
    "Guided,1",
)

#: Speed-up factors reported in the paper's Table 6.2 (Barberá, two-layer).
PAPER_TABLE_6_2: dict[str, dict[int, float]] = {
    "Static": {1: 1.01, 2: 1.32, 4: 2.32, 8: 4.38},
    "Static,64": {1: 1.02, 2: 1.76, 4: 1.86, 8: 3.55},
    "Static,16": {1: 1.02, 2: 1.94, 4: 3.59, 8: 6.23},
    "Static,4": {1: 1.01, 2: 2.01, 4: 3.96, 8: 7.36},
    "Static,1": {1: 1.02, 2: 2.03, 4: 4.03, 8: 7.99},
    "Dynamic,64": {1: 1.02, 2: 2.02, 4: 3.56, 8: 3.55},
    "Dynamic,16": {1: 1.02, 2: 2.02, 4: 4.08, 8: 7.87},
    "Dynamic,4": {1: 1.01, 2: 2.04, 4: 3.99, 8: 7.90},
    "Dynamic,1": {1: 1.02, 2: 2.03, 4: 4.09, 8: 8.05},
    "Guided,64": {1: 1.02, 2: 1.97, 4: 3.56, 8: 3.56},
    "Guided,16": {1: 1.02, 2: 1.99, 4: 3.96, 8: 8.03},
    "Guided,4": {1: 1.02, 2: 2.01, 4: 4.11, 8: 7.93},
    "Guided,1": {1: 1.02, 2: 2.07, 4: 3.95, 8: 8.38},
}

#: CPU times (s) and speed-ups of the paper's Table 6.3 (Balaidos).
PAPER_TABLE_6_3: dict[str, dict[int, tuple[float, float]]] = {
    "A": {1: (2.44, 1.0)},
    "B": {1: (81.26, 1.0), 2: (40.85, 1.98), 4: (20.41, 3.98), 8: (10.09, 8.05)},
    "C": {1: (443.28, 1.0), 2: (218.10, 2.03), 4: (111.38, 3.98), 8: (53.53, 8.28)},
}

#: Mean per-column cost (seconds) assigned to the analytic workload profile
#: when no wall-clock total is supplied.  Large against the machine model's
#: microsecond-scale scheduling overheads, so the simulated speed-ups reflect
#: the schedule quality rather than overhead noise — exactly the regime of the
#: paper's minutes-long matrix generations.
NOMINAL_COLUMN_SECONDS: float = 1.0


def resolve_case(name: str, coarse: bool = False):
    """Resolve a case name like ``"barbera/two_layer"`` or ``"balaidos/C"``.

    Returns ``(grid, soil, gpr)``.  Public: the CLI's scaling commands and the
    example scripts resolve their ``--case`` argument through this.
    """
    name = str(name).lower()
    if name.startswith("barbera"):
        _, _, case = name.partition("/")
        return barbera_case(case or "two_layer", coarse=coarse)
    if name.startswith("balaidos"):
        _, _, model = name.partition("/")
        return balaidos_case(model or "A")
    raise ExperimentError(f"unknown case {name!r}; expected 'barbera/...' or 'balaidos/...'")


#: Backward-compatible private alias (internal call sites predate the rename).
_case = resolve_case


def measure_column_costs(
    case: str = "barbera/two_layer",
    coarse: bool = False,
    options: AssemblyOptions | None = None,
    repeats: int | None = None,
    reduction: str = "min",
) -> tuple[np.ndarray, float]:
    """Sequential matrix generation of a case; returns (column costs, total seconds).

    A single column is computed (and discarded) before the timed assembly so
    that one-off warm-up costs (kernel series construction, NumPy buffers,
    memory first-touch) do not inflate the first columns of the measured
    profile — those columns are also the largest ones, and chunk-based
    schedules (static blocks, guided) are sensitive to a biased head.

    Parameters
    ----------
    repeats:
        Number of timed assembly repetitions; the per-column profile is the
        element-wise ``reduction`` over them.  Defaults to 3 for coarse cases —
        whose sub-millisecond columns are easily polluted by scheduler
        jitter — and 1 otherwise.
    reduction:
        ``"min"`` (default) or ``"median"``.  The minimum is the standard
        low-noise estimator for repeated timings; with it the returned total is
        the fastest repetition, so ``costs.sum() <= total`` stays guaranteed.
    """
    from repro.bem.elements import DofManager
    from repro.bem.influence import ColumnAssembler

    if repeats is None:
        repeats = 3 if coarse else 1
    if repeats < 1:
        raise ExperimentError(f"repeats must be at least 1, got {repeats}")
    if reduction not in ("min", "median"):
        raise ExperimentError(f"reduction must be 'min' or 'median', got {reduction!r}")

    grid, soil, gpr = _case(case, coarse=coarse)
    mesh = discretize_grid(grid, soil=soil)
    options = options or AssemblyOptions()
    kernel = kernel_for_soil(soil, options.series_control)

    warmup = ColumnAssembler(
        mesh, kernel, DofManager(mesh, options.element_type), options.n_gauss
    )
    warmup.column_blocks(0, target_indices=np.arange(min(8, mesh.n_elements)))

    profiles = []
    totals = []
    for _ in range(repeats):
        system = assemble_system(
            mesh, soil, gpr=gpr, options=options, kernel=kernel, collect_column_times=True
        )
        profiles.append(np.asarray(system.metadata["column_seconds"], dtype=float))
        totals.append(float(system.metadata["matrix_generation_seconds"]))

    stacked = np.stack(profiles, axis=0)
    if reduction == "min":
        return stacked.min(axis=0), float(min(totals))
    return np.median(stacked, axis=0), float(np.median(totals))


def deterministic_column_costs(
    case: str = "barbera/two_layer",
    coarse: bool = False,
    options: AssemblyOptions | None = None,
    total_seconds: float | None = None,
) -> np.ndarray:
    """Analytic, host-independent per-column cost profile of a case.

    The profile is the exact work count of every column of the triangular
    assembly loop (targets × image terms × Gauss points, see
    :func:`repro.parallel.costs.analytic_column_costs`), scaled to
    ``total_seconds`` — by default :data:`NOMINAL_COLUMN_SECONDS` per column.
    Feeding it to :func:`figure_6_1_curves` or :func:`table_6_2_speedups`
    makes those artefacts exactly reproducible on any machine, following the
    event-driven (non-measured) concurrency treatment: correctness never pins
    on the host's core count or timer resolution.
    """
    grid, soil, _ = _case(case, coarse=coarse)
    mesh = discretize_grid(grid, soil=soil)
    options = options or AssemblyOptions()
    kernel = kernel_for_soil(soil, options.series_control)
    profile = analytic_column_costs(mesh.element_layers(), kernel, options.n_gauss)
    if total_seconds is None:
        total_seconds = NOMINAL_COLUMN_SECONDS * mesh.n_elements
    return scale_costs(profile, float(total_seconds))


def figure_6_1_curves(
    column_seconds: Sequence[float],
    processor_counts: Sequence[int] = tuple(range(1, 65)),
    schedule: str | Schedule = "Dynamic,1",
    machine: MachineModel | None = None,
) -> dict[str, list[dict[str, Any]]]:
    """Simulated outer-loop and inner-loop speed-up curves (Fig. 6.1).

    ``column_seconds`` may be a measured profile
    (:func:`measure_column_costs`) or the deterministic analytic profile
    (:func:`deterministic_column_costs`).
    """
    schedule = schedule if isinstance(schedule, Schedule) else Schedule.parse(str(schedule))
    machine = machine or MachineModel.origin2000(max(int(p) for p in processor_counts))
    simulator = ScheduleSimulator(np.asarray(column_seconds, dtype=float), machine)
    curves: dict[str, list[dict[str, Any]]] = {"outer": [], "inner": []}
    for count in processor_counts:
        curves["outer"].append(simulator.run(schedule, int(count)).summary())
        curves["inner"].append(simulator.run_inner_loop(schedule, int(count)).summary())
    return curves


def table_6_2_speedups(
    column_seconds: Sequence[float],
    processor_counts: Sequence[int] = (1, 2, 4, 8),
    schedules: Sequence[str] = TABLE_6_2_SCHEDULES,
    machine: MachineModel | None = None,
) -> dict[str, dict[int, float]]:
    """Simulated speed-up table for every schedule of the paper's Table 6.2.

    As with :func:`figure_6_1_curves`, the cost profile may be measured or
    analytic (deterministic).
    """
    machine = machine or MachineModel.origin2000(max(int(p) for p in processor_counts))
    simulator = ScheduleSimulator(np.asarray(column_seconds, dtype=float), machine)
    table: dict[str, dict[int, float]] = {}
    for label in schedules:
        schedule = Schedule.parse(label)
        table[label] = {}
        for count in processor_counts:
            table[label][int(count)] = simulator.run(schedule, int(count)).speedup
    return table


def measure_real_speedups(
    case: str = "barbera/two_layer",
    processor_counts: Sequence[int] = (1, 2, 4, 8),
    schedule: str | Schedule = "Dynamic,1",
    backend: Backend | str = Backend.PROCESS,
    loop: LoopLevel | str = LoopLevel.OUTER,
    coarse: bool = False,
    options: AssemblyOptions | None = None,
    max_workers: int | None = None,
) -> list[dict[str, Any]]:
    """Real process/thread-pool speed-ups of the matrix generation on this host.

    Returns one row per processor count with the measured wall time and the
    speed-up referenced to the sequential run (the convention of the paper's
    tables).  Worker counts above the host's CPU count are *not* skipped:
    process and thread pools oversubscribe without failing, so every requested
    count produces a row, flagged ``"oversubscribed": True`` when it exceeds
    the available cores (its speed-up then reflects time-sliced execution, not
    genuine parallel hardware).  Use ``max_workers`` to bound pool sizes on
    hosts where very large requests would be pathological.
    """
    import os

    grid, soil, gpr = _case(case, coarse=coarse)
    mesh = discretize_grid(grid, soil=soil)
    options = options or AssemblyOptions()
    kernel = kernel_for_soil(soil, options.series_control)
    schedule = schedule if isinstance(schedule, Schedule) else Schedule.parse(str(schedule))

    sequential = assemble_system(
        mesh, soil, gpr=gpr, options=options, kernel=kernel, collect_column_times=True
    )
    reference = float(sequential.metadata["matrix_generation_seconds"])

    available = os.cpu_count() or 1
    rows: list[dict[str, Any]] = [
        {
            "case": case,
            "n_processors": 1,
            "schedule": schedule.label(),
            "cpu_seconds": reference,
            "speedup": 1.0,
            "backend": "sequential",
            "oversubscribed": False,
        }
    ]
    for count in processor_counts:
        count = int(count)
        if count == 1:
            continue
        if max_workers is not None and count > max_workers:
            continue
        parallel = ParallelOptions(
            n_workers=count, schedule=schedule, backend=backend, loop=loop
        )
        system = assemble_system_parallel(
            mesh, soil, gpr=gpr, options=options, kernel=kernel, parallel=parallel
        )
        wall = float(system.metadata["parallel_wall_seconds"])
        rows.append(
            {
                "case": case,
                "n_processors": count,
                "schedule": schedule.label(),
                "cpu_seconds": wall,
                "speedup": reference / wall if wall > 0 else float(count),
                "backend": parallel.backend.value,
                "oversubscribed": count > available,
            }
        )
    return rows


def table_6_3_rows(
    processor_counts: Sequence[int] = (1, 2, 4, 8),
    models: Sequence[str] = ("A", "B", "C"),
    schedule: str | Schedule = "Dynamic,1",
    machine: MachineModel | None = None,
    simulate: bool = True,
    cost_source: str = "measured",
) -> list[dict[str, Any]]:
    """CPU time and speed-up of the Balaidos matrix generation (Table 6.3).

    The sequential time of every soil model is measured on this host; the
    speed-ups for the requested processor counts are obtained from the machine
    simulator (``simulate=True``, default) or from real process-pool runs
    (``simulate=False``).

    Parameters
    ----------
    cost_source:
        Profile replayed by the simulator: ``"measured"`` (wall-clock column
        times, the default), ``"analytic"`` (the deterministic cost model
        scaled to the measured total — reproducible across hosts while keeping
        real CPU seconds), or ``"blended"`` (50/50 mix damping the timing
        noise).  Ignored when ``simulate=False``.
    """
    if cost_source not in ("measured", "analytic", "blended"):
        raise ExperimentError(
            f"cost_source must be 'measured', 'analytic' or 'blended', got {cost_source!r}"
        )
    schedule = schedule if isinstance(schedule, Schedule) else Schedule.parse(str(schedule))
    rows: list[dict[str, Any]] = []
    for model in models:
        column_seconds, total = measure_column_costs(f"balaidos/{model}")
        if cost_source != "measured":
            analytic = deterministic_column_costs(
                f"balaidos/{model}", total_seconds=float(column_seconds.sum())
            )
            if cost_source == "analytic":
                column_seconds = analytic
            else:
                column_seconds = blend_costs(column_seconds, analytic, analytic_weight=0.5)
        if simulate:
            machine_model = machine or MachineModel.origin2000(
                max(int(p) for p in processor_counts)
            )
            simulator = ScheduleSimulator(column_seconds, machine_model)
            for count in processor_counts:
                result = simulator.run(schedule, int(count))
                rows.append(
                    {
                        "soil_model": model,
                        "n_processors": int(count),
                        # The simulated times cover the column computations (the
                        # parallelised work); the measured wall time of the whole
                        # matrix-generation phase is reported alongside for the
                        # sequential row.
                        "cpu_seconds": result.makespan,
                        "speedup": result.speedup,
                        "sequential_wall_seconds": total,
                        "source": f"simulated/{cost_source}",
                    }
                )
        else:
            for row in measure_real_speedups(
                f"balaidos/{model}", processor_counts, schedule=schedule
            ):
                row = dict(row)
                row["soil_model"] = model
                row["source"] = "measured"
                rows.append(row)
    return rows
