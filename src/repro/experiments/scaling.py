"""Parallel-scaling experiment drivers (the paper's Section 6).

The three artefacts of the paper's parallel study are driven from here:

* :func:`measure_column_costs` — runs the sequential matrix generation of a
  case study and returns the per-column task costs (the workload profile that
  the OpenMP loop distributes);
* :func:`figure_6_1_curves` — speed-up versus processor count for the outer-
  and the inner-loop parallelisation (Fig. 6.1), obtained by replaying the
  measured column costs in the machine simulator (and optionally validated
  against real process-pool runs on the locally available cores);
* :func:`table_6_2_speedups` — the schedule × chunk × processors speed-up table
  (Table 6.2);
* :func:`table_6_3_rows` — CPU time and speed-up of the Balaidos soil models
  A/B/C for several processor counts (Table 6.3).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.bem.assembly import AssemblyOptions, assemble_system
from repro.exceptions import ExperimentError
from repro.experiments.balaidos import balaidos_case
from repro.experiments.barbera import barbera_case
from repro.geometry.discretize import discretize_grid
from repro.kernels.base import kernel_for_soil
from repro.parallel.machine import MachineModel
from repro.parallel.options import Backend, LoopLevel, ParallelOptions
from repro.parallel.parallel_assembly import assemble_system_parallel
from repro.parallel.schedule import Schedule
from repro.parallel.simulator import ScheduleSimulator

__all__ = [
    "PAPER_TABLE_6_2",
    "PAPER_TABLE_6_3",
    "measure_column_costs",
    "figure_6_1_curves",
    "table_6_2_speedups",
    "table_6_3_rows",
    "measure_real_speedups",
]

#: Schedules evaluated in the paper's Table 6.2 (label → Schedule spec).
TABLE_6_2_SCHEDULES: tuple[str, ...] = (
    "Static",
    "Static,64",
    "Static,16",
    "Static,4",
    "Static,1",
    "Dynamic,64",
    "Dynamic,16",
    "Dynamic,4",
    "Dynamic,1",
    "Guided,64",
    "Guided,16",
    "Guided,4",
    "Guided,1",
)

#: Speed-up factors reported in the paper's Table 6.2 (Barberá, two-layer).
PAPER_TABLE_6_2: dict[str, dict[int, float]] = {
    "Static": {1: 1.01, 2: 1.32, 4: 2.32, 8: 4.38},
    "Static,64": {1: 1.02, 2: 1.76, 4: 1.86, 8: 3.55},
    "Static,16": {1: 1.02, 2: 1.94, 4: 3.59, 8: 6.23},
    "Static,4": {1: 1.01, 2: 2.01, 4: 3.96, 8: 7.36},
    "Static,1": {1: 1.02, 2: 2.03, 4: 4.03, 8: 7.99},
    "Dynamic,64": {1: 1.02, 2: 2.02, 4: 3.56, 8: 3.55},
    "Dynamic,16": {1: 1.02, 2: 2.02, 4: 4.08, 8: 7.87},
    "Dynamic,4": {1: 1.01, 2: 2.04, 4: 3.99, 8: 7.90},
    "Dynamic,1": {1: 1.02, 2: 2.03, 4: 4.09, 8: 8.05},
    "Guided,64": {1: 1.02, 2: 1.97, 4: 3.56, 8: 3.56},
    "Guided,16": {1: 1.02, 2: 1.99, 4: 3.96, 8: 8.03},
    "Guided,4": {1: 1.02, 2: 2.01, 4: 4.11, 8: 7.93},
    "Guided,1": {1: 1.02, 2: 2.07, 4: 3.95, 8: 8.38},
}

#: CPU times (s) and speed-ups of the paper's Table 6.3 (Balaidos).
PAPER_TABLE_6_3: dict[str, dict[int, tuple[float, float]]] = {
    "A": {1: (2.44, 1.0)},
    "B": {1: (81.26, 1.0), 2: (40.85, 1.98), 4: (20.41, 3.98), 8: (10.09, 8.05)},
    "C": {1: (443.28, 1.0), 2: (218.10, 2.03), 4: (111.38, 3.98), 8: (53.53, 8.28)},
}


def _case(name: str, coarse: bool = False):
    """Resolve a case name like ``"barbera/two_layer"`` or ``"balaidos/C"``."""
    name = str(name).lower()
    if name.startswith("barbera"):
        _, _, case = name.partition("/")
        return barbera_case(case or "two_layer", coarse=coarse)
    if name.startswith("balaidos"):
        _, _, model = name.partition("/")
        return balaidos_case(model or "A")
    raise ExperimentError(f"unknown case {name!r}; expected 'barbera/...' or 'balaidos/...'")


def measure_column_costs(
    case: str = "barbera/two_layer",
    coarse: bool = False,
    options: AssemblyOptions | None = None,
) -> tuple[np.ndarray, float]:
    """Sequential matrix generation of a case; returns (column costs, total seconds).

    A single column is computed (and discarded) before the timed assembly so
    that one-off warm-up costs (kernel series construction, NumPy buffers,
    memory first-touch) do not inflate the first columns of the measured
    profile — those columns are also the largest ones, and chunk-based
    schedules (static blocks, guided) are sensitive to a biased head.
    """
    from repro.bem.elements import DofManager
    from repro.bem.influence import ColumnAssembler

    grid, soil, gpr = _case(case, coarse=coarse)
    mesh = discretize_grid(grid, soil=soil)
    options = options or AssemblyOptions()
    kernel = kernel_for_soil(soil, options.series_control)

    warmup = ColumnAssembler(
        mesh, kernel, DofManager(mesh, options.element_type), options.n_gauss
    )
    warmup.column_blocks(0, target_indices=np.arange(min(8, mesh.n_elements)))

    system = assemble_system(
        mesh, soil, gpr=gpr, options=options, kernel=kernel, collect_column_times=True
    )
    return (
        np.asarray(system.metadata["column_seconds"], dtype=float),
        float(system.metadata["matrix_generation_seconds"]),
    )


def figure_6_1_curves(
    column_seconds: Sequence[float],
    processor_counts: Sequence[int] = tuple(range(1, 65)),
    schedule: str | Schedule = "Dynamic,1",
    machine: MachineModel | None = None,
) -> dict[str, list[dict[str, Any]]]:
    """Simulated outer-loop and inner-loop speed-up curves (Fig. 6.1)."""
    schedule = schedule if isinstance(schedule, Schedule) else Schedule.parse(str(schedule))
    machine = machine or MachineModel.origin2000(max(int(p) for p in processor_counts))
    simulator = ScheduleSimulator(np.asarray(column_seconds, dtype=float), machine)
    curves: dict[str, list[dict[str, Any]]] = {"outer": [], "inner": []}
    for count in processor_counts:
        curves["outer"].append(simulator.run(schedule, int(count)).summary())
        curves["inner"].append(simulator.run_inner_loop(schedule, int(count)).summary())
    return curves


def table_6_2_speedups(
    column_seconds: Sequence[float],
    processor_counts: Sequence[int] = (1, 2, 4, 8),
    schedules: Sequence[str] = TABLE_6_2_SCHEDULES,
    machine: MachineModel | None = None,
) -> dict[str, dict[int, float]]:
    """Simulated speed-up table for every schedule of the paper's Table 6.2."""
    machine = machine or MachineModel.origin2000(max(int(p) for p in processor_counts))
    simulator = ScheduleSimulator(np.asarray(column_seconds, dtype=float), machine)
    table: dict[str, dict[int, float]] = {}
    for label in schedules:
        schedule = Schedule.parse(label)
        table[label] = {}
        for count in processor_counts:
            table[label][int(count)] = simulator.run(schedule, int(count)).speedup
    return table


def measure_real_speedups(
    case: str = "barbera/two_layer",
    processor_counts: Sequence[int] = (1, 2, 4, 8),
    schedule: str | Schedule = "Dynamic,1",
    backend: Backend | str = Backend.PROCESS,
    loop: LoopLevel | str = LoopLevel.OUTER,
    coarse: bool = False,
    options: AssemblyOptions | None = None,
) -> list[dict[str, Any]]:
    """Real process/thread-pool speed-ups of the matrix generation on this host.

    Returns one row per processor count with the measured wall time and the
    speed-up referenced to the sequential run (the convention of the paper's
    tables).  Processor counts larger than the host's CPU count are skipped.
    """
    import os

    grid, soil, gpr = _case(case, coarse=coarse)
    mesh = discretize_grid(grid, soil=soil)
    options = options or AssemblyOptions()
    kernel = kernel_for_soil(soil, options.series_control)
    schedule = schedule if isinstance(schedule, Schedule) else Schedule.parse(str(schedule))

    sequential = assemble_system(
        mesh, soil, gpr=gpr, options=options, kernel=kernel, collect_column_times=True
    )
    reference = float(sequential.metadata["matrix_generation_seconds"])

    rows: list[dict[str, Any]] = [
        {
            "case": case,
            "n_processors": 1,
            "schedule": schedule.label(),
            "cpu_seconds": reference,
            "speedup": 1.0,
            "backend": "sequential",
        }
    ]
    available = os.cpu_count() or 1
    for count in processor_counts:
        count = int(count)
        if count == 1:
            continue
        if count > available:
            continue
        parallel = ParallelOptions(
            n_workers=count, schedule=schedule, backend=backend, loop=loop
        )
        system = assemble_system_parallel(
            mesh, soil, gpr=gpr, options=options, kernel=kernel, parallel=parallel
        )
        wall = float(system.metadata["parallel_wall_seconds"])
        rows.append(
            {
                "case": case,
                "n_processors": count,
                "schedule": schedule.label(),
                "cpu_seconds": wall,
                "speedup": reference / wall if wall > 0 else float(count),
                "backend": parallel.backend.value,
            }
        )
    return rows


def table_6_3_rows(
    processor_counts: Sequence[int] = (1, 2, 4, 8),
    models: Sequence[str] = ("A", "B", "C"),
    schedule: str | Schedule = "Dynamic,1",
    machine: MachineModel | None = None,
    simulate: bool = True,
) -> list[dict[str, Any]]:
    """CPU time and speed-up of the Balaidos matrix generation (Table 6.3).

    The sequential time of every soil model is measured on this host; the
    speed-ups for the requested processor counts are obtained from the machine
    simulator (``simulate=True``, default) or from real process-pool runs
    (``simulate=False``, bounded by the host's core count).
    """
    schedule = schedule if isinstance(schedule, Schedule) else Schedule.parse(str(schedule))
    rows: list[dict[str, Any]] = []
    for model in models:
        column_seconds, total = measure_column_costs(f"balaidos/{model}")
        if simulate:
            machine_model = machine or MachineModel.origin2000(
                max(int(p) for p in processor_counts)
            )
            simulator = ScheduleSimulator(column_seconds, machine_model)
            for count in processor_counts:
                result = simulator.run(schedule, int(count))
                rows.append(
                    {
                        "soil_model": model,
                        "n_processors": int(count),
                        # The simulated times cover the column computations (the
                        # parallelised work); the measured wall time of the whole
                        # matrix-generation phase is reported alongside for the
                        # sequential row.
                        "cpu_seconds": result.makespan,
                        "speedup": result.speedup,
                        "sequential_wall_seconds": total,
                        "source": "simulated",
                    }
                )
        else:
            for row in measure_real_speedups(
                f"balaidos/{model}", processor_counts, schedule=schedule
            ):
                row = dict(row)
                row["soil_model"] = model
                row["source"] = "measured"
                rows.append(row)
    return rows
