"""Example 1 of the paper: the Barberá substation grounding system.

Section 5.1 analyses a right-angled triangular grid (143 m × 89 m, 408
conductor segments, GPR = 10 kV) under two soil models:

===============  =======================================  ==========  ===========
case             soil                                     R_eq [Ω]    I_Γ [kA]
===============  =======================================  ==========  ===========
``uniform``      γ = 0.016 (Ω·m)⁻¹                        0.3128      31.97
``two_layer``    γ₁ = 0.005, γ₂ = 0.016 (Ω·m)⁻¹, h = 1 m  0.3704      26.99
===============  =======================================  ==========  ===========

The same case is the workload of the whole parallel study of Section 6.
"""

from __future__ import annotations

from typing import Any

from repro.bem.formulation import GroundingAnalysis
from repro.bem.results import AnalysisResults
from repro.exceptions import ExperimentError
from repro.geometry.grid import GroundingGrid
from repro.geometry.substations import barbera_grid
from repro.kernels.series import SeriesControl
from repro.parallel.options import ParallelOptions
from repro.soil.base import SoilModel
from repro.soil.two_layer import TwoLayerSoil
from repro.soil.uniform import UniformSoil

__all__ = [
    "BARBERA_GPR",
    "BARBERA_PAPER_RESULTS",
    "barbera_soil",
    "barbera_case",
    "run_barbera",
]

#: Ground Potential Rise of the study [V].
BARBERA_GPR = 10_000.0

#: Values reported by the paper (Section 5.1).
BARBERA_PAPER_RESULTS: dict[str, dict[str, float]] = {
    "uniform": {"equivalent_resistance_ohm": 0.3128, "total_current_ka": 31.97},
    "two_layer": {"equivalent_resistance_ohm": 0.3704, "total_current_ka": 26.99},
}

#: Soil parameters of the study (Section 5.1).
_UNIFORM_CONDUCTIVITY = 0.016
_UPPER_CONDUCTIVITY = 0.005
_LOWER_CONDUCTIVITY = 0.016
_UPPER_THICKNESS = 1.0


def barbera_soil(case: str = "two_layer") -> SoilModel:
    """Soil model of the requested Barberá case (``"uniform"`` or ``"two_layer"``)."""
    case = str(case).lower()
    if case == "uniform":
        return UniformSoil(_UNIFORM_CONDUCTIVITY)
    if case in ("two_layer", "two-layer", "2layer"):
        return TwoLayerSoil(_UPPER_CONDUCTIVITY, _LOWER_CONDUCTIVITY, _UPPER_THICKNESS)
    raise ExperimentError(f"unknown Barberá case {case!r}; expected 'uniform' or 'two_layer'")


def barbera_case(
    case: str = "two_layer", coarse: bool = False
) -> tuple[GroundingGrid, SoilModel, float]:
    """Grid, soil model and GPR of a Barberá case.

    Parameters
    ----------
    case:
        ``"uniform"`` or ``"two_layer"``.
    coarse:
        Use a coarser reconstruction of the grid (about a quarter of the
        segments).  The coarse variant is intended for unit tests and quick
        demonstrations — the reproduction benchmarks always use the full grid.
    """
    if coarse:
        grid = barbera_grid(spacing_x=89.0 / 7.0, spacing_y=143.0 / 12.0)
    else:
        grid = barbera_grid()
    return grid, barbera_soil(case), BARBERA_GPR


def run_barbera(
    case: str = "two_layer",
    parallel: ParallelOptions | None = None,
    series_control: SeriesControl | None = None,
    solver: str = "pcg",
    coarse: bool = False,
    collect_column_times: bool = False,
    **analysis_kwargs: Any,
) -> AnalysisResults:
    """Run the Barberá analysis and return the results.

    Parameters
    ----------
    case:
        ``"uniform"`` or ``"two_layer"``.
    parallel:
        Optional parallel options for the matrix generation.
    series_control:
        Image-series truncation (default 1e-6 relative tolerance).
    solver:
        Linear solver name.
    coarse:
        Use the reduced test-size grid (see :func:`barbera_case`).
    collect_column_times:
        Store the per-column assembly times in the result metadata (needed for
        the schedule simulation benchmarks).
    analysis_kwargs:
        Extra keyword arguments forwarded to
        :class:`repro.bem.GroundingAnalysis`.
    """
    grid, soil, gpr = barbera_case(case, coarse=coarse)
    analysis = GroundingAnalysis(
        grid=grid,
        soil=soil,
        gpr=gpr,
        solver=solver,
        parallel=parallel,
        collect_column_times=collect_column_times,
        **({"series_control": series_control} if series_control is not None else {}),
        **analysis_kwargs,
    )
    results = analysis.run()
    results.metadata["case"] = f"barbera/{case}"
    results.metadata["paper"] = BARBERA_PAPER_RESULTS.get(case, {})
    return results
