"""Index of the paper's tables and figures and the code that regenerates them.

Every entry maps one artefact of the paper's evaluation (a table or a figure)
to the experiment driver that reproduces it and to the benchmark module that
prints the corresponding rows/series.  ``DESIGN.md`` carries the same index in
prose; this module makes it queryable from code and keeps the test-suite able
to assert that every artefact has a registered reproduction path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ExperimentError

__all__ = ["ExperimentSpec", "EXPERIMENTS", "get_experiment", "all_experiment_ids"]


@dataclass(frozen=True)
class ExperimentSpec:
    """Description of one reproducible artefact of the paper."""

    #: Identifier, e.g. ``"table_5_1"`` or ``"fig_6_1"``.
    id: str
    #: What the paper shows.
    title: str
    #: Paper section the artefact belongs to.
    section: str
    #: Workload / parameters in one sentence.
    workload: str
    #: Library modules implementing the pieces.
    modules: tuple[str, ...]
    #: Benchmark file that regenerates the artefact.
    benchmark: str
    #: Example scripts touching the same code path (optional).
    examples: tuple[str, ...] = field(default_factory=tuple)


EXPERIMENTS: dict[str, ExperimentSpec] = {
    spec.id: spec
    for spec in [
        ExperimentSpec(
            id="fig_5_1",
            title="Barberá grounding grid plan",
            section="5.1",
            workload="Reconstruction of the 408-segment right-triangle grid (143 m × 89 m).",
            modules=("repro.geometry.substations", "repro.geometry.builder"),
            benchmark="benchmarks/bench_fig_5_1_geometry.py",
            examples=("examples/barbera_analysis.py",),
        ),
        ExperimentSpec(
            id="fig_5_2",
            title="Barberá surface potential, uniform vs two-layer soil",
            section="5.1",
            workload="Full BEM solve at GPR = 10 kV for γ=0.016 and (γ1=0.005, γ2=0.016, h=1 m); "
            "surface potential sampled over the site.",
            modules=("repro.experiments.barbera", "repro.bem", "repro.cad.contours"),
            benchmark="benchmarks/bench_fig_5_2_barbera_potential.py",
            examples=("examples/barbera_analysis.py",),
        ),
        ExperimentSpec(
            id="fig_5_3",
            title="Balaidos grounding grid plan",
            section="5.2",
            workload="Reconstruction of the 107-conductor mesh with 67 rods.",
            modules=("repro.geometry.substations",),
            benchmark="benchmarks/bench_fig_5_3_geometry.py",
            examples=("examples/balaidos_soil_models.py",),
        ),
        ExperimentSpec(
            id="table_5_1",
            title="Balaidos equivalent resistance and total current for soil models A/B/C",
            section="5.2",
            workload="Three BEM solves of the Balaidos grid (uniform and two two-layer soils).",
            modules=("repro.experiments.balaidos", "repro.bem"),
            benchmark="benchmarks/bench_table_5_1_balaidos.py",
            examples=("examples/balaidos_soil_models.py",),
        ),
        ExperimentSpec(
            id="fig_5_4",
            title="Balaidos surface potential for soil models A/B/C",
            section="5.2",
            workload="Surface potential maps of the three Balaidos analyses.",
            modules=("repro.experiments.balaidos", "repro.cad.contours"),
            benchmark="benchmarks/bench_fig_5_4_balaidos_potential.py",
            examples=("examples/balaidos_soil_models.py",),
        ),
        ExperimentSpec(
            id="table_6_1",
            title="CPU time of every pipeline phase (Barberá, two-layer)",
            section="6.1",
            workload="Timed run of the five CAD phases; matrix generation dominates.",
            modules=("repro.cad.project", "repro.timing"),
            benchmark="benchmarks/bench_table_6_1_phase_times.py",
            examples=("examples/quickstart.py",),
        ),
        ExperimentSpec(
            id="fig_6_1",
            title="Speed-up vs processors, outer vs inner loop parallelisation",
            section="6.2",
            workload="Barberá two-layer column costs replayed on 1–64 simulated processors "
            "(Dynamic,1), plus real process-pool validation on the local cores.",
            modules=("repro.parallel.simulator", "repro.parallel.parallel_assembly"),
            benchmark="benchmarks/bench_fig_6_1_speedup.py",
            examples=("examples/parallel_scaling.py",),
        ),
        ExperimentSpec(
            id="table_6_2",
            title="Speed-up for OpenMP schedules × chunk sizes × processors",
            section="6.2",
            workload="Outer-loop parallelisation of the Barberá two-layer assembly under "
            "static/dynamic/guided schedules with chunks 1/4/16/64 on 1–8 processors.",
            modules=("repro.parallel.schedule", "repro.parallel.simulator"),
            benchmark="benchmarks/bench_table_6_2_schedules.py",
            examples=("examples/parallel_scaling.py",),
        ),
        ExperimentSpec(
            id="sharded_hierarchical",
            title="Sharded hierarchical block backend: parallel assemble+solve scaling",
            section="6.2 (extension)",
            workload="Synthetic >=10^4-element grids assembled and solved through the "
            "sharded hierarchical block backend (LPT block partition executed on worker "
            "processes, deterministic pairwise-tree matvec reduction) vs the serial "
            "hierarchical engine, for several worker counts.",
            modules=(
                "repro.parallel.block_backend",
                "repro.cluster.block_assembly",
                "repro.parallel.speedup",
            ),
            benchmark="benchmarks/bench_hierarchical_scaling.py",
            examples=("examples/parallel_scaling.py",),
        ),
        ExperimentSpec(
            id="campaign_batch",
            title="Scenario campaign engine: batch throughput with cross-scenario reuse",
            section="6.2 (extension)",
            workload="A >=12-scenario grounding study (shared grid, flat+rodded variants, "
            "two soil families with scale and injection variants) executed through the "
            "campaign planner/runner on a persistent worker pool, against the same "
            "scenarios as independent cold GroundingAnalysis runs; solutions must match "
            "the standalone runs to 1e-10 and be bit-identical across pool worker counts.",
            modules=(
                "repro.campaign",
                "repro.parallel.pool",
                "repro.parallel.block_backend",
            ),
            benchmark="benchmarks/bench_campaign.py",
            examples=("examples/campaign_study.py",),
        ),
        ExperimentSpec(
            id="table_6_3",
            title="Balaidos matrix-generation CPU time and speed-up for soil models A/B/C",
            section="6.2",
            workload="Matrix generation of the three Balaidos soil models on 1–8 processors.",
            modules=("repro.experiments.scaling", "repro.parallel.parallel_assembly"),
            benchmark="benchmarks/bench_table_6_3_balaidos_parallel.py",
            examples=("examples/parallel_scaling.py",),
        ),
    ]
}


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Look up an experiment by id (raises for unknown ids)."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError as exc:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known ids: {sorted(EXPERIMENTS)}"
        ) from exc


def all_experiment_ids() -> list[str]:
    """All registered experiment identifiers."""
    return sorted(EXPERIMENTS)
