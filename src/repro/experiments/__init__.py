"""Experiment drivers: the paper's case studies and parallel studies.

Each module corresponds to a part of the paper's evaluation:

* :mod:`repro.experiments.barbera` — Example 1 (Section 5.1, Figs. 5.1–5.2);
* :mod:`repro.experiments.balaidos` — Example 2 (Section 5.2, Figs. 5.3–5.4 and
  Table 5.1);
* :mod:`repro.experiments.scaling` — the parallelisation study (Section 6,
  Table 6.1, Fig. 6.1, Tables 6.2 and 6.3);
* :mod:`repro.experiments.registry` — the experiment index mapping every table
  and figure of the paper to the code that regenerates it.
"""

from repro.experiments.barbera import (
    BARBERA_PAPER_RESULTS,
    barbera_case,
    barbera_soil,
    run_barbera,
)
from repro.experiments.balaidos import (
    BALAIDOS_PAPER_RESULTS,
    balaidos_case,
    balaidos_soil,
    run_balaidos,
    run_balaidos_all_models,
)
from repro.experiments.scaling import (
    measure_column_costs,
    deterministic_column_costs,
    figure_6_1_curves,
    table_6_2_speedups,
    table_6_3_rows,
)
from repro.experiments.registry import EXPERIMENTS, ExperimentSpec, get_experiment

__all__ = [
    "BARBERA_PAPER_RESULTS",
    "barbera_case",
    "barbera_soil",
    "run_barbera",
    "BALAIDOS_PAPER_RESULTS",
    "balaidos_case",
    "balaidos_soil",
    "run_balaidos",
    "run_balaidos_all_models",
    "measure_column_costs",
    "deterministic_column_costs",
    "figure_6_1_curves",
    "table_6_2_speedups",
    "table_6_3_rows",
    "EXPERIMENTS",
    "ExperimentSpec",
    "get_experiment",
]
