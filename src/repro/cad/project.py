"""Project-level driver reproducing the CAD program structure of the paper.

:class:`GroundingProject` runs the five phases of the paper's Table 6.1 —
*Data Input*, *Data Preprocessing*, *Matrix Generation*, *Linear System
Solving* and *Results Storage* — timing each of them, and optionally persists
both the input grid and the results to disk.  It is a thin orchestration layer:
all numerical work is delegated to :class:`repro.bem.GroundingAnalysis`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.bem.assembly import AssemblyOptions, assemble_system
from repro.bem.elements import DofManager, ElementType
from repro.bem.results import AnalysisResults
from repro.constants import DEFAULT_GPR
from repro.exceptions import ExperimentError
from repro.geometry.discretize import discretize_grid
from repro.geometry.grid import GroundingGrid
from repro.geometry.io import load_grid, save_grid
from repro.geometry.validation import validate_grid
from repro.kernels.base import kernel_for_soil
from repro.kernels.series import SeriesControl
from repro.parallel.options import ParallelOptions
from repro.timing import PhaseTimer
from repro.soil.base import SoilModel
from repro.solvers import solve_system

__all__ = ["PhaseReport", "GroundingProject", "load_results_json"]

#: Canonical phase names, in execution order (Table 6.1 rows).
PHASES = (
    "data_input",
    "data_preprocessing",
    "matrix_generation",
    "linear_system_solving",
    "results_storage",
)


@dataclass
class PhaseReport:
    """Per-phase wall-clock times of one project run (the paper's Table 6.1)."""

    seconds: dict[str, float] = field(default_factory=dict)

    def as_rows(self) -> list[tuple[str, float]]:
        """Rows ``(phase, seconds)`` in canonical order."""
        return [(phase, self.seconds.get(phase, 0.0)) for phase in PHASES]

    @property
    def total(self) -> float:
        """Total time over all phases [s]."""
        return float(sum(self.seconds.values()))

    def dominant_phase(self) -> str:
        """Name of the most expensive phase (matrix generation, per the paper)."""
        if not self.seconds:
            raise ExperimentError("no phases have been recorded")
        return max(self.seconds, key=lambda name: self.seconds[name])

    def fraction(self, phase: str) -> float:
        """Fraction of the total time spent in one phase."""
        total = self.total
        return self.seconds.get(phase, 0.0) / total if total > 0 else 0.0


class GroundingProject:
    """A grounding-design project: grid + soil + analysis settings + outputs.

    Parameters
    ----------
    grid:
        The grounding grid, or a path to a grid JSON file saved with
        :func:`repro.geometry.io.save_grid`.
    soil:
        The soil model.
    gpr:
        Ground Potential Rise [V].
    element_type, n_gauss, series_control, solver:
        Analysis settings, identical to :class:`repro.bem.GroundingAnalysis`.
    parallel:
        Optional parallel options for the matrix generation.
    workdir:
        Directory where results are stored by the results-storage phase;
        ``None`` keeps everything in memory.
    """

    def __init__(
        self,
        grid: GroundingGrid | str | Path,
        soil: SoilModel,
        gpr: float = DEFAULT_GPR,
        element_type: ElementType = ElementType.LINEAR,
        n_gauss: int = 4,
        series_control: SeriesControl | None = None,
        solver: str = "pcg",
        parallel: ParallelOptions | None = None,
        workdir: str | Path | None = None,
        name: str | None = None,
    ) -> None:
        self._grid_source = grid
        self.soil = soil
        self.gpr = float(gpr)
        self.element_type = ElementType(element_type)
        self.n_gauss = int(n_gauss)
        self.series_control = series_control or SeriesControl()
        self.solver = solver
        self.parallel = parallel
        self.workdir = Path(workdir) if workdir is not None else None
        self.name = name or (grid.name if isinstance(grid, GroundingGrid) else Path(str(grid)).stem)

        self.grid: GroundingGrid | None = grid if isinstance(grid, GroundingGrid) else None
        self.results: AnalysisResults | None = None
        self.phase_report = PhaseReport()

    # ------------------------------------------------------------------ phases

    def run(self) -> AnalysisResults:
        """Execute the five phases and return the analysis results."""
        timer = PhaseTimer()

        with timer.phase("data_input"):
            grid = self._load_grid()
            validate_grid(grid, soil=self.soil, check_overlaps=False, raise_on_error=True)
            self.grid = grid

        with timer.phase("data_preprocessing"):
            mesh = discretize_grid(grid, soil=self.soil)
            kernel = kernel_for_soil(self.soil, self.series_control)
            dof_manager = DofManager(mesh, self.element_type)
            options = AssemblyOptions(
                element_type=self.element_type,
                n_gauss=self.n_gauss,
                series_control=self.series_control,
            )

        with timer.phase("matrix_generation"):
            if self.parallel is None:
                system = assemble_system(
                    mesh,
                    self.soil,
                    gpr=self.gpr,
                    options=options,
                    kernel=kernel,
                    collect_column_times=True,
                )
            else:
                from repro.parallel.parallel_assembly import assemble_system_parallel

                system = assemble_system_parallel(
                    mesh,
                    self.soil,
                    gpr=self.gpr,
                    options=options,
                    kernel=kernel,
                    parallel=self.parallel,
                )

        with timer.phase("linear_system_solving"):
            solve_result = solve_system(system.matrix, system.rhs, method=self.solver)

        with timer.phase("results_storage"):
            results = AnalysisResults(
                mesh=mesh,
                soil=self.soil,
                kernel=kernel,
                dof_manager=dof_manager,
                gpr=self.gpr,
                dof_values=solve_result.solution,
                solver=solve_result,
                timings=timer.as_dict(),
                metadata={
                    key: value
                    for key, value in system.metadata.items()
                    if key != "column_seconds"
                },
            )
            if "column_seconds" in system.metadata:
                results.metadata["column_seconds"] = system.metadata["column_seconds"]
            self.results = results
            if self.workdir is not None:
                self._store(results)

        # Record the final timings (results_storage was still open when the
        # results object copied them, so refresh the stored dictionary).
        self.phase_report = PhaseReport(seconds=timer.as_dict())
        results.timings = timer.as_dict()
        return results

    # ------------------------------------------------------------------ persistence

    def _load_grid(self) -> GroundingGrid:
        if isinstance(self._grid_source, GroundingGrid):
            return self._grid_source
        return load_grid(self._grid_source)

    def _store(self, results: AnalysisResults) -> None:
        assert self.workdir is not None
        self.workdir.mkdir(parents=True, exist_ok=True)
        if self.grid is not None:
            save_grid(self.grid, self.workdir / f"{self.name}_grid.json")
        payload: dict[str, Any] = {
            "project": self.name,
            "soil": self.soil.to_dict(),
            "gpr_v": self.gpr,
            "equivalent_resistance_ohm": results.equivalent_resistance,
            "total_current_a": results.total_current,
            "timings_s": results.timings,
            "solver": results.solver.summary(),
            "dof_values": np.asarray(results.dof_values).tolist(),
        }
        (self.workdir / f"{self.name}_results.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8"
        )

    # ------------------------------------------------------------------ reporting

    def phase_table(self) -> list[tuple[str, float]]:
        """The Table 6.1 rows ``(process, CPU time in seconds)`` of the last run."""
        if not self.phase_report.seconds:
            raise ExperimentError("run() must be called before requesting the phase table")
        return self.phase_report.as_rows()

    def summary(self) -> dict[str, Any]:
        """Headline results of the last run."""
        if self.results is None:
            raise ExperimentError("run() must be called before requesting a summary")
        summary = self.results.summary()
        summary["phase_seconds"] = dict(self.phase_report.seconds)
        summary["dominant_phase"] = self.phase_report.dominant_phase()
        return summary


def load_results_json(path: str | Path) -> dict[str, Any]:
    """Load a results JSON file written by :class:`GroundingProject`."""
    path = Path(path)
    if not path.exists():
        raise ExperimentError(f"results file not found: {path}")
    return json.loads(path.read_text(encoding="utf-8"))
