"""Potential and touch-voltage profiles along surface lines.

Designers routinely inspect the surface potential along walking paths (e.g.
across the substation fence) to locate the worst touch and step exposures.
These helpers evaluate the solved potential along an arbitrary straight line on
the earth surface and derive the corresponding touch- and step-voltage
profiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.bem.results import AnalysisResults
from repro.exceptions import ReproError

__all__ = ["ProfileResult", "surface_profile", "touch_voltage_profile", "step_voltage_profile"]


@dataclass
class ProfileResult:
    """Values sampled along a straight surface line."""

    #: Distance along the line from its start [m].
    stations: np.ndarray
    #: Sampled values [V].
    values: np.ndarray
    #: Plan coordinates of the samples, shape ``(n, 2)``.
    points: np.ndarray
    #: What the values represent ("potential", "touch", "step").
    kind: str = "potential"

    @property
    def max_value(self) -> float:
        """Largest sampled value [V]."""
        return float(self.values.max())

    @property
    def min_value(self) -> float:
        """Smallest sampled value [V]."""
        return float(self.values.min())

    def value_at(self, station: float) -> float:
        """Linear interpolation of the profile at an arbitrary station [V]."""
        return float(np.interp(station, self.stations, self.values))


def _sample_line(
    start: Sequence[float], end: Sequence[float], n_points: int
) -> tuple[np.ndarray, np.ndarray]:
    start_arr = np.asarray(start, dtype=float)
    end_arr = np.asarray(end, dtype=float)
    if start_arr.shape != (2,) or end_arr.shape != (2,):
        raise ReproError("profile end points must be plan coordinates (x, y)")
    if n_points < 2:
        raise ReproError("a profile needs at least two sample points")
    t = np.linspace(0.0, 1.0, int(n_points))
    points = start_arr[None, :] + t[:, None] * (end_arr - start_arr)[None, :]
    stations = t * float(np.linalg.norm(end_arr - start_arr))
    return stations, points


def surface_profile(
    results: AnalysisResults,
    start: Sequence[float],
    end: Sequence[float],
    n_points: int = 101,
) -> ProfileResult:
    """Earth-surface potential along the straight line ``start → end``."""
    stations, points = _sample_line(start, end, n_points)
    field_points = np.column_stack((points, np.zeros(points.shape[0])))
    values = results.evaluator().potential_at(field_points)
    return ProfileResult(stations=stations, values=values, points=points, kind="potential")


def touch_voltage_profile(
    results: AnalysisResults,
    start: Sequence[float],
    end: Sequence[float],
    n_points: int = 101,
) -> ProfileResult:
    """Touch voltage ``GPR − V_surface`` along the line ``start → end``."""
    profile = surface_profile(results, start, end, n_points)
    return ProfileResult(
        stations=profile.stations,
        values=results.gpr - profile.values,
        points=profile.points,
        kind="touch",
    )


def step_voltage_profile(
    results: AnalysisResults,
    start: Sequence[float],
    end: Sequence[float],
    n_points: int = 101,
    step_length: float = 1.0,
) -> ProfileResult:
    """Step voltage along the line: ``|V(s) − V(s + step_length)|``.

    The profile is evaluated at the stations of the sampled line; the last
    stations (within one step length of the end) reuse the final sample, so the
    array lengths match the other profiles.
    """
    if step_length <= 0.0:
        raise ReproError("the step length must be positive")
    profile = surface_profile(results, start, end, n_points)
    shifted = np.interp(
        profile.stations + step_length,
        profile.stations,
        profile.values,
        right=float(profile.values[-1]),
    )
    return ProfileResult(
        stations=profile.stations,
        values=np.abs(profile.values - shifted),
        points=profile.points,
        kind="step",
    )
