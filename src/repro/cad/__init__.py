"""CAD-system layer: the engineering workflow built on top of the BEM core.

The paper integrates its boundary-element formulation "in a Computer Aided
Design system for grounding analysis" whose phases are listed in Table 6.1:
data input, data preprocessing, matrix generation, linear system solving and
results storage.  This sub-package provides that workflow:

* :class:`~repro.cad.project.GroundingProject` — a project object that runs the
  five phases with individual timing, persists its inputs/outputs and produces
  the per-phase cost table;
* :mod:`repro.cad.contours` — earth-surface potential maps and iso-potential
  contour extraction (the paper's Figs. 5.2 and 5.4);
* :mod:`repro.cad.profiles` — potential / touch-voltage profiles along
  user-defined lines on the surface;
* :mod:`repro.cad.report` — plain-text design reports with the safety
  assessment.
"""

from repro.cad.project import GroundingProject, PhaseReport
from repro.cad.contours import extract_contours, ContourSet, potential_map
from repro.cad.profiles import surface_profile, touch_voltage_profile, ProfileResult
from repro.cad.report import design_report, phase_table, comparison_table

__all__ = [
    "GroundingProject",
    "PhaseReport",
    "extract_contours",
    "ContourSet",
    "potential_map",
    "surface_profile",
    "touch_voltage_profile",
    "ProfileResult",
    "design_report",
    "phase_table",
    "comparison_table",
]
