"""Plain-text reports: design summaries, phase-cost tables and comparisons.

The benchmark harness prints the same rows the paper reports (Tables 5.1, 6.1,
6.2, 6.3); the small formatting helpers here keep that output consistent across
the examples, the benchmarks and the CAD project layer.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.bem.results import AnalysisResults
from repro.bem.safety import SafetyAssessment

__all__ = ["format_table", "phase_table", "comparison_table", "design_report"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    float_format: str = "{:.4g}",
) -> str:
    """Render a fixed-width text table.

    Floats are formatted with ``float_format``; every other value with ``str``.
    """
    def render(value: Any) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells)).rstrip()

    separator = "  ".join("-" * w for w in widths)
    return "\n".join([line(list(headers)), separator, *(line(row) for row in rendered)])


def phase_table(timings: Mapping[str, float]) -> str:
    """The per-phase CPU-time table of the paper's Table 6.1."""
    pretty_names = {
        "data_input": "Data Input",
        "data_preprocessing": "Data Preprocessing",
        "matrix_generation": "Matrix Generation",
        "linear_system_solving": "Linear System Solving",
        "results_storage": "Results Storage",
    }
    rows = [
        [pretty_names.get(name, name), float(seconds)]
        for name, seconds in timings.items()
    ]
    return format_table(["Process", "CPU time (s)"], rows, float_format="{:.3f}")


def comparison_table(
    results_by_case: Mapping[str, AnalysisResults],
    headers: tuple[str, str, str] = ("Soil Model", "Equivalent Resistance (Ω)", "Total Current (kA)"),
) -> str:
    """The soil-model comparison table of the paper's Table 5.1."""
    rows = [
        [name, res.equivalent_resistance, res.total_current_ka]
        for name, res in results_by_case.items()
    ]
    return format_table(list(headers), rows, float_format="{:.4f}")


def design_report(
    results: AnalysisResults,
    safety: SafetyAssessment | None = None,
    title: str | None = None,
) -> str:
    """A complete human-readable design report for one analysis."""
    lines: list[str] = []
    grid = results.mesh.grid
    title = title or f"Grounding analysis report — {grid.name}"
    lines.append(title)
    lines.append("=" * len(title))
    lines.append("")
    lines.append("Grid")
    lines.append("----")
    summary = grid.summary()
    for key, value in summary.items():
        lines.append(f"  {key}: {value}")
    lines.append("")
    lines.append("Soil model")
    lines.append("----------")
    lines.append(f"  {results.soil.describe()}")
    lines.append("")
    lines.append("Discretisation")
    lines.append("--------------")
    lines.append(f"  elements: {results.mesh.n_elements}")
    lines.append(f"  degrees of freedom: {results.dof_manager.n_dofs}")
    lines.append(f"  element type: {results.dof_manager.element_type.value}")
    lines.append("")
    lines.append("Results")
    lines.append("-------")
    lines.append(f"  Ground Potential Rise: {results.gpr:.1f} V")
    lines.append(f"  Equivalent resistance: {results.equivalent_resistance:.4f} Ω")
    lines.append(f"  Total leaked current:  {results.total_current_ka:.2f} kA")
    per_layer = results.current_by_layer()
    if len(per_layer) > 1:
        for layer, current in sorted(per_layer.items()):
            lines.append(f"    current from layer {layer}: {current / 1e3:.2f} kA")
    lines.append("")
    lines.append("Pipeline cost")
    lines.append("-------------")
    lines.append(phase_table(results.timings))
    if safety is not None:
        lines.append("")
        lines.append("Safety assessment (IEEE Std 80)")
        lines.append("-------------------------------")
        for key, value in safety.summary().items():
            lines.append(f"  {key}: {value}")
    lines.append("")
    lines.append("Solver")
    lines.append("------")
    for key, value in results.solver.summary().items():
        lines.append(f"  {key}: {value}")
    return "\n".join(lines)
