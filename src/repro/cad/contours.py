"""Earth-surface potential maps and iso-potential contour extraction.

The paper presents its results as contour maps of the potential distribution on
the earth surface (Figs. 5.2 and 5.4, values expressed as fractions of the
10 kV GPR).  This module computes the sampled potential map from an analysis
result and extracts iso-potential polylines with a small marching-squares
implementation (dependency-free, adequate for the smooth potential fields of
grounding problems).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.bem.potential import SurfaceGrid
from repro.bem.results import AnalysisResults
from repro.exceptions import ReproError

__all__ = ["potential_map", "ContourSet", "extract_contours"]


def potential_map(
    results: AnalysisResults,
    margin: float = 20.0,
    n_x: int = 61,
    n_y: int = 61,
) -> SurfaceGrid:
    """Earth-surface potential sampled over the grid footprint plus a margin.

    This is the raw data behind the paper's Figs. 5.2 and 5.4.
    """
    evaluator = results.evaluator()
    return evaluator.surface_potential_over_grid(margin=margin, n_x=n_x, n_y=n_y)


@dataclass
class ContourSet:
    """Iso-potential polylines extracted from a surface potential map."""

    #: Contour levels [V].
    levels: np.ndarray
    #: For every level, a list of polylines; each polyline is an ``(n, 2)`` array
    #: of ``(x, y)`` coordinates.
    polylines: dict[float, list[np.ndarray]] = field(default_factory=dict)
    #: GPR used to normalise levels in reports [V].
    gpr: float = 1.0

    @property
    def n_levels(self) -> int:
        """Number of contour levels."""
        return int(self.levels.size)

    def total_polyline_length(self, level: float) -> float:
        """Total length of the contour polylines of one level [m]."""
        lines = self.polylines.get(float(level), [])
        total = 0.0
        for line in lines:
            if line.shape[0] > 1:
                total += float(np.sum(np.linalg.norm(np.diff(line, axis=0), axis=1)))
        return total

    def level_summary(self) -> list[dict]:
        """One row per level: level, per-unit level, segment count, total length."""
        rows = []
        for level in self.levels:
            lines = self.polylines.get(float(level), [])
            rows.append(
                {
                    "level_v": float(level),
                    "level_per_unit": float(level) / self.gpr if self.gpr else float("nan"),
                    "n_polylines": len(lines),
                    "total_length_m": self.total_polyline_length(float(level)),
                }
            )
        return rows


def extract_contours(
    surface: SurfaceGrid,
    levels: Sequence[float] | np.ndarray | None = None,
    n_levels: int = 10,
) -> ContourSet:
    """Extract iso-potential contours from a sampled surface map.

    Parameters
    ----------
    surface:
        The sampled earth-surface potential.
    levels:
        Explicit contour levels [V]; by default ``n_levels`` levels are spread
        uniformly between the minimum and maximum sampled values (excluding the
        exact extremes).
    n_levels:
        Number of automatic levels when ``levels`` is not given.
    """
    if levels is None:
        if n_levels < 1:
            raise ReproError("n_levels must be at least 1")
        lo, hi = surface.min_value, surface.max_value
        if hi <= lo:
            raise ReproError("the surface potential is constant; no contours exist")
        levels_arr = np.linspace(lo, hi, n_levels + 2)[1:-1]
    else:
        levels_arr = np.asarray(list(levels), dtype=float)
        if levels_arr.size == 0:
            raise ReproError("at least one contour level is required")

    polylines: dict[float, list[np.ndarray]] = {}
    for level in levels_arr:
        segments = _marching_squares(surface.x, surface.y, surface.values, float(level))
        polylines[float(level)] = _join_segments(segments)
    return ContourSet(levels=levels_arr, polylines=polylines, gpr=surface.gpr)


# ----------------------------------------------------------------------------- internals


def _interpolate(p1: np.ndarray, p2: np.ndarray, v1: float, v2: float, level: float) -> np.ndarray:
    """Linear interpolation of the level crossing between two grid corners."""
    if v2 == v1:
        t = 0.5
    else:
        t = (level - v1) / (v2 - v1)
    t = min(1.0, max(0.0, t))
    return p1 + t * (p2 - p1)


def _marching_squares(
    x: np.ndarray, y: np.ndarray, values: np.ndarray, level: float
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Contour segments of one level (classic marching-squares, no ambiguity fix)."""
    segments: list[tuple[np.ndarray, np.ndarray]] = []
    n_y, n_x = values.shape
    for j in range(n_y - 1):
        for i in range(n_x - 1):
            corners = np.array(
                [
                    [x[i], y[j]],
                    [x[i + 1], y[j]],
                    [x[i + 1], y[j + 1]],
                    [x[i], y[j + 1]],
                ]
            )
            corner_values = np.array(
                [values[j, i], values[j, i + 1], values[j + 1, i + 1], values[j + 1, i]]
            )
            above = corner_values >= level
            case = int(above[0]) | int(above[1]) << 1 | int(above[2]) << 2 | int(above[3]) << 3
            if case in (0, 15):
                continue
            # Edge crossing points (edge k joins corner k and corner (k+1) % 4).
            crossings = {}
            for k in range(4):
                a, b = k, (k + 1) % 4
                if above[a] != above[b]:
                    crossings[k] = _interpolate(
                        corners[a], corners[b], corner_values[a], corner_values[b], level
                    )
            edges = sorted(crossings)
            if len(edges) == 2:
                segments.append((crossings[edges[0]], crossings[edges[1]]))
            elif len(edges) == 4:
                # Saddle cell: connect edge pairs consistently (0-1, 2-3).
                segments.append((crossings[edges[0]], crossings[edges[1]]))
                segments.append((crossings[edges[2]], crossings[edges[3]]))
    return segments


def _join_segments(
    segments: list[tuple[np.ndarray, np.ndarray]], tol: float = 1.0e-9
) -> list[np.ndarray]:
    """Join raw segments into polylines by matching coincident end points."""
    if not segments:
        return []
    remaining = [(np.asarray(a, dtype=float), np.asarray(b, dtype=float)) for a, b in segments]
    polylines: list[np.ndarray] = []
    while remaining:
        a, b = remaining.pop()
        line = [a, b]
        extended = True
        while extended and remaining:
            extended = False
            for index, (p, q) in enumerate(remaining):
                if np.linalg.norm(p - line[-1]) <= tol:
                    line.append(q)
                elif np.linalg.norm(q - line[-1]) <= tol:
                    line.append(p)
                elif np.linalg.norm(p - line[0]) <= tol:
                    line.insert(0, q)
                elif np.linalg.norm(q - line[0]) <= tol:
                    line.insert(0, p)
                else:
                    continue
                remaining.pop(index)
                extended = True
                break
        polylines.append(np.vstack(line))
    return polylines
