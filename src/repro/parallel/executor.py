"""Real scheduled execution of loop tasks on threads or worker processes.

This is the executable counterpart of the OpenMP work-sharing loop the paper
parallelises: a set of numbered tasks (loop cycles) is distributed over
``n_workers`` workers according to a :class:`repro.parallel.schedule.Schedule`:

* ``static`` schedules fix the task→worker mapping before execution starts;
* ``dynamic`` and ``guided`` schedules let idle workers grab the next chunk of
  the shared sequence, which balances the linearly decreasing column costs of
  the BEM assembly at the price of more scheduling events.

Chunks, not single tasks, are the unit of dispatch.  When the task callable has
a batched companion (``batch_fn``), each chunk is executed in **one** call —
for the BEM assembly that is one vectorised
:meth:`~repro.bem.influence.ColumnAssembler.column_batch` evaluation per
schedule chunk, on every backend.  The chunk wall time is then apportioned to
the individual tasks using the (analytic) ``cost_hint`` so the per-task
profile consumed by the schedule simulator stays meaningful.

Backends:

``process`` (default)
    Worker processes created with the ``fork`` start method.  The task callable
    and its captured state (mesh, kernel, assembler) are inherited by the
    children through the fork, so no per-task pickling of the inputs occurs;
    only the results travel back.  This mirrors the shared-memory setting of
    the paper, where every processor reads the same element tables and only the
    elemental matrices are written.
``thread``
    A thread pool.  NumPy releases the GIL inside its kernels, so moderate
    speed-ups are possible, but the Python-level bookkeeping serialises;
    batched chunks spend most of their time inside NumPy, which makes this
    backend considerably more useful than with per-task dispatch.
``serial``
    Runs everything in the calling thread (baseline and debugging).
"""

from __future__ import annotations

import multiprocessing as mp
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.exceptions import ParallelExecutionError
from repro.parallel.costs import cost_shares
from repro.parallel.options import Backend
from repro.parallel.schedule import Schedule, ScheduleKind
from repro.timing import wall_clock

__all__ = [
    "PoolJob",
    "TaskRunResult",
    "ScheduledExecutor",
    "collect_chunk_results",
    "drive_pool_steps",
    "normalize_partition",
    "run_scheduled_tasks",
]


# --------------------------------------------------------------------------- worker side
#
# The task callables are stashed in module-level slots *before* the worker
# processes are forked, so the children inherit them via copy-on-write memory
# and only chunk indices / results cross the process boundary.

_WORKER_TASK_FN: Callable[[int], Any] | None = None
_WORKER_BATCH_FN: Callable[[Sequence[int]], list[tuple[int, Any]]] | None = None
_WORKER_COST_HINT: Any = None


def _set_worker_task(
    fn: Callable[[int], Any] | None,
    batch_fn: Callable[[Sequence[int]], list[tuple[int, Any]]] | None = None,
    cost_hint: Any = None,
) -> None:
    global _WORKER_TASK_FN, _WORKER_BATCH_FN, _WORKER_COST_HINT
    _WORKER_TASK_FN = fn
    _WORKER_BATCH_FN = batch_fn
    _WORKER_COST_HINT = cost_hint


def _execute_chunk(
    task_fn: Callable[[int], Any] | None,
    batch_fn: Callable[[Sequence[int]], list[tuple[int, Any]]] | None,
    cost_hint: Any,
    indices: Sequence[int],
) -> list[tuple[int, Any, float]]:
    """Execute one chunk of tasks, timing them.

    With a ``batch_fn`` the whole chunk is evaluated in a single call and the
    elapsed time is apportioned to the tasks by their cost shares; otherwise
    each task runs (and is timed) individually.
    """
    if batch_fn is not None:
        start = wall_clock()
        pairs = batch_fn(list(indices))
        elapsed = wall_clock() - start
        if len(pairs) != len(indices):
            raise ParallelExecutionError(
                f"batch returned {len(pairs)} results for a chunk of {len(indices)} tasks"
            )
        shares = cost_shares(cost_hint, indices)
        return [
            (int(task_id), value, float(elapsed * share))
            for (task_id, value), share in zip(pairs, shares)
        ]
    if task_fn is None:  # pragma: no cover - defensive
        raise ParallelExecutionError("worker has no task function configured")
    output = []
    for index in indices:
        start = wall_clock()
        value = task_fn(int(index))
        output.append((int(index), value, wall_clock() - start))
    return output


def _run_chunk(indices: Sequence[int]) -> list[tuple[int, Any, float]]:
    """Execute a chunk inside a forked worker (state read from the globals)."""
    return _execute_chunk(_WORKER_TASK_FN, _WORKER_BATCH_FN, _WORKER_COST_HINT, indices)


# --------------------------------------------------------------------------- pool steps
#
# Assembly pipelines that *may* run on a persistent WorkerPool are written as
# generators: master-side work (planning, regrouping, tracing) runs inline,
# and each pool dispatch is a yielded PoolJob request.  A plain driver
# (drive_pool_steps) turns a generator back into the blocking call the
# single-run API exposes, while a multiplexing scheduler (the campaign
# runner) can interleave the requests of several generators over one pool —
# cooperative coroutines over an event loop instead of threads, in the
# non-threaded concurrent style the pool's own loop already follows.


@dataclass
class PoolJob:
    """One pool-run request yielded by a generator-based assembly pipeline.

    Mirrors the :meth:`~repro.parallel.pool.WorkerPool.run_partition`
    signature; the generator receives the
    :class:`TaskRunResult` back at the ``yield``.  The task/batch callables
    obey the same purity contract as direct dispatch (module-level,
    closure-free — MSG001).
    """

    task: Callable[[int], Any]
    partition: Sequence[Sequence[int]]
    batch_fn: Callable[[Sequence[int]], list[tuple[int, Any]]] | None = None
    cost_hint: Any = None
    label: str = "Pool"


def drive_pool_steps(steps, pool) -> Any:
    """Run a :class:`PoolJob`-yielding generator to completion, blocking.

    Every yielded request executes as one
    :meth:`~repro.parallel.pool.WorkerPool.run_partition` call on ``pool``
    and its :class:`TaskRunResult` is sent back into the generator; the
    generator's return value is returned.  A pipeline that never dispatches
    (``pool is None`` branches handled inside the generator) simply runs to
    its ``return``.
    """
    try:
        request = next(steps)
    except StopIteration as stop:
        return stop.value
    while True:
        outcome = pool.run_partition(
            request.task,
            request.partition,
            batch_fn=request.batch_fn,
            cost_hint=request.cost_hint,
            label=request.label,
        )
        try:
            request = steps.send(outcome)
        except StopIteration as stop:
            return stop.value


# --------------------------------------------------------------------------- results


def normalize_partition(
    partition: Sequence[Sequence[int]],
) -> tuple[list[list[int]], list[int]]:
    """Validate an explicit worker partition into ``(chunks, indices)``.

    Shared by :meth:`ScheduledExecutor.run_partition` and the persistent
    :class:`repro.parallel.pool.WorkerPool`: task ids are int-coerced, empty
    shards dropped, and a task assigned to more than one shard rejected —
    one rule set for every partition path.
    """
    chunks = [[int(i) for i in shard] for shard in partition]
    chunks = [chunk for chunk in chunks if chunk]
    indices = [index for chunk in chunks for index in chunk]
    if len(set(indices)) != len(indices):
        raise ParallelExecutionError(
            "partition assigns at least one task to more than one shard"
        )
    return chunks, indices


def collect_chunk_results(
    raw: list[list[tuple[int, Any, float]]],
    indices: Sequence[int],
    wall: float,
    n_chunks: int,
    n_workers: int,
    schedule_label: str,
    backend: str,
) -> "TaskRunResult":
    """Fold executed-chunk outputs into a :class:`TaskRunResult`.

    Shared by :class:`ScheduledExecutor` and the persistent
    :class:`repro.parallel.pool.WorkerPool`: per-task results and timings are
    indexed back to the submission order, and a missing (or duplicated) task
    id fails loudly.
    """
    indices = [int(i) for i in indices]
    n_tasks = len(indices)
    results: dict[int, Any] = {}
    task_seconds = np.zeros(n_tasks)
    position = {task: k for k, task in enumerate(indices)}
    for chunk_output in raw:
        for task_id, value, elapsed in chunk_output:
            results[task_id] = value
            task_seconds[position[task_id]] = elapsed
    if len(results) != n_tasks:
        raise ParallelExecutionError(
            f"scheduled run returned {len(results)} results for {n_tasks} tasks"
        )
    return TaskRunResult(
        results=results,
        wall_seconds=wall,
        task_seconds=task_seconds,
        n_chunks=n_chunks,
        n_workers=n_workers,
        schedule=schedule_label,
        backend=backend,
    )


@dataclass
class TaskRunResult:
    """Results and timing of one scheduled loop execution."""

    #: Task results indexed by task id.
    results: dict[int, Any]
    #: Wall-clock seconds of the whole parallel loop (as seen by the caller).
    wall_seconds: float
    #: Per-task execution seconds measured inside the workers (apportioned from
    #: the chunk time when chunks are dispatched as batches).
    task_seconds: np.ndarray
    #: Number of chunks dispatched.
    n_chunks: int
    #: Number of workers used.
    n_workers: int
    #: Schedule label (e.g. ``"Dynamic,1"``).
    schedule: str
    #: Backend name.
    backend: str
    #: Extra information.
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def sequential_seconds(self) -> float:
        """Sum of the per-task times (the sequential reference of the paper)."""
        return float(self.task_seconds.sum())

    @property
    def speedup(self) -> float:
        """Observed speed-up relative to the summed task times."""
        if self.wall_seconds <= 0.0:
            return float(self.n_workers)
        return self.sequential_seconds / self.wall_seconds

    def ordered_results(self) -> list[Any]:
        """Results sorted by task id."""
        return [self.results[key] for key in sorted(self.results)]


# --------------------------------------------------------------------------- executor


class ScheduledExecutor:
    """Reusable scheduled-loop executor bound to one task callable.

    Use as a context manager so worker pools are reliably torn down::

        with ScheduledExecutor(task_fn, n_workers=8, backend=Backend.PROCESS) as ex:
            outcome = ex.run(range(n_tasks), Schedule.parse("Dynamic,1"))

    Parameters
    ----------
    task_fn:
        Callable computing a single task.
    n_workers:
        Number of workers.
    backend:
        ``process``, ``thread`` or ``serial``.
    batch_fn:
        Optional batched companion of ``task_fn``: called with the task ids of
        a whole chunk, must return ``[(task_id, result), ...]`` in the same
        order.  When provided, every chunk is dispatched as one call.
    cost_hint:
        Optional per-task relative costs (array indexed by task id, or a
        mapping) used to apportion a chunk's wall time to its tasks.
    retry:
        Optional :class:`repro.resilience.RetryPolicy`; its ``chunk_timeout``
        bounds how long :meth:`run_partition` waits for each process-backend
        chunk before executing it serially in the master (recorded in
        ``TaskRunResult.metadata["serial_fallback_chunks"]``).  ``None``
        keeps the historical wait-forever behaviour.
    """

    def __init__(
        self,
        task_fn: Callable[[int], Any],
        n_workers: int,
        backend: Backend | str = Backend.PROCESS,
        batch_fn: Callable[[Sequence[int]], list[tuple[int, Any]]] | None = None,
        cost_hint: Any = None,
        retry: Any = None,
    ) -> None:
        if n_workers < 1:
            raise ParallelExecutionError(f"n_workers must be >= 1, got {n_workers}")
        self.task_fn = task_fn
        self.batch_fn = batch_fn
        self.cost_hint = cost_hint
        self.n_workers = int(n_workers)
        self.backend = Backend(backend) if not isinstance(backend, Backend) else backend
        self.retry = retry
        self._pool: Any = None
        self._thread_pool: ThreadPoolExecutor | None = None

    # -- lifecycle ------------------------------------------------------------------

    def __enter__(self) -> "ScheduledExecutor":
        if self.backend is Backend.PROCESS:
            _set_worker_task(self.task_fn, self.batch_fn, self.cost_hint)
            context = mp.get_context("fork")
            self._pool = context.Pool(processes=self.n_workers)
        elif self.backend is Backend.THREAD:
            self._thread_pool = ThreadPoolExecutor(max_workers=self.n_workers)
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Shut the worker pools down deterministically (idempotent).

        Equivalent to leaving the ``with`` block: worker processes are
        terminated and joined, thread pools shut down, and the module-level
        task slots cleared.  Exposed so pool-backed executors can be torn
        down at a well-defined point instead of relying on interpreter
        ``atexit`` ordering (which leaks worker processes under pytest).
        """
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        if self._thread_pool is not None:
            self._thread_pool.shutdown(wait=True)
            self._thread_pool = None
        _set_worker_task(None)

    # -- execution ------------------------------------------------------------------

    def run(self, task_indices: Sequence[int], schedule: Schedule) -> TaskRunResult:
        """Execute the given tasks under the schedule and collect the results."""
        indices = [int(i) for i in task_indices]
        start = wall_clock()

        if self.backend is Backend.SERIAL or self.n_workers == 1:
            chunks = [indices] if indices else []
            raw = [self._execute_local(chunk) for chunk in chunks]
        elif self.backend is Backend.PROCESS:
            raw, chunks = self._run_process(indices, schedule)
        else:
            raw, chunks = self._run_thread(indices, schedule)

        wall = wall_clock() - start
        return self._collect(raw, indices, wall, len(chunks), schedule.label())

    def run_partition(
        self, partition: Sequence[Sequence[int]], label: str = "Partition"
    ) -> TaskRunResult:
        """Execute tasks under an explicit worker partition (the block-task path).

        The hierarchical engine decomposes its work into cluster-pair *blocks*
        whose static split across workers is computed up front by
        :func:`repro.parallel.costs.partition_block_work` from the
        deterministic :func:`~repro.parallel.costs.hierarchical_block_costs`
        profile.  Each inner sequence of ``partition`` is dispatched as one
        chunk (one message per worker on the process backend — results travel
        back, nothing else crosses the boundary); empty shards are skipped.
        Raises when a task id appears in more than one shard.

        With a ``retry`` policy carrying a ``chunk_timeout``, each
        process-backend chunk is waited on for at most that many seconds; an
        expired chunk is executed serially in the master instead (block tasks
        are pure, so the fallback result is bit-identical) and counted in
        ``metadata["serial_fallback_chunks"]``.
        """
        chunks, indices = normalize_partition(partition)
        start = wall_clock()
        serial_fallbacks = 0

        if self.backend is Backend.SERIAL or self.n_workers == 1:
            raw = [self._execute_local(chunk) for chunk in chunks]
        elif self.backend is Backend.PROCESS:
            if self._pool is None:
                raise ParallelExecutionError(
                    "the process backend must be used as a context manager (with ... as ex:)"
                )
            chunk_timeout = getattr(self.retry, "chunk_timeout", None)
            async_results = [
                self._pool.apply_async(_run_chunk, (chunk,)) for chunk in chunks
            ]
            raw = []
            for result, chunk in zip(async_results, chunks):
                if chunk_timeout is None:
                    raw.append(result.get())
                    continue
                try:
                    raw.append(result.get(timeout=chunk_timeout))
                except mp.TimeoutError:
                    # The worker is hung or too slow: recompute the pure
                    # chunk in the master so the run still completes.
                    serial_fallbacks += 1
                    raw.append(self._execute_local(chunk))
        else:
            if self._thread_pool is None:
                raise ParallelExecutionError(
                    "the thread backend must be used as a context manager (with ... as ex:)"
                )
            futures = [self._thread_pool.submit(self._execute_local, chunk) for chunk in chunks]
            raw = [future.result() for future in futures]

        wall = wall_clock() - start
        outcome = self._collect(raw, indices, wall, len(chunks), f"{label},{len(chunks)}")
        if serial_fallbacks:
            outcome.metadata["serial_fallback_chunks"] = serial_fallbacks
        return outcome

    def _collect(
        self,
        raw: list[list[tuple[int, Any, float]]],
        indices: list[int],
        wall: float,
        n_chunks: int,
        schedule_label: str,
    ) -> TaskRunResult:
        """Fold executed-chunk outputs into a :class:`TaskRunResult`.

        Shared by :meth:`run` and :meth:`run_partition` (and, through
        :func:`collect_chunk_results`, by the persistent worker pool).
        """
        return collect_chunk_results(
            raw, indices, wall, n_chunks, self.n_workers, schedule_label, self.backend.value
        )

    # -- backend internals ------------------------------------------------------------

    def _execute_local(self, chunk: Sequence[int]) -> list[tuple[int, Any, float]]:
        """Chunk runner for the serial and thread backends (no globals needed)."""
        return _execute_chunk(self.task_fn, self.batch_fn, self.cost_hint, chunk)

    def _chunks_for(self, indices: list[int], schedule: Schedule) -> list[list[int]]:
        """Translate the schedule into an ordered list of chunks of task ids."""
        n_tasks = len(indices)
        if schedule.kind is ScheduleKind.STATIC:
            assignment = schedule.static_assignment(n_tasks, self.n_workers)
            return [
                [indices[i] for i in worker_tasks] for worker_tasks in assignment if worker_tasks
            ]
        sequence = schedule.chunk_sequence(n_tasks, self.n_workers)
        return [[indices[i] for i in chunk] for chunk in sequence]

    def _run_process(
        self, indices: list[int], schedule: Schedule
    ) -> tuple[list[list[tuple[int, Any, float]]], list[list[int]]]:
        if self._pool is None:
            raise ParallelExecutionError(
                "the process backend must be used as a context manager (with ... as ex:)"
            )
        chunks = self._chunks_for(indices, schedule)
        if not chunks:
            return [], []
        if schedule.kind is ScheduleKind.STATIC:
            # One submission per worker: the partition is fixed up front.
            async_results = [self._pool.apply_async(_run_chunk, (chunk,)) for chunk in chunks]
            return [r.get() for r in async_results], chunks
        # Dynamic / guided: workers pull the next chunk as they become idle.
        raw = list(self._pool.imap_unordered(_run_chunk, chunks, chunksize=1))
        return raw, chunks

    def _run_thread(
        self, indices: list[int], schedule: Schedule
    ) -> tuple[list[list[tuple[int, Any, float]]], list[list[int]]]:
        if self._thread_pool is None:
            raise ParallelExecutionError(
                "the thread backend must be used as a context manager (with ... as ex:)"
            )
        chunks = self._chunks_for(indices, schedule)
        futures = [self._thread_pool.submit(self._execute_local, chunk) for chunk in chunks]
        return [future.result() for future in futures], chunks


def run_scheduled_tasks(
    task_fn: Callable[[int], Any],
    n_tasks: int,
    schedule: Schedule,
    n_workers: int,
    backend: Backend | str = Backend.PROCESS,
    batch_fn: Callable[[Sequence[int]], list[tuple[int, Any]]] | None = None,
    cost_hint: Any = None,
) -> TaskRunResult:
    """One-shot convenience wrapper around :class:`ScheduledExecutor`."""
    if n_tasks < 0:
        raise ParallelExecutionError("n_tasks cannot be negative")
    with ScheduledExecutor(
        task_fn,
        n_workers=n_workers,
        backend=backend,
        batch_fn=batch_fn,
        cost_hint=cost_hint,
    ) as executor:
        return executor.run(range(n_tasks), schedule)
