"""Parallel generation of the BEM matrix (the paper's Section 6.2).

The sequential assembly couples the computation of each elemental matrix with
its immediate scatter into the global matrix; that scatter creates a dependency
between loop cycles.  The paper removes it by *first* computing and storing all
elemental matrices (in parallel) and *then* assembling them sequentially —
"this scheme requires approximately twice the memory space than the original
one, but in any case this memory space is not very large".  This module follows
exactly that structure:

1. the column tasks of :class:`repro.bem.influence.ColumnAssembler` are
   distributed over the workers according to the requested
   :class:`~repro.parallel.schedule.Schedule` (outer-loop parallelisation), or
   the rows of each column are distributed while the column loop stays
   sequential (inner-loop parallelisation, kept for the comparison of
   Fig. 6.1);
2. the resulting blocks are assembled into the global matrix by the master
   process.

Every schedule chunk is dispatched as **one batched evaluation** — a single
:meth:`~repro.bem.influence.ColumnAssembler.column_batch` call for the outer
loop, one grouped :meth:`~repro.bem.influence.ColumnAssembler.column_blocks`
call per source for the inner loop — on the serial, thread and process
backends alike.  Chunk wall times are apportioned to the individual columns
with the deterministic analytic cost model
(:func:`repro.parallel.costs.analytic_column_costs`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.bem.assembly import (
    AssemblyOptions,
    ColumnResult,
    assemble_from_columns,
)
from repro.bem.elements import DofManager
from repro.bem.influence import ColumnAssembler
from repro.bem.system import LinearSystem
from repro.constants import DEFAULT_GPR
from repro.exceptions import ParallelExecutionError
from repro.geometry.discretize import Mesh
from repro.kernels.base import LayeredKernel, kernel_for_soil
from repro.parallel.executor import ScheduledExecutor
from repro.parallel.options import Backend, LoopLevel, ParallelOptions
from repro.soil.base import SoilModel
from repro.timing import wall_clock

__all__ = ["assemble_system_parallel", "generate_columns_parallel"]


def generate_columns_parallel(
    assembler: ColumnAssembler,
    parallel: ParallelOptions,
) -> tuple[list[ColumnResult], dict]:
    """Compute every assembly column under the requested parallel options.

    Returns the column results (in column order) plus timing metadata:
    ``parallel_wall_seconds`` (the wall-clock time of the scheduled loop) and
    ``column_seconds`` (per-column execution times measured inside the
    workers — the task-cost profile consumed by the schedule simulator; with
    batched chunks each column carries its cost-model share of the chunk
    time).
    """
    n_columns = assembler.n_elements

    if parallel.loop is LoopLevel.OUTER:
        task_fn = _OuterColumnTask(assembler)
        batch_fn = _OuterColumnBatchTask(assembler)
        with ScheduledExecutor(
            task_fn,
            n_workers=parallel.n_workers,
            backend=parallel.backend,
            batch_fn=batch_fn,
            cost_hint=assembler.column_cost_estimate(),
        ) as executor:
            outcome = executor.run(range(n_columns), parallel.schedule)
        columns = []
        for index in range(n_columns):
            targets, blocks = outcome.results[index]
            columns.append(
                ColumnResult(
                    source_index=index,
                    targets=targets,
                    blocks=blocks,
                    elapsed_seconds=float(outcome.task_seconds[index]),
                )
            )
        metadata = {
            "parallel_wall_seconds": outcome.wall_seconds,
            "column_seconds": outcome.task_seconds.copy(),
            "n_chunks": outcome.n_chunks,
        }
        return columns, metadata

    # Inner-loop parallelisation: the column loop stays sequential, the rows of
    # each column are distributed among the workers (fine granularity).
    task_fn = _InnerPairTask(assembler)
    batch_fn = _InnerPairBatchTask(assembler)
    columns = []
    column_seconds = np.zeros(n_columns)
    total_chunks = 0
    start = wall_clock()
    with ScheduledExecutor(
        task_fn,
        n_workers=parallel.n_workers,
        backend=parallel.backend,
        batch_fn=batch_fn,
    ) as executor:
        for source_index in range(n_columns):
            targets = np.arange(source_index, n_columns, dtype=int)
            encoded = [source_index * n_columns + int(t) for t in targets]
            column_start = wall_clock()
            outcome = executor.run(encoded, parallel.schedule)
            column_seconds[source_index] = wall_clock() - column_start
            total_chunks += outcome.n_chunks
            blocks = np.stack(
                [outcome.results[code] for code in encoded], axis=0
            ) if encoded else np.zeros((0, 1, 1))
            columns.append(
                ColumnResult(
                    source_index=source_index,
                    targets=targets,
                    blocks=blocks,
                    elapsed_seconds=float(column_seconds[source_index]),
                )
            )
    metadata = {
        "parallel_wall_seconds": wall_clock() - start,
        "column_seconds": column_seconds,
        "n_chunks": total_chunks,
    }
    return columns, metadata


class _OuterColumnTask:
    """Callable computing one whole assembly column (outer-loop task)."""

    def __init__(self, assembler: ColumnAssembler) -> None:
        self.assembler = assembler

    def __call__(self, column_index: int) -> tuple[np.ndarray, np.ndarray]:
        return self.assembler.column_blocks(column_index)


class _OuterColumnBatchTask:
    """Batched companion: one vectorised evaluation per schedule chunk."""

    def __init__(self, assembler: ColumnAssembler) -> None:
        self.assembler = assembler

    def __call__(
        self, column_indices: Sequence[int]
    ) -> list[tuple[int, tuple[np.ndarray, np.ndarray]]]:
        pairs = self.assembler.column_batch(column_indices)
        return [(int(index), pair) for index, pair in zip(column_indices, pairs)]


class _InnerPairTask:
    """Callable computing a single element-pair block (inner-loop task).

    Task ids encode the pair as ``source * M + target``.
    """

    def __init__(self, assembler: ColumnAssembler) -> None:
        self.assembler = assembler
        self.n_elements = assembler.n_elements

    def __call__(self, encoded: int) -> np.ndarray:
        source, target = divmod(int(encoded), self.n_elements)
        _, blocks = self.assembler.column_blocks(source, target_indices=[target])
        return blocks[0]


class _InnerPairBatchTask:
    """Batched companion of the inner-loop task: one call per (source, chunk).

    A chunk of the inner loop lies within one column, but the grouping below
    stays correct for arbitrary chunks spanning several sources.
    """

    def __init__(self, assembler: ColumnAssembler) -> None:
        self.assembler = assembler
        self.n_elements = assembler.n_elements

    def __call__(self, encoded_ids: Sequence[int]) -> list[tuple[int, np.ndarray]]:
        by_source: dict[int, list[tuple[int, int]]] = {}
        for code in encoded_ids:
            source, target = divmod(int(code), self.n_elements)
            by_source.setdefault(source, []).append((int(code), target))
        block_of: dict[int, np.ndarray] = {}
        for source, entries in by_source.items():
            targets = [target for _, target in entries]
            _, blocks = self.assembler.column_blocks(source, target_indices=targets)
            for (code, _), block in zip(entries, blocks):
                block_of[code] = block
        return [(int(code), block_of[int(code)]) for code in encoded_ids]


def assemble_system_parallel(
    mesh: Mesh,
    soil: SoilModel,
    gpr: float = DEFAULT_GPR,
    options: AssemblyOptions | None = None,
    kernel: LayeredKernel | None = None,
    parallel: ParallelOptions | None = None,
    collect_column_times: bool = True,
) -> LinearSystem:
    """Assemble the Galerkin system with parallel matrix generation.

    Drop-in replacement for :func:`repro.bem.assembly.assemble_system`; the
    returned system carries the parallel-execution metadata
    (``parallel_wall_seconds``, ``schedule``, ``n_workers``, ...).
    """
    if parallel is None:
        parallel = ParallelOptions(backend=Backend.SERIAL, n_workers=1)
    options = options or AssemblyOptions()
    if options.hierarchical is not None:
        raise ParallelExecutionError(
            "the hierarchical engine has no parallel *column* backend; use "
            "AssemblyOptions(hierarchical=HierarchicalControl(workers=...)) "
            "through assemble_system — the sharded block backend of "
            "repro.parallel.block_backend executes the cluster-pair partition "
            "of repro.parallel.costs.partition_block_work in parallel"
        )
    if kernel is None:
        kernel = kernel_for_soil(soil, options.series_control)
    dof_manager = DofManager(mesh, options.element_type)
    assembler = ColumnAssembler(
        mesh, kernel, dof_manager, options.n_gauss, adaptive=options.adaptive
    )

    start = wall_clock()
    columns, parallel_metadata = generate_columns_parallel(assembler, parallel)
    generation_seconds = wall_clock() - start

    metadata = {
        "matrix_generation_seconds": generation_seconds,
        "n_elements": mesh.n_elements,
        "n_dofs": dof_manager.n_dofs,
        "element_type": options.element_type.value,
        "n_gauss": options.n_gauss,
        "soil_layers": soil.n_layers,
        "backend": parallel.backend.value,
        "loop": parallel.loop.value,
        "schedule": parallel.schedule.label(),
        "n_workers": parallel.n_workers,
        "parallel_wall_seconds": parallel_metadata["parallel_wall_seconds"],
        "n_chunks": parallel_metadata["n_chunks"],
    }
    if collect_column_times:
        metadata["column_seconds"] = parallel_metadata["column_seconds"]

    system = assemble_from_columns(columns, dof_manager, gpr=gpr, metadata=metadata)
    if system.dof_manager.n_dofs != dof_manager.n_dofs:  # pragma: no cover - defensive
        raise ParallelExecutionError("inconsistent dof count after parallel assembly")
    return system
