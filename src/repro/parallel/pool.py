"""Persistent worker pool: sharded-backend processes reused across assemblies.

The sharded hierarchical block backend of :mod:`repro.parallel.block_backend`
is a pure message-passing protocol — every task is a self-contained cluster
block, only plain arrays travel between master and workers.  Until now each
assembly paid the full price of that protocol's *setup*: a fresh ``fork`` of
the worker processes, pool construction and teardown, and cold worker-side
caches.  For one large solve that cost is noise; for a *campaign* of many
scenario assemblies (:mod:`repro.campaign`) it dominates the per-scenario
overhead — the ROADMAP's "persistent worker pool reused across assemblies
would amortise the fork+IPC cost of repeated sweeps".

:class:`WorkerPool` keeps the workers alive across assemblies:

* **spawn-once** — worker processes are forked when the pool is created and
  survive until :meth:`WorkerPool.close` (or the ``with`` block) ends;
* **task-queue protocol** — each run ships its task context (the block task
  capturing assembler, cluster tree and partition) to the workers once, then
  dispatches explicit LPT shards exactly like
  :meth:`~repro.parallel.executor.ScheduledExecutor.run_partition`; results
  are folded through the same :func:`~repro.parallel.executor.collect_chunk_results`;
* **multi-run multiplexing** — :meth:`submit` registers a run and returns a
  handle without blocking; :meth:`service` advances one step of the event
  loop (dispatch queued shards, collect replies for *any* in-flight run);
  :meth:`result` folds a finished run.  Job ids are unique over the pool's
  lifetime and every reply names its job, so shards of interleaved runs
  (concurrent campaign structure groups) route to the right run.  Workers
  hold one task context *per live run* (installed lazily, dropped when the
  run finishes), and each worker owns **at most one in-flight shard at a
  time** — dispatch order, per-worker chunk counters and hence the fault
  coordinates of :class:`~repro.resilience.FaultPlan` stay deterministic for
  any number of concurrent runs.  :meth:`run_partition` is ``submit`` +
  drain + ``result``, so single-run callers are unchanged;
* **resilience policy** (:class:`~repro.resilience.RetryPolicy`) — a worker
  that dies is detected through its broken pipe and respawned (bounded); a
  worker that holds a chunk past ``chunk_timeout`` is SIGKILLed as hung;
  result payloads carry content checksums so corrupted results are rejected
  instead of folded into the operator; every failed chunk is re-dispatched
  after a deterministic backoff, and once the retry budget is exhausted the
  pool walks the degradation ladder — disable the slot (shrink the pool),
  then execute the chunk serially in the master.  Because block tasks are
  pure functions of the block, every recovery path is bit-identical to the
  undisturbed execution, so the deterministic-reduction contract of the
  sharded backend survives the full failure zoo.  What happened is recorded
  in :attr:`WorkerPool.health` (a :class:`~repro.resilience.PoolHealth`);
* **fault injection** — a :class:`~repro.resilience.FaultPlan` passed at
  construction ships to the workers inside the task context; workers fire
  crashes/hangs/delays/corruptions at exact (worker, chunk) coordinates so
  the chaos suite can assert the contract above on demand;
* **serial fallback** — ``backend="serial"`` executes every shard in-process
  with the identical protocol semantics (used on platforms without ``fork``
  and as the deterministic reference in tests).

All fault handling flows through the single event loop below — no helper
threads, no signal-handler side channels — mirroring the event-driven
single-loop handling of asynchronous process events in non-threaded CCP
interpreters: one deterministic place observes deaths, deadlines and
payloads, and decides recovery.

Worker-side caches (the process-wide
:class:`~repro.bem.geometry_cache.GeometryCache`) stay warm across the
assemblies of a campaign, which is where the cross-scenario reuse of in-plane
pair geometry pays off a second time inside the workers.
"""

from __future__ import annotations

import multiprocessing as mp
import traceback
from collections import deque
from typing import Any, Callable, Sequence

from repro.exceptions import ParallelExecutionError
from repro.observe import MetricsRegistry, ensure_tracer
from repro.parallel.executor import (
    TaskRunResult,
    _execute_chunk,
    collect_chunk_results,
    normalize_partition,
)
from repro.resilience import (
    DEFAULT_RETRY_POLICY,
    FaultInjector,
    FaultPlan,
    PoolHealth,
    RetryPolicy,
    corrupt_payload,
    payload_checksum,
)
from repro.resilience.channel import (
    pause,
    recv_message,
    recv_ready,
    wait_readable,
)
from repro.resilience.faults import execute_pre_fault
from repro.timing import wall_clock

__all__ = ["WorkerPool"]

#: Seconds between liveness checks while waiting for shard results.
_POLL_SECONDS: float = 0.2

#: Default cap on worker respawns over a pool's lifetime.  Respawning is the
#: recovery path for *rare* deaths; a task that keeps killing its workers must
#: eventually stop consuming fresh processes — after the budget the slot is
#: disabled (``degrade="serial"``) or the run aborts (``degrade="raise"``).
DEFAULT_MAX_RESPAWNS: int = 8

#: Seconds granted at each escalation step of :meth:`WorkerPool.close`
#: (stop message → SIGTERM → SIGKILL).
DEFAULT_SHUTDOWN_GRACE: float = 5.0


def _pool_worker_main(
    worker_id: int, generation: int, connection, stale_connections
) -> None:
    """Long-lived worker loop: receive contexts and shard chunks, send results.

    Messages from the master (tuples, first element is the kind):

    ``("context", seq, task_fn, batch_fn, cost_hint, fault_plan, verify)``
        Install task context ``seq`` (one per live run; a worker can hold
        several at once while runs are multiplexed).  ``seq == 0`` clears
        every held context.  A non-empty ``fault_plan`` arms the
        deterministic fault injector (once per process — the injector's
        chunk counter spans every later run).  ``verify`` asks for a content
        checksum on every result payload of that context.
    ``("drop", seq)``
        Forget context ``seq`` (its run finished; other contexts survive).
    ``("run", job_id, seq, indices)``
        Execute one shard chunk under context ``seq`` through the shared
        :func:`~repro.parallel.executor._execute_chunk` and reply
        ``("result", job_id, output, digest)`` — or ``("error", job_id,
        text)`` when the task raises or the context is unknown (a master
        bug).
    ``("stop",)``
        Exit the loop.

    ``generation`` counts how many processes have occupied this slot before
    (0 for the original spawn); the fault injector uses it so injected
    crashes fire in the original process only (except ``respawn_crash``).
    """
    # A forked child inherits the master ends of every live pipe — its own
    # and those of every earlier worker.  Close them all: a sibling's death
    # must reach the master as a broken pipe, and the master's own death must
    # reach *this* worker as EOF on recv (an inherited copy of our master end
    # would keep the pipe open forever and orphan the worker).
    for stale in stale_connections:
        try:
            stale.close()
        except OSError:  # pragma: no cover - already closed
            pass
    contexts: dict[int, tuple[Any, Any, Any, bool]] = {}
    injector: FaultInjector | None = None
    while True:
        try:
            message = recv_message(connection)
        except (EOFError, OSError):  # master is gone
            break
        kind = message[0]
        if kind == "stop":
            break
        if kind == "context":
            _, seq, task_fn, batch_fn, cost_hint, fault_plan, verify = message
            if seq == 0:
                contexts.clear()
                continue
            contexts[seq] = (task_fn, batch_fn, cost_hint, verify)
            if injector is None and fault_plan is not None and not fault_plan.is_empty:
                injector = FaultInjector(fault_plan, worker_id, generation)
            continue
        if kind == "drop":
            contexts.pop(message[1], None)
            continue
        if kind != "run":  # pragma: no cover - defensive
            connection.send(("error", -1, f"unknown message kind {kind!r}"))
            continue
        _, job_id, seq, indices = message
        context = contexts.get(seq)
        if context is None:
            connection.send(
                ("error", job_id, f"worker {worker_id} does not hold context {seq}")
            )
            continue
        task_fn, batch_fn, cost_hint, verify = context
        firing = injector.next_chunk() if injector is not None else None
        if firing is not None:
            execute_pre_fault(firing)  # crash/hang faults never return
        try:
            output = _execute_chunk(task_fn, batch_fn, cost_hint, indices)
        except BaseException:
            connection.send(("error", job_id, traceback.format_exc()))
            continue
        # The digest covers the *intact* payload: an injected corruption is
        # applied afterwards, modelling damage in flight that the master's
        # verification must catch.
        digest = payload_checksum(output) if verify else None
        if firing is not None and firing.kind == "corrupt":
            output = corrupt_payload(output, injector.plan.seed, worker_id, firing.chunk)
        connection.send(("result", job_id, output, digest))


class _WorkerHandle:
    """One pool worker: its process, pipe and currently installed contexts."""

    __slots__ = ("process", "connection", "context_seqs")

    def __init__(self, process, connection) -> None:
        self.process = process
        self.connection = connection
        self.context_seqs: set[int] = set()


class _PoolRun:
    """One in-flight :meth:`WorkerPool.submit` run.

    Callers treat it as an opaque handle: poll :attr:`done` between
    :meth:`WorkerPool.service` steps, then fold with
    :meth:`WorkerPool.result`.
    """

    __slots__ = (
        "seq",
        "task",
        "batch_fn",
        "cost_hint",
        "label",
        "chunks",
        "indices",
        "job_ids",
        "chunk_of",
        "raw",
        "error",
        "done",
        "started",
        "wall",
    )

    def __init__(self, seq, task, batch_fn, cost_hint, label, chunks, indices):
        self.seq = seq
        self.task = task
        self.batch_fn = batch_fn
        self.cost_hint = cost_hint
        self.label = label
        self.chunks = chunks
        self.indices = indices
        self.job_ids: list[int] = []
        self.chunk_of: dict[int, list[int]] = {}
        self.raw: dict[int, list[tuple[int, Any, float]]] = {}
        self.error: BaseException | None = None
        self.done = False
        self.started = 0.0
        self.wall = 0.0


class WorkerPool:
    """Spawn-once pool of block-task workers shared across assemblies.

    Use as a context manager (or call :meth:`close` explicitly) so the worker
    processes are torn down deterministically::

        with WorkerPool(n_workers=4) as pool:
            system_a = assemble_system(mesh_a, soil, options=opts, pool=pool)
            system_b = assemble_system(mesh_b, soil, options=opts, pool=pool)

    Parameters
    ----------
    n_workers:
        Number of persistent workers (>= 1).
    backend:
        ``"process"`` (default) forks long-lived worker processes;
        ``"serial"`` executes every shard in the calling process with the same
        protocol semantics (fallback for fork-less platforms and tests; the
        resilience policy and fault plan do not apply to it).
    max_respawns:
        Total worker respawns tolerated over the pool's lifetime before a
        dying slot is disabled (``retry.degrade == "serial"``) or the run
        aborts (``"raise"``).
    retry:
        The :class:`~repro.resilience.RetryPolicy` governing chunk deadlines,
        retry/backoff, payload verification and the degradation ladder.
        Defaults to :data:`~repro.resilience.DEFAULT_RETRY_POLICY`.
    fault_plan:
        Optional :class:`~repro.resilience.FaultPlan` armed in the workers
        (chaos testing); ``None`` injects nothing.
    tracer:
        Optional :class:`~repro.observe.Tracer`.  An enabled tracer receives
        one *event* per dispatch/result/retry/respawn/timeout/fallback with
        volatile ``slot``/``job``/``t`` coordinates (scheduling facts, never
        part of the deterministic span projection), and the pool's counters
        are kept in the tracer's shared :class:`~repro.observe.MetricsRegistry`
        under ``pool.*`` names.  Defaults to the no-op tracer.
    """

    def __init__(
        self,
        n_workers: int,
        backend: str = "process",
        max_respawns: int = DEFAULT_MAX_RESPAWNS,
        retry: RetryPolicy | None = None,
        fault_plan: FaultPlan | None = None,
        tracer=None,
    ) -> None:
        if n_workers < 1:
            raise ParallelExecutionError(f"n_workers must be >= 1, got {n_workers}")
        if backend not in ("process", "serial"):
            raise ParallelExecutionError(
                f"WorkerPool backend must be 'process' or 'serial', got {backend!r}"
            )
        self.n_workers = int(n_workers)
        self.backend = backend
        self.max_respawns = int(max_respawns)
        self.retry = DEFAULT_RETRY_POLICY if retry is None else retry
        self.fault_plan = fault_plan
        self.health = PoolHealth()
        self.shutdown_grace = DEFAULT_SHUTDOWN_GRACE
        self._workers: list[_WorkerHandle | None] = [None] * self.n_workers
        self._spawn_counts = [0] * self.n_workers
        self._disabled: set[int] = set()
        self._context_seq = 0
        self._job_counter = 0
        self._closed = False
        # Event-loop state shared by every in-flight run.
        self._runs: dict[int, _PoolRun] = {}
        self._job_run: dict[int, _PoolRun] = {}
        self._pending: dict[int, tuple[int, list[int]]] = {}
        self._slot_job: dict[int, int] = {}
        self._deadlines: dict[int, float] = {}
        self._attempts: dict[int, int] = {}
        self._ready: deque[tuple[int, int | None]] = deque()
        self.tracer = ensure_tracer(tracer)
        # An enabled tracer shares its registry so pool counters land in the
        # same snapshot as the campaign's; the NullTracer singleton's registry
        # is shared process-wide, so a silent pool gets a private one.
        self.metrics: MetricsRegistry = (
            self.tracer.metrics if self.tracer.enabled else MetricsRegistry()
        )
        self._run_start = 0.0
        for key in ("runs", "chunks_dispatched", "tasks_executed", "contexts_shipped"):
            self.metrics.counter(f"pool.{key}")  # pre-create: stats keys exist at zero
        if self.backend == "process":
            self._mp_context = mp.get_context("fork")
            for slot in range(self.n_workers):
                self._spawn(slot)

    @property
    def stats(self) -> dict[str, int]:
        """Lifetime execution counters merged with the health counters.

        The counters live in :attr:`metrics` under dotted ``pool.*`` names;
        this property strips the prefix to preserve the historical flat keys
        (``runs``, ``chunks_dispatched``, ...).
        """
        counters = {
            name[len("pool."):]: int(value)
            for name, value in self.metrics.counters_dict().items()
            if name.startswith("pool.")
        }
        return {**counters, **self.health.counters()}

    def _trace_event(self, name: str, /, **data: Any) -> None:
        """Emit one scheduling event (volatile coordinates + relative time)."""
        if self.tracer.enabled:
            data["t"] = round(wall_clock() - self._run_start, 6)
            self.tracer.event(name, **data)

    # ------------------------------------------------------------------ lifecycle

    def _spawn(self, slot: int) -> _WorkerHandle:
        """Fork a fresh worker into ``slot`` (initial spawn and respawn)."""
        parent_conn, child_conn = self._mp_context.Pipe(duplex=True)
        # Master-side pipe ends this fork will inherit — the other live
        # workers' and its own; the child closes them first thing (see
        # _pool_worker_main).
        stale = [h.connection for h in self._workers if h is not None] + [parent_conn]
        generation = self._spawn_counts[slot]
        self._spawn_counts[slot] += 1
        process = self._mp_context.Process(
            target=_pool_worker_main,
            args=(slot, generation, child_conn, stale),
            daemon=True,
            name=f"repro-pool-{slot}",
        )
        process.start()
        child_conn.close()  # the child owns its end; keeping a copy would mask EOF
        handle = _WorkerHandle(process, parent_conn)
        self._workers[slot] = handle
        return handle

    def _retire_handle(self, slot: int) -> None:
        """Close and join whatever process currently occupies ``slot``."""
        old = self._workers[slot]
        if old is None:
            return
        try:
            old.connection.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if old.process.is_alive():
            old.process.terminate()
        old.process.join(timeout=self.shutdown_grace)
        if old.process.is_alive():  # pragma: no cover - SIGTERM ignored
            old.process.kill()
            old.process.join(timeout=self.shutdown_grace)
        self._workers[slot] = None

    def _respawn_or_disable(self, slot: int) -> _WorkerHandle | None:
        """Replace a dead worker, or disable the slot once the budget is spent.

        Returns the fresh handle, or ``None`` when the slot was disabled
        (degradation step "shrink the pool").  With ``retry.degrade ==
        "raise"`` an exhausted budget aborts instead, preserving the
        fail-fast semantics of the pre-resilience pool.
        """
        if self.health.respawns >= self.max_respawns:
            if self.retry.degrade == "raise":
                raise ParallelExecutionError(
                    f"pool worker {slot} died and the respawn budget "
                    f"({self.max_respawns}) is exhausted"
                )
            self._disable_slot(slot)
            return None
        self.health.bump("respawns", slot=slot)
        self._trace_event("pool.respawn", slot=slot)
        self._retire_handle(slot)
        return self._spawn(slot)

    def _disable_slot(self, slot: int) -> None:
        """Permanently remove ``slot`` from the pool (budget exhausted)."""
        if slot in self._disabled:
            return
        self._disabled.add(slot)
        self.health.bump("disabled_slots", slot=slot)
        self._retire_handle(slot)

    def close(self) -> None:
        """Stop and join every worker, escalating to SIGKILL (idempotent).

        Each worker first gets a ``stop`` message and ``shutdown_grace``
        seconds to exit on its own, then SIGTERM, then SIGKILL — a hung
        worker (stuck in a task, ignoring SIGTERM) must never block
        interpreter exit or leak past the test process.
        """
        if self._closed:
            return
        self._closed = True
        for handle in self._workers:
            if handle is None:
                continue
            try:
                handle.connection.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for handle in self._workers:
            if handle is None:
                continue
            handle.process.join(timeout=self.shutdown_grace)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=self.shutdown_grace)
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(timeout=self.shutdown_grace)
            try:
                handle.connection.close()
            except OSError:  # pragma: no cover - already closed
                pass
        self._workers = [None] * self.n_workers

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-dependent
        try:
            self.close()
        except Exception:  # contracts: disable=RES001 -- interpreter-teardown guard: __del__ must never raise
            pass

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    def alive_workers(self) -> int:
        """Number of currently live worker processes (0 for the serial backend)."""
        return sum(
            1
            for handle in self._workers
            if handle is not None and handle.process.is_alive()
        )

    def active_slots(self) -> list[int]:
        """Slots still participating in dispatch (not disabled)."""
        return [slot for slot in range(self.n_workers) if slot not in self._disabled]

    # ------------------------------------------------------------------ execution

    def run_partition(
        self,
        task: Callable[[int], Any],
        partition: Sequence[Sequence[int]],
        batch_fn: Callable[[Sequence[int]], list[tuple[int, Any]]] | None = None,
        cost_hint: Any = None,
        label: str = "Pool",
    ) -> TaskRunResult:
        """Execute tasks under an explicit worker partition on the live pool.

        Mirrors :meth:`~repro.parallel.executor.ScheduledExecutor.run_partition`
        — one shard per chunk, duplicate-assignment rejection, results folded
        into a :class:`~repro.parallel.executor.TaskRunResult` — but ships the
        task context over the persistent workers' pipes instead of relying on
        fork-time inheritance, so one pool serves any number of assemblies.
        Shards beyond the active worker count are queued and dispatched as
        workers free up.  Worker deaths, hangs and corrupted payloads are
        recovered per the pool's :class:`~repro.resilience.RetryPolicy`;
        recoveries are bit-identical to the undisturbed execution because
        block tasks are pure.

        Equivalent to :meth:`submit` + :meth:`service` until done +
        :meth:`result`; use those directly to multiplex several runs over
        one pool.
        """
        run = self.submit(
            task, partition, batch_fn=batch_fn, cost_hint=cost_hint, label=label
        )
        while not run.done:
            self.service()
        return self.result(run)

    def submit(
        self,
        task: Callable[[int], Any],
        partition: Sequence[Sequence[int]],
        batch_fn: Callable[[Sequence[int]], list[tuple[int, Any]]] | None = None,
        cost_hint: Any = None,
        label: str = "Pool",
    ) -> _PoolRun:
        """Register a run and queue its shards; returns without blocking.

        The returned handle's ``done`` flag flips once every shard has been
        collected (drive the loop with :meth:`service`); fold it with
        :meth:`result`.  The serial backend executes inline, so the handle
        comes back already done.

        Shard ``position`` of every run prefers worker slot ``position %
        len(active)`` and **waits for that slot** rather than stealing an
        idle one: per-worker chunk order (and with it the fault-injection
        coordinates and :class:`~repro.resilience.PoolHealth` counters) is a
        function of submit order alone, never of completion timing — the
        determinism contract for multiplexed runs.
        """
        if self._closed:
            raise ParallelExecutionError("the worker pool is closed")
        chunks, indices = normalize_partition(partition)
        self.metrics.inc("pool.runs")
        self.metrics.inc("pool.chunks_dispatched", len(chunks))
        self.metrics.inc("pool.tasks_executed", len(indices))
        self._context_seq += 1
        run = _PoolRun(self._context_seq, task, batch_fn, cost_hint, label, chunks, indices)
        run.started = wall_clock()
        self._run_start = run.started
        for chunk in chunks:
            job_id = self._job_counter
            self._job_counter += 1
            run.job_ids.append(job_id)
            run.chunk_of[job_id] = chunk

        if self.backend == "serial":
            for job_id, chunk in zip(run.job_ids, run.chunks):
                run.raw[job_id] = _execute_chunk(task, batch_fn, cost_hint, chunk)
            run.done = True
            run.wall = wall_clock() - run.started
            return run

        self._runs[run.seq] = run
        active = self.active_slots()
        for position, job_id in enumerate(run.job_ids):
            self._job_run[job_id] = run
            preferred = active[position % len(active)] if active else None
            self._ready.append((job_id, preferred))
        try:
            self._pump()
        except BaseException:
            self._abort_all()
            raise
        return run

    def service(self, timeout: float = _POLL_SECONDS) -> None:
        """Advance the event loop once: dispatch queued shards, collect replies.

        Waits up to ``timeout`` seconds for any in-flight worker to become
        readable, then drains ready replies, expires chunk deadlines and
        recovers dead workers.  Safe to call with nothing in flight (returns
        immediately).  All recovery (retry, respawn, degradation) happens
        here and in the dispatch path it triggers — callers multiplexing
        several runs just loop ``service()`` until their handles are done.
        """
        if self._closed or self.backend == "serial":
            return
        try:
            self._pump()
            if not self._pending:
                return
            connections: dict[Any, int] = {}
            for slot in self._slot_job:
                handle = self._workers[slot]
                if handle is not None:
                    connections[handle.connection] = slot
            ready = (
                wait_readable(list(connections), timeout=timeout)
                if connections
                else []
            )
            self._expire_deadlines()
            if not ready:
                self._recover_dead_workers()
            for connection in ready:
                slot = connections[connection]
                handle = self._workers[slot]
                if handle is None or handle.connection is not connection:
                    continue  # the slot was recycled while draining `ready`
                try:
                    message = recv_ready(connection)
                except (EOFError, OSError):
                    self._fail_slot_job(slot, "worker_died")
                    continue
                self._handle_message(slot, message)
            self._pump()
        except BaseException:
            # Whatever aborted the loop (a task error re-raised by a caller,
            # an exhausted budget, an interrupt), workers still owning shards
            # must be replaced before the error propagates — see _fail_run.
            self._abort_all()
            raise

    def result(self, run: _PoolRun) -> TaskRunResult:
        """Fold a finished run into a :class:`~repro.parallel.executor.TaskRunResult`.

        Raises the run's stored error when it failed (same exceptions
        :meth:`run_partition` would raise), or
        :class:`~repro.exceptions.ParallelExecutionError` when the run is
        still in flight.
        """
        if not run.done:
            raise ParallelExecutionError("pool run is still in flight")
        if run.error is not None:
            raise run.error
        raw = [run.raw[job_id] for job_id in run.job_ids]
        return collect_chunk_results(
            raw,
            run.indices,
            run.wall,
            len(run.chunks),
            self.n_workers,
            f"{run.label},{len(run.chunks)}",
            f"pool-{self.backend}",
        )

    # ------------------------------------------------------------------ process internals

    def _install_context(self, handle: _WorkerHandle, run: _PoolRun) -> None:
        """Ship one run's task context to one worker (if not already held)."""
        if run.seq in handle.context_seqs:
            return
        handle.connection.send(
            (
                "context",
                run.seq,
                run.task,
                run.batch_fn,
                run.cost_hint,
                self.fault_plan,
                self.retry.verify_payloads,
            )
        )
        handle.context_seqs.add(run.seq)
        self.metrics.inc("pool.contexts_shipped")

    def _serial_chunk(self, run: _PoolRun, chunk: list[int]) -> list[tuple[int, Any, float]]:
        """Execute one shard in the master (bottom of the degradation ladder).

        Runs the exact :func:`~repro.parallel.executor._execute_chunk` path a
        worker would, so a degraded chunk is bit-identical to the parallel
        one.
        """
        return _execute_chunk(run.task, run.batch_fn, run.cost_hint, chunk)

    def _pick_slot(self, preferred: int | None, active: list[int]) -> int | None:
        """Choose the worker for a queued shard, or ``None`` to keep waiting.

        An enabled ``preferred`` slot is honoured even while busy (wait, do
        not steal) — see :meth:`submit` for why; a disabled or absent
        preference takes the first idle active slot.
        """
        idle = [slot for slot in active if slot not in self._slot_job]
        if not idle:
            return None
        if preferred is not None and preferred not in self._disabled:
            return preferred if preferred in idle else None
        return idle[0]

    def _pump(self) -> None:
        """Dispatch every queued shard whose worker is free (FIFO scan).

        Shards blocked on a busy preferred slot stay queued; shards with no
        active slot left fall to the degradation ladder (serial in the
        master, or fail the run under ``degrade="raise"``).
        """
        if not self._ready:
            return
        remaining: deque[tuple[int, int | None]] = deque()
        while self._ready:
            job_id, preferred = self._ready.popleft()
            run = self._job_run.get(job_id)
            if run is None:
                continue  # its run already failed; the entry is stale
            active = self.active_slots()
            if not active:
                if self.retry.degrade == "raise":
                    self._fail_run(
                        run, ParallelExecutionError("no active pool workers left")
                    )
                    continue
                chunk = run.chunk_of[job_id]
                self.health.bump(
                    "serial_fallback_chunks", job=job_id, reason="no_active_workers"
                )
                self._trace_event(
                    "pool.serial_fallback", job=job_id, reason="no_active_workers"
                )
                try:
                    output = self._serial_chunk(run, chunk)
                except Exception as error:
                    self._fail_run(run, error)
                    continue
                self._record_result(run, job_id, output)
                continue
            slot = self._pick_slot(preferred, active)
            if slot is None:
                remaining.append((job_id, preferred))
                continue
            # Bookkeeping lands before the dispatch: a budget-exhaustion
            # raise inside must leave the job pending so _fail_run replaces
            # the slot that owned it, keeping the pool reusable.
            self._pending[job_id] = (slot, run.chunk_of[job_id])
            self._slot_job[slot] = job_id
            try:
                dispatched = self._dispatch(slot, job_id, run)
            except ParallelExecutionError as error:
                self._fail_run(run, error)
                continue
            if not dispatched:
                # The dispatch disabled the slot; requeue with no preference.
                self._pending.pop(job_id, None)
                if self._slot_job.get(slot) == job_id:
                    del self._slot_job[slot]
                self._ready.append((job_id, None))
                continue
            if self.retry.chunk_timeout is not None:
                self._deadlines[job_id] = wall_clock() + self.retry.chunk_timeout
        self._ready = remaining

    def _dispatch(self, slot: int, job_id: int, run: _PoolRun) -> bool:
        """Send one shard to one worker, respawning through send failures.

        Returns ``False`` when the slot got disabled instead (the caller must
        route the shard elsewhere).
        """
        chunk = run.chunk_of[job_id]
        while True:
            if slot in self._disabled:
                return False
            handle = self._workers[slot]
            if handle is None or not handle.process.is_alive():
                handle = self._respawn_or_disable(slot)
                if handle is None:
                    return False
            try:
                self._install_context(handle, run)
                handle.connection.send(("run", job_id, run.seq, chunk))
                self._trace_event("pool.dispatch", slot=slot, job=job_id, tasks=len(chunk))
                return True
            except (BrokenPipeError, OSError):
                if handle.process.is_alive():  # pragma: no cover - defensive
                    handle.process.terminate()
                handle.process.join(timeout=self.shutdown_grace)
                continue  # _respawn_or_disable picks it up on the next pass

    def _release_job(self, job_id: int) -> None:
        """Drop one job's in-flight bookkeeping (its slot becomes idle)."""
        entry = self._pending.pop(job_id, None)
        if entry is not None and self._slot_job.get(entry[0]) == job_id:
            del self._slot_job[entry[0]]
        self._deadlines.pop(job_id, None)

    def _record_result(self, run: _PoolRun, job_id: int, output) -> None:
        """Fold one shard's payload; finish the run when it was the last."""
        run.raw[job_id] = output
        if len(run.raw) == len(run.job_ids):
            run.done = True
            run.wall = wall_clock() - run.started
            self._runs.pop(run.seq, None)
            for finished in run.job_ids:
                self._job_run.pop(finished, None)
                self._attempts.pop(finished, None)
            self._drop_context(run.seq)

    def _handle_message(self, slot: int, message: tuple) -> None:
        """Route one worker reply: result, corrupt rejection or task error."""
        kind = message[0]
        job_id = message[1]
        entry = self._pending.get(job_id)
        if entry is None or entry[0] != slot:
            return  # stale payload from an aborted earlier run
        run = self._job_run[job_id]
        if kind == "error":
            # The reporting worker is healthy and idle again; only workers
            # still *holding* shards of the failed run get replaced.
            self._release_job(job_id)
            self._fail_run(
                run,
                ParallelExecutionError(f"pool worker {slot} failed:\n{message[2]}"),
            )
            return
        output, digest = message[2], message[3]
        if digest is not None and payload_checksum(output) != digest:
            self.health.bump("corrupt_rejections", job=job_id, slot=slot)
            self._trace_event("pool.corrupt", job=job_id, slot=slot)
            self._fail_job(job_id, "corrupt_payload")
            return
        self._trace_event("pool.result", job=job_id, slot=slot)
        self._release_job(job_id)
        self._record_result(run, job_id, output)

    def _fail_job(self, job_id: int, reason: str) -> None:
        """One chunk failed (death, hang, corruption): retry or degrade.

        Retries are requeued toward the failed slot after the policy's
        deterministic backoff; a chunk out of retries is executed serially in
        the master (``degrade="serial"``) or fails its run (``"raise"``).
        """
        entry = self._pending.get(job_id)
        if entry is None:
            return
        slot, chunk = entry
        run = self._job_run[job_id]
        self._attempts[job_id] = self._attempts.get(job_id, 0) + 1
        failures = self._attempts[job_id]
        if failures > self.retry.max_retries:
            if self.retry.degrade == "raise":
                # The job stays pending so _fail_run replaces the worker
                # that owned it, keeping the pool reusable.
                self._fail_run(
                    run,
                    ParallelExecutionError(
                        f"pool shard (job {job_id}) failed {failures} times "
                        f"(last reason: {reason}); retry budget "
                        f"({self.retry.max_retries}) exhausted"
                    ),
                )
                return
            self._release_job(job_id)
            self.health.bump("serial_fallback_chunks", job=job_id, reason=reason)
            self._trace_event("pool.serial_fallback", job=job_id, reason=reason)
            try:
                output = self._serial_chunk(run, chunk)
            except Exception as error:
                self._fail_run(run, error)
                return
            self._record_result(run, job_id, output)
            return
        self._release_job(job_id)
        self.health.bump("retries", job=job_id, slot=slot, reason=reason, attempt=failures)
        self._trace_event(
            "pool.retry", job=job_id, slot=slot, reason=reason, attempt=failures
        )
        pause(self.retry.backoff_delay(failures - 1))
        self._ready.appendleft((job_id, slot))

    def _fail_run(self, run: _PoolRun, error: BaseException) -> None:
        """Fail one run: purge its jobs and replace workers still holding them.

        A failed run abandons its outstanding shards; their workers would
        eventually block sending large results nobody reads, and a later
        run's blocking context send to such a worker would deadlock.  Fresh
        workers keep the pool serving its *other* in-flight runs and later
        submissions.  These are deliberate replacements, not crash
        recoveries, so they bypass the respawn budget (disabled slots stay
        disabled).
        """
        if run.done:
            return
        run.error = error
        run.done = True
        run.wall = wall_clock() - run.started
        self._runs.pop(run.seq, None)
        owner_slots: set[int] = set()
        for job_id in run.job_ids:
            entry = self._pending.pop(job_id, None)
            if entry is not None:
                owner_slots.add(entry[0])
                if self._slot_job.get(entry[0]) == job_id:
                    del self._slot_job[entry[0]]
            self._deadlines.pop(job_id, None)
            self._attempts.pop(job_id, None)
            self._job_run.pop(job_id, None)
        if self._ready:
            self._ready = deque(
                item for item in self._ready if item[0] in self._job_run
            )
        for slot in sorted(owner_slots):
            if slot in self._disabled:
                continue
            self._retire_handle(slot)
            self._spawn(slot)
        self._drop_context(run.seq)

    def _fail_slot_job(self, slot: int, reason: str) -> None:
        """Fail the shard owned by one lost worker (at most one per slot)."""
        job_id = self._slot_job.get(slot)
        if job_id is not None and job_id in self._pending:
            self._fail_job(job_id, reason)

    def _kill_hung_worker(self, slot: int) -> None:
        """SIGKILL a worker that held a chunk past its deadline."""
        handle = self._workers[slot]
        if handle is None:
            return
        if handle.process.is_alive():
            self.health.bump("hung_kills", slot=slot)
            handle.process.kill()
        handle.process.join(timeout=self.shutdown_grace)

    def _expire_deadlines(self) -> None:
        """Kill workers holding chunks past their deadline; retry the chunks."""
        now = wall_clock()
        expired = sorted(
            job_id
            for job_id, deadline in self._deadlines.items()
            if deadline <= now and job_id in self._pending
        )
        for job_id in expired:
            if job_id not in self._pending:
                continue  # failed alongside an earlier expiry
            if self._deadlines.get(job_id, now + 1.0) > now:
                continue  # re-dispatched meanwhile: a fresh deadline applies
            slot, _ = self._pending[job_id]
            self.health.bump("chunk_timeouts", job=job_id, slot=slot)
            self._trace_event("pool.timeout", job=job_id, slot=slot)
            self._kill_hung_worker(slot)
            self._fail_slot_job(slot, "chunk_timeout")

    def _recover_dead_workers(self) -> None:
        """Fail the shards of workers that died while owning them."""
        for slot in sorted(self._slot_job):
            handle = self._workers[slot]
            if handle is None or not handle.process.is_alive():
                self._fail_slot_job(slot, "worker_died")

    def _drop_context(self, seq: int) -> None:
        """Tell workers to forget a finished run's task context.

        The context captures a whole assembly (assembler arrays, cluster
        tree); without the drop every idle worker would pin that footprint
        until the pool closes.  With no other run in flight the cheaper
        clear-all message resets every worker instead.  Sequence 0 is never
        a real context id (``_context_seq`` pre-increments from 0), so a
        stale ``run`` message can never match a cleared slot.
        """
        if not self._runs:
            self._clear_worker_contexts()
            return
        for handle in self._workers:
            if handle is None or seq not in handle.context_seqs:
                continue
            try:
                handle.connection.send(("drop", seq))
            except (BrokenPipeError, OSError):
                pass  # dead worker: lazily respawned at the next dispatch
            handle.context_seqs.discard(seq)

    def _clear_worker_contexts(self) -> None:
        """Clear every held context on every worker (no run in flight)."""
        for handle in self._workers:
            if handle is None or not handle.context_seqs:
                continue
            try:
                handle.connection.send(("context", 0, None, None, None, None, False))
            except (BrokenPipeError, OSError):
                pass  # dead worker: lazily respawned at the next dispatch
            handle.context_seqs.clear()

    def _abort_all(self) -> None:
        """Fail every in-flight run (an exception is propagating past the loop)."""
        for run in list(self._runs.values()):
            self._fail_run(run, ParallelExecutionError("pool run aborted"))
        self._ready.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WorkerPool(n_workers={self.n_workers}, backend={self.backend!r}, "
            f"alive={self.alive_workers()}, closed={self._closed})"
        )
