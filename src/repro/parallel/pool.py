"""Persistent worker pool: sharded-backend processes reused across assemblies.

The sharded hierarchical block backend of :mod:`repro.parallel.block_backend`
is a pure message-passing protocol — every task is a self-contained cluster
block, only plain arrays travel between master and workers.  Until now each
assembly paid the full price of that protocol's *setup*: a fresh ``fork`` of
the worker processes, pool construction and teardown, and cold worker-side
caches.  For one large solve that cost is noise; for a *campaign* of many
scenario assemblies (:mod:`repro.campaign`) it dominates the per-scenario
overhead — the ROADMAP's "persistent worker pool reused across assemblies
would amortise the fork+IPC cost of repeated sweeps".

:class:`WorkerPool` keeps the workers alive across assemblies:

* **spawn-once** — worker processes are forked when the pool is created and
  survive until :meth:`WorkerPool.close` (or the ``with`` block) ends;
* **task-queue protocol** — each assembly ships its task context (the block
  task capturing assembler, cluster tree and partition) to the workers once,
  then dispatches explicit LPT shards exactly like
  :meth:`~repro.parallel.executor.ScheduledExecutor.run_partition`; results
  are folded through the same :func:`~repro.parallel.executor.collect_chunk_results`;
* **worker-death detection and respawn** — a worker that dies (killed,
  OOM-reaped, crashed) is detected through its broken pipe, a replacement is
  forked, the current context re-shipped and the lost shard re-executed.
  Because block tasks are pure functions of the block, the re-executed shard
  is bit-identical to what the dead worker would have produced, so the
  deterministic-reduction contract of the sharded backend survives respawns;
* **serial fallback** — ``backend="serial"`` executes every shard in-process
  with the identical protocol semantics (used on platforms without ``fork``
  and as the deterministic reference in tests).

Worker-side caches (the process-wide
:class:`~repro.bem.geometry_cache.GeometryCache`) stay warm across the
assemblies of a campaign, which is where the cross-scenario reuse of in-plane
pair geometry pays off a second time inside the workers.
"""

from __future__ import annotations

import multiprocessing as mp
import multiprocessing.connection
import traceback
from typing import Any, Callable, Sequence

from repro.exceptions import ParallelExecutionError
from repro.parallel.executor import (
    TaskRunResult,
    _execute_chunk,
    collect_chunk_results,
    normalize_partition,
)
from repro.timing import wall_clock

__all__ = ["WorkerPool"]

#: Seconds between liveness checks while waiting for shard results.
_POLL_SECONDS: float = 0.2

#: Default cap on worker respawns over a pool's lifetime.  Respawning is the
#: recovery path for *rare* deaths; a task that keeps killing its workers must
#: eventually fail loudly instead of looping forever.
DEFAULT_MAX_RESPAWNS: int = 8


def _pool_worker_main(worker_id: int, connection, stale_connections) -> None:
    """Long-lived worker loop: receive contexts and shard chunks, send results.

    Messages from the master (tuples, first element is the kind):

    ``("context", seq, task_fn, batch_fn, cost_hint)``
        Install task context ``seq``; replaces any previous context.
    ``("run", job_id, seq, indices)``
        Execute one shard chunk under context ``seq`` through the shared
        :func:`~repro.parallel.executor._execute_chunk` and reply
        ``("result", job_id, output)`` — or ``("error", job_id, text)`` when
        the task raises or the context is stale (a master bug).
    ``("stop",)``
        Exit the loop.
    """
    # A forked child inherits the master ends of every live pipe — its own
    # and those of every earlier worker.  Close them all: a sibling's death
    # must reach the master as a broken pipe, and the master's own death must
    # reach *this* worker as EOF on recv (an inherited copy of our master end
    # would keep the pipe open forever and orphan the worker).
    for stale in stale_connections:
        try:
            stale.close()
        except OSError:  # pragma: no cover - already closed
            pass
    context_seq = -1
    task_fn: Callable[[int], Any] | None = None
    batch_fn = None
    cost_hint = None
    while True:
        try:
            message = connection.recv()
        except (EOFError, OSError):  # master is gone
            break
        kind = message[0]
        if kind == "stop":
            break
        if kind == "context":
            _, context_seq, task_fn, batch_fn, cost_hint = message
            continue
        if kind != "run":  # pragma: no cover - defensive
            connection.send(("error", -1, f"unknown message kind {kind!r}"))
            continue
        _, job_id, seq, indices = message
        if seq != context_seq:
            connection.send(
                ("error", job_id, f"worker {worker_id} holds context {context_seq}, "
                 f"job expects {seq}")
            )
            continue
        try:
            output = _execute_chunk(task_fn, batch_fn, cost_hint, indices)
        except BaseException:
            connection.send(("error", job_id, traceback.format_exc()))
            continue
        connection.send(("result", job_id, output))


class _WorkerHandle:
    """One pool worker: its process, pipe and currently installed context."""

    __slots__ = ("process", "connection", "context_seq")

    def __init__(self, process, connection) -> None:
        self.process = process
        self.connection = connection
        self.context_seq = -1


class WorkerPool:
    """Spawn-once pool of block-task workers shared across assemblies.

    Use as a context manager (or call :meth:`close` explicitly) so the worker
    processes are torn down deterministically::

        with WorkerPool(n_workers=4) as pool:
            system_a = assemble_system(mesh_a, soil, options=opts, pool=pool)
            system_b = assemble_system(mesh_b, soil, options=opts, pool=pool)

    Parameters
    ----------
    n_workers:
        Number of persistent workers (>= 1).
    backend:
        ``"process"`` (default) forks long-lived worker processes;
        ``"serial"`` executes every shard in the calling process with the same
        protocol semantics (fallback for fork-less platforms and tests).
    max_respawns:
        Total worker respawns tolerated over the pool's lifetime before a
        death is treated as fatal.
    """

    def __init__(
        self,
        n_workers: int,
        backend: str = "process",
        max_respawns: int = DEFAULT_MAX_RESPAWNS,
    ) -> None:
        if n_workers < 1:
            raise ParallelExecutionError(f"n_workers must be >= 1, got {n_workers}")
        if backend not in ("process", "serial"):
            raise ParallelExecutionError(
                f"WorkerPool backend must be 'process' or 'serial', got {backend!r}"
            )
        self.n_workers = int(n_workers)
        self.backend = backend
        self.max_respawns = int(max_respawns)
        self._workers: list[_WorkerHandle | None] = [None] * self.n_workers
        self._context_seq = 0
        self._context: tuple[Any, Any, Any] | None = None
        self._job_counter = 0
        self._closed = False
        self.stats: dict[str, int] = {
            "runs": 0,
            "chunks_dispatched": 0,
            "tasks_executed": 0,
            "contexts_shipped": 0,
            "respawns": 0,
        }
        if self.backend == "process":
            self._mp_context = mp.get_context("fork")
            for slot in range(self.n_workers):
                self._spawn(slot)

    # ------------------------------------------------------------------ lifecycle

    def _spawn(self, slot: int) -> _WorkerHandle:
        """Fork a fresh worker into ``slot`` (initial spawn and respawn)."""
        parent_conn, child_conn = self._mp_context.Pipe(duplex=True)
        # Master-side pipe ends this fork will inherit — the other live
        # workers' and its own; the child closes them first thing (see
        # _pool_worker_main).
        stale = [h.connection for h in self._workers if h is not None] + [parent_conn]
        process = self._mp_context.Process(
            target=_pool_worker_main,
            args=(slot, child_conn, stale),
            daemon=True,
            name=f"repro-pool-{slot}",
        )
        process.start()
        child_conn.close()  # the child owns its end; keeping a copy would mask EOF
        handle = _WorkerHandle(process, parent_conn)
        self._workers[slot] = handle
        return handle

    def _respawn(self, slot: int) -> _WorkerHandle:
        """Replace a dead worker, bounded by ``max_respawns``."""
        self.stats["respawns"] += 1
        if self.stats["respawns"] > self.max_respawns:
            raise ParallelExecutionError(
                f"pool worker {slot} died and the respawn budget "
                f"({self.max_respawns}) is exhausted"
            )
        old = self._workers[slot]
        if old is not None:
            try:
                old.connection.close()
            except OSError:  # pragma: no cover - already closed
                pass
            if old.process.is_alive():  # pragma: no cover - defensive
                old.process.terminate()
            old.process.join(timeout=5.0)
        return self._spawn(slot)

    def close(self) -> None:
        """Stop and join every worker (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for handle in self._workers:
            if handle is None:
                continue
            try:
                handle.connection.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for handle in self._workers:
            if handle is None:
                continue
            handle.process.join(timeout=5.0)
            if handle.process.is_alive():  # pragma: no cover - stuck worker
                handle.process.terminate()
                handle.process.join(timeout=5.0)
            try:
                handle.connection.close()
            except OSError:  # pragma: no cover - already closed
                pass
        self._workers = [None] * self.n_workers
        self._context = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-dependent
        try:
            self.close()
        except Exception:
            pass

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    def alive_workers(self) -> int:
        """Number of currently live worker processes (0 for the serial backend)."""
        return sum(
            1
            for handle in self._workers
            if handle is not None and handle.process.is_alive()
        )

    # ------------------------------------------------------------------ execution

    def run_partition(
        self,
        task: Callable[[int], Any],
        partition: Sequence[Sequence[int]],
        batch_fn: Callable[[Sequence[int]], list[tuple[int, Any]]] | None = None,
        cost_hint: Any = None,
        label: str = "Pool",
    ) -> TaskRunResult:
        """Execute tasks under an explicit worker partition on the live pool.

        Mirrors :meth:`~repro.parallel.executor.ScheduledExecutor.run_partition`
        — one shard per chunk, duplicate-assignment rejection, results folded
        into a :class:`~repro.parallel.executor.TaskRunResult` — but ships the
        task context over the persistent workers' pipes instead of relying on
        fork-time inheritance, so one pool serves any number of assemblies.
        Shards beyond ``n_workers`` are dispatched round-robin.
        """
        if self._closed:
            raise ParallelExecutionError("the worker pool is closed")
        chunks, indices = normalize_partition(partition)
        self.stats["runs"] += 1
        self.stats["chunks_dispatched"] += len(chunks)
        self.stats["tasks_executed"] += len(indices)
        start = wall_clock()

        if self.backend == "serial":
            raw = [_execute_chunk(task, batch_fn, cost_hint, chunk) for chunk in chunks]
        else:
            raw = self._run_process_chunks(task, batch_fn, cost_hint, chunks)

        wall = wall_clock() - start
        return collect_chunk_results(
            raw,
            indices,
            wall,
            len(chunks),
            self.n_workers,
            f"{label},{len(chunks)}",
            f"pool-{self.backend}",
        )

    # ------------------------------------------------------------------ process internals

    def _install_context(self, handle: _WorkerHandle) -> None:
        """Ship the current task context to one worker (if not already held)."""
        if handle.context_seq == self._context_seq:
            return
        task, batch_fn, cost_hint = self._context  # type: ignore[misc]
        handle.connection.send(("context", self._context_seq, task, batch_fn, cost_hint))
        handle.context_seq = self._context_seq
        self.stats["contexts_shipped"] += 1

    def _dispatch(self, slot: int, job_id: int, chunk: list[int]) -> None:
        """Send one shard to one worker, respawning through send failures."""
        while True:
            handle = self._workers[slot]
            if handle is None or not handle.process.is_alive():
                handle = self._respawn(slot)
            try:
                self._install_context(handle)
                handle.connection.send(("run", job_id, self._context_seq, chunk))
                return
            except (BrokenPipeError, OSError):
                if handle.process.is_alive():  # pragma: no cover - defensive
                    handle.process.terminate()
                handle.process.join(timeout=5.0)
                continue  # _respawn (bounded) picks it up on the next pass

    def _run_process_chunks(
        self, task, batch_fn, cost_hint, chunks: list[list[int]]
    ) -> list[list[tuple[int, Any, float]]]:
        # A new run means a new context: the task captures the assembly state
        # of *this* call, so workers must never reuse a previous one.
        self._context_seq += 1
        self._context = (task, batch_fn, cost_hint)

        # Job ids are unique over the pool's lifetime: a run aborted by an
        # error may leave results of old jobs in the pipes, and those must
        # never be mistaken for this run's shards.
        job_order: list[int] = []
        pending: dict[int, tuple[int, list[int]]] = {}
        raw: dict[int, list[tuple[int, Any, float]]] = {}
        try:
            for position, chunk in enumerate(chunks):
                job_id = self._job_counter
                self._job_counter += 1
                slot = position % self.n_workers
                pending[job_id] = (slot, chunk)
                job_order.append(job_id)
                self._dispatch(slot, job_id, chunk)

            while pending:
                connections = {
                    self._workers[slot].connection: slot  # type: ignore[union-attr]
                    for slot, _ in pending.values()
                    if self._workers[slot] is not None
                }
                ready = mp.connection.wait(list(connections), timeout=_POLL_SECONDS)
                if not ready:
                    self._recover_dead_workers(pending)
                    continue
                for connection in ready:
                    slot = connections[connection]
                    try:
                        message = connection.recv()
                    except (EOFError, OSError):
                        self._recover_slot(slot, pending)
                        continue
                    kind = message[0]
                    job_id = message[1]
                    if job_id not in pending:
                        continue  # stale payload from an aborted earlier run
                    if kind == "error":
                        del pending[job_id]
                        raise ParallelExecutionError(
                            f"pool worker {slot} failed:\n{message[2]}"
                        )
                    raw[job_id] = message[2]
                    del pending[job_id]
        except BaseException:
            # Whatever aborted the run (a task error, an exhausted respawn
            # budget, an interrupt), workers still owning shards must be
            # replaced before the error propagates — see _abort_outstanding.
            self._abort_outstanding(pending)
            raise
        self._context = None
        self._clear_worker_contexts()
        return [raw[job_id] for job_id in job_order]

    def _clear_worker_contexts(self) -> None:
        """Tell workers to drop the finished run's task context.

        The context captures a whole assembly (assembler arrays, cluster
        tree); without the clear message every idle worker would pin that
        footprint until the next run ships a replacement.  Sequence 0 is
        never a real context id (``_context_seq`` pre-increments from 0), so
        a stale ``run`` message can never match a cleared slot.
        """
        for handle in self._workers:
            if handle is None or handle.context_seq <= 0:
                continue
            try:
                handle.connection.send(("context", 0, None, None, None))
                handle.context_seq = 0
            except (BrokenPipeError, OSError):
                pass  # dead worker: lazily respawned at the next dispatch

    def _abort_outstanding(self, pending: dict[int, tuple[int, list[int]]]) -> None:
        """Replace every worker still owning shards of a failed run.

        A raising run abandons its outstanding shards; their workers would
        eventually block sending large results nobody reads, and the next
        run's blocking context send to such a worker would deadlock.  Fresh
        workers keep the pool reusable after the error propagates.  These are
        deliberate replacements, not crash recoveries, so they bypass the
        respawn budget.
        """
        for slot in {slot for slot, _ in pending.values()}:
            handle = self._workers[slot]
            if handle is None:
                continue
            try:
                handle.connection.close()
            except OSError:  # pragma: no cover - already closed
                pass
            if handle.process.is_alive():
                handle.process.terminate()
            handle.process.join(timeout=5.0)
            self._spawn(slot)
        pending.clear()
        self._context = None
        # Workers that survived the abort (error reporters, finished shards)
        # still hold the shipped context; drop it so an idle pool does not
        # pin an assembly's footprint per worker between campaigns.
        self._clear_worker_contexts()

    def _recover_dead_workers(self, pending: dict[int, tuple[int, list[int]]]) -> None:
        """Respawn workers that died while owning outstanding shards."""
        for slot in {slot for slot, _ in pending.values()}:
            handle = self._workers[slot]
            if handle is None or not handle.process.is_alive():
                self._recover_slot(slot, pending)

    def _recover_slot(self, slot: int, pending: dict[int, tuple[int, list[int]]]) -> None:
        """Respawn one worker and re-dispatch its outstanding shards to it."""
        self._respawn(slot)
        for job_id, (owner, chunk) in list(pending.items()):
            if owner == slot:
                self._dispatch(slot, job_id, chunk)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WorkerPool(n_workers={self.n_workers}, backend={self.backend!r}, "
            f"alive={self.alive_workers()}, closed={self._closed})"
        )
