"""Persistent worker pool: sharded-backend processes reused across assemblies.

The sharded hierarchical block backend of :mod:`repro.parallel.block_backend`
is a pure message-passing protocol — every task is a self-contained cluster
block, only plain arrays travel between master and workers.  Until now each
assembly paid the full price of that protocol's *setup*: a fresh ``fork`` of
the worker processes, pool construction and teardown, and cold worker-side
caches.  For one large solve that cost is noise; for a *campaign* of many
scenario assemblies (:mod:`repro.campaign`) it dominates the per-scenario
overhead — the ROADMAP's "persistent worker pool reused across assemblies
would amortise the fork+IPC cost of repeated sweeps".

:class:`WorkerPool` keeps the workers alive across assemblies:

* **spawn-once** — worker processes are forked when the pool is created and
  survive until :meth:`WorkerPool.close` (or the ``with`` block) ends;
* **task-queue protocol** — each assembly ships its task context (the block
  task capturing assembler, cluster tree and partition) to the workers once,
  then dispatches explicit LPT shards exactly like
  :meth:`~repro.parallel.executor.ScheduledExecutor.run_partition`; results
  are folded through the same :func:`~repro.parallel.executor.collect_chunk_results`;
* **resilience policy** (:class:`~repro.resilience.RetryPolicy`) — a worker
  that dies is detected through its broken pipe and respawned (bounded); a
  worker that holds a chunk past ``chunk_timeout`` is SIGKILLed as hung;
  result payloads carry content checksums so corrupted results are rejected
  instead of folded into the operator; every failed chunk is re-dispatched
  after a deterministic backoff, and once the retry budget is exhausted the
  pool walks the degradation ladder — disable the slot (shrink the pool),
  then execute the chunk serially in the master.  Because block tasks are
  pure functions of the block, every recovery path is bit-identical to the
  undisturbed execution, so the deterministic-reduction contract of the
  sharded backend survives the full failure zoo.  What happened is recorded
  in :attr:`WorkerPool.health` (a :class:`~repro.resilience.PoolHealth`);
* **fault injection** — a :class:`~repro.resilience.FaultPlan` passed at
  construction ships to the workers inside the task context; workers fire
  crashes/hangs/delays/corruptions at exact (worker, chunk) coordinates so
  the chaos suite can assert the contract above on demand;
* **serial fallback** — ``backend="serial"`` executes every shard in-process
  with the identical protocol semantics (used on platforms without ``fork``
  and as the deterministic reference in tests).

All fault handling flows through the single dispatch loop below — no helper
threads, no signal-handler side channels — mirroring the event-driven
single-loop handling of asynchronous process events in non-threaded CCP
interpreters: one deterministic place observes deaths, deadlines and
payloads, and decides recovery.

Worker-side caches (the process-wide
:class:`~repro.bem.geometry_cache.GeometryCache`) stay warm across the
assemblies of a campaign, which is where the cross-scenario reuse of in-plane
pair geometry pays off a second time inside the workers.
"""

from __future__ import annotations

import multiprocessing as mp
import traceback
from typing import Any, Callable, Sequence

from repro.exceptions import ParallelExecutionError
from repro.observe import MetricsRegistry, ensure_tracer
from repro.parallel.executor import (
    TaskRunResult,
    _execute_chunk,
    collect_chunk_results,
    normalize_partition,
)
from repro.resilience import (
    DEFAULT_RETRY_POLICY,
    FaultInjector,
    FaultPlan,
    PoolHealth,
    RetryPolicy,
    corrupt_payload,
    payload_checksum,
)
from repro.resilience.channel import (
    pause,
    recv_message,
    recv_ready,
    wait_readable,
)
from repro.resilience.faults import execute_pre_fault
from repro.timing import wall_clock

__all__ = ["WorkerPool"]

#: Seconds between liveness checks while waiting for shard results.
_POLL_SECONDS: float = 0.2

#: Default cap on worker respawns over a pool's lifetime.  Respawning is the
#: recovery path for *rare* deaths; a task that keeps killing its workers must
#: eventually stop consuming fresh processes — after the budget the slot is
#: disabled (``degrade="serial"``) or the run aborts (``degrade="raise"``).
DEFAULT_MAX_RESPAWNS: int = 8

#: Seconds granted at each escalation step of :meth:`WorkerPool.close`
#: (stop message → SIGTERM → SIGKILL).
DEFAULT_SHUTDOWN_GRACE: float = 5.0


def _pool_worker_main(
    worker_id: int, generation: int, connection, stale_connections
) -> None:
    """Long-lived worker loop: receive contexts and shard chunks, send results.

    Messages from the master (tuples, first element is the kind):

    ``("context", seq, task_fn, batch_fn, cost_hint, fault_plan, verify)``
        Install task context ``seq``; replaces any previous context.  A
        non-empty ``fault_plan`` arms the deterministic fault injector (once
        per process — the injector's chunk counter spans every later run).
        ``verify`` asks for a content checksum on every result payload.
    ``("run", job_id, seq, indices)``
        Execute one shard chunk under context ``seq`` through the shared
        :func:`~repro.parallel.executor._execute_chunk` and reply
        ``("result", job_id, output, digest)`` — or ``("error", job_id,
        text)`` when the task raises or the context is stale (a master bug).
    ``("stop",)``
        Exit the loop.

    ``generation`` counts how many processes have occupied this slot before
    (0 for the original spawn); the fault injector uses it so injected
    crashes fire in the original process only (except ``respawn_crash``).
    """
    # A forked child inherits the master ends of every live pipe — its own
    # and those of every earlier worker.  Close them all: a sibling's death
    # must reach the master as a broken pipe, and the master's own death must
    # reach *this* worker as EOF on recv (an inherited copy of our master end
    # would keep the pipe open forever and orphan the worker).
    for stale in stale_connections:
        try:
            stale.close()
        except OSError:  # pragma: no cover - already closed
            pass
    context_seq = -1
    task_fn: Callable[[int], Any] | None = None
    batch_fn = None
    cost_hint = None
    verify = False
    injector: FaultInjector | None = None
    while True:
        try:
            message = recv_message(connection)
        except (EOFError, OSError):  # master is gone
            break
        kind = message[0]
        if kind == "stop":
            break
        if kind == "context":
            _, context_seq, task_fn, batch_fn, cost_hint, fault_plan, verify = message
            if injector is None and fault_plan is not None and not fault_plan.is_empty:
                injector = FaultInjector(fault_plan, worker_id, generation)
            continue
        if kind != "run":  # pragma: no cover - defensive
            connection.send(("error", -1, f"unknown message kind {kind!r}"))
            continue
        _, job_id, seq, indices = message
        if seq != context_seq:
            connection.send(
                ("error", job_id, f"worker {worker_id} holds context {context_seq}, "
                 f"job expects {seq}")
            )
            continue
        firing = injector.next_chunk() if injector is not None else None
        if firing is not None:
            execute_pre_fault(firing)  # crash/hang faults never return
        try:
            output = _execute_chunk(task_fn, batch_fn, cost_hint, indices)
        except BaseException:
            connection.send(("error", job_id, traceback.format_exc()))
            continue
        # The digest covers the *intact* payload: an injected corruption is
        # applied afterwards, modelling damage in flight that the master's
        # verification must catch.
        digest = payload_checksum(output) if verify else None
        if firing is not None and firing.kind == "corrupt":
            output = corrupt_payload(output, injector.plan.seed, worker_id, firing.chunk)
        connection.send(("result", job_id, output, digest))


class _WorkerHandle:
    """One pool worker: its process, pipe and currently installed context."""

    __slots__ = ("process", "connection", "context_seq")

    def __init__(self, process, connection) -> None:
        self.process = process
        self.connection = connection
        self.context_seq = -1


class WorkerPool:
    """Spawn-once pool of block-task workers shared across assemblies.

    Use as a context manager (or call :meth:`close` explicitly) so the worker
    processes are torn down deterministically::

        with WorkerPool(n_workers=4) as pool:
            system_a = assemble_system(mesh_a, soil, options=opts, pool=pool)
            system_b = assemble_system(mesh_b, soil, options=opts, pool=pool)

    Parameters
    ----------
    n_workers:
        Number of persistent workers (>= 1).
    backend:
        ``"process"`` (default) forks long-lived worker processes;
        ``"serial"`` executes every shard in the calling process with the same
        protocol semantics (fallback for fork-less platforms and tests; the
        resilience policy and fault plan do not apply to it).
    max_respawns:
        Total worker respawns tolerated over the pool's lifetime before a
        dying slot is disabled (``retry.degrade == "serial"``) or the run
        aborts (``"raise"``).
    retry:
        The :class:`~repro.resilience.RetryPolicy` governing chunk deadlines,
        retry/backoff, payload verification and the degradation ladder.
        Defaults to :data:`~repro.resilience.DEFAULT_RETRY_POLICY`.
    fault_plan:
        Optional :class:`~repro.resilience.FaultPlan` armed in the workers
        (chaos testing); ``None`` injects nothing.
    tracer:
        Optional :class:`~repro.observe.Tracer`.  An enabled tracer receives
        one *event* per dispatch/result/retry/respawn/timeout/fallback with
        volatile ``slot``/``job``/``t`` coordinates (scheduling facts, never
        part of the deterministic span projection), and the pool's counters
        are kept in the tracer's shared :class:`~repro.observe.MetricsRegistry`
        under ``pool.*`` names.  Defaults to the no-op tracer.
    """

    def __init__(
        self,
        n_workers: int,
        backend: str = "process",
        max_respawns: int = DEFAULT_MAX_RESPAWNS,
        retry: RetryPolicy | None = None,
        fault_plan: FaultPlan | None = None,
        tracer=None,
    ) -> None:
        if n_workers < 1:
            raise ParallelExecutionError(f"n_workers must be >= 1, got {n_workers}")
        if backend not in ("process", "serial"):
            raise ParallelExecutionError(
                f"WorkerPool backend must be 'process' or 'serial', got {backend!r}"
            )
        self.n_workers = int(n_workers)
        self.backend = backend
        self.max_respawns = int(max_respawns)
        self.retry = DEFAULT_RETRY_POLICY if retry is None else retry
        self.fault_plan = fault_plan
        self.health = PoolHealth()
        self.shutdown_grace = DEFAULT_SHUTDOWN_GRACE
        self._workers: list[_WorkerHandle | None] = [None] * self.n_workers
        self._spawn_counts = [0] * self.n_workers
        self._disabled: set[int] = set()
        self._context_seq = 0
        self._context: tuple[Any, Any, Any] | None = None
        self._job_counter = 0
        self._closed = False
        self.tracer = ensure_tracer(tracer)
        # An enabled tracer shares its registry so pool counters land in the
        # same snapshot as the campaign's; the NullTracer singleton's registry
        # is shared process-wide, so a silent pool gets a private one.
        self.metrics: MetricsRegistry = (
            self.tracer.metrics if self.tracer.enabled else MetricsRegistry()
        )
        self._run_start = 0.0
        for key in ("runs", "chunks_dispatched", "tasks_executed", "contexts_shipped"):
            self.metrics.counter(f"pool.{key}")  # pre-create: stats keys exist at zero
        if self.backend == "process":
            self._mp_context = mp.get_context("fork")
            for slot in range(self.n_workers):
                self._spawn(slot)

    @property
    def stats(self) -> dict[str, int]:
        """Lifetime execution counters merged with the health counters.

        The counters live in :attr:`metrics` under dotted ``pool.*`` names;
        this property strips the prefix to preserve the historical flat keys
        (``runs``, ``chunks_dispatched``, ...).
        """
        counters = {
            name[len("pool."):]: int(value)
            for name, value in self.metrics.counters_dict().items()
            if name.startswith("pool.")
        }
        return {**counters, **self.health.counters()}

    def _trace_event(self, name: str, /, **data: Any) -> None:
        """Emit one scheduling event (volatile coordinates + relative time)."""
        if self.tracer.enabled:
            data["t"] = round(wall_clock() - self._run_start, 6)
            self.tracer.event(name, **data)

    # ------------------------------------------------------------------ lifecycle

    def _spawn(self, slot: int) -> _WorkerHandle:
        """Fork a fresh worker into ``slot`` (initial spawn and respawn)."""
        parent_conn, child_conn = self._mp_context.Pipe(duplex=True)
        # Master-side pipe ends this fork will inherit — the other live
        # workers' and its own; the child closes them first thing (see
        # _pool_worker_main).
        stale = [h.connection for h in self._workers if h is not None] + [parent_conn]
        generation = self._spawn_counts[slot]
        self._spawn_counts[slot] += 1
        process = self._mp_context.Process(
            target=_pool_worker_main,
            args=(slot, generation, child_conn, stale),
            daemon=True,
            name=f"repro-pool-{slot}",
        )
        process.start()
        child_conn.close()  # the child owns its end; keeping a copy would mask EOF
        handle = _WorkerHandle(process, parent_conn)
        self._workers[slot] = handle
        return handle

    def _retire_handle(self, slot: int) -> None:
        """Close and join whatever process currently occupies ``slot``."""
        old = self._workers[slot]
        if old is None:
            return
        try:
            old.connection.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if old.process.is_alive():
            old.process.terminate()
        old.process.join(timeout=self.shutdown_grace)
        if old.process.is_alive():  # pragma: no cover - SIGTERM ignored
            old.process.kill()
            old.process.join(timeout=self.shutdown_grace)
        self._workers[slot] = None

    def _respawn_or_disable(self, slot: int) -> _WorkerHandle | None:
        """Replace a dead worker, or disable the slot once the budget is spent.

        Returns the fresh handle, or ``None`` when the slot was disabled
        (degradation step "shrink the pool").  With ``retry.degrade ==
        "raise"`` an exhausted budget aborts instead, preserving the
        fail-fast semantics of the pre-resilience pool.
        """
        if self.health.respawns >= self.max_respawns:
            if self.retry.degrade == "raise":
                raise ParallelExecutionError(
                    f"pool worker {slot} died and the respawn budget "
                    f"({self.max_respawns}) is exhausted"
                )
            self._disable_slot(slot)
            return None
        self.health.bump("respawns", slot=slot)
        self._trace_event("pool.respawn", slot=slot)
        self._retire_handle(slot)
        return self._spawn(slot)

    def _disable_slot(self, slot: int) -> None:
        """Permanently remove ``slot`` from the pool (budget exhausted)."""
        if slot in self._disabled:
            return
        self._disabled.add(slot)
        self.health.bump("disabled_slots", slot=slot)
        self._retire_handle(slot)

    def close(self) -> None:
        """Stop and join every worker, escalating to SIGKILL (idempotent).

        Each worker first gets a ``stop`` message and ``shutdown_grace``
        seconds to exit on its own, then SIGTERM, then SIGKILL — a hung
        worker (stuck in a task, ignoring SIGTERM) must never block
        interpreter exit or leak past the test process.
        """
        if self._closed:
            return
        self._closed = True
        for handle in self._workers:
            if handle is None:
                continue
            try:
                handle.connection.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for handle in self._workers:
            if handle is None:
                continue
            handle.process.join(timeout=self.shutdown_grace)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=self.shutdown_grace)
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(timeout=self.shutdown_grace)
            try:
                handle.connection.close()
            except OSError:  # pragma: no cover - already closed
                pass
        self._workers = [None] * self.n_workers
        self._context = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-dependent
        try:
            self.close()
        except Exception:  # contracts: disable=RES001 -- interpreter-teardown guard: __del__ must never raise
            pass

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    def alive_workers(self) -> int:
        """Number of currently live worker processes (0 for the serial backend)."""
        return sum(
            1
            for handle in self._workers
            if handle is not None and handle.process.is_alive()
        )

    def active_slots(self) -> list[int]:
        """Slots still participating in dispatch (not disabled)."""
        return [slot for slot in range(self.n_workers) if slot not in self._disabled]

    # ------------------------------------------------------------------ execution

    def run_partition(
        self,
        task: Callable[[int], Any],
        partition: Sequence[Sequence[int]],
        batch_fn: Callable[[Sequence[int]], list[tuple[int, Any]]] | None = None,
        cost_hint: Any = None,
        label: str = "Pool",
    ) -> TaskRunResult:
        """Execute tasks under an explicit worker partition on the live pool.

        Mirrors :meth:`~repro.parallel.executor.ScheduledExecutor.run_partition`
        — one shard per chunk, duplicate-assignment rejection, results folded
        into a :class:`~repro.parallel.executor.TaskRunResult` — but ships the
        task context over the persistent workers' pipes instead of relying on
        fork-time inheritance, so one pool serves any number of assemblies.
        Shards beyond the active worker count are dispatched round-robin.
        Worker deaths, hangs and corrupted payloads are recovered per the
        pool's :class:`~repro.resilience.RetryPolicy`; recoveries are
        bit-identical to the undisturbed execution because block tasks are
        pure.
        """
        if self._closed:
            raise ParallelExecutionError("the worker pool is closed")
        chunks, indices = normalize_partition(partition)
        self.metrics.inc("pool.runs")
        self.metrics.inc("pool.chunks_dispatched", len(chunks))
        self.metrics.inc("pool.tasks_executed", len(indices))
        start = wall_clock()
        self._run_start = start

        if self.backend == "serial":
            raw = [_execute_chunk(task, batch_fn, cost_hint, chunk) for chunk in chunks]
        else:
            raw = self._run_process_chunks(task, batch_fn, cost_hint, chunks)

        wall = wall_clock() - start
        return collect_chunk_results(
            raw,
            indices,
            wall,
            len(chunks),
            self.n_workers,
            f"{label},{len(chunks)}",
            f"pool-{self.backend}",
        )

    # ------------------------------------------------------------------ process internals

    def _install_context(self, handle: _WorkerHandle) -> None:
        """Ship the current task context to one worker (if not already held)."""
        if handle.context_seq == self._context_seq:
            return
        task, batch_fn, cost_hint = self._context  # type: ignore[misc]
        handle.connection.send(
            (
                "context",
                self._context_seq,
                task,
                batch_fn,
                cost_hint,
                self.fault_plan,
                self.retry.verify_payloads,
            )
        )
        handle.context_seq = self._context_seq
        self.metrics.inc("pool.contexts_shipped")

    def _serial_chunk(self, chunk: list[int]) -> list[tuple[int, Any, float]]:
        """Execute one shard in the master (bottom of the degradation ladder).

        Runs the exact :func:`~repro.parallel.executor._execute_chunk` path a
        worker would, so a degraded chunk is bit-identical to the parallel
        one.
        """
        task, batch_fn, cost_hint = self._context  # type: ignore[misc]
        return _execute_chunk(task, batch_fn, cost_hint, chunk)

    def _dispatch(self, slot: int, job_id: int, chunk: list[int]) -> bool:
        """Send one shard to one worker, respawning through send failures.

        Returns ``False`` when the slot got disabled instead (the caller must
        route the shard elsewhere).
        """
        while True:
            if slot in self._disabled:
                return False
            handle = self._workers[slot]
            if handle is None or not handle.process.is_alive():
                handle = self._respawn_or_disable(slot)
                if handle is None:
                    return False
            try:
                self._install_context(handle)
                handle.connection.send(("run", job_id, self._context_seq, chunk))
                self._trace_event("pool.dispatch", slot=slot, job=job_id, tasks=len(chunk))
                return True
            except (BrokenPipeError, OSError):
                if handle.process.is_alive():  # pragma: no cover - defensive
                    handle.process.terminate()
                handle.process.join(timeout=self.shutdown_grace)
                continue  # _respawn_or_disable picks it up on the next pass

    def _assign(
        self,
        job_id: int,
        chunk: list[int],
        pending: dict[int, tuple[int, list[int]]],
        deadlines: dict[int, float],
        preferred: int | None = None,
    ) -> bool:
        """Dispatch a shard to an active slot (preferring ``preferred``).

        Returns ``False`` when no active slot is left — the caller falls back
        to serial execution.
        """
        slot = preferred
        while True:
            active = self.active_slots()
            if not active:
                pending.pop(job_id, None)
                deadlines.pop(job_id, None)
                return False
            if slot is None or slot in self._disabled:
                slot = active[job_id % len(active)]
            pending[job_id] = (slot, chunk)
            if self._dispatch(slot, job_id, chunk):
                if self.retry.chunk_timeout is not None:
                    deadlines[job_id] = wall_clock() + self.retry.chunk_timeout
                return True
            slot = None  # the dispatch disabled the slot; pick another

    def _assign_or_serial(
        self,
        job_id: int,
        chunk: list[int],
        pending: dict[int, tuple[int, list[int]]],
        deadlines: dict[int, float],
        raw: dict[int, list[tuple[int, Any, float]]],
        preferred: int | None = None,
    ) -> None:
        if self._assign(job_id, chunk, pending, deadlines, preferred=preferred):
            return
        if self.retry.degrade == "raise":  # pragma: no cover - raise mode aborts earlier
            raise ParallelExecutionError("no active pool workers left")
        self.health.bump("serial_fallback_chunks", job=job_id, reason="no_active_workers")
        self._trace_event("pool.serial_fallback", job=job_id, reason="no_active_workers")
        raw[job_id] = self._serial_chunk(chunk)

    def _fail_job(
        self,
        job_id: int,
        pending: dict[int, tuple[int, list[int]]],
        deadlines: dict[int, float],
        attempts: dict[int, int],
        raw: dict[int, list[tuple[int, Any, float]]],
        reason: str,
    ) -> None:
        """One chunk failed (death, hang, corruption): retry or degrade.

        Retries are re-dispatched to the failed slot after the policy's
        deterministic backoff; a chunk out of retries is executed serially in
        the master (``degrade="serial"``) or aborts the run (``"raise"``).
        """
        slot, chunk = pending[job_id]
        attempts[job_id] = attempts.get(job_id, 0) + 1
        failures = attempts[job_id]
        if failures > self.retry.max_retries:
            if self.retry.degrade == "raise":
                # The job stays pending so _abort_outstanding replaces the
                # worker that owned it, keeping the pool reusable.
                raise ParallelExecutionError(
                    f"pool shard (job {job_id}) failed {failures} times "
                    f"(last reason: {reason}); retry budget "
                    f"({self.retry.max_retries}) exhausted"
                )
            del pending[job_id]
            deadlines.pop(job_id, None)
            self.health.bump("serial_fallback_chunks", job=job_id, reason=reason)
            self._trace_event("pool.serial_fallback", job=job_id, reason=reason)
            raw[job_id] = self._serial_chunk(chunk)
            return
        del pending[job_id]
        deadlines.pop(job_id, None)
        self.health.bump("retries", job=job_id, slot=slot, reason=reason, attempt=failures)
        self._trace_event(
            "pool.retry", job=job_id, slot=slot, reason=reason, attempt=failures
        )
        pause(self.retry.backoff_delay(failures - 1))
        self._assign_or_serial(job_id, chunk, pending, deadlines, raw, preferred=slot)

    def _fail_slot_jobs(
        self,
        slot: int,
        pending: dict[int, tuple[int, list[int]]],
        deadlines: dict[int, float],
        attempts: dict[int, int],
        raw: dict[int, list[tuple[int, Any, float]]],
        reason: str,
    ) -> None:
        """Fail every outstanding shard owned by one lost worker (job order)."""
        owned = sorted(
            job_id for job_id, (owner, _) in pending.items() if owner == slot
        )
        for job_id in owned:
            if job_id in pending:
                self._fail_job(job_id, pending, deadlines, attempts, raw, reason)

    def _kill_hung_worker(self, slot: int) -> None:
        """SIGKILL a worker that held a chunk past its deadline."""
        handle = self._workers[slot]
        if handle is None:
            return
        if handle.process.is_alive():
            self.health.bump("hung_kills", slot=slot)
            handle.process.kill()
        handle.process.join(timeout=self.shutdown_grace)

    def _run_process_chunks(
        self, task, batch_fn, cost_hint, chunks: list[list[int]]
    ) -> list[list[tuple[int, Any, float]]]:
        # A new run means a new context: the task captures the assembly state
        # of *this* call, so workers must never reuse a previous one.
        self._context_seq += 1
        self._context = (task, batch_fn, cost_hint)

        # Job ids are unique over the pool's lifetime: a run aborted by an
        # error may leave results of old jobs in the pipes, and those must
        # never be mistaken for this run's shards.
        job_order: list[int] = []
        pending: dict[int, tuple[int, list[int]]] = {}
        deadlines: dict[int, float] = {}
        attempts: dict[int, int] = {}
        raw: dict[int, list[tuple[int, Any, float]]] = {}
        try:
            active = self.active_slots()
            for position, chunk in enumerate(chunks):
                job_id = self._job_counter
                self._job_counter += 1
                job_order.append(job_id)
                preferred = active[position % len(active)] if active else None
                self._assign_or_serial(
                    job_id, chunk, pending, deadlines, raw, preferred=preferred
                )

            while pending:
                connections: dict[Any, int] = {}
                for slot in {owner for owner, _ in pending.values()}:
                    handle = self._workers[slot]
                    if handle is not None:
                        connections[handle.connection] = slot
                ready = (
                    wait_readable(list(connections), timeout=_POLL_SECONDS)
                    if connections
                    else []
                )
                self._expire_deadlines(pending, deadlines, attempts, raw)
                if not ready:
                    self._recover_dead_workers(pending, deadlines, attempts, raw)
                    continue
                for connection in ready:
                    slot = connections[connection]
                    handle = self._workers[slot]
                    if handle is None or handle.connection is not connection:
                        continue  # the slot was recycled while draining `ready`
                    try:
                        message = recv_ready(connection)
                    except (EOFError, OSError):
                        self._fail_slot_jobs(
                            slot, pending, deadlines, attempts, raw, "worker_died"
                        )
                        continue
                    kind = message[0]
                    job_id = message[1]
                    if job_id not in pending:
                        continue  # stale payload from an aborted earlier run
                    if kind == "error":
                        del pending[job_id]
                        deadlines.pop(job_id, None)
                        raise ParallelExecutionError(
                            f"pool worker {slot} failed:\n{message[2]}"
                        )
                    output, digest = message[2], message[3]
                    if digest is not None and payload_checksum(output) != digest:
                        self.health.bump("corrupt_rejections", job=job_id, slot=slot)
                        self._trace_event("pool.corrupt", job=job_id, slot=slot)
                        self._fail_job(
                            job_id, pending, deadlines, attempts, raw, "corrupt_payload"
                        )
                        continue
                    raw[job_id] = output
                    del pending[job_id]
                    deadlines.pop(job_id, None)
                    self._trace_event("pool.result", job=job_id, slot=slot)
        except BaseException:
            # Whatever aborted the run (a task error, an exhausted budget,
            # an interrupt), workers still owning shards must be replaced
            # before the error propagates — see _abort_outstanding.
            self._abort_outstanding(pending)
            raise
        self._context = None
        self._clear_worker_contexts()
        return [raw[job_id] for job_id in job_order]

    def _expire_deadlines(
        self,
        pending: dict[int, tuple[int, list[int]]],
        deadlines: dict[int, float],
        attempts: dict[int, int],
        raw: dict[int, list[tuple[int, Any, float]]],
    ) -> None:
        """Kill workers holding chunks past their deadline; retry the chunks."""
        now = wall_clock()
        expired = sorted(
            job_id
            for job_id, deadline in deadlines.items()
            if deadline <= now and job_id in pending
        )
        for job_id in expired:
            if job_id not in pending:
                continue  # failed alongside an earlier expiry on the same slot
            if deadlines.get(job_id, now + 1.0) > now:
                continue  # re-dispatched meanwhile: a fresh deadline applies
            slot, _ = pending[job_id]
            self.health.bump("chunk_timeouts", job=job_id, slot=slot)
            self._trace_event("pool.timeout", job=job_id, slot=slot)
            self._kill_hung_worker(slot)
            self._fail_slot_jobs(
                slot, pending, deadlines, attempts, raw, "chunk_timeout"
            )

    def _clear_worker_contexts(self) -> None:
        """Tell workers to drop the finished run's task context.

        The context captures a whole assembly (assembler arrays, cluster
        tree); without the clear message every idle worker would pin that
        footprint until the next run ships a replacement.  Sequence 0 is
        never a real context id (``_context_seq`` pre-increments from 0), so
        a stale ``run`` message can never match a cleared slot.
        """
        for handle in self._workers:
            if handle is None or handle.context_seq <= 0:
                continue
            try:
                handle.connection.send(("context", 0, None, None, None, None, False))
                handle.context_seq = 0
            except (BrokenPipeError, OSError):
                pass  # dead worker: lazily respawned at the next dispatch

    def _abort_outstanding(self, pending: dict[int, tuple[int, list[int]]]) -> None:
        """Replace every worker still owning shards of a failed run.

        A raising run abandons its outstanding shards; their workers would
        eventually block sending large results nobody reads, and the next
        run's blocking context send to such a worker would deadlock.  Fresh
        workers keep the pool reusable after the error propagates.  These are
        deliberate replacements, not crash recoveries, so they bypass the
        respawn budget (disabled slots stay disabled).
        """
        for slot in {slot for slot, _ in pending.values()}:
            if slot in self._disabled:
                continue
            self._retire_handle(slot)
            self._spawn(slot)
        pending.clear()
        self._context = None
        # Workers that survived the abort (error reporters, finished shards)
        # still hold the shipped context; drop it so an idle pool does not
        # pin an assembly's footprint per worker between campaigns.
        self._clear_worker_contexts()

    def _recover_dead_workers(
        self,
        pending: dict[int, tuple[int, list[int]]],
        deadlines: dict[int, float],
        attempts: dict[int, int],
        raw: dict[int, list[tuple[int, Any, float]]],
    ) -> None:
        """Fail the shards of workers that died while owning them."""
        for slot in sorted({owner for owner, _ in pending.values()}):
            handle = self._workers[slot]
            if handle is None or not handle.process.is_alive():
                self._fail_slot_jobs(
                    slot, pending, deadlines, attempts, raw, "worker_died"
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WorkerPool(n_workers={self.n_workers}, backend={self.backend!r}, "
            f"alive={self.alive_workers()}, closed={self._closed})"
        )
