"""Parallel execution of the BEM matrix generation (the paper's Section 6).

The dominant cost of the layered-soil analysis is the generation of the dense
Galerkin matrix, organised as a triangular double loop over element pairs.  The
paper parallelises the *outer* loop (the columns of the triangle) with OpenMP
compiler directives on a 64-processor SGI Origin 2000 and studies how the
static / dynamic / guided schedules and their chunk sizes affect the speed-up.

This sub-package reproduces that study with two complementary back-ends:

* **real execution** (:mod:`repro.parallel.executor`,
  :mod:`repro.parallel.parallel_assembly`) — the column tasks are distributed
  over Python worker processes (or threads) following the same schedule
  semantics as OpenMP (``static`` / ``dynamic`` / ``guided`` with an optional
  chunk), with the final assembly of the elemental blocks performed serially by
  the master exactly as the paper restructures its loop;
* **simulated execution** (:mod:`repro.parallel.simulator`) — a discrete-event
  simulator of a shared-memory multiprocessor replays the *measured* per-column
  costs under any schedule and any processor count (e.g. the 1–64 processors of
  the paper's Fig. 6.1), so schedule behaviour can be explored beyond the
  physical cores of the host.  The machine model carries the per-chunk dispatch
  overhead that makes ``Dynamic,1`` slightly more expensive to manage than
  larger chunks, as discussed in the paper.

The schedule implementations are shared by both back-ends, so a simulated
result can be validated against a real run on the processor counts available
locally.
"""

from repro.parallel.options import ParallelOptions, Backend, LoopLevel
from repro.parallel.costs import (
    analytic_column_costs,
    blend_costs,
    scale_costs,
    smooth_costs,
)
from repro.parallel.schedule import Schedule, ScheduleKind
from repro.timing import PhaseTimer, Timer
from repro.parallel.machine import MachineModel
from repro.parallel.simulator import ScheduleSimulator, SimulationResult
from repro.parallel.executor import run_scheduled_tasks, TaskRunResult
from repro.parallel.parallel_assembly import assemble_system_parallel
from repro.parallel.block_backend import (
    ShardedHierarchicalOperator,
    build_sharded_operator,
    pairwise_tree_sum,
)
from repro.parallel.pool import WorkerPool
from repro.parallel.speedup import (
    SpeedupStudy,
    measure_sharded_speedup,
    measure_speedup,
    simulate_speedup_curve,
)

__all__ = [
    "ShardedHierarchicalOperator",
    "WorkerPool",
    "build_sharded_operator",
    "measure_sharded_speedup",
    "pairwise_tree_sum",
    "ParallelOptions",
    "Backend",
    "LoopLevel",
    "analytic_column_costs",
    "blend_costs",
    "scale_costs",
    "smooth_costs",
    "Schedule",
    "ScheduleKind",
    "Timer",
    "PhaseTimer",
    "MachineModel",
    "ScheduleSimulator",
    "SimulationResult",
    "run_scheduled_tasks",
    "TaskRunResult",
    "assemble_system_parallel",
    "SpeedupStudy",
    "measure_speedup",
    "simulate_speedup_curve",
]
