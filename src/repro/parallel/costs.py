"""Deterministic analytic cost model of the assembly columns.

The scaling experiments of the paper's Section 6 replay *per-column task
costs* through the schedule simulator.  Measuring those costs with wall-clock
timers ties the experiment to the host: on slow or 1-core machines the coarse
profiles are dominated by scheduler jitter and warm-up noise, which made the
Fig. 6.1 / Table 6.2 reproductions flaky.  This module provides an *analytic*
cost profile instead — the amount of numerical work of column ``α`` is known
exactly:

    ``cost(α) ∝ Σ_{β ≥ α} n_gauss · L(layer(α), layer(β))``

where ``L(b, c)`` is the truncated image-series length of the kernel ``k_bc``
(the number of ``1/r`` integrals evaluated per Gauss point).  The profile is
deterministic, host-independent, and reproduces the linearly decreasing
triangle workload that drives the schedule comparison of Table 6.2.

Helpers are provided to scale the profile to a wall-clock total, to blend it
with a measured profile, and to smooth a jittery measured profile.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.constants import DEFAULT_GAUSS_POINTS
from repro.exceptions import ScheduleError

__all__ = [
    "analytic_column_costs",
    "adaptive_column_costs",
    "hierarchical_block_costs",
    "partition_block_work",
    "cost_shares",
    "scale_costs",
    "blend_costs",
    "smooth_costs",
]

#: Default rank assumed for far-field blocks by the deterministic block-cost
#: model (the measured mean ACA rank on the scaling benchmark grids).
DEFAULT_RANK_ESTIMATE: int = 12


def cost_shares(cost_hint, indices: Sequence[int]) -> np.ndarray:
    """Relative cost shares of a set of tasks, normalised to sum to one.

    ``cost_hint`` may be ``None`` (uniform shares), an array indexed by task
    id, or a mapping from task id to cost.  Non-finite or non-positive totals
    fall back to uniform shares.  Used to apportion the wall time of a batched
    chunk to its individual tasks.
    """
    n = len(indices)
    if cost_hint is None or n == 0:
        return np.full(max(n, 1), 1.0 / max(n, 1))
    if hasattr(cost_hint, "get"):
        shares = np.asarray([float(cost_hint.get(int(i), 0.0)) for i in indices])
    else:
        hint = np.asarray(cost_hint, dtype=float)
        shares = hint[np.asarray(indices, dtype=int)]
    total = shares.sum()
    if not np.isfinite(total) or total <= 0.0 or not np.all(np.isfinite(shares)):
        return np.full(n, 1.0 / n)
    return shares / total


def analytic_column_costs(
    element_layers: Sequence[int] | np.ndarray,
    kernel,
    n_gauss: int = DEFAULT_GAUSS_POINTS,
) -> np.ndarray:
    """Analytic per-column work estimate (targets × image terms × Gauss points).

    Parameters
    ----------
    element_layers:
        Soil layer of every mesh element, shape ``(M,)`` (1-based, as stored by
        the mesh).
    kernel:
        Any object with a ``series_length(source_layer, field_layer)`` method —
        normally a :class:`repro.kernels.base.LayeredKernel`.
    n_gauss:
        Gauss points of the outer (test) integral.

    Returns
    -------
    numpy.ndarray
        Work units of every column of the triangular assembly loop, shape
        ``(M,)``.  Only *relative* values matter to the schedule simulator.
    """
    layers = np.asarray(element_layers, dtype=int)
    if layers.ndim != 1 or layers.size == 0:
        raise ScheduleError("element_layers must be a non-empty 1D sequence")
    if n_gauss < 1:
        raise ScheduleError(f"n_gauss must be at least 1, got {n_gauss}")

    m = layers.size
    unique_layers = np.unique(layers)
    # suffix_counts[c][i] = number of elements j >= i lying in layer c.
    suffix_counts = {
        int(c): np.cumsum((layers == c)[::-1])[::-1] for c in unique_layers
    }
    series_lengths = {
        (int(b), int(c)): int(kernel.series_length(int(b), int(c)))
        for b in unique_layers
        for c in unique_layers
    }

    costs = np.zeros(m)
    for b in unique_layers:
        sources = layers == b
        terms = np.zeros(m)
        for c in unique_layers:
            terms[sources] += (
                suffix_counts[int(c)][sources] * series_lengths[(int(b), int(c))]
            )
        costs[sources] = terms[sources]
    return costs * float(n_gauss)


def adaptive_column_costs(assembler) -> np.ndarray:
    """Per-column work profile of an *adaptive* assembler.

    The uniform model of :func:`analytic_column_costs` assumes every
    (source, target) pair evaluates the full image series at equal cost; the
    adaptive evaluation layer (see :mod:`repro.kernels.truncation`) instead
    drops, merges and down-weights terms per pair distance.  This helper
    exposes the matching deterministic profile —
    ``cost(α) = n_gauss · Σ_{β ≥ α} units(α, β)`` with ``units`` counting the
    double-precision, single-precision and midpoint-tail terms actually
    evaluated — so the Fig. 6.1 / Table 6.2 schedule replays stay consistent
    with what the adaptive engine really executes.

    Parameters
    ----------
    assembler:
        A :class:`repro.bem.influence.ColumnAssembler` built with an
        :class:`~repro.kernels.truncation.AdaptiveControl`.
    """
    if getattr(assembler, "adaptive", None) is None:
        raise ScheduleError("adaptive_column_costs requires an adaptive ColumnAssembler")
    return assembler.adaptive_column_costs()


def hierarchical_block_costs(
    row_sizes: Sequence[int] | np.ndarray,
    col_sizes: Sequence[int] | np.ndarray,
    admissible: Sequence[bool] | np.ndarray,
    series_length: int,
    n_gauss: int = DEFAULT_GAUSS_POINTS,
    rank_estimate: int = DEFAULT_RANK_ESTIMATE,
    basis_per_element: int = 2,
) -> np.ndarray:
    """Deterministic per-block work estimate of a hierarchical assembly.

    The block cluster tree replaces the paper's per-column task decomposition
    with per-*block* tasks; this is the matching cost profile, the unit a
    schedule partitions when distributing cluster-pair work:

    * an inadmissible (near-field) block evaluates every element pair densely:
      ``rows * cols * L * n_gauss`` kernel terms;
    * an admissible (far-field) block samples ``~rank`` rows and columns for
      the ACA factorisation: ``min(rank_estimate * basis, min_side) *
      (rows + cols) * L * n_gauss`` terms.

    Only relative values matter.  Host-independent, like
    :func:`analytic_column_costs`.
    """
    rows = np.asarray(row_sizes, dtype=float)
    cols = np.asarray(col_sizes, dtype=float)
    far = np.asarray(admissible, dtype=bool)
    if rows.shape != cols.shape or rows.shape != far.shape or rows.ndim != 1:
        raise ScheduleError("row_sizes, col_sizes and admissible must be equal-length 1D")
    if rows.size == 0:
        return np.zeros(0)
    if np.any(rows < 1) or np.any(cols < 1):
        raise ScheduleError("block cluster sizes must be at least 1")
    if series_length < 1 or n_gauss < 1 or rank_estimate < 1 or basis_per_element < 1:
        raise ScheduleError("series_length, n_gauss, rank_estimate and basis must be >= 1")

    per_pair = float(series_length) * float(n_gauss)
    costs = rows * cols * per_pair
    sampled = np.minimum(
        float(rank_estimate) * float(basis_per_element),
        np.minimum(rows, cols) * float(basis_per_element),
    )
    costs[far] = sampled[far] * (rows[far] + cols[far]) * per_pair
    return costs


def partition_block_work(
    costs: Sequence[float] | np.ndarray, n_workers: int
) -> list[list[int]]:
    """Greedy longest-processing-time partition of block tasks among workers.

    Deterministic: blocks are assigned in descending cost order (ties broken
    by index) to the currently least-loaded worker — load ties broken by the
    smaller shard, then the lower worker index, so zero-cost blocks still
    spread round-robin and no worker idles while blocks outnumber workers.
    Used by the block-level scheduling tests and as the static work split the
    sharded hierarchical block backend starts from.
    """
    profile = np.asarray(costs, dtype=float)
    if profile.ndim != 1:
        raise ScheduleError("costs must be a 1D sequence")
    if n_workers < 1:
        raise ScheduleError(f"n_workers must be at least 1, got {n_workers}")
    if np.any(~np.isfinite(profile)) or np.any(profile < 0.0):
        raise ScheduleError("block costs must be finite and non-negative")
    assignment: list[list[int]] = [[] for _ in range(n_workers)]
    loads = np.zeros(n_workers)
    counts = np.zeros(n_workers, dtype=int)
    order = np.lexsort((np.arange(profile.size), -profile))
    for index in order:
        worker = int(np.lexsort((counts, loads))[0])
        assignment[worker].append(int(index))
        loads[worker] += profile[index]
        counts[worker] += 1
    return assignment


def scale_costs(costs: Sequence[float] | np.ndarray, total_seconds: float) -> np.ndarray:
    """Scale a cost profile so it sums to ``total_seconds``.

    Turns the dimensionless analytic work units into a wall-clock profile the
    schedule simulator can mix with real machine overheads.
    """
    profile = np.asarray(costs, dtype=float)
    if profile.ndim != 1 or profile.size == 0:
        raise ScheduleError("costs must be a non-empty 1D sequence")
    if not np.isfinite(total_seconds) or total_seconds <= 0.0:
        raise ScheduleError(f"total_seconds must be positive, got {total_seconds}")
    current = profile.sum()
    if current <= 0.0:
        raise ScheduleError("cannot scale a profile with non-positive total cost")
    return profile * (float(total_seconds) / current)


def blend_costs(
    measured: Sequence[float] | np.ndarray,
    analytic: Sequence[float] | np.ndarray,
    analytic_weight: float = 0.5,
) -> np.ndarray:
    """Convex blend of a measured and an analytic cost profile.

    The analytic profile is first rescaled to the measured total, so the blend
    keeps the measured wall-clock sum while the analytic share damps the
    per-column timing noise.  ``analytic_weight = 0`` returns the measured
    profile, ``1`` the (rescaled) analytic one.
    """
    observed = np.asarray(measured, dtype=float)
    if observed.ndim != 1 or observed.size == 0:
        raise ScheduleError("measured costs must be a non-empty 1D sequence")
    model = np.asarray(analytic, dtype=float)
    if model.shape != observed.shape:
        raise ScheduleError(
            f"profile shapes differ: measured {observed.shape}, analytic {model.shape}"
        )
    if not 0.0 <= analytic_weight <= 1.0:
        raise ScheduleError(f"analytic_weight must lie in [0, 1], got {analytic_weight}")
    total = observed.sum()
    if total <= 0.0:
        raise ScheduleError("measured profile must have a positive total")
    return (1.0 - analytic_weight) * observed + analytic_weight * scale_costs(model, total)


def smooth_costs(costs: Sequence[float] | np.ndarray, window: int = 5) -> np.ndarray:
    """Centered moving-median smoothing of a measured cost profile.

    Removes isolated scheduler-jitter spikes from coarse measured profiles
    while preserving the profile total (the smoothed profile is rescaled to the
    original sum).
    """
    profile = np.asarray(costs, dtype=float)
    if profile.ndim != 1 or profile.size == 0:
        raise ScheduleError("costs must be a non-empty 1D sequence")
    if window < 1:
        raise ScheduleError(f"window must be at least 1, got {window}")
    if window == 1 or profile.size == 1:
        return profile.copy()
    half = window // 2
    smoothed = np.empty_like(profile)
    for i in range(profile.size):
        lo = max(0, i - half)
        hi = min(profile.size, i + half + 1)
        smoothed[i] = np.median(profile[lo:hi])
    total = profile.sum()
    smoothed_total = smoothed.sum()
    if total > 0.0 and smoothed_total > 0.0:
        smoothed *= total / smoothed_total
    return smoothed
