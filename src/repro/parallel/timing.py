"""Small timing utilities used across the pipeline and the benchmarks."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["Timer", "PhaseTimer"]


@dataclass
class Timer:
    """A simple start/stop wall-clock timer.

    Can be used manually (:meth:`start` / :meth:`stop`) or as a context
    manager; the elapsed time accumulates across repeated uses.
    """

    elapsed: float = 0.0
    _started_at: float | None = field(default=None, repr=False)

    def start(self) -> "Timer":
        """Start (or restart) the timer."""
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop the timer and return the total elapsed time."""
        if self._started_at is None:
            raise RuntimeError("Timer.stop() called before start()")
        self.elapsed += time.perf_counter() - self._started_at
        self._started_at = None
        return self.elapsed

    @property
    def running(self) -> bool:
        """Whether the timer is currently running."""
        return self._started_at is not None

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


class PhaseTimer:
    """Accumulates wall-clock time per named phase (the paper's Table 6.1 rows)."""

    def __init__(self) -> None:
        self._phases: dict[str, float] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a ``with`` block under the given phase name."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    def add(self, name: str, seconds: float) -> None:
        """Add seconds to a phase (creating it if needed)."""
        self._phases[name] = self._phases.get(name, 0.0) + float(seconds)

    def as_dict(self) -> dict[str, float]:
        """Phase timings in insertion order."""
        return dict(self._phases)

    @property
    def total(self) -> float:
        """Total time across all phases."""
        return float(sum(self._phases.values()))

    def fraction(self, name: str) -> float:
        """Fraction of the total spent in one phase (0 when nothing recorded)."""
        total = self.total
        if total <= 0.0:
            return 0.0
        return self._phases.get(name, 0.0) / total

    def __getitem__(self, name: str) -> float:
        return self._phases[name]

    def __contains__(self, name: str) -> bool:
        return name in self._phases

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}={v:.3f}s" for k, v in self._phases.items())
        return f"PhaseTimer({inner})"
