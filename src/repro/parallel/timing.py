"""Re-export shim: the timing helpers moved to :mod:`repro.timing`.

``Timer`` and ``PhaseTimer`` historically lived here, next to the parallel
machinery they measured, while the DET002 wall-clock facade lived in
``repro.timing`` — two sanctioned timing modules where one suffices.  The
helpers now live in :mod:`repro.timing` (the single module on the DET002
allowlist that actually reads the clock); this shim keeps the old import
path working and contains no clock access of its own.
"""

from __future__ import annotations

from repro.timing import PhaseTimer, Timer, wall_clock

__all__ = ["PhaseTimer", "Timer", "wall_clock"]
