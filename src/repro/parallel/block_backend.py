"""Sharded hierarchical block backend: process-parallel assembly and matvec.

PR 3's hierarchical engine decomposes the Galerkin matrix into the blocks of a
:class:`~repro.cluster.blocks.BlockClusterTree` and ships the host-independent
per-block cost profile (:func:`repro.parallel.costs.hierarchical_block_costs`
+ :func:`~repro.parallel.costs.partition_block_work`) "a distributed block
backend would consume".  This module is that backend: the LPT block partition
is *executed* — each shard's near-field blocks and ACA far-field blocks are
assembled inside a worker process (fork; thread and serial fallbacks) through
the block-task path of :class:`~repro.parallel.executor.ScheduledExecutor`,
and only the shard results (sparse triplets and low-rank factors) travel back
to the master.  The protocol is pure message passing: workers share nothing
mutable, every task is a self-contained block.

Deterministic-reduction contract
--------------------------------

The returned :class:`ShardedHierarchicalOperator` is **bit-identical for any
worker count** (and for the thread/serial backends), which makes every PCG
iterate reproducible across machines-with-different-core-counts:

* every block is assembled by the per-block routines of
  :mod:`repro.cluster.block_assembly`, whose batch composition depends only on
  the block itself — never on the shard it landed in;
* block results are regrouped into ``matvec_segments`` *canonical segments*
  (an LPT split of the same cost profile by a fixed segment count, independent
  of the worker count), each segment concatenating its blocks in ascending
  block order;
* the matvec evaluates one partial per segment — sparse near product plus the
  shard-local ``U Vᵀ x + V Uᵀ x`` far products — optionally fanned out over
  threads, and reduces the partials with a **pairwise tree-sum in fixed
  segment order** (:func:`pairwise_tree_sum`), so the floating-point summation
  order never depends on how many workers assembled or apply the operator.

Entry point: ``HierarchicalControl(workers=...)`` through
``assemble_system(..., options=AssemblyOptions(hierarchical=...))`` or
``GroundingAnalysis(hierarchical=...)``.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np
from scipy import sparse

from repro.cluster.block_assembly import (
    build_block_profile,
    compress_far_block,
    emit_block_plan_span,
    emit_far_block_spans,
    far_factor_entries,
    near_block_triplets,
)
from repro.exceptions import ClusterError, ParallelExecutionError
from repro.observe import ensure_tracer
from repro.parallel.costs import partition_block_work
from repro.parallel.executor import (
    PoolJob,
    ScheduledExecutor,
    drive_pool_steps,
    normalize_partition,
)
from repro.timing import wall_clock

# contracts: disable-file=OBS001 -- the sharded operator's stats dict mirrors the serial engine's public diagnostics payload (*_seconds keys indexed by tests/benchmarks); the tracer emits the span-tree view alongside

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.bem.influence import ColumnAssembler
    from repro.cluster.block_assembly import ClusterPlanCache
    from repro.cluster.operator import HierarchicalControl
    from repro.parallel.pool import WorkerPool

__all__ = [
    "BlockOutcome",
    "ShardedHierarchicalOperator",
    "build_sharded_operator",
    "pairwise_tree_sum",
    "sharded_operator_steps",
]


def pairwise_tree_sum(arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Deterministic pairwise tree reduction of equally shaped arrays.

    Adjacent partials are summed level by level in their given order —
    ``((a0+a1)+(a2+a3))+...`` — so the floating-point result depends only on
    the order and number of the partials, never on scheduling.  This is the
    reduction of the sharded matvec (fixed segment order).
    """
    items = list(arrays)
    if not items:
        raise ClusterError("pairwise_tree_sum needs at least one array")
    while len(items) > 1:
        items = [
            items[k] + items[k + 1] if k + 1 < len(items) else items[k]
            for k in range(0, len(items), 2)
        ]
    return items[0]


# --------------------------------------------------------------------------- block tasks


@dataclass
class BlockOutcome:
    """Result of assembling one cluster block inside a shard worker.

    ``kind`` is ``"far"`` (low-rank factors), ``"near"`` (sparse triplets of
    an inadmissible block) or ``"fallback"`` (an admissible block that was not
    worth factorising, assembled densely like a near block).  Only NumPy
    arrays cross the process boundary.
    """

    block_index: int
    kind: str
    rows: np.ndarray | None = None
    cols: np.ndarray | None = None
    vals: np.ndarray | None = None
    u: np.ndarray | None = None
    v: np.ndarray | None = None

    @property
    def rank(self) -> int:
        """Rank of a far outcome (0 otherwise)."""
        return int(self.u.shape[1]) if self.u is not None else 0


class _BlockShardTask:
    """Self-contained per-block assembly task (task id = block index).

    Captured state (assembler, cluster tree, partition) is inherited by the
    forked workers via copy-on-write; only :class:`BlockOutcome` payloads
    travel back.
    """

    def __init__(self, assembler, tree, blocks, control, stopping, dof_matrix) -> None:
        self.assembler = assembler
        self.tree = tree
        self.blocks = blocks
        self.control = control
        self.stopping = float(stopping)
        self.dof_matrix = dof_matrix

    def _near_outcome(self, block_index: int, block, kind: str) -> BlockOutcome:
        rows_e = self.tree.elements_of(block.row)
        cols_e = self.tree.elements_of(block.col)
        rows, cols, vals = near_block_triplets(
            self.assembler, rows_e, cols_e, block.is_diagonal, self.dof_matrix
        )
        return BlockOutcome(block_index=block_index, kind=kind, rows=rows, cols=cols, vals=vals)

    def __call__(self, block_index: int) -> BlockOutcome:
        block = self.blocks[int(block_index)]
        if not block.admissible:
            return self._near_outcome(int(block_index), block, "near")
        factors = compress_far_block(
            self.assembler, self.tree, block, self.control, self.stopping
        )
        if factors is None:
            return self._near_outcome(int(block_index), block, "fallback")
        return BlockOutcome(
            block_index=int(block_index), kind="far", u=factors.u, v=factors.v
        )


class _BlockShardBatchTask:
    """Batched companion: one block at a time, *no* cross-block batching.

    Deliberately so — a block's kernel batch composition must depend only on
    the block itself for the cross-worker-count determinism contract to hold.
    """

    def __init__(self, task: _BlockShardTask) -> None:
        self.task = task

    def __call__(self, block_indices: Sequence[int]) -> list[tuple[int, BlockOutcome]]:
        return [(int(index), self.task(int(index))) for index in block_indices]


# --------------------------------------------------------------------------- the operator


class _OperatorSegment:
    """One canonical matvec segment: sparse near slab plus low-rank far slab."""

    def __init__(
        self, near: sparse.csr_matrix, u: sparse.csr_matrix, v: sparse.csr_matrix
    ) -> None:
        self.near = near
        self.u = u
        self.v = v
        self.near_diagonal = near.diagonal()

    def apply(self, x: np.ndarray) -> np.ndarray:
        """The segment's contribution to ``A @ x`` (symmetrised)."""
        y = self.near @ x
        y = y + self.near.T @ x
        y = y - self.near_diagonal * x
        if self.u.shape[1]:
            y = y + self.u @ (self.v.T @ x)
            y = y + self.v @ (self.u.T @ x)
        return np.asarray(y).ravel()

    def diagonal_contribution(self) -> np.ndarray:
        """The segment's share of the operator's main diagonal."""
        diag = self.near_diagonal.copy()
        if self.u.shape[1]:
            diag = diag + 2.0 * np.asarray(self.u.multiply(self.v).sum(axis=1)).ravel()
        return diag

    def todense_contribution(self) -> np.ndarray:
        """Materialised segment contribution (small problems / tests only)."""
        upper = np.asarray(self.near.todense(), dtype=float)
        dense = upper + upper.T - np.diag(self.near_diagonal)
        if self.u.shape[1]:
            u = np.asarray(self.u.todense(), dtype=float)
            v = np.asarray(self.v.todense(), dtype=float)
            dense = dense + u @ v.T + v @ u.T
        return dense

    def memory_bytes(self) -> int:
        total = self.near_diagonal.nbytes
        for matrix in (self.near, self.u, self.v):
            total += matrix.data.nbytes + matrix.indices.nbytes + matrix.indptr.nbytes
        return int(total)


class ShardedHierarchicalOperator:
    """Segment-sharded symmetric hierarchical operator with deterministic reduction.

    Mathematically the same matrix as the serial
    :class:`~repro.cluster.operator.HierarchicalOperator` (sparse near field
    plus aggregated ``U Vᵀ + V Uᵀ`` far field), stored as canonical matvec
    segments.  ``matvec`` evaluates one partial per segment — over a thread
    pool when ``matvec_workers > 1`` — and reduces them with
    :func:`pairwise_tree_sum` in fixed segment order, so the result is
    bit-identical for any assembly worker count and any matvec thread count.
    """

    def __init__(
        self,
        segments: list[_OperatorSegment],
        n_dofs: int,
        stats: dict[str, Any],
        matvec_workers: int = 1,
    ) -> None:
        if not segments:
            raise ClusterError("the sharded operator needs at least one segment")
        self.segments = segments
        self.stats = stats
        self.shape = (int(n_dofs), int(n_dofs))
        self.dtype = np.dtype(float)
        self.matvec_workers = max(1, int(matvec_workers))
        self._diagonal = pairwise_tree_sum(
            [segment.diagonal_contribution() for segment in segments]
        )
        self._pool: ThreadPoolExecutor | None = None

    # ------------------------------------------------------------------ linear algebra

    def _partials(self, x: np.ndarray) -> list[np.ndarray]:
        if self.matvec_workers > 1 and len(self.segments) > 1:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=min(self.matvec_workers, len(self.segments))
                )
            # Executor.map preserves segment order, keeping the reduction fixed.
            return list(self._pool.map(lambda segment: segment.apply(x), self.segments))
        return [segment.apply(x) for segment in self.segments]

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Apply the operator: per-segment partials, pairwise-tree reduced."""
        x = np.asarray(x, dtype=float)
        if x.shape != (self.shape[0],):
            raise ClusterError(
                f"operand shape {x.shape} does not match operator size {self.shape[0]}"
            )
        return pairwise_tree_sum(self._partials(x))

    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        return self.matvec(x)

    def diagonal(self) -> np.ndarray:
        """Main diagonal of the represented matrix (for Jacobi preconditioning)."""
        return self._diagonal.copy()

    def todense(self) -> np.ndarray:
        """Materialise the represented matrix (small problems / tests only)."""
        return pairwise_tree_sum(
            [segment.todense_contribution() for segment in self.segments]
        )

    def memory_bytes(self) -> int:
        """Bytes stored by the operator (matrix data plus sparse index arrays)."""
        return int(
            self._diagonal.nbytes
            + sum(segment.memory_bytes() for segment in self.segments)
        )

    # ------------------------------------------------------------------ lifecycle

    def close(self) -> None:
        """Shut the matvec thread pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_pool"] = None  # thread pools stay process-local
        return state

    def __del__(self) -> None:  # pragma: no cover - interpreter-dependent
        try:
            self.close()
        except Exception:  # contracts: disable=RES001 -- interpreter-teardown guard: __del__ must never raise
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedHierarchicalOperator(n={self.shape[0]}, "
            f"segments={len(self.segments)}, "
            f"workers={self.stats.get('workers')}, "
            f"memory={self.memory_bytes() / 1e6:.1f} MB)"
        )


# --------------------------------------------------------------------------- the builder


def build_sharded_operator(
    assembler: "ColumnAssembler",
    control: "HierarchicalControl",
    pool: "WorkerPool | None" = None,
    cluster_cache: "ClusterPlanCache | None" = None,
    tracer=None,
) -> ShardedHierarchicalOperator:
    """Assemble the hierarchical operator with the sharded block backend.

    The block cluster tree and its deterministic cost profile are built by the
    master; :func:`~repro.parallel.costs.partition_block_work` splits the
    blocks into LPT shards that are executed either on a one-shot
    :class:`~repro.parallel.executor.ScheduledExecutor` (``control.workers``
    workers forked for this assembly — ``process`` backend; ``thread`` and
    ``serial`` run in-process) or, when ``pool`` is given, on a persistent
    :class:`~repro.parallel.pool.WorkerPool` whose spawn-once workers are
    reused across assemblies (the shard count then follows
    ``pool.n_workers``).  Results are regrouped into
    ``control.matvec_segments`` canonical segments — see the module docstring
    for the determinism contract, which holds for any worker count *and* for
    either execution path.  ``cluster_cache`` optionally reuses the
    geometry-determined cluster tree/partition across assemblies.  ``tracer``
    records the plan/far/near span tree; per-block spans are re-emitted from
    the collected worker outcomes in ascending block-index order (with the
    worker-measured task seconds as durations), so the deterministic trace
    content is identical for every worker count.

    This is the blocking driver over :func:`sharded_operator_steps`; callers
    multiplexing several assemblies over one pool (the campaign runner) drive
    the generator themselves.
    """
    return drive_pool_steps(
        sharded_operator_steps(
            assembler, control, pool=pool, cluster_cache=cluster_cache, tracer=tracer
        ),
        pool,
    )


def sharded_operator_steps(
    assembler: "ColumnAssembler",
    control: "HierarchicalControl",
    pool: "WorkerPool | None" = None,
    cluster_cache: "ClusterPlanCache | None" = None,
    tracer=None,
):
    """Generator form of :func:`build_sharded_operator`.

    All master-side work (block planning, result regrouping, trace
    re-emission) runs inline; when ``pool`` is given the single shard
    dispatch is a yielded :class:`~repro.parallel.executor.PoolJob` request
    whose :class:`~repro.parallel.executor.TaskRunResult` comes back at the
    ``yield`` — the generator itself never touches the pool's pipes, so a
    scheduler can interleave many assemblies over one pool.  Returns the
    finished :class:`ShardedHierarchicalOperator`.
    """
    if pool is None and control.workers < 1:
        raise ParallelExecutionError(
            "build_sharded_operator needs HierarchicalControl.workers >= 1 "
            "or a WorkerPool (use HierarchicalOperator.build for the serial engine)"
        )
    tracer = ensure_tracer(tracer)
    start = wall_clock()
    profile = build_block_profile(assembler, control, cluster_cache=cluster_cache)
    tree, partition = profile.tree, profile.partition
    scale, stopping = profile.scale, profile.stopping
    dof_matrix, n_dofs = profile.dof_matrix, profile.n_dofs
    costs = profile.costs
    if tracer.enabled:
        emit_block_plan_span(tracer, profile, control, wall_clock() - start)

    n_workers = int(pool.n_workers if pool is not None else control.workers)
    shards = partition_block_work(costs, n_workers)
    # Canonical matvec segments: same profile, *fixed* segment count — the
    # reduction structure must not depend on how many workers assembled.
    segment_blocks = [
        sorted(segment)
        for segment in partition_block_work(costs, int(control.matvec_segments))
        if segment
    ]

    task = _BlockShardTask(assembler, tree, partition.blocks, control, stopping, dof_matrix)
    executor_start = wall_clock()
    if pool is not None:
        outcome = yield PoolJob(
            task,
            shards,
            batch_fn=_BlockShardBatchTask(task),
            cost_hint=costs,
            label="LPT",
        )
    else:
        with ScheduledExecutor(
            task,
            n_workers=n_workers,
            backend=control.backend,
            batch_fn=_BlockShardBatchTask(task),
            cost_hint=costs,
        ) as executor:
            outcome = executor.run_partition(shards, label="LPT")
    executor_seconds = wall_clock() - executor_start
    outcomes: dict[int, BlockOutcome] = outcome.results

    # ---- regroup the block results into the canonical segments ----
    def _csr(rows, cols, vals, shape) -> sparse.csr_matrix:
        if not rows:
            return sparse.csr_matrix(shape, dtype=float)
        matrix = sparse.coo_matrix(
            (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
            shape=shape,
        ).tocsr()
        matrix.sum_duplicates()
        return matrix

    segments: list[_OperatorSegment] = []
    ranks: list[int] = []
    n_fallback = 0
    near_nnz = 0
    total_rank = 0
    for block_ids in segment_blocks:
        near_rows: list[np.ndarray] = []
        near_cols: list[np.ndarray] = []
        near_vals: list[np.ndarray] = []
        u_rows: list[np.ndarray] = []
        u_cols: list[np.ndarray] = []
        u_vals: list[np.ndarray] = []
        v_rows: list[np.ndarray] = []
        v_cols: list[np.ndarray] = []
        v_vals: list[np.ndarray] = []
        segment_rank = 0
        for block_index in block_ids:
            result = outcomes[int(block_index)]
            if result.kind in ("near", "fallback"):
                if result.kind == "fallback":
                    n_fallback += 1
                if result.rows is not None and result.rows.size:
                    near_rows.append(result.rows)
                    near_cols.append(result.cols)
                    near_vals.append(result.vals)
                continue
            rank = result.rank
            ranks.append(rank)
            if rank == 0:
                continue
            block = partition.blocks[int(block_index)]
            ur, uc, uv, vr, vc, vv = far_factor_entries(
                result.u,
                result.v,
                dof_matrix[tree.elements_of(block.row)].ravel(),
                dof_matrix[tree.elements_of(block.col)].ravel(),
                segment_rank,
            )
            u_rows.append(ur)
            u_cols.append(uc)
            u_vals.append(uv)
            v_rows.append(vr)
            v_cols.append(vc)
            v_vals.append(vv)
            segment_rank += rank
        near = _csr(near_rows, near_cols, near_vals, (n_dofs, n_dofs))
        u_far = _csr(u_rows, u_cols, u_vals, (n_dofs, segment_rank))
        v_far = _csr(v_rows, v_cols, v_vals, (n_dofs, segment_rank))
        near_nnz += int(near.nnz)
        total_rank += segment_rank
        segments.append(_OperatorSegment(near=near, u=u_far, v=v_far))

    if tracer.enabled:
        # Re-emit the per-block work as trace spans in canonical (ascending
        # block index) order with the worker-measured task seconds as
        # durations — the same tree the serial engine records inline.
        _, flat_order = normalize_partition(shards)
        seconds_of = {
            int(task): float(outcome.task_seconds[k])
            for k, task in enumerate(flat_order)
        }
        nb = profile.nb
        far_entries: list[tuple[int, int, int, int, float]] = []
        near_pairs_trace = 0
        n_near_trace = 0
        near_trace_seconds = 0.0
        for block_index in sorted(outcomes):
            result = outcomes[block_index]
            block = partition.blocks[int(block_index)]
            rows_n = tree.elements_of(block.row).size
            cols_n = tree.elements_of(block.col).size
            seconds = seconds_of.get(int(block_index), 0.0)
            if result.kind == "far":
                far_entries.append(
                    (int(block_index), rows_n * nb, cols_n * nb, result.rank, seconds)
                )
                continue
            if result.kind == "fallback":
                far_entries.append(
                    (int(block_index), rows_n * nb, cols_n * nb, -1, seconds)
                )
                near_pairs_trace += rows_n * cols_n
            else:
                near_pairs_trace += (
                    rows_n * (rows_n + 1) // 2
                    if block.is_diagonal
                    else rows_n * cols_n
                )
            n_near_trace += 1
            near_trace_seconds += seconds
        emit_far_block_spans(
            tracer,
            far_entries,
            far_seconds=float(sum(entry[4] for entry in far_entries)),
            total_rank=int(total_rank),
        )
        tracer.record_span(
            "blocks.near",
            duration_seconds=near_trace_seconds,
            n_blocks=n_near_trace,
            near_pairs=int(near_pairs_trace),
        )

    shard_loads = [float(costs[shard].sum()) if shard else 0.0 for shard in shards]
    rank_array = np.asarray(ranks, dtype=int)
    available = os.cpu_count() or 1
    stats: dict[str, Any] = {
        **partition.summary(),
        "leaf_size": control.leaf_size,
        "tolerance": control.tolerance,
        "safety": control.safety,
        "max_rank": control.max_rank,
        "reference_scale": scale,
        "n_clusters": tree.n_clusters,
        "tree_depth": tree.depth(),
        "n_fallback_blocks": n_fallback,
        "total_rank": total_rank,
        "rank_min": int(rank_array.min()) if rank_array.size else 0,
        "rank_max": int(rank_array.max()) if rank_array.size else 0,
        "rank_mean": float(rank_array.mean()) if rank_array.size else 0.0,
        "near_nnz": near_nnz,
        "block_cost_units_total": float(costs.sum()),
        "workers": n_workers,
        "backend": f"pool-{pool.backend}" if pool is not None else str(control.backend),
        "persistent_pool": pool is not None,
        "oversubscribed": n_workers > available,
        "n_shards": len([shard for shard in shards if shard]),
        "shard_cost_units": shard_loads,
        "shard_makespan_units": float(max(shard_loads)) if shard_loads else 0.0,
        "n_segments": len(segments),
        "executor_wall_seconds": executor_seconds,
        "executor_task_seconds": float(outcome.task_seconds.sum()),
        "build_seconds": 0.0,  # filled below
    }
    matvec_workers = control.matvec_workers or n_workers
    operator = ShardedHierarchicalOperator(
        segments, n_dofs, stats, matvec_workers=matvec_workers
    )
    stats["memory_bytes"] = operator.memory_bytes()
    stats["dense_bytes"] = 8 * n_dofs * n_dofs
    stats["compression"] = stats["memory_bytes"] / max(stats["dense_bytes"], 1)
    stats["build_seconds"] = wall_clock() - start
    return operator
