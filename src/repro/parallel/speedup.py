"""Speed-up studies: real measurements plus simulator extrapolation.

The paper's parallel evaluation consists of three artefacts:

* Fig. 6.1 — speed-up versus processor count (1–64) for the outer-loop and the
  inner-loop parallelisation of the Barberá two-layer analysis;
* Table 6.2 — speed-up of the outer-loop parallelisation for every OpenMP
  schedule (static/dynamic/guided × chunk) on 1, 2, 4 and 8 processors;
* Table 6.3 — CPU time and speed-up of the Balaidos analysis for soil models
  A/B/C on 1, 2, 4 and 8 processors.

:func:`measure_speedup` produces the real-execution version of those tables on
this host (bounded by its core count), while :func:`simulate_speedup_curve`
replays the measured per-column costs on a configurable machine model to reach
arbitrary processor counts.  Speed-ups are referenced to the sequential CPU
time, exactly as in the paper ("the speed-up factor has been referenced to the
sequential CPU time").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.bem.assembly import AssemblyOptions, assemble_system
from repro.exceptions import ParallelExecutionError
from repro.geometry.discretize import Mesh
from repro.kernels.base import kernel_for_soil
from repro.parallel.machine import MachineModel
from repro.parallel.options import Backend, LoopLevel, ParallelOptions
from repro.parallel.parallel_assembly import assemble_system_parallel
from repro.parallel.schedule import Schedule
from repro.parallel.simulator import ScheduleSimulator, SimulationResult
from repro.soil.base import SoilModel

__all__ = [
    "SpeedupStudy",
    "measure_sharded_speedup",
    "measure_speedup",
    "sharded_speedup_table",
    "simulate_speedup_curve",
]


@dataclass
class SpeedupStudy:
    """Collection of speed-up measurements for one problem."""

    #: Description of the analysed problem (grid, soil, discretisation).
    problem: str
    #: Sequential reference time of the matrix generation [s].
    reference_seconds: float
    #: One row per (schedule, processor-count) configuration.
    rows: list[dict[str, Any]] = field(default_factory=list)
    #: Measured per-column task costs of the sequential run [s].
    column_seconds: np.ndarray | None = None

    def add_row(self, **row: Any) -> None:
        """Append a measurement row."""
        self.rows.append(dict(row))

    def table(self) -> list[dict[str, Any]]:
        """All rows (copy)."""
        return [dict(row) for row in self.rows]

    def speedup_matrix(self) -> dict[str, dict[int, float]]:
        """Speed-ups keyed by schedule label then processor count (Table 6.2 layout)."""
        matrix: dict[str, dict[int, float]] = {}
        for row in self.rows:
            matrix.setdefault(str(row["schedule"]), {})[int(row["n_processors"])] = float(
                row["speedup"]
            )
        return matrix

    def best_schedule(self, n_processors: int) -> str:
        """Schedule with the highest speed-up at the given processor count."""
        candidates = [row for row in self.rows if int(row["n_processors"]) == n_processors]
        if not candidates:
            raise ParallelExecutionError(
                f"no measurements recorded for {n_processors} processors"
            )
        return str(max(candidates, key=lambda row: row["speedup"])["schedule"])


def measure_speedup(
    mesh: Mesh,
    soil: SoilModel,
    options: AssemblyOptions | None = None,
    processor_counts: Sequence[int] = (1, 2, 4, 8),
    schedules: Sequence[Schedule] | None = None,
    backend: Backend | str = Backend.PROCESS,
    loop: LoopLevel | str = LoopLevel.OUTER,
    gpr: float = 1.0,
    problem: str = "",
) -> SpeedupStudy:
    """Measure real parallel speed-ups of the matrix generation on this host.

    The sequential reference is measured once with the plain sequential
    assembler; every (schedule, processor count) combination is then executed
    with the process (or thread) backend and the wall-clock time of the
    scheduled loop recorded.
    """
    options = options or AssemblyOptions()
    schedules = list(schedules) if schedules is not None else [Schedule.parse("Dynamic,1")]
    kernel = kernel_for_soil(soil, options.series_control)

    reference_system = assemble_system(
        mesh, soil, gpr=gpr, options=options, kernel=kernel, collect_column_times=True
    )
    reference_seconds = float(reference_system.metadata["matrix_generation_seconds"])
    column_seconds = np.asarray(reference_system.metadata["column_seconds"], dtype=float)

    study = SpeedupStudy(
        problem=problem or mesh.grid.name,
        reference_seconds=reference_seconds,
        column_seconds=column_seconds,
    )

    for schedule in schedules:
        for count in processor_counts:
            if int(count) == 1:
                # The 1-processor entry is the sequential run itself (speed-up ~1),
                # as in the paper's tables.
                study.add_row(
                    schedule=schedule.label(),
                    n_processors=1,
                    wall_seconds=reference_seconds,
                    speedup=1.0,
                    backend="sequential",
                    loop=str(LoopLevel(loop).value),
                )
                continue
            parallel = ParallelOptions(
                n_workers=int(count), schedule=schedule, backend=backend, loop=loop
            )
            system = assemble_system_parallel(
                mesh, soil, gpr=gpr, options=options, kernel=kernel, parallel=parallel
            )
            wall = float(system.metadata["parallel_wall_seconds"])
            study.add_row(
                schedule=schedule.label(),
                n_processors=int(count),
                wall_seconds=wall,
                speedup=reference_seconds / wall if wall > 0 else float(count),
                backend=parallel.backend.value,
                loop=parallel.loop.value,
            )
    return study


def measure_sharded_speedup(
    mesh: Mesh,
    soil: SoilModel,
    control=None,
    worker_counts: Sequence[int] = (1, 2, 4),
    options: AssemblyOptions | None = None,
    gpr: float = 1.0,
    solver: str = "pcg",
) -> list[dict[str, Any]]:
    """Sharded hierarchical assemble+solve vs the serial hierarchical engine.

    The serial reference is the in-process block assembly of
    :meth:`~repro.cluster.operator.HierarchicalOperator.build`
    (``workers=0``); every requested worker count then runs the sharded block
    backend of :mod:`repro.parallel.block_backend` and one row per count is
    returned.  Conventions follow
    :func:`repro.experiments.scaling.measure_real_speedups`: counts above the
    host's cores are *not* skipped but flagged ``"oversubscribed": True``
    (their speed-up reflects time-sliced execution, not parallel hardware).
    Each row carries two agreement measures plus the PCG iteration count:

    * ``solution_rel_error`` — maximum relative deviation from the *serial*
      reference.  Both operators represent the same matrix to per-block
      round-off, but their matvec reduction trees differ, so PCG iterates
      drift apart by rounding; the deviation stays well inside the solver
      tolerance (~1e-10 at 2x10^4 elements, ~1e-13 on small grids);
    * ``solution_rel_error_vs_sharded`` — deviation from the *first sharded*
      run.  The deterministic-reduction contract makes this exactly zero for
      every worker count and backend (canonical segments, fixed-order
      pairwise tree-sum).
    """
    import dataclasses
    import os
    import time

    from repro.cluster.operator import HierarchicalControl
    from repro.solvers import solve_system

    control = control or HierarchicalControl()
    if options is not None and options.hierarchical is not None:
        raise ParallelExecutionError(
            "pass the hierarchical control through the 'control' argument; "
            "'options' configures the shared element/kernel settings only"
        )
    base_options = options or AssemblyOptions()

    def _run(workers: int):
        # Every run starts from a cold process-wide geometry cache; the serial
        # reference would otherwise pay all cache misses and gift the later
        # sharded runs (and their forked workers) a warm cache, biasing the
        # speed-up the acceptance gate asserts on.
        from repro.bem.geometry_cache import default_geometry_cache

        default_geometry_cache().clear()
        run_control = dataclasses.replace(control, workers=int(workers))
        run_options = dataclasses.replace(base_options, hierarchical=run_control)
        start = time.perf_counter()
        system = assemble_system(mesh, soil, gpr=gpr, options=run_options)
        assemble_seconds = time.perf_counter() - start
        start = time.perf_counter()
        solved = solve_system(system.matrix, system.rhs, method=solver)
        solve_seconds = time.perf_counter() - start
        return system, solved, assemble_seconds, solve_seconds

    _, serial_solved, serial_asm, serial_solve = _run(0)
    reference_seconds = serial_asm + serial_solve
    reference_norm = float(np.abs(serial_solved.solution).max())

    available = os.cpu_count() or 1
    rows: list[dict[str, Any]] = [
        {
            "n_workers": 0,
            "backend": "serial-hierarchical",
            "assemble_seconds": serial_asm,
            "solve_seconds": serial_solve,
            "wall_seconds": reference_seconds,
            "speedup": 1.0,
            "oversubscribed": False,
            "solution_rel_error": 0.0,
            "solution_rel_error_vs_sharded": None,
            "pcg_iterations": serial_solved.iterations,
        }
    ]
    first_sharded_solution: np.ndarray | None = None
    for count in worker_counts:
        count = int(count)
        system, solved, assemble_seconds, solve_seconds = _run(count)
        wall = assemble_seconds + solve_seconds
        deviation = float(
            np.abs(solved.solution - serial_solved.solution).max() / reference_norm
        )
        if first_sharded_solution is None:
            first_sharded_solution = solved.solution
            cross_deviation = 0.0
        else:
            cross_deviation = float(
                np.abs(solved.solution - first_sharded_solution).max() / reference_norm
            )
        rows.append(
            {
                "n_workers": count,
                "backend": str(system.metadata["hierarchical"]["backend"]),
                "assemble_seconds": assemble_seconds,
                "solve_seconds": solve_seconds,
                "wall_seconds": wall,
                "speedup": reference_seconds / wall if wall > 0 else float(count),
                "oversubscribed": count > available,
                "solution_rel_error": deviation,
                "solution_rel_error_vs_sharded": cross_deviation,
                "pcg_iterations": solved.iterations,
            }
        )
    return rows


def sharded_speedup_table(rows: Sequence[dict]) -> tuple[list[str], list[list[Any]]]:
    """Printable (headers, rows) of a :func:`measure_sharded_speedup` result.

    Shared by the CLI's ``scaling --hierarchical`` table and the
    ``examples/parallel_scaling.py --sharded`` report, so the displayed
    columns stay in one place.
    """
    headers = [
        "workers",
        "assemble s",
        "solve s",
        "speed-up",
        "oversubscribed",
        "solution rel err",
    ]
    table = [
        [
            row["n_workers"],
            row["assemble_seconds"],
            row["solve_seconds"],
            row["speedup"],
            "yes" if row["oversubscribed"] else "no",
            row["solution_rel_error"],
        ]
        for row in rows
    ]
    return headers, table


def simulate_speedup_curve(
    column_seconds: Sequence[float],
    processor_counts: Sequence[int],
    schedule: Schedule | str = "Dynamic,1",
    machine: MachineModel | None = None,
    loop: LoopLevel | str = LoopLevel.OUTER,
) -> list[SimulationResult]:
    """Simulate the speed-up curve of Fig. 6.1 from measured column costs.

    Parameters
    ----------
    column_seconds:
        Per-column task costs measured on a sequential (or 1-worker) run.
    processor_counts:
        Processor counts to simulate (e.g. ``range(1, 65)``).
    schedule:
        Loop schedule (``"Dynamic,1"`` in the paper's figure).
    machine:
        Machine model; defaults to :meth:`MachineModel.origin2000`.
    loop:
        ``outer`` or ``inner`` loop parallelisation.
    """
    schedule = schedule if isinstance(schedule, Schedule) else Schedule.parse(str(schedule))
    loop_level = LoopLevel(loop) if not isinstance(loop, LoopLevel) else loop
    machine = machine or MachineModel.origin2000(max(int(p) for p in processor_counts))
    simulator = ScheduleSimulator(np.asarray(column_seconds, dtype=float), machine)
    return simulator.speedup_curve(
        schedule, [int(p) for p in processor_counts], loop=loop_level.value
    )
