"""Speed-up studies: real measurements plus simulator extrapolation.

The paper's parallel evaluation consists of three artefacts:

* Fig. 6.1 — speed-up versus processor count (1–64) for the outer-loop and the
  inner-loop parallelisation of the Barberá two-layer analysis;
* Table 6.2 — speed-up of the outer-loop parallelisation for every OpenMP
  schedule (static/dynamic/guided × chunk) on 1, 2, 4 and 8 processors;
* Table 6.3 — CPU time and speed-up of the Balaidos analysis for soil models
  A/B/C on 1, 2, 4 and 8 processors.

:func:`measure_speedup` produces the real-execution version of those tables on
this host (bounded by its core count), while :func:`simulate_speedup_curve`
replays the measured per-column costs on a configurable machine model to reach
arbitrary processor counts.  Speed-ups are referenced to the sequential CPU
time, exactly as in the paper ("the speed-up factor has been referenced to the
sequential CPU time").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.bem.assembly import AssemblyOptions, assemble_system
from repro.exceptions import ParallelExecutionError
from repro.geometry.discretize import Mesh
from repro.kernels.base import kernel_for_soil
from repro.parallel.machine import MachineModel
from repro.parallel.options import Backend, LoopLevel, ParallelOptions
from repro.parallel.parallel_assembly import assemble_system_parallel
from repro.parallel.schedule import Schedule
from repro.parallel.simulator import ScheduleSimulator, SimulationResult
from repro.soil.base import SoilModel

__all__ = ["SpeedupStudy", "measure_speedup", "simulate_speedup_curve"]


@dataclass
class SpeedupStudy:
    """Collection of speed-up measurements for one problem."""

    #: Description of the analysed problem (grid, soil, discretisation).
    problem: str
    #: Sequential reference time of the matrix generation [s].
    reference_seconds: float
    #: One row per (schedule, processor-count) configuration.
    rows: list[dict[str, Any]] = field(default_factory=list)
    #: Measured per-column task costs of the sequential run [s].
    column_seconds: np.ndarray | None = None

    def add_row(self, **row: Any) -> None:
        """Append a measurement row."""
        self.rows.append(dict(row))

    def table(self) -> list[dict[str, Any]]:
        """All rows (copy)."""
        return [dict(row) for row in self.rows]

    def speedup_matrix(self) -> dict[str, dict[int, float]]:
        """Speed-ups keyed by schedule label then processor count (Table 6.2 layout)."""
        matrix: dict[str, dict[int, float]] = {}
        for row in self.rows:
            matrix.setdefault(str(row["schedule"]), {})[int(row["n_processors"])] = float(
                row["speedup"]
            )
        return matrix

    def best_schedule(self, n_processors: int) -> str:
        """Schedule with the highest speed-up at the given processor count."""
        candidates = [row for row in self.rows if int(row["n_processors"]) == n_processors]
        if not candidates:
            raise ParallelExecutionError(
                f"no measurements recorded for {n_processors} processors"
            )
        return str(max(candidates, key=lambda row: row["speedup"])["schedule"])


def measure_speedup(
    mesh: Mesh,
    soil: SoilModel,
    options: AssemblyOptions | None = None,
    processor_counts: Sequence[int] = (1, 2, 4, 8),
    schedules: Sequence[Schedule] | None = None,
    backend: Backend | str = Backend.PROCESS,
    loop: LoopLevel | str = LoopLevel.OUTER,
    gpr: float = 1.0,
    problem: str = "",
) -> SpeedupStudy:
    """Measure real parallel speed-ups of the matrix generation on this host.

    The sequential reference is measured once with the plain sequential
    assembler; every (schedule, processor count) combination is then executed
    with the process (or thread) backend and the wall-clock time of the
    scheduled loop recorded.
    """
    options = options or AssemblyOptions()
    schedules = list(schedules) if schedules is not None else [Schedule.parse("Dynamic,1")]
    kernel = kernel_for_soil(soil, options.series_control)

    reference_system = assemble_system(
        mesh, soil, gpr=gpr, options=options, kernel=kernel, collect_column_times=True
    )
    reference_seconds = float(reference_system.metadata["matrix_generation_seconds"])
    column_seconds = np.asarray(reference_system.metadata["column_seconds"], dtype=float)

    study = SpeedupStudy(
        problem=problem or mesh.grid.name,
        reference_seconds=reference_seconds,
        column_seconds=column_seconds,
    )

    for schedule in schedules:
        for count in processor_counts:
            if int(count) == 1:
                # The 1-processor entry is the sequential run itself (speed-up ~1),
                # as in the paper's tables.
                study.add_row(
                    schedule=schedule.label(),
                    n_processors=1,
                    wall_seconds=reference_seconds,
                    speedup=1.0,
                    backend="sequential",
                    loop=str(LoopLevel(loop).value),
                )
                continue
            parallel = ParallelOptions(
                n_workers=int(count), schedule=schedule, backend=backend, loop=loop
            )
            system = assemble_system_parallel(
                mesh, soil, gpr=gpr, options=options, kernel=kernel, parallel=parallel
            )
            wall = float(system.metadata["parallel_wall_seconds"])
            study.add_row(
                schedule=schedule.label(),
                n_processors=int(count),
                wall_seconds=wall,
                speedup=reference_seconds / wall if wall > 0 else float(count),
                backend=parallel.backend.value,
                loop=parallel.loop.value,
            )
    return study


def simulate_speedup_curve(
    column_seconds: Sequence[float],
    processor_counts: Sequence[int],
    schedule: Schedule | str = "Dynamic,1",
    machine: MachineModel | None = None,
    loop: LoopLevel | str = LoopLevel.OUTER,
) -> list[SimulationResult]:
    """Simulate the speed-up curve of Fig. 6.1 from measured column costs.

    Parameters
    ----------
    column_seconds:
        Per-column task costs measured on a sequential (or 1-worker) run.
    processor_counts:
        Processor counts to simulate (e.g. ``range(1, 65)``).
    schedule:
        Loop schedule (``"Dynamic,1"`` in the paper's figure).
    machine:
        Machine model; defaults to :meth:`MachineModel.origin2000`.
    loop:
        ``outer`` or ``inner`` loop parallelisation.
    """
    schedule = schedule if isinstance(schedule, Schedule) else Schedule.parse(str(schedule))
    loop_level = LoopLevel(loop) if not isinstance(loop, LoopLevel) else loop
    machine = machine or MachineModel.origin2000(max(int(p) for p in processor_counts))
    simulator = ScheduleSimulator(np.asarray(column_seconds, dtype=float), machine)
    return simulator.speedup_curve(
        schedule, [int(p) for p in processor_counts], loop=loop_level.value
    )
