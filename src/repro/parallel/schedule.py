"""OpenMP-style loop schedules (static, dynamic, guided).

The paper's Table 6.2 compares how the iterations of the parallelised outer
assembly loop are distributed among processors using the OpenMP ``schedule``
clause.  This module reimplements those policies in a backend-agnostic way: a
:class:`Schedule` turns a number of tasks (loop cycles) into either

* a fixed per-worker assignment (:meth:`Schedule.static_assignment`), or
* an ordered sequence of chunks that idle workers grab one after the other
  (:meth:`Schedule.chunk_sequence`), which is how both the process-pool
  executor and the discrete-event simulator consume dynamic and guided
  schedules.

Semantics follow the OpenMP 3.0 specification the paper relied on:

``static`` (no chunk)
    Iterations are divided into ``n_workers`` contiguous blocks of (nearly)
    equal size, one per worker.
``static, c``
    Chunks of ``c`` consecutive iterations are assigned to workers round-robin.
``dynamic, c``
    Chunks of ``c`` iterations are handed to whichever worker becomes idle
    (first-come, first-served); default chunk is 1.
``guided, c``
    Like dynamic, but the chunk size is proportional to the remaining
    iterations divided by the number of workers and shrinks exponentially,
    never below ``c`` (default 1).  As in the widely deployed OpenMP runtimes
    of the paper's era (and matching the near-ideal guided speed-ups of the
    paper's Table 6.2), the proportionality factor used here is
    ``remaining / (2 · n_workers)``, which keeps the first chunk safely below
    an even share of the *work* even when the task costs decrease linearly
    across the iteration space, as they do in the BEM assembly triangle.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.exceptions import ScheduleError

__all__ = ["ScheduleKind", "Schedule"]


class ScheduleKind(str, enum.Enum):
    """The three OpenMP scheduling policies studied by the paper."""

    STATIC = "static"
    DYNAMIC = "dynamic"
    GUIDED = "guided"


@dataclass(frozen=True)
class Schedule:
    """A loop schedule: policy plus optional chunk size.

    Parameters
    ----------
    kind:
        Scheduling policy.
    chunk:
        Chunk size; ``None`` reproduces the OpenMP default (block partition for
        static, 1 for dynamic and guided).
    """

    kind: ScheduleKind = ScheduleKind.DYNAMIC
    chunk: int | None = 1

    def __post_init__(self) -> None:
        if not isinstance(self.kind, ScheduleKind):
            object.__setattr__(self, "kind", ScheduleKind(str(self.kind).lower()))
        if self.chunk is not None:
            chunk = int(self.chunk)
            if chunk < 1:
                raise ScheduleError(f"chunk size must be >= 1, got {self.chunk!r}")
            object.__setattr__(self, "chunk", chunk)

    # ------------------------------------------------------------------ constructors

    @classmethod
    def parse(cls, text: str) -> "Schedule":
        """Parse an OpenMP-style specification such as ``"Dynamic,1"`` or ``"Static"``."""
        parts = [p.strip() for p in str(text).split(",")]
        if not parts or not parts[0]:
            raise ScheduleError(f"cannot parse schedule specification {text!r}")
        try:
            kind = ScheduleKind(parts[0].lower())
        except ValueError as exc:
            raise ScheduleError(f"unknown schedule kind {parts[0]!r}") from exc
        chunk: int | None = None
        if len(parts) > 1 and parts[1]:
            try:
                chunk = int(parts[1])
            except ValueError as exc:
                raise ScheduleError(f"invalid chunk value {parts[1]!r}") from exc
        elif kind in (ScheduleKind.DYNAMIC, ScheduleKind.GUIDED):
            chunk = 1
        return cls(kind=kind, chunk=chunk)

    def label(self) -> str:
        """Human readable label in the style of the paper's Table 6.2."""
        name = self.kind.value.capitalize()
        if self.chunk is None:
            return name
        return f"{name},{self.chunk}"

    # ------------------------------------------------------------------ partitioning

    def static_assignment(self, n_tasks: int, n_workers: int) -> list[list[int]]:
        """Fixed task assignment of a static schedule.

        Returns one list of task indices per worker.  Raises for non-static
        schedules (their assignment depends on execution timing).
        """
        self._check_sizes(n_tasks, n_workers)
        if self.kind is not ScheduleKind.STATIC:
            raise ScheduleError("only static schedules have a fixed assignment")
        assignment: list[list[int]] = [[] for _ in range(n_workers)]
        if n_tasks == 0:
            return assignment
        if self.chunk is None:
            # Contiguous blocks of (nearly) equal size, as OpenMP's default static.
            block = int(math.ceil(n_tasks / n_workers))
            for worker in range(n_workers):
                start = worker * block
                stop = min(n_tasks, start + block)
                if start < stop:
                    assignment[worker] = list(range(start, stop))
            return assignment
        # Round-robin over chunks of the requested size.
        for chunk_index, start in enumerate(range(0, n_tasks, self.chunk)):
            worker = chunk_index % n_workers
            assignment[worker].extend(range(start, min(n_tasks, start + self.chunk)))
        return assignment

    def chunk_sequence(self, n_tasks: int, n_workers: int) -> list[list[int]]:
        """Ordered chunks that idle workers grab one after the other.

        For static schedules this still returns the chunk decomposition (in
        round-robin grab order) so that every backend can be driven through a
        single interface, but note that genuinely static execution should use
        :meth:`static_assignment`.
        """
        self._check_sizes(n_tasks, n_workers)
        if n_tasks == 0:
            return []
        if self.kind is ScheduleKind.GUIDED:
            minimum = self.chunk if self.chunk is not None else 1
            chunks: list[list[int]] = []
            next_task = 0
            remaining = n_tasks
            while remaining > 0:
                size = max(minimum, int(math.ceil(remaining / (2 * n_workers))))
                size = min(size, remaining)
                chunks.append(list(range(next_task, next_task + size)))
                next_task += size
                remaining -= size
            return chunks
        chunk = self.chunk if self.chunk is not None else (
            int(math.ceil(n_tasks / n_workers)) if self.kind is ScheduleKind.STATIC else 1
        )
        return [
            list(range(start, min(n_tasks, start + chunk)))
            for start in range(0, n_tasks, chunk)
        ]

    def n_chunks(self, n_tasks: int, n_workers: int) -> int:
        """Number of chunks the schedule produces (management-cost proxy)."""
        return len(self.chunk_sequence(n_tasks, n_workers))

    # ------------------------------------------------------------------ helpers

    @staticmethod
    def _check_sizes(n_tasks: int, n_workers: int) -> None:
        if n_tasks < 0:
            raise ScheduleError(f"the number of tasks cannot be negative, got {n_tasks}")
        if n_workers < 1:
            raise ScheduleError(f"at least one worker is required, got {n_workers}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label()
