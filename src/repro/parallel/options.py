"""User-facing options describing how to parallelise the matrix generation."""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field

from repro.exceptions import ScheduleError
from repro.parallel.schedule import Schedule

__all__ = ["Backend", "LoopLevel", "ParallelOptions"]


class Backend(str, enum.Enum):
    """Execution backend of the parallel loop."""

    #: Run everything in the calling process (useful as a baseline / debugging).
    SERIAL = "serial"
    #: Python threads: low overhead, concurrency limited by the GIL except
    #: inside NumPy kernels.
    THREAD = "thread"
    #: Worker processes (fork): true parallelism, the default.
    PROCESS = "process"


class LoopLevel(str, enum.Enum):
    """Which loop of the triangular element-pair structure is parallelised.

    The paper compares both options (Fig. 6.1): parallelising the *outer* loop
    distributes whole columns (much larger granularity and better speed-ups),
    parallelising the *inner* loop distributes the rows of one column at a time
    and pays a synchronisation at every column.
    """

    OUTER = "outer"
    INNER = "inner"


@dataclass(frozen=True)
class ParallelOptions:
    """How to run the matrix-generation loop in parallel.

    Parameters
    ----------
    n_workers:
        Number of workers (processors); defaults to the machine's CPU count.
    schedule:
        Loop schedule (default ``Dynamic,1`` — the best performer in the
        paper's Table 6.2).
    backend:
        ``process`` (default), ``thread`` or ``serial``.
    loop:
        ``outer`` (default) or ``inner`` loop parallelisation.
    """

    n_workers: int = 0
    schedule: Schedule = field(default_factory=Schedule)
    backend: Backend = Backend.PROCESS
    loop: LoopLevel = LoopLevel.OUTER

    def __post_init__(self) -> None:
        workers = int(self.n_workers) if self.n_workers else (os.cpu_count() or 1)
        if workers < 1:
            raise ScheduleError(f"n_workers must be >= 1, got {self.n_workers!r}")
        object.__setattr__(self, "n_workers", workers)
        if not isinstance(self.schedule, Schedule):
            object.__setattr__(self, "schedule", Schedule.parse(str(self.schedule)))
        if not isinstance(self.backend, Backend):
            object.__setattr__(self, "backend", Backend(str(self.backend).lower()))
        if not isinstance(self.loop, LoopLevel):
            object.__setattr__(self, "loop", LoopLevel(str(self.loop).lower()))

    def describe(self) -> dict:
        """Compact description stored in result metadata."""
        return {
            "n_workers": self.n_workers,
            "schedule": self.schedule.label(),
            "backend": self.backend.value,
            "loop": self.loop.value,
        }
