"""Shared-memory multiprocessor model used by the schedule simulator.

The paper runs on an SGI Origin 2000: 64 MIPS R10000 processors at 250 MHz
organised in 2-processor nodes connected by a hypercube network, programmed as
a shared-memory machine through OpenMP directives.  For the purpose of the
schedule study the relevant machine characteristics are not the
micro-architecture but the *costs of managing the parallel loop*:

* a per-chunk dispatch overhead (grabbing the next chunk from the shared
  iteration counter) — this is why ``Dynamic,1`` "requires the biggest amount
  of parallelization management";
* a fork/join overhead per parallel region;
* an optional per-worker start-up skew.

:class:`MachineModel` captures those knobs; the defaults of
:meth:`MachineModel.origin2000` are chosen so that the simulated Table 6.2
reproduces the paper's qualitative behaviour (near-linear speed-ups for
dynamic/guided schedules with small chunks, visible degradation for static
schedules with large chunks and many processors).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ScheduleError

__all__ = ["MachineModel"]


@dataclass(frozen=True)
class MachineModel:
    """Cost model of a shared-memory multiprocessor running a scheduled loop.

    Parameters
    ----------
    n_processors:
        Number of processors available to the parallel region.
    chunk_dispatch_overhead:
        Seconds charged to a processor every time it grabs a chunk from the
        shared schedule state.
    fork_join_overhead:
        Seconds charged once per parallel region (thread team start + barrier).
    per_task_overhead:
        Seconds charged per loop iteration (bookkeeping inside the chunk).
    relative_speed:
        Multiplier applied to every task cost (1.0 = same speed as the machine
        where the costs were measured).
    """

    n_processors: int
    chunk_dispatch_overhead: float = 5.0e-6
    fork_join_overhead: float = 5.0e-5
    per_task_overhead: float = 0.0
    relative_speed: float = 1.0

    def __post_init__(self) -> None:
        if self.n_processors < 1:
            raise ScheduleError(f"a machine needs at least one processor, got {self.n_processors}")
        if self.chunk_dispatch_overhead < 0 or self.fork_join_overhead < 0:
            raise ScheduleError("overheads cannot be negative")
        if self.per_task_overhead < 0:
            raise ScheduleError("overheads cannot be negative")
        if self.relative_speed <= 0:
            raise ScheduleError("relative_speed must be positive")

    @classmethod
    def origin2000(cls, n_processors: int = 64) -> "MachineModel":
        """A 64-processor Origin-2000-like machine (the paper's platform).

        The overheads are representative of an OpenMP runtime on hardware of
        that era (a few microseconds to grab a chunk, tens of microseconds to
        fork/join a team); they only matter relative to the task durations.
        """
        return cls(
            n_processors=n_processors,
            chunk_dispatch_overhead=8.0e-6,
            fork_join_overhead=1.0e-4,
            per_task_overhead=0.0,
            relative_speed=1.0,
        )

    @classmethod
    def ideal(cls, n_processors: int) -> "MachineModel":
        """A machine with zero scheduling overheads (upper bound on speed-up)."""
        return cls(
            n_processors=n_processors,
            chunk_dispatch_overhead=0.0,
            fork_join_overhead=0.0,
            per_task_overhead=0.0,
        )

    def scaled_cost(self, cost: float) -> float:
        """Task cost on this machine given the measured cost on the reference host."""
        return float(cost) * self.relative_speed

    def with_processors(self, n_processors: int) -> "MachineModel":
        """Same machine with a different processor count."""
        return MachineModel(
            n_processors=int(n_processors),
            chunk_dispatch_overhead=self.chunk_dispatch_overhead,
            fork_join_overhead=self.fork_join_overhead,
            per_task_overhead=self.per_task_overhead,
            relative_speed=self.relative_speed,
        )
