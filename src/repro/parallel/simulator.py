"""Discrete-event simulation of a scheduled parallel loop.

The paper measures speed-ups on up to 64 processors of an SGI Origin 2000.
This host has fewer cores, so beyond the real process-pool measurements the
library can *simulate* the execution of the matrix-generation loop under any
schedule and any processor count: the per-column task costs measured on the
sequential run are replayed through an event-driven model of an OpenMP-style
work-sharing loop (see :class:`repro.parallel.machine.MachineModel` for the
overhead knobs).

Because the simulator executes exactly the same chunk-assignment rules as the
real executor (shared :class:`repro.parallel.schedule.Schedule` objects) the
two agree on the processor counts where both can run — which is verified in the
test-suite — and the simulator can then extend the curves to the paper's 64
processors (Fig. 6.1, Tables 6.2 and 6.3).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.exceptions import ScheduleError
from repro.parallel.machine import MachineModel
from repro.parallel.schedule import Schedule, ScheduleKind

__all__ = ["SimulationResult", "ScheduleSimulator", "rows_from_column_costs"]


@dataclass
class SimulationResult:
    """Outcome of one simulated parallel execution."""

    #: Label of the schedule used (e.g. ``"Dynamic,1"``).
    schedule: str
    #: Number of processors simulated.
    n_processors: int
    #: Simulated wall-clock time of the parallel loop [s].
    makespan: float
    #: Sequential reference time (sum of all task costs, no overheads) [s].
    sequential_time: float
    #: Number of chunks dispatched.
    n_chunks: int
    #: Busy time of every processor (excluding idle waits) [s].
    worker_busy: np.ndarray = field(default_factory=lambda: np.zeros(0))
    #: Finish time of every processor [s].
    worker_finish: np.ndarray = field(default_factory=lambda: np.zeros(0))

    @property
    def speedup(self) -> float:
        """Speed-up factor referenced to the sequential time (as in the paper)."""
        if self.makespan <= 0.0:
            return float(self.n_processors)
        return self.sequential_time / self.makespan

    @property
    def efficiency(self) -> float:
        """Speed-up divided by the number of processors."""
        return self.speedup / self.n_processors

    @property
    def load_imbalance(self) -> float:
        """Relative difference between the busiest and the average processor."""
        if self.worker_busy.size == 0 or self.worker_busy.max() <= 0.0:
            return 0.0
        return float(self.worker_busy.max() / self.worker_busy.mean() - 1.0)

    def summary(self) -> dict:
        """Compact dictionary used by the benchmark tables."""
        return {
            "schedule": self.schedule,
            "n_processors": self.n_processors,
            "makespan_s": self.makespan,
            "speedup": self.speedup,
            "efficiency": self.efficiency,
            "n_chunks": self.n_chunks,
            "load_imbalance": self.load_imbalance,
        }


def rows_from_column_costs(column_costs: Sequence[float]) -> list[np.ndarray]:
    """Split each column cost evenly over its rows.

    Column ``i`` of the triangular element-pair loop has ``M − i`` rows (element
    pairs); in the absence of finer measurements each row is assigned an equal
    share of the measured column cost.  Used to simulate the *inner-loop*
    parallelisation of the paper's Fig. 6.1.
    """
    costs = np.asarray(column_costs, dtype=float)
    m = costs.size
    rows = []
    for index in range(m):
        n_rows = m - index
        rows.append(np.full(n_rows, costs[index] / n_rows))
    return rows


class ScheduleSimulator:
    """Replays measured task costs under a schedule and a machine model."""

    def __init__(self, task_costs: Sequence[float], machine: MachineModel) -> None:
        costs = np.asarray(task_costs, dtype=float)
        if costs.ndim != 1 or costs.size == 0:
            raise ScheduleError("task_costs must be a non-empty 1D sequence")
        if np.any(costs < 0.0) or not np.all(np.isfinite(costs)):
            raise ScheduleError("task costs must be finite and non-negative")
        self.task_costs = costs
        self.machine = machine

    # ------------------------------------------------------------------ outer loop

    def run(self, schedule: Schedule, n_processors: int | None = None) -> SimulationResult:
        """Simulate the outer-loop parallelisation (one task = one column)."""
        machine = self._machine_for(n_processors)
        costs = self.task_costs * machine.relative_speed
        sequential = float(costs.sum())
        n_tasks = costs.size
        p = machine.n_processors

        if schedule.kind is ScheduleKind.STATIC:
            assignment = schedule.static_assignment(n_tasks, p)
            busy = np.zeros(p)
            finish = np.zeros(p)
            n_chunks = 0
            for worker, tasks in enumerate(assignment):
                if not tasks:
                    finish[worker] = machine.fork_join_overhead
                    continue
                chunk_size = schedule.chunk or max(1, int(np.ceil(n_tasks / p)))
                worker_chunks = int(np.ceil(len(tasks) / chunk_size))
                n_chunks += worker_chunks
                work = float(costs[tasks].sum()) + len(tasks) * machine.per_task_overhead
                busy[worker] = work
                finish[worker] = (
                    machine.fork_join_overhead
                    + work
                    + worker_chunks * machine.chunk_dispatch_overhead
                )
            makespan = float(finish.max())
            return SimulationResult(
                schedule=schedule.label(),
                n_processors=p,
                makespan=makespan,
                sequential_time=sequential,
                n_chunks=n_chunks,
                worker_busy=busy,
                worker_finish=finish,
            )

        # Dynamic and guided schedules: idle workers grab the next chunk.
        chunks = schedule.chunk_sequence(n_tasks, p)
        busy = np.zeros(p)
        ready: list[tuple[float, int]] = [(machine.fork_join_overhead, w) for w in range(p)]
        heapq.heapify(ready)
        finish = np.full(p, machine.fork_join_overhead)
        for chunk in chunks:
            available_at, worker = heapq.heappop(ready)
            chunk_cost = float(costs[chunk].sum()) + len(chunk) * machine.per_task_overhead
            busy[worker] += chunk_cost
            completion = available_at + machine.chunk_dispatch_overhead + chunk_cost
            finish[worker] = completion
            heapq.heappush(ready, (completion, worker))
        makespan = float(finish.max())
        return SimulationResult(
            schedule=schedule.label(),
            n_processors=p,
            makespan=makespan,
            sequential_time=sequential,
            n_chunks=len(chunks),
            worker_busy=busy,
            worker_finish=finish,
        )

    # ------------------------------------------------------------------ inner loop

    def run_inner_loop(
        self,
        schedule: Schedule,
        n_processors: int | None = None,
        row_costs: Sequence[np.ndarray] | None = None,
    ) -> SimulationResult:
        """Simulate the inner-loop parallelisation of the paper's Fig. 6.1.

        The outer loop over columns stays sequential; inside every column the
        rows are distributed over the processors with the given schedule, and a
        fork/join (team synchronisation) is paid per column.  Row costs default
        to an even split of each measured column cost.
        """
        machine = self._machine_for(n_processors)
        p = machine.n_processors
        if row_costs is None:
            row_costs = rows_from_column_costs(self.task_costs)
        sequential = float(sum(float(np.sum(rows)) for rows in row_costs))
        total_makespan = 0.0
        total_chunks = 0
        busy = np.zeros(p)
        for rows in row_costs:
            rows = np.asarray(rows, dtype=float) * machine.relative_speed
            column_simulator = ScheduleSimulator(rows, machine)
            column_result = column_simulator.run(schedule, p)
            total_makespan += column_result.makespan
            total_chunks += column_result.n_chunks
            busy += column_result.worker_busy
        finish = np.full(p, total_makespan)
        return SimulationResult(
            schedule=schedule.label(),
            n_processors=p,
            makespan=total_makespan,
            sequential_time=sequential * machine.relative_speed,
            n_chunks=total_chunks,
            worker_busy=busy,
            worker_finish=finish,
        )

    # ------------------------------------------------------------------ sweeps

    def speedup_curve(
        self,
        schedule: Schedule,
        processor_counts: Sequence[int],
        loop: str = "outer",
        row_costs: Sequence[np.ndarray] | None = None,
    ) -> list[SimulationResult]:
        """Simulate a range of processor counts (the x-axis of Fig. 6.1)."""
        results = []
        for count in processor_counts:
            if loop == "outer":
                results.append(self.run(schedule, int(count)))
            elif loop == "inner":
                results.append(self.run_inner_loop(schedule, int(count), row_costs))
            else:
                raise ScheduleError(f"loop must be 'outer' or 'inner', got {loop!r}")
        return results

    # ------------------------------------------------------------------ helpers

    def _machine_for(self, n_processors: int | None) -> MachineModel:
        if n_processors is None:
            return self.machine
        return self.machine.with_processors(int(n_processors))
