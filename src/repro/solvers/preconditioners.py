"""Preconditioners for the conjugate-gradient solver.

Only the diagonal (Jacobi) preconditioner is needed to reproduce the paper —
it is the "diagonal preconditioned conjugate gradient algorithm" that the
authors found most effective — but the interface accepts any callable applying
``M⁻¹`` to a vector, so richer preconditioners can be plugged in.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.exceptions import SolverError

__all__ = ["identity_preconditioner", "jacobi_preconditioner", "Preconditioner"]

#: A preconditioner is a callable applying ``M⁻¹`` to a residual vector.
Preconditioner = Callable[[np.ndarray], np.ndarray]


def identity_preconditioner(matrix: np.ndarray | None = None) -> Preconditioner:
    """The do-nothing preconditioner (plain CG)."""

    def apply(residual: np.ndarray) -> np.ndarray:
        return residual

    return apply


def jacobi_preconditioner(matrix) -> Preconditioner:
    """Diagonal (Jacobi) preconditioner ``M = diag(A)``.

    Accepts a dense matrix or any operator exposing a ``diagonal()`` method
    (e.g. the matrix-free hierarchical operator).

    Raises
    ------
    SolverError
        If the matrix has non-positive diagonal entries (the Galerkin matrix of
        the grounding problem is positive definite, so its diagonal is
        strictly positive).
    """
    if isinstance(matrix, np.ndarray) or isinstance(matrix, (list, tuple)):
        dense = np.asarray(matrix, dtype=float)
        if dense.ndim != 2 or dense.shape[0] != dense.shape[1]:
            raise SolverError(
                f"the Jacobi preconditioner needs a square matrix, got shape {dense.shape}"
            )
        diagonal = np.asarray(np.diag(dense), dtype=float).copy()
    elif hasattr(matrix, "diagonal"):
        diagonal = np.asarray(matrix.diagonal(), dtype=float).ravel().copy()
    else:
        raise SolverError(
            "the Jacobi preconditioner needs a dense matrix or an operator with a "
            f"diagonal() method; {type(matrix).__name__} provides neither"
        )
    if np.any(diagonal <= 0.0) or not np.all(np.isfinite(diagonal)):
        raise SolverError(
            "the Jacobi preconditioner requires a strictly positive diagonal; "
            "the assembled system looks invalid"
        )
    inverse_diagonal = 1.0 / diagonal

    def apply(residual: np.ndarray) -> np.ndarray:
        return inverse_diagonal * residual

    return apply
