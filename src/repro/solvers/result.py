"""Common result object returned by every linear solver."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SolveResult"]


@dataclass
class SolveResult:
    """Solution of a dense linear system plus solver diagnostics."""

    #: Solution vector.
    solution: np.ndarray
    #: Name of the method that produced it ("cholesky", "lu", "cg", "pcg").
    method: str
    #: Number of iterations (0 for direct methods).
    iterations: int = 0
    #: Final relative residual ``|A x − b| / |b|``.
    residual: float = 0.0
    #: Whether the solver reached its convergence criterion.
    converged: bool = True
    #: Wall-clock seconds spent in the solver.
    elapsed_seconds: float = 0.0
    #: Estimated floating point operation count of the solve.
    estimated_flops: float = 0.0
    #: Relative residual after each iteration (iterative solvers only).
    residual_history: list[float] = field(default_factory=list)

    @property
    def n_unknowns(self) -> int:
        """Size of the solved system."""
        return int(np.asarray(self.solution).shape[0])

    def summary(self) -> dict:
        """Compact dictionary used in reports and experiment logs."""
        return {
            "method": self.method,
            "n_unknowns": self.n_unknowns,
            "iterations": self.iterations,
            "residual": self.residual,
            "converged": self.converged,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
        }
