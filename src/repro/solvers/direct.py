"""Direct dense solvers (Cholesky and LU).

For the problem sizes of the paper's examples (a few hundred unknowns) the
``O(N³/3)`` direct factorisation is immediate; it also provides the reference
solutions against which the iterative solvers are tested.
"""

from __future__ import annotations


import numpy as np
from scipy import linalg

from repro.exceptions import SolverError
from repro.solvers.result import SolveResult
from repro.timing import wall_clock

__all__ = ["solve_direct"]


def _validate_system(matrix: np.ndarray, rhs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    matrix = np.asarray(matrix, dtype=float)
    rhs = np.asarray(rhs, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise SolverError(f"the system matrix must be square, got shape {matrix.shape}")
    if rhs.shape != (matrix.shape[0],):
        raise SolverError(
            f"right-hand side shape {rhs.shape} does not match matrix size {matrix.shape[0]}"
        )
    if not np.all(np.isfinite(matrix)) or not np.all(np.isfinite(rhs)):
        raise SolverError("the linear system contains non-finite entries")
    return matrix, rhs


def solve_direct(matrix: np.ndarray, rhs: np.ndarray, method: str = "cholesky") -> SolveResult:
    """Solve a dense system with a direct factorisation.

    Parameters
    ----------
    matrix, rhs:
        The dense system; for ``method="cholesky"`` the matrix must be
        symmetric positive definite (the Galerkin grounding matrix is).
    method:
        ``"cholesky"`` or ``"lu"``.  A Cholesky request on a matrix that is not
        numerically positive definite falls back to LU and records the fact in
        the returned method name (``"cholesky->lu"``).
    """
    matrix, rhs = _validate_system(matrix, rhs)
    n = matrix.shape[0]
    method = str(method).lower()
    if method not in ("cholesky", "lu"):
        raise SolverError(f"unknown direct method {method!r}")

    start = wall_clock()
    used = method
    if method == "cholesky":
        try:
            factor = linalg.cho_factor(matrix, lower=True, check_finite=False)
            solution = linalg.cho_solve(factor, rhs, check_finite=False)
            flops = n**3 / 3.0
        except linalg.LinAlgError:
            used = "cholesky->lu"
            solution = linalg.solve(matrix, rhs, assume_a="gen", check_finite=False)
            flops = 2.0 * n**3 / 3.0
    else:
        solution = linalg.solve(matrix, rhs, assume_a="gen", check_finite=False)
        flops = 2.0 * n**3 / 3.0
    elapsed = wall_clock() - start

    rhs_norm = float(np.linalg.norm(rhs))
    residual = float(np.linalg.norm(matrix @ solution - rhs)) / (rhs_norm if rhs_norm else 1.0)
    return SolveResult(
        solution=np.asarray(solution, dtype=float),
        method=used,
        iterations=0,
        residual=residual,
        converged=bool(np.isfinite(residual)),
        elapsed_seconds=elapsed,
        estimated_flops=flops,
    )
