"""Conjugate-gradient solver with optional (diagonal) preconditioning.

The paper reports that "the best results have been obtained by a diagonal
preconditioned conjugate gradient algorithm with assembly of the global
matrix", which for the dense symmetric positive definite grounding system
"turned out to be extremely efficient ... with a very low computational cost in
comparison with matrix generation".  The implementation below is a standard
preconditioned CG recording the residual history so tests and ablation
benchmarks can inspect the convergence behaviour.

The solver is *matrix-free*: besides dense NumPy arrays (the fast path —
one BLAS ``matvec`` per iteration) it accepts any symmetric positive definite
operator exposing ``shape`` and either a ``matvec`` method or ``__matmul__``
— in particular the :class:`~repro.cluster.operator.HierarchicalOperator`
of the hierarchical far-field engine, whose matrix is never formed.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.exceptions import ConvergenceError, SolverError
from repro.solvers.preconditioners import Preconditioner, identity_preconditioner
from repro.solvers.result import SolveResult
from repro.timing import wall_clock

__all__ = ["conjugate_gradient", "as_matvec_operator"]


def as_matvec_operator(matrix) -> tuple[Callable[[np.ndarray], np.ndarray], int, float]:
    """Validate a system operand and return ``(matvec, n, flops_per_apply)``.

    Accepts a dense ndarray (or anything :func:`numpy.asarray` turns into a
    2D float array) or a mat-vec capable operator: an object with a square
    2D ``shape`` and a ``matvec`` method (or ``__matmul__``).  Raises a clear
    :class:`~repro.exceptions.SolverError` otherwise, so callers passing an
    unsupported operand (e.g. a sparse-format string or a mismatched object)
    get an actionable message instead of a NumPy internal failure.
    """
    if isinstance(matrix, np.ndarray) or np.isscalar(matrix) or isinstance(matrix, (list, tuple)):
        dense = np.asarray(matrix, dtype=float)
        if dense.ndim != 2 or dense.shape[0] != dense.shape[1]:
            raise SolverError(f"the system matrix must be square, got shape {dense.shape}")
        n = dense.shape[0]
        return (lambda vector: dense @ vector), n, 2.0 * n * n

    shape = getattr(matrix, "shape", None)
    if shape is None or len(shape) != 2 or shape[0] != shape[1]:
        raise SolverError(
            "the system operand must be a square dense matrix or a mat-vec capable "
            f"operator with a square .shape; got {type(matrix).__name__} "
            f"with shape {shape!r}"
        )
    apply = getattr(matrix, "matvec", None)
    if apply is None:
        if not hasattr(matrix, "__matmul__"):
            raise SolverError(
                f"operator {type(matrix).__name__} supports neither .matvec nor '@'"
            )
        apply = lambda vector: matrix @ vector  # noqa: E731 - tiny adapter
    n = int(shape[0])
    flops = getattr(matrix, "memory_bytes", None)
    # One multiply-add per stored entry for explicit sparse/low-rank storage;
    # fall back to the dense count when the operator does not report it.
    flops_per_apply = (flops() / 4.0) if callable(flops) else 2.0 * n * n

    def matvec(vector: np.ndarray) -> np.ndarray:
        result = np.asarray(apply(vector), dtype=float).ravel()
        if result.shape != (n,):
            raise SolverError(
                f"operator mat-vec returned shape {result.shape}, expected ({n},)"
            )
        return result

    return matvec, n, float(flops_per_apply)


def conjugate_gradient(
    matrix,
    rhs: np.ndarray,
    preconditioner: Preconditioner | None = None,
    tolerance: float = 1.0e-10,
    max_iterations: int | None = None,
    raise_on_failure: bool = False,
    on_iteration: Callable[[int, float], None] | None = None,
) -> SolveResult:
    """Solve ``matrix @ x = rhs`` with (preconditioned) conjugate gradients.

    Parameters
    ----------
    matrix:
        Dense symmetric positive definite matrix, or any symmetric positive
        definite operator with a square ``shape`` and ``matvec``/``@`` (the
        dense array keeps its fast path).
    rhs:
        Right-hand side vector.
    preconditioner:
        Callable applying ``M⁻¹``; ``None`` means plain CG.
    tolerance:
        Convergence criterion on the relative residual ``|r| / |b|``.
    max_iterations:
        Iteration cap (default ``10 n``, generously above the theoretical
        ``n``-step termination to absorb round-off).  ``0`` is allowed and
        returns the zero initial guess unconverged (unless the right-hand
        side is zero), which callers use to probe system setup cheaply.
    raise_on_failure:
        When ``True`` raise :class:`~repro.exceptions.ConvergenceError` instead
        of returning a result flagged ``converged=False``.
    on_iteration:
        Optional observer called after every iteration with
        ``(iteration, relative_residual)`` — the telemetry hook the tracing
        layer uses to stream convergence without touching the result.  The
        observer must not mutate solver state; residuals it sees are exactly
        the entries of ``residual_history``.
    """
    apply_matrix, n, flops_per_apply = as_matvec_operator(matrix)
    rhs = np.asarray(rhs, dtype=float)
    if rhs.shape != (n,):
        raise SolverError(f"right-hand side shape {rhs.shape} does not match matrix size {n}")
    if tolerance <= 0.0:
        raise SolverError("the CG tolerance must be positive")
    if max_iterations is None:
        max_iterations = 10 * n
    if max_iterations < 0:
        raise SolverError("max_iterations must be non-negative")
    apply_preconditioner = preconditioner or identity_preconditioner()
    method = "pcg" if preconditioner is not None else "cg"

    start = wall_clock()
    x = np.zeros(n)
    if n == 0:
        # Empty system: trivially converged with an empty solution.
        return SolveResult(
            solution=x,
            method=method,
            iterations=0,
            residual=0.0,
            converged=True,
            elapsed_seconds=wall_clock() - start,
        )
    r = rhs.copy()
    rhs_norm = float(np.linalg.norm(rhs))
    if rhs_norm == 0.0:  # contracts: disable=API001 -- trivial-system guard: only an exactly zero rhs has the exact solution x=0
        return SolveResult(
            solution=x,
            method=method,
            iterations=0,
            residual=0.0,
            converged=True,
            elapsed_seconds=wall_clock() - start,
        )
    if max_iterations == 0:
        if raise_on_failure:
            raise ConvergenceError(
                "CG was given max_iterations=0 with a non-zero right-hand side"
            )
        return SolveResult(
            solution=x,
            method=method,
            iterations=0,
            residual=1.0,  # |b - A·0| / |b|
            converged=False,
            elapsed_seconds=wall_clock() - start,
        )

    z = apply_preconditioner(r)
    p = z.copy()
    rz = float(r @ z)
    history: list[float] = []
    iterations = 0
    converged = False

    for iteration in range(1, max_iterations + 1):
        iterations = iteration
        ap = apply_matrix(p)
        pap = float(p @ ap)
        if pap <= 0.0:
            raise SolverError(
                "the matrix is not positive definite (p'Ap <= 0 encountered in CG)"
            )
        alpha = rz / pap
        x += alpha * p
        r -= alpha * ap
        residual = float(np.linalg.norm(r)) / rhs_norm
        history.append(residual)
        if on_iteration is not None:
            on_iteration(iteration, residual)
        if residual < tolerance:
            converged = True
            break
        z = apply_preconditioner(r)
        rz_new = float(r @ z)
        beta = rz_new / rz
        rz = rz_new
        p = z + beta * p

    elapsed = wall_clock() - start
    final_residual = history[-1] if history else 0.0
    if not converged and raise_on_failure:
        raise ConvergenceError(
            f"CG did not reach tolerance {tolerance:g} within {max_iterations} iterations "
            f"(residual {final_residual:.3e})"
        )
    # One mat-vec plus a few axpys/dots per iteration.
    flops = iterations * (flops_per_apply + 10.0 * n)
    return SolveResult(
        solution=x,
        method=method,
        iterations=iterations,
        residual=final_residual,
        converged=converged,
        elapsed_seconds=elapsed,
        estimated_flops=flops,
        residual_history=history,
    )
