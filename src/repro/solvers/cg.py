"""Conjugate-gradient solver with optional (diagonal) preconditioning.

The paper reports that "the best results have been obtained by a diagonal
preconditioned conjugate gradient algorithm with assembly of the global
matrix", which for the dense symmetric positive definite grounding system
"turned out to be extremely efficient ... with a very low computational cost in
comparison with matrix generation".  The implementation below is a standard
preconditioned CG on dense NumPy arrays, recording the residual history so
tests and ablation benchmarks can inspect the convergence behaviour.
"""

from __future__ import annotations

import time

import numpy as np

from repro.exceptions import ConvergenceError, SolverError
from repro.solvers.preconditioners import Preconditioner, identity_preconditioner
from repro.solvers.result import SolveResult

__all__ = ["conjugate_gradient"]


def conjugate_gradient(
    matrix: np.ndarray,
    rhs: np.ndarray,
    preconditioner: Preconditioner | None = None,
    tolerance: float = 1.0e-10,
    max_iterations: int | None = None,
    raise_on_failure: bool = False,
) -> SolveResult:
    """Solve ``matrix @ x = rhs`` with (preconditioned) conjugate gradients.

    Parameters
    ----------
    matrix:
        Dense symmetric positive definite matrix.
    rhs:
        Right-hand side vector.
    preconditioner:
        Callable applying ``M⁻¹``; ``None`` means plain CG.
    tolerance:
        Convergence criterion on the relative residual ``|r| / |b|``.
    max_iterations:
        Iteration cap (default ``10 n``, generously above the theoretical
        ``n``-step termination to absorb round-off).
    raise_on_failure:
        When ``True`` raise :class:`~repro.exceptions.ConvergenceError` instead
        of returning a result flagged ``converged=False``.
    """
    matrix = np.asarray(matrix, dtype=float)
    rhs = np.asarray(rhs, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise SolverError(f"the system matrix must be square, got shape {matrix.shape}")
    n = matrix.shape[0]
    if rhs.shape != (n,):
        raise SolverError(f"right-hand side shape {rhs.shape} does not match matrix size {n}")
    if tolerance <= 0.0:
        raise SolverError("the CG tolerance must be positive")
    if max_iterations is None:
        max_iterations = 10 * n
    if max_iterations < 1:
        raise SolverError("max_iterations must be at least 1")
    apply_preconditioner = preconditioner or identity_preconditioner()

    start = time.perf_counter()
    x = np.zeros(n)
    r = rhs.copy()
    rhs_norm = float(np.linalg.norm(rhs))
    if rhs_norm == 0.0:
        return SolveResult(
            solution=x,
            method="pcg" if preconditioner is not None else "cg",
            iterations=0,
            residual=0.0,
            converged=True,
            elapsed_seconds=time.perf_counter() - start,
        )

    z = apply_preconditioner(r)
    p = z.copy()
    rz = float(r @ z)
    history: list[float] = []
    iterations = 0
    converged = False

    for iteration in range(1, max_iterations + 1):
        iterations = iteration
        ap = matrix @ p
        pap = float(p @ ap)
        if pap <= 0.0:
            raise SolverError(
                "the matrix is not positive definite (p'Ap <= 0 encountered in CG)"
            )
        alpha = rz / pap
        x += alpha * p
        r -= alpha * ap
        residual = float(np.linalg.norm(r)) / rhs_norm
        history.append(residual)
        if residual < tolerance:
            converged = True
            break
        z = apply_preconditioner(r)
        rz_new = float(r @ z)
        beta = rz_new / rz
        rz = rz_new
        p = z + beta * p

    elapsed = time.perf_counter() - start
    final_residual = history[-1] if history else 0.0
    if not converged and raise_on_failure:
        raise ConvergenceError(
            f"CG did not reach tolerance {tolerance:g} within {max_iterations} iterations "
            f"(residual {final_residual:.3e})"
        )
    # ~ (2 n^2 + 10 n) flops per iteration: one mat-vec plus a few axpys/dots.
    flops = iterations * (2.0 * n * n + 10.0 * n)
    return SolveResult(
        solution=x,
        method="pcg" if preconditioner is not None else "cg",
        iterations=iterations,
        residual=final_residual,
        converged=converged,
        elapsed_seconds=elapsed,
        estimated_flops=flops,
        residual_history=history,
    )
