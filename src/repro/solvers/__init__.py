"""Linear solvers for the dense, symmetric positive definite Galerkin system.

The paper (Section 4.3) notes that for small and medium problems the matrix
generation dominates while for large ones the ``O(N³/3)`` direct solve would
prevail, and that "the best results have been obtained by a diagonal
preconditioned conjugate gradient algorithm with assembly of the global
matrix".  Both families are provided:

* :func:`repro.solvers.direct.solve_direct` — Cholesky (falling back to LU);
* :func:`repro.solvers.cg.conjugate_gradient` — plain and Jacobi (diagonal)
  preconditioned CG with full convergence diagnostics.

:func:`solve_system` picks a solver by name, which is how the rest of the
library requests one.
"""

from repro.solvers.result import SolveResult
from repro.solvers.direct import solve_direct
from repro.solvers.cg import conjugate_gradient
from repro.solvers.preconditioners import jacobi_preconditioner, identity_preconditioner

import numpy as np

from repro.exceptions import SolverError

__all__ = [
    "SolveResult",
    "solve_direct",
    "conjugate_gradient",
    "jacobi_preconditioner",
    "identity_preconditioner",
    "solve_system",
    "SOLVER_NAMES",
]

#: Names accepted by :func:`solve_system`.
SOLVER_NAMES = ("cholesky", "lu", "cg", "pcg")


def solve_system(
    matrix,
    rhs: np.ndarray,
    method: str = "pcg",
    tolerance: float = 1.0e-10,
    max_iterations: int | None = None,
    on_iteration=None,
) -> SolveResult:
    """Solve ``matrix @ x = rhs`` with the requested method.

    Parameters
    ----------
    matrix, rhs:
        The symmetric system.  A dense matrix works with every method; a
        matrix-free operator (square ``shape`` plus ``matvec``/``@``, e.g.
        the hierarchical far-field operator) is accepted by the iterative
        methods only.
    method:
        One of ``"cholesky"``, ``"lu"``, ``"cg"`` (unpreconditioned) or
        ``"pcg"`` (diagonal preconditioned conjugate gradient — the paper's
        preferred solver and the default).
    tolerance:
        Relative residual tolerance for the iterative solvers.
    max_iterations:
        Iteration cap for the iterative solvers (defaults to ``10 n``).
    on_iteration:
        Optional per-iteration observer ``(iteration, relative_residual)``
        forwarded to the iterative solvers (the tracing layer's convergence
        telemetry); ignored by the direct methods, which have no iterations.
    """
    method = str(method).lower()
    if method not in SOLVER_NAMES:
        raise SolverError(f"unknown solver {method!r}; expected one of {SOLVER_NAMES}")
    is_dense = isinstance(matrix, np.ndarray) or isinstance(matrix, (list, tuple))
    if method in ("cholesky", "lu"):
        if not is_dense:
            raise SolverError(
                f"the direct solver {method!r} needs a dense matrix; the matrix-free "
                "hierarchical operator is solved with 'cg' or 'pcg'"
            )
        return solve_direct(matrix, rhs, method=method)
    preconditioner = jacobi_preconditioner(matrix) if method == "pcg" else None
    return conjugate_gradient(
        matrix,
        rhs,
        preconditioner=preconditioner,
        tolerance=tolerance,
        max_iterations=max_iterations,
        on_iteration=on_iteration,
    )
