"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so callers can
catch every library-specific failure with a single ``except`` clause while still
letting programming errors (``TypeError`` and friends) propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GeometryError",
    "DiscretizationError",
    "SoilModelError",
    "KernelError",
    "AssemblyError",
    "ClusterError",
    "SolverError",
    "ConvergenceError",
    "ScheduleError",
    "ParallelExecutionError",
    "ResilienceError",
    "ChannelTimeout",
    "CheckpointError",
    "ExperimentError",
    "ValidationError",
]


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` library."""


class GeometryError(ReproError):
    """Raised for invalid grounding-grid geometry (degenerate segments, bad radii...)."""


class ValidationError(GeometryError):
    """Raised when a grid fails a validation rule (e.g. electrode above the surface)."""


class DiscretizationError(ReproError):
    """Raised when a conductor cannot be discretised into boundary elements."""


class SoilModelError(ReproError):
    """Raised for inconsistent soil models (non-positive conductivity, bad layering)."""


class KernelError(ReproError):
    """Raised when an integral kernel cannot be evaluated (unsupported layer pair...)."""


class AssemblyError(ReproError):
    """Raised when the BEM coefficient matrix cannot be assembled."""


class ClusterError(ReproError):
    """Raised when a hierarchical cluster decomposition cannot be built."""


class SolverError(ReproError):
    """Raised when the linear system cannot be solved."""


class ConvergenceError(SolverError):
    """Raised when an iterative solver fails to reach the requested tolerance."""


class ScheduleError(ReproError):
    """Raised for invalid loop-schedule specifications (unknown kind, chunk <= 0...)."""


class ParallelExecutionError(ReproError):
    """Raised when a parallel assembly/executor backend fails."""


class ResilienceError(ReproError):
    """Raised for invalid fault plans / retry policies (:mod:`repro.resilience`)."""


class ChannelTimeout(ResilienceError):
    """Raised when a deadline-bounded pipe receive expires without a message."""


class CheckpointError(ReproError):
    """Raised when a campaign checkpoint file cannot be read or written."""


class ExperimentError(ReproError):
    """Raised by the experiment drivers when a reproduction run is misconfigured."""
