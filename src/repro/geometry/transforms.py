"""Depth-axis affine transforms used by the method of images.

Every image of a source point produced by the layered-soil Green's function is
obtained from the original point by an affine map of its depth coordinate,

    ``z_image = sign * z + offset``        (``sign`` is +1 or -1),

with the horizontal coordinates unchanged: reflections about the earth surface
(``z -> -z``), about a layer interface at depth ``h`` (``z -> 2 h - z``) and
vertical translations by multiples of ``2 h`` all have this form.  Because the
map is affine, the image of a straight segment is again a straight segment, so
the analytic segment integrals of :mod:`repro.bem.segment_integrals` apply
directly to image contributions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DepthTransform", "reflect_surface", "reflect_interface", "identity_transform"]


@dataclass(frozen=True)
class DepthTransform:
    """Affine transform of the depth coordinate, ``z -> sign * z + offset``."""

    sign: float
    offset: float

    def __post_init__(self) -> None:
        if self.sign not in (-1.0, 1.0):
            raise ValueError(f"sign must be +1 or -1, got {self.sign!r}")

    def apply_depth(self, z: np.ndarray | float) -> np.ndarray | float:
        """Transform depths (scalar or array)."""
        return self.sign * z + self.offset

    def apply_points(self, points: np.ndarray) -> np.ndarray:
        """Transform an ``(..., 3)`` array of points, returning a new array."""
        pts = np.array(points, dtype=float, copy=True)
        pts[..., 2] = self.sign * pts[..., 2] + self.offset
        return pts

    def compose(self, other: "DepthTransform") -> "DepthTransform":
        """Return the transform equivalent to applying ``other`` then ``self``."""
        return DepthTransform(self.sign * other.sign, self.sign * other.offset + self.offset)

    @property
    def is_identity(self) -> bool:
        """Whether the transform leaves points unchanged."""
        return self.sign == 1.0 and self.offset == 0.0  # contracts: disable=API001 -- identity detection on values the transforms assign exactly


def identity_transform() -> DepthTransform:
    """The identity depth transform."""
    return DepthTransform(1.0, 0.0)


def reflect_surface() -> DepthTransform:
    """Reflection about the earth surface ``z = 0``."""
    return DepthTransform(-1.0, 0.0)


def reflect_interface(depth: float) -> DepthTransform:
    """Reflection about a horizontal plane at the given depth ``z = depth``."""
    return DepthTransform(-1.0, 2.0 * float(depth))
