"""The :class:`GroundingGrid` container.

A grounding grid bundles all electrodes of an installation (horizontal mesh
conductors and vertical rods) together with descriptive metadata.  It is a pure
geometry object: soil properties, energisation and discretisation live in other
sub-packages so that the same grid can be analysed under different soil models
(exactly what Section 5.2 of the paper does with its models A, B and C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.exceptions import GeometryError
from repro.geometry.conductors import Conductor, ConductorKind

__all__ = ["GroundingGrid"]


@dataclass
class GroundingGrid:
    """A collection of grounding electrodes.

    Parameters
    ----------
    name:
        Human-readable identifier, e.g. ``"Barberá"``.
    conductors:
        The electrodes.  The list may be empty at construction time and filled
        with :meth:`add`.
    metadata:
        Free-form information (designer notes, substation data ...).
    """

    name: str = "grid"
    conductors: list[Conductor] = field(default_factory=list)
    metadata: dict[str, Any] = field(default_factory=dict)

    # -- collection protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self.conductors)

    def __iter__(self) -> Iterator[Conductor]:
        return iter(self.conductors)

    def __getitem__(self, index: int) -> Conductor:
        return self.conductors[index]

    def add(self, conductor: Conductor) -> None:
        """Append a single conductor."""
        if not isinstance(conductor, Conductor):
            raise GeometryError(f"expected a Conductor, got {type(conductor).__name__}")
        self.conductors.append(conductor)

    def extend(self, conductors: Iterable[Conductor]) -> None:
        """Append several conductors."""
        for conductor in conductors:
            self.add(conductor)

    # -- selections -----------------------------------------------------------

    def of_kind(self, kind: ConductorKind) -> list[Conductor]:
        """All conductors of a given kind."""
        return [c for c in self.conductors if c.kind is kind]

    @property
    def grid_conductors(self) -> list[Conductor]:
        """The horizontal mesh conductors."""
        return self.of_kind(ConductorKind.GRID)

    @property
    def rods(self) -> list[Conductor]:
        """The vertical ground rods."""
        return self.of_kind(ConductorKind.ROD)

    @property
    def n_conductors(self) -> int:
        """Total number of electrodes."""
        return len(self.conductors)

    @property
    def n_rods(self) -> int:
        """Number of ground rods."""
        return len(self.rods)

    # -- aggregate geometric quantities ----------------------------------------

    @property
    def total_length(self) -> float:
        """Sum of the axis lengths of all electrodes [m]."""
        return float(sum(c.length for c in self.conductors))

    @property
    def total_surface_area(self) -> float:
        """Sum of the lateral surface areas of all electrodes [m^2]."""
        return float(sum(c.surface_area for c in self.conductors))

    @property
    def depth_range(self) -> tuple[float, float]:
        """``(min_depth, max_depth)`` over all electrodes [m]."""
        if not self.conductors:
            raise GeometryError("grid is empty")
        lows, highs = zip(*(c.depth_range for c in self.conductors))
        return (min(lows), max(highs))

    @property
    def burial_depth(self) -> float:
        """Depth of the shallowest electrode point [m]."""
        return self.depth_range[0]

    def bounding_box(self) -> tuple[np.ndarray, np.ndarray]:
        """Axis-aligned bounding box ``(lower, upper)`` of all axis end points."""
        if not self.conductors:
            raise GeometryError("grid is empty")
        points = np.vstack([np.vstack((c.start, c.end)) for c in self.conductors])
        return points.min(axis=0), points.max(axis=0)

    def plan_extent(self) -> tuple[float, float]:
        """Horizontal extent ``(dx, dy)`` of the grid in plan view [m]."""
        lower, upper = self.bounding_box()
        return float(upper[0] - lower[0]), float(upper[1] - lower[1])

    def covered_area(self) -> float:
        """Area of the convex hull of the plan-view end points [m^2].

        This is the "protected area" quoted by the paper for the Barberá grid
        (6 600 m^2 for a right-angled triangle of 143 m x 89 m).
        """
        points = self.plan_points()
        return _convex_hull_area(points)

    def plan_points(self) -> np.ndarray:
        """All axis end points projected on the surface plane, shape ``(n, 2)``."""
        if not self.conductors:
            raise GeometryError("grid is empty")
        pts = np.vstack([np.vstack((c.start[:2], c.end[:2])) for c in self.conductors])
        return pts

    # -- (de)serialisation ----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable representation (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "metadata": dict(self.metadata),
            "conductors": [c.to_dict() for c in self.conductors],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "GroundingGrid":
        """Rebuild a grid from :meth:`to_dict` output."""
        grid = cls(name=str(data.get("name", "grid")), metadata=dict(data.get("metadata", {})))
        for item in data.get("conductors", []):
            grid.add(Conductor.from_dict(item))
        return grid

    def copy(self) -> "GroundingGrid":
        """Shallow copy (conductors are immutable, so sharing them is safe)."""
        return GroundingGrid(
            name=self.name,
            conductors=list(self.conductors),
            metadata=dict(self.metadata),
        )

    def translated(self, offset: Sequence[float]) -> "GroundingGrid":
        """A copy of the grid rigidly translated by ``offset`` (3-vector)."""
        off = np.asarray(offset, dtype=float)
        if off.shape != (3,):
            raise GeometryError("translation offset must be a 3-vector")
        moved = [
            Conductor(c.start + off, c.end + off, c.radius, c.kind, c.label)
            for c in self.conductors
        ]
        return GroundingGrid(name=self.name, conductors=moved, metadata=dict(self.metadata))

    def summary(self) -> dict[str, Any]:
        """Compact description used by reports and examples."""
        dx, dy = self.plan_extent() if self.conductors else (0.0, 0.0)
        return {
            "name": self.name,
            "n_conductors": self.n_conductors,
            "n_grid_conductors": len(self.grid_conductors),
            "n_rods": self.n_rods,
            "total_length_m": round(self.total_length, 3) if self.conductors else 0.0,
            "plan_extent_m": (round(dx, 3), round(dy, 3)),
            "covered_area_m2": round(self.covered_area(), 1) if self.conductors else 0.0,
        }


def _convex_hull_area(points: np.ndarray) -> float:
    """Area of the convex hull of 2D points (shoelace on the hull polygon).

    A tiny Andrew-monotone-chain implementation is used instead of
    ``scipy.spatial.ConvexHull`` to keep this module dependency-light and to
    handle the degenerate (collinear) case gracefully by returning ``0.0``.
    """
    pts = np.unique(np.round(np.asarray(points, dtype=float), 9), axis=0)
    if pts.shape[0] < 3:
        return 0.0
    order = np.lexsort((pts[:, 1], pts[:, 0]))
    pts = pts[order]

    def cross(o: np.ndarray, a: np.ndarray, b: np.ndarray) -> float:
        return float((a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0]))

    lower: list[np.ndarray] = []
    for p in pts:
        while len(lower) >= 2 and cross(lower[-2], lower[-1], p) <= 0:
            lower.pop()
        lower.append(p)
    upper: list[np.ndarray] = []
    for p in pts[::-1]:
        while len(upper) >= 2 and cross(upper[-2], upper[-1], p) <= 0:
            upper.pop()
        upper.append(p)
    hull = np.array(lower[:-1] + upper[:-1])
    if hull.shape[0] < 3:
        return 0.0
    x = hull[:, 0]
    y = hull[:, 1]
    return 0.5 * abs(float(np.dot(x, np.roll(y, -1)) - np.dot(y, np.roll(x, -1))))
