"""Constructors for realistic grounding-grid layouts.

The paper's two case studies are meshes of horizontal conductors laid out on a
planar region (a right-angled triangle for the Barberá substation, a stepped
quadrilateral for Balaidos) plus vertical ground rods.  :class:`GridBuilder`
produces such layouts from a small set of parameters:

* :meth:`GridBuilder.rectangular_mesh` — the classic ``nx x ny`` reticulated grid;
* :meth:`GridBuilder.polygon_mesh` — grid lines clipped to an arbitrary convex
  polygon, with the polygon boundary itself added as conductors (this is what
  produces the triangular Barberá layout);
* :meth:`GridBuilder.right_triangle_mesh` — convenience wrapper around
  :meth:`polygon_mesh`;
* :meth:`GridBuilder.add_rods` — vertical rods attached at chosen plan positions.

All conductors produced by the meshers are already split at their mutual
intersections, i.e. every returned :class:`~repro.geometry.conductors.Conductor`
joins two adjacent grid nodes; this matches the paper's description of the
Barberá grid as "408 segments of cylindrical conductor".
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.constants import DEFAULT_BURIAL_DEPTH, GEOMETRIC_TOLERANCE
from repro.exceptions import GeometryError
from repro.geometry.conductors import Conductor, ConductorKind
from repro.geometry.grid import GroundingGrid

__all__ = ["GridBuilder"]


def _canonical_segment_key(p: np.ndarray, q: np.ndarray, decimals: int = 6) -> tuple:
    """Order-independent hashable key for a segment, used to deduplicate."""
    a = tuple(np.round(np.asarray(p, dtype=float), decimals) + 0.0)
    b = tuple(np.round(np.asarray(q, dtype=float), decimals) + 0.0)
    return (a, b) if a <= b else (b, a)


class GridBuilder:
    """Factory of :class:`~repro.geometry.grid.GroundingGrid` objects.

    Parameters
    ----------
    depth:
        Burial depth of the horizontal mesh [m] (0.8 m in both case studies).
    conductor_radius:
        Radius of the horizontal conductors [m].
    rod_radius:
        Radius of the ground rods [m].
    rod_length:
        Length of the ground rods [m].
    name:
        Name given to the produced grids.
    """

    def __init__(
        self,
        depth: float = DEFAULT_BURIAL_DEPTH,
        conductor_radius: float = 6.0e-3,
        rod_radius: float = 7.0e-3,
        rod_length: float = 1.5,
        name: str = "grid",
    ) -> None:
        if depth <= 0.0:
            raise GeometryError(f"burial depth must be positive, got {depth}")
        if conductor_radius <= 0.0 or rod_radius <= 0.0:
            raise GeometryError("conductor and rod radii must be positive")
        if rod_length <= 0.0:
            raise GeometryError("rod length must be positive")
        self.depth = float(depth)
        self.conductor_radius = float(conductor_radius)
        self.rod_radius = float(rod_radius)
        self.rod_length = float(rod_length)
        self.name = name

    # ------------------------------------------------------------------ meshes

    def rectangular_mesh(
        self,
        width: float,
        height: float,
        nx: int,
        ny: int,
        origin: Sequence[float] = (0.0, 0.0),
    ) -> GroundingGrid:
        """A ``width x height`` grid with ``nx x ny`` meshes (cells).

        The grid has ``nx + 1`` vertical and ``ny + 1`` horizontal conductor
        lines; each line is split at every crossing, so the produced grid has
        ``nx (ny + 1) + ny (nx + 1)`` conductors.
        """
        if nx < 1 or ny < 1:
            raise GeometryError("a rectangular mesh needs at least one cell per direction")
        xs = np.linspace(0.0, float(width), nx + 1) + float(origin[0])
        ys = np.linspace(0.0, float(height), ny + 1) + float(origin[1])
        polygon = [
            (float(origin[0]), float(origin[1])),
            (float(origin[0]) + float(width), float(origin[1])),
            (float(origin[0]) + float(width), float(origin[1]) + float(height)),
            (float(origin[0]), float(origin[1]) + float(height)),
        ]
        return self.polygon_mesh(polygon, xs, ys)

    def right_triangle_mesh(
        self,
        leg_x: float,
        leg_y: float,
        spacing_x: float,
        spacing_y: float,
        origin: Sequence[float] = (0.0, 0.0),
    ) -> GroundingGrid:
        """A right-angled triangular grid (right angle at ``origin``).

        This is the Barberá layout: the two legs lie along the coordinate axes
        and the hypotenuse joins ``(leg_x, 0)`` to ``(0, leg_y)``.  Interior
        grid lines are placed every ``spacing_x`` / ``spacing_y`` metres.
        """
        if leg_x <= 0 or leg_y <= 0:
            raise GeometryError("triangle legs must be positive")
        if spacing_x <= 0 or spacing_y <= 0:
            raise GeometryError("grid spacings must be positive")
        ox, oy = float(origin[0]), float(origin[1])
        xs = ox + np.arange(0.0, leg_x + 0.5 * spacing_x, spacing_x)
        ys = oy + np.arange(0.0, leg_y + 0.5 * spacing_y, spacing_y)
        polygon = [(ox, oy), (ox + float(leg_x), oy), (ox, oy + float(leg_y))]
        return self.polygon_mesh(polygon, xs, ys)

    def polygon_mesh(
        self,
        polygon: Sequence[Sequence[float]],
        xs: Iterable[float],
        ys: Iterable[float],
    ) -> GroundingGrid:
        """Grid lines ``x = xs[i]`` and ``y = ys[j]`` clipped to a convex polygon.

        The polygon boundary is added as conductors as well (subdivided at every
        grid-line crossing).  All produced conductors join adjacent nodes.

        Parameters
        ----------
        polygon:
            Convex polygon vertices in counter-clockwise order, plan
            coordinates ``(x, y)`` [m].
        xs, ys:
            Positions of the vertical (constant ``x``) and horizontal
            (constant ``y``) grid lines [m].
        """
        poly = np.asarray(list(polygon), dtype=float)
        if poly.ndim != 2 or poly.shape[1] != 2 or poly.shape[0] < 3:
            raise GeometryError("polygon must be a sequence of at least three (x, y) vertices")
        if not _is_convex_ccw(poly):
            raise GeometryError("polygon_mesh requires a convex, counter-clockwise polygon")
        xs_arr = np.unique(np.asarray(list(xs), dtype=float))
        ys_arr = np.unique(np.asarray(list(ys), dtype=float))

        segments: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}

        def add_polyline(points_2d: np.ndarray) -> None:
            """Add conductors joining consecutive distinct points of a polyline."""
            for a, b in zip(points_2d[:-1], points_2d[1:]):
                if np.linalg.norm(b - a) <= 1.0e-9:
                    continue
                p = np.array([a[0], a[1], self.depth])
                q = np.array([b[0], b[1], self.depth])
                segments.setdefault(_canonical_segment_key(p, q), (p, q))

        # Vertical grid lines.
        for x in xs_arr:
            clip = _clip_line_to_polygon(poly, axis="x", value=float(x))
            if clip is None:
                continue
            y_lo, y_hi = clip
            if y_hi - y_lo <= 1.0e-9:
                continue
            interior = ys_arr[(ys_arr > y_lo + 1.0e-9) & (ys_arr < y_hi - 1.0e-9)]
            stations = np.concatenate(([y_lo], interior, [y_hi]))
            pts = np.column_stack((np.full_like(stations, x), stations))
            add_polyline(pts)

        # Horizontal grid lines.
        for y in ys_arr:
            clip = _clip_line_to_polygon(poly, axis="y", value=float(y))
            if clip is None:
                continue
            x_lo, x_hi = clip
            if x_hi - x_lo <= 1.0e-9:
                continue
            interior = xs_arr[(xs_arr > x_lo + 1.0e-9) & (xs_arr < x_hi - 1.0e-9)]
            stations = np.concatenate(([x_lo], interior, [x_hi]))
            pts = np.column_stack((stations, np.full_like(stations, y)))
            add_polyline(pts)

        # Polygon boundary edges, subdivided at every grid-line crossing.
        n_vertices = poly.shape[0]
        for k in range(n_vertices):
            a = poly[k]
            b = poly[(k + 1) % n_vertices]
            direction = b - a
            params = [0.0, 1.0]
            if abs(direction[0]) > 1.0e-12:
                params.extend(float((x - a[0]) / direction[0]) for x in xs_arr)
            if abs(direction[1]) > 1.0e-12:
                params.extend(float((y - a[1]) / direction[1]) for y in ys_arr)
            ts = np.unique(np.clip(np.asarray(params, dtype=float), 0.0, 1.0))
            pts = a[None, :] + ts[:, None] * direction[None, :]
            add_polyline(pts)

        grid = GroundingGrid(name=self.name)
        for index, (p, q) in enumerate(segments.values()):
            grid.add(
                Conductor(
                    start=p,
                    end=q,
                    radius=self.conductor_radius,
                    kind=ConductorKind.GRID,
                    label=f"{self.name}-c{index}",
                )
            )
        grid.metadata["builder"] = {
            "depth": self.depth,
            "conductor_radius": self.conductor_radius,
            "n_xlines": int(xs_arr.size),
            "n_ylines": int(ys_arr.size),
        }
        return grid

    # -------------------------------------------------------------------- rods

    def add_rods(
        self,
        grid: GroundingGrid,
        positions: Iterable[Sequence[float]],
        length: float | None = None,
        radius: float | None = None,
        top_depth: float | None = None,
    ) -> GroundingGrid:
        """Attach vertical rods at the given plan positions (in place).

        Each rod runs from ``top_depth`` (default: the builder's burial depth,
        i.e. the rod is welded to the horizontal mesh) down to
        ``top_depth + length``.

        Returns the same grid object for chaining.
        """
        rod_length = float(length if length is not None else self.rod_length)
        rod_radius = float(radius if radius is not None else self.rod_radius)
        z_top = float(top_depth if top_depth is not None else self.depth)
        if rod_length <= 0:
            raise GeometryError("rod length must be positive")
        for index, pos in enumerate(positions):
            x, y = float(pos[0]), float(pos[1])
            grid.add(
                Conductor(
                    start=np.array([x, y, z_top]),
                    end=np.array([x, y, z_top + rod_length]),
                    radius=rod_radius,
                    kind=ConductorKind.ROD,
                    label=f"{grid.name}-rod{index}",
                )
            )
        return grid

    # ---------------------------------------------------------------- utilities

    @staticmethod
    def merge(name: str, *grids: GroundingGrid) -> GroundingGrid:
        """Merge several grids into one, removing duplicated conductors."""
        merged = GroundingGrid(name=name)
        seen: set[tuple] = set()
        for grid in grids:
            for conductor in grid:
                key = _canonical_segment_key(conductor.start, conductor.end)
                if key in seen:
                    continue
                seen.add(key)
                merged.add(conductor)
        return merged

    @staticmethod
    def node_positions(grid: GroundingGrid, decimals: int = 6) -> np.ndarray:
        """Unique conductor end points of a grid, shape ``(n, 3)``."""
        points = np.vstack([np.vstack((c.start, c.end)) for c in grid])
        rounded = np.round(points, decimals)
        _, index = np.unique(rounded, axis=0, return_index=True)
        return points[np.sort(index)]

    @staticmethod
    def perimeter_node_positions(grid: GroundingGrid, decimals: int = 6) -> np.ndarray:
        """Nodes lying on the convex hull boundary of the plan view."""
        nodes = GridBuilder.node_positions(grid, decimals)
        plan = nodes[:, :2]
        hull = _convex_hull(plan)
        if hull.shape[0] < 3:
            return nodes
        on_boundary = np.zeros(plan.shape[0], dtype=bool)
        n_hull = hull.shape[0]
        for k in range(n_hull):
            a = hull[k]
            b = hull[(k + 1) % n_hull]
            ab = b - a
            ab_len = np.linalg.norm(ab)
            ap = plan - a[None, :]
            cross = np.abs(ap[:, 0] * ab[1] - ap[:, 1] * ab[0]) / max(ab_len, 1e-12)
            t = (ap @ ab) / max(ab_len**2, 1e-12)
            on_boundary |= (cross <= 1.0e-6) & (t >= -1.0e-9) & (t <= 1.0 + 1.0e-9)
        return nodes[on_boundary]


# ---------------------------------------------------------------------------
# Internal geometric helpers.
# ---------------------------------------------------------------------------


def _is_convex_ccw(poly: np.ndarray) -> bool:
    """Whether the polygon is convex with counter-clockwise orientation."""
    n = poly.shape[0]
    signs = []
    for i in range(n):
        a, b, c = poly[i], poly[(i + 1) % n], poly[(i + 2) % n]
        cross = (b[0] - a[0]) * (c[1] - b[1]) - (b[1] - a[1]) * (c[0] - b[0])
        if abs(cross) > 1.0e-12:
            signs.append(np.sign(cross))
    return bool(signs) and all(s > 0 for s in signs)


def _clip_line_to_polygon(
    poly: np.ndarray, axis: str, value: float
) -> tuple[float, float] | None:
    """Clip an axis-parallel infinite line to a convex polygon.

    Returns the interval of the *other* coordinate spanned inside the polygon,
    or ``None`` when the line misses the polygon.
    """
    # Parameterise the line as p(t) = p0 + t * d with t unbounded.
    if axis == "x":
        p0 = np.array([value, 0.0])
        d = np.array([0.0, 1.0])
    elif axis == "y":
        p0 = np.array([0.0, value])
        d = np.array([1.0, 0.0])
    else:  # pragma: no cover - guarded by callers
        raise GeometryError(f"axis must be 'x' or 'y', got {axis!r}")

    t_lo, t_hi = -np.inf, np.inf
    n_vertices = poly.shape[0]
    for k in range(n_vertices):
        a = poly[k]
        b = poly[(k + 1) % n_vertices]
        edge = b - a
        # Inward normal for a CCW polygon.
        normal = np.array([-edge[1], edge[0]])
        denom = float(np.dot(normal, d))
        num = float(np.dot(normal, a - p0))
        if abs(denom) < 1.0e-14:
            # Line parallel to this edge: feasible only if it lies inside the
            # half-plane, i.e. dot(normal, p0 - a) >= 0  <=>  num <= 0.
            if num > 1.0e-9:
                return None
            continue
        t = num / denom
        if denom > 0:
            t_lo = max(t_lo, t)
        else:
            t_hi = min(t_hi, t)
    if not np.isfinite(t_lo) or not np.isfinite(t_hi) or t_hi - t_lo <= 1.0e-9:
        return None
    return (float(t_lo), float(t_hi))


def _convex_hull(points: np.ndarray) -> np.ndarray:
    """Convex hull (CCW) of 2D points via Andrew's monotone chain."""
    pts = np.unique(np.round(np.asarray(points, dtype=float), 9), axis=0)
    if pts.shape[0] < 3:
        return pts
    order = np.lexsort((pts[:, 1], pts[:, 0]))
    pts = pts[order]

    def cross(o, a, b):
        return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])

    lower: list[np.ndarray] = []
    for p in pts:
        while len(lower) >= 2 and cross(lower[-2], lower[-1], p) <= 0:
            lower.pop()
        lower.append(p)
    upper: list[np.ndarray] = []
    for p in pts[::-1]:
        while len(upper) >= 2 and cross(upper[-2], upper[-1], p) <= 0:
            upper.pop()
        upper.append(p)
    return np.array(lower[:-1] + upper[:-1])
