"""Validation rules for grounding-grid geometries.

The checks codify the modelling assumptions of the paper's BEM formulation:

* every electrode must be buried (``z > 0``) — the formulation models buried
  conductors, not above-ground structures;
* the thin-wire (circumferential uniformity) hypothesis of Section 4.2 needs
  diameter/length ratios well below one;
* the constant-GPR boundary condition needs a single galvanically connected
  network;
* distinct conductors must not overlap (two electrodes closer than the sum of
  their radii would physically intersect).

:func:`validate_grid` returns a list of :class:`GridIssue` objects rather than
raising immediately, so CAD front-ends can display warnings while still
refusing to run on hard errors (``raise_on_error=True``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.geometry import point as pt
from repro.geometry.conductors import Conductor
from repro.geometry.discretize import LayeredMedium, discretize_grid
from repro.geometry.grid import GroundingGrid
from repro.geometry import connectivity

__all__ = ["GridIssue", "Severity", "validate_grid"]

#: Maximum diameter/length ratio for which the thin-wire hypothesis is accepted
#: without a warning (the paper quotes ~1e-3 for real grids).
_SLENDERNESS_WARNING = 0.05

#: Severity levels, ordered.
ERROR = "error"
WARNING = "warning"
Severity = str


@dataclass(frozen=True)
class GridIssue:
    """A single validation finding."""

    severity: Severity
    code: str
    message: str
    conductor_index: int | None = None

    @property
    def is_error(self) -> bool:
        """Whether this finding should block an analysis."""
        return self.severity == ERROR


def validate_grid(
    grid: GroundingGrid,
    soil: LayeredMedium | None = None,
    check_overlaps: bool = True,
    max_overlap_pairs: int = 2_000_000,
    raise_on_error: bool = False,
) -> list[GridIssue]:
    """Run every validation rule on a grid.

    Parameters
    ----------
    grid:
        The grid to validate.
    soil:
        Optional layered soil model; enables the depth-versus-layering checks.
    check_overlaps:
        Whether to run the (quadratic) conductor-overlap check.
    max_overlap_pairs:
        Safety cap on the number of conductor pairs examined by the overlap
        check; larger grids skip it with a warning.
    raise_on_error:
        When ``True``, raise :class:`~repro.exceptions.ValidationError` if any
        error-severity issue is found.

    Returns
    -------
    list[GridIssue]
        All findings (possibly empty).
    """
    issues: list[GridIssue] = []

    if len(grid) == 0:
        issues.append(GridIssue(ERROR, "empty-grid", "the grid contains no conductors"))
        return _finalise(issues, raise_on_error)

    issues.extend(_check_burial(grid))
    issues.extend(_check_slenderness(grid))
    issues.extend(_check_duplicates(grid))
    if check_overlaps:
        issues.extend(_check_overlaps(grid, max_overlap_pairs))
    issues.extend(_check_connectivity(grid, soil))
    if soil is not None:
        issues.extend(_check_soil_consistency(grid, soil))

    return _finalise(issues, raise_on_error)


def _finalise(issues: list[GridIssue], raise_on_error: bool) -> list[GridIssue]:
    if raise_on_error and any(issue.is_error for issue in issues):
        messages = "; ".join(i.message for i in issues if i.is_error)
        raise ValidationError(f"grid validation failed: {messages}")
    return issues


def _check_burial(grid: GroundingGrid) -> list[GridIssue]:
    issues = []
    for index, conductor in enumerate(grid):
        min_depth, _ = conductor.depth_range
        if min_depth <= 0.0:
            issues.append(
                GridIssue(
                    ERROR,
                    "not-buried",
                    f"conductor {index} reaches depth {min_depth:.3g} m (must be > 0, "
                    "i.e. strictly below the earth surface)",
                    conductor_index=index,
                )
            )
    return issues


def _check_slenderness(grid: GroundingGrid) -> list[GridIssue]:
    issues = []
    for index, conductor in enumerate(grid):
        ratio = conductor.slenderness
        if ratio > _SLENDERNESS_WARNING:
            issues.append(
                GridIssue(
                    WARNING,
                    "thick-conductor",
                    f"conductor {index} has diameter/length = {ratio:.3g}; the thin-wire "
                    "(circumferential uniformity) hypothesis may lose accuracy",
                    conductor_index=index,
                )
            )
    return issues


def _check_duplicates(grid: GroundingGrid) -> list[GridIssue]:
    seen: dict[tuple, int] = {}
    issues = []
    for index, conductor in enumerate(grid):
        a = tuple(np.round(conductor.start, 6) + 0.0)
        b = tuple(np.round(conductor.end, 6) + 0.0)
        key = (a, b) if a <= b else (b, a)
        if key in seen:
            issues.append(
                GridIssue(
                    ERROR,
                    "duplicate-conductor",
                    f"conductor {index} duplicates conductor {seen[key]}",
                    conductor_index=index,
                )
            )
        else:
            seen[key] = index
    return issues


def _share_endpoint(a: Conductor, b: Conductor, tol: float = 1.0e-6) -> bool:
    for p in (a.start, a.end):
        for q in (b.start, b.end):
            if pt.is_close(p, q, tol):
                return True
    return False


def _check_overlaps(grid: GroundingGrid, max_pairs: int) -> list[GridIssue]:
    n = len(grid)
    n_pairs = n * (n - 1) // 2
    if n_pairs > max_pairs:
        return [
            GridIssue(
                WARNING,
                "overlap-check-skipped",
                f"overlap check skipped: {n_pairs} conductor pairs exceed the cap of "
                f"{max_pairs}",
            )
        ]
    issues = []
    conductors = list(grid)
    for i in range(n):
        for j in range(i + 1, n):
            a, b = conductors[i], conductors[j]
            if _share_endpoint(a, b):
                continue  # legitimately joined at a node
            dist = pt.segment_segment_distance(a.start, a.end, b.start, b.end)
            if dist < a.radius + b.radius:
                issues.append(
                    GridIssue(
                        ERROR,
                        "overlapping-conductors",
                        f"conductors {i} and {j} are {dist:.4g} m apart, closer than the "
                        f"sum of their radii ({a.radius + b.radius:.4g} m)",
                        conductor_index=i,
                    )
                )
    return issues


def _check_connectivity(grid: GroundingGrid, soil: LayeredMedium | None) -> list[GridIssue]:
    try:
        mesh = discretize_grid(grid, soil=soil)
    except Exception as exc:  # discretisation problems are reported as errors
        return [GridIssue(ERROR, "discretisation-failed", f"cannot discretise grid: {exc}")]
    if not connectivity.is_connected(mesh):
        components = connectivity.connected_components(mesh)
        return [
            GridIssue(
                ERROR,
                "disconnected-grid",
                f"the grid has {len(components)} galvanically separate parts; a grounding "
                "system must be a single connected network",
            )
        ]
    return []


def _check_soil_consistency(grid: GroundingGrid, soil: LayeredMedium) -> list[GridIssue]:
    issues = []
    interfaces: Sequence[float] = tuple(soil.interface_depths())
    if not interfaces:
        return issues
    deepest_interface = max(interfaces)
    _, max_depth = grid.depth_range
    min_depth, _ = grid.depth_range
    # Purely informational: knowing which layers are energised is useful when
    # interpreting results (cf. Balaidos models B and C in the paper).
    layers_touched = set()
    for conductor in grid:
        lo, hi = conductor.depth_range
        layers_touched.add(soil.layer_index(lo + 1e-9))
        layers_touched.add(soil.layer_index(hi - 1e-9))
    if len(layers_touched) > 1:
        issues.append(
            GridIssue(
                WARNING,
                "multi-layer-electrodes",
                "electrodes span more than one soil layer; cross-layer kernels with "
                "slower-converging series will be used (cf. Balaidos model C)",
            )
        )
    if max_depth > 10.0 * deepest_interface:
        issues.append(
            GridIssue(
                WARNING,
                "deep-electrodes",
                f"electrodes reach {max_depth:.3g} m, much deeper than the last interface at "
                f"{deepest_interface:.3g} m; check the soil model is adequate",
            )
        )
    del min_depth
    return issues
