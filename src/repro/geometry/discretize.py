"""Discretisation of a grounding grid into 1D boundary elements.

The approximated BEM of Section 4.2 of the paper only discretises the *axial
lines* of the electrodes.  :func:`discretize_grid` turns every conductor of a
:class:`~repro.geometry.grid.GroundingGrid` into one or more straight
:class:`MeshElement` objects and builds the global node table shared by
adjacent elements (so that linear, nodal trial functions can be used).

Two subdivision rules are applied:

* an element never crosses a soil-layer interface — conductors are split at
  every interface depth so each element lies entirely inside one layer (this is
  what makes the Balaidos "model C" rods contribute cross-layer kernels in the
  paper);
* elements are optionally subdivided to honour ``max_element_length`` and
  ``min_elements_per_conductor`` for mesh-refinement studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np

from repro.exceptions import DiscretizationError
from repro.geometry.conductors import Conductor, ConductorKind
from repro.geometry.grid import GroundingGrid

__all__ = ["LayeredMedium", "MeshElement", "Mesh", "discretize_grid"]


class LayeredMedium(Protocol):
    """Minimal soil-model interface needed by the discretiser.

    Any :class:`repro.soil.base.SoilModel` satisfies it; the protocol keeps the
    geometry package free of an import dependency on the soil package.
    """

    def interface_depths(self) -> Sequence[float]:
        """Depths of the horizontal layer interfaces [m], strictly increasing."""
        ...

    def layer_index(self, depth: float) -> int:
        """1-based index of the layer containing the given depth."""
        ...


@dataclass(frozen=True)
class MeshElement:
    """A straight boundary element on a conductor axis.

    Attributes
    ----------
    index:
        Position of the element in the mesh (0-based).
    p0, p1:
        End points of the element axis.
    radius:
        Radius of the parent conductor [m].
    conductor_index:
        Index of the parent conductor in the originating grid.
    layer:
        1-based index of the soil layer containing the element.
    node_ids:
        Global node ids of ``p0`` and ``p1``.
    kind:
        Kind of the parent conductor (grid bar / rod / auxiliary).
    """

    index: int
    p0: np.ndarray
    p1: np.ndarray
    radius: float
    conductor_index: int
    layer: int
    node_ids: tuple[int, int]
    kind: ConductorKind = ConductorKind.GRID

    @property
    def length(self) -> float:
        """Element length [m]."""
        return float(np.linalg.norm(self.p1 - self.p0))

    @property
    def midpoint(self) -> np.ndarray:
        """Element midpoint."""
        return 0.5 * (self.p0 + self.p1)

    @property
    def direction(self) -> np.ndarray:
        """Unit vector from ``p0`` to ``p1``."""
        d = self.p1 - self.p0
        return d / np.linalg.norm(d)

    @property
    def depth_range(self) -> tuple[float, float]:
        """``(min_depth, max_depth)`` of the element."""
        z0, z1 = float(self.p0[2]), float(self.p1[2])
        return (min(z0, z1), max(z0, z1))


class Mesh:
    """Discretised grounding grid: elements plus the shared node table."""

    def __init__(
        self,
        grid: GroundingGrid,
        nodes: np.ndarray,
        elements: list[MeshElement],
    ) -> None:
        self.grid = grid
        self.nodes = np.asarray(nodes, dtype=float)
        self.elements = list(elements)
        if self.nodes.ndim != 2 or self.nodes.shape[1] != 3:
            raise DiscretizationError("node table must have shape (n_nodes, 3)")
        for element in self.elements:
            for node_id in element.node_ids:
                if not 0 <= node_id < self.nodes.shape[0]:
                    raise DiscretizationError(
                        f"element {element.index} references unknown node {node_id}"
                    )

    # -- sizes ----------------------------------------------------------------

    @property
    def n_elements(self) -> int:
        """Number of boundary elements."""
        return len(self.elements)

    @property
    def n_nodes(self) -> int:
        """Number of distinct nodes."""
        return int(self.nodes.shape[0])

    @property
    def total_length(self) -> float:
        """Total discretised axis length [m]."""
        return float(sum(e.length for e in self.elements))

    # -- vectorised views used by the assembly kernels -------------------------

    def element_endpoints(self) -> tuple[np.ndarray, np.ndarray]:
        """Arrays ``(p0, p1)`` of element end points, each of shape ``(m, 3)``."""
        p0 = np.array([e.p0 for e in self.elements], dtype=float)
        p1 = np.array([e.p1 for e in self.elements], dtype=float)
        return p0, p1

    def element_radii(self) -> np.ndarray:
        """Array of element radii, shape ``(m,)``."""
        return np.array([e.radius for e in self.elements], dtype=float)

    def element_lengths(self) -> np.ndarray:
        """Array of element lengths, shape ``(m,)``."""
        return np.array([e.length for e in self.elements], dtype=float)

    def element_layers(self) -> np.ndarray:
        """Array of 1-based layer indices, shape ``(m,)``."""
        return np.array([e.layer for e in self.elements], dtype=int)

    def element_nodes(self) -> np.ndarray:
        """Array of node-id pairs, shape ``(m, 2)``."""
        return np.array([e.node_ids for e in self.elements], dtype=int)

    # -- reporting -------------------------------------------------------------

    def summary(self) -> dict:
        """Compact description of the mesh (used by reports and examples)."""
        layers = self.element_layers()
        return {
            "grid": self.grid.name,
            "n_elements": self.n_elements,
            "n_nodes": self.n_nodes,
            "total_length_m": round(self.total_length, 3),
            "elements_per_layer": {
                int(layer): int((layers == layer).sum()) for layer in np.unique(layers)
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Mesh(grid={self.grid.name!r}, n_elements={self.n_elements}, "
            f"n_nodes={self.n_nodes})"
        )


class _NodeTable:
    """Builds the global node numbering, merging coincident points."""

    def __init__(self, decimals: int = 6) -> None:
        self._decimals = decimals
        self._ids: dict[tuple, int] = {}
        self._points: list[np.ndarray] = []

    def get(self, point: np.ndarray) -> int:
        key = tuple(np.round(np.asarray(point, dtype=float), self._decimals) + 0.0)
        node_id = self._ids.get(key)
        if node_id is None:
            node_id = len(self._points)
            self._ids[key] = node_id
            self._points.append(np.asarray(point, dtype=float))
        return node_id

    def as_array(self) -> np.ndarray:
        if not self._points:
            return np.zeros((0, 3))
        return np.vstack(self._points)


def _split_depths_for_conductor(
    conductor: Conductor, interface_depths: Sequence[float]
) -> list[float]:
    """Axis parameters (in ``(0, 1)``) where the conductor crosses an interface."""
    z0 = float(conductor.start[2])
    z1 = float(conductor.end[2])
    if abs(z1 - z0) <= 1.0e-12:
        return []
    params = []
    for h in interface_depths:
        t = (float(h) - z0) / (z1 - z0)
        if 1.0e-9 < t < 1.0 - 1.0e-9:
            params.append(t)
    return sorted(params)


def discretize_grid(
    grid: GroundingGrid,
    soil: LayeredMedium | None = None,
    max_element_length: float = float("inf"),
    min_elements_per_conductor: int = 1,
    node_decimals: int = 6,
) -> Mesh:
    """Discretise a grounding grid into boundary elements.

    Parameters
    ----------
    grid:
        The grounding grid to discretise.
    soil:
        Optional layered soil model; when given, conductors are split at every
        layer interface and each element is tagged with its layer index.
    max_element_length:
        Upper bound on the element length [m]; conductors longer than this are
        subdivided uniformly.  The paper uses one element per grid segment,
        i.e. the default (no subdivision).
    min_elements_per_conductor:
        Lower bound on the number of elements per conductor (before interface
        splitting); useful for mesh-refinement studies.
    node_decimals:
        Rounding used to merge coincident end points into shared nodes.

    Returns
    -------
    Mesh
        The elements and the global node table.
    """
    if len(grid) == 0:
        raise DiscretizationError("cannot discretise an empty grid")
    if max_element_length <= 0:
        raise DiscretizationError("max_element_length must be positive")
    if min_elements_per_conductor < 1:
        raise DiscretizationError("min_elements_per_conductor must be >= 1")

    interface_depths: Sequence[float] = ()
    if soil is not None:
        interface_depths = tuple(float(h) for h in soil.interface_depths())

    node_table = _NodeTable(decimals=node_decimals)
    elements: list[MeshElement] = []

    for conductor_index, conductor in enumerate(grid):
        # 1. split at layer interfaces
        ts = [0.0, *_split_depths_for_conductor(conductor, interface_depths), 1.0]
        pieces: list[tuple[np.ndarray, np.ndarray]] = []
        for t0, t1 in zip(ts[:-1], ts[1:]):
            a = conductor.start + t0 * (conductor.end - conductor.start)
            b = conductor.start + t1 * (conductor.end - conductor.start)
            pieces.append((a, b))

        # 2. uniform subdivision of each piece
        conductor_length = conductor.length
        target_elements = max(
            min_elements_per_conductor,
            int(np.ceil(conductor_length / max_element_length))
            if np.isfinite(max_element_length)
            else min_elements_per_conductor,
        )
        # Distribute the requested subdivision across pieces proportionally.
        for a, b in pieces:
            piece_length = float(np.linalg.norm(b - a))
            if piece_length <= 1.0e-12:
                continue
            n_sub = max(1, int(round(target_elements * piece_length / conductor_length)))
            if np.isfinite(max_element_length):
                n_sub = max(n_sub, int(np.ceil(piece_length / max_element_length)))
            for k in range(n_sub):
                q0 = a + (k / n_sub) * (b - a)
                q1 = a + ((k + 1) / n_sub) * (b - a)
                mid_depth = 0.5 * (float(q0[2]) + float(q1[2]))
                layer = soil.layer_index(mid_depth) if soil is not None else 1
                node0 = node_table.get(q0)
                node1 = node_table.get(q1)
                if node0 == node1:
                    raise DiscretizationError(
                        f"conductor {conductor_index} produced a degenerate element "
                        f"(increase node_decimals or check the geometry)"
                    )
                elements.append(
                    MeshElement(
                        index=len(elements),
                        p0=np.asarray(q0, dtype=float),
                        p1=np.asarray(q1, dtype=float),
                        radius=conductor.radius,
                        conductor_index=conductor_index,
                        layer=int(layer),
                        node_ids=(node0, node1),
                        kind=conductor.kind,
                    )
                )

    return Mesh(grid=grid, nodes=node_table.as_array(), elements=elements)
