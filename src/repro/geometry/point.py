"""Low-level operations on 3D points represented as NumPy arrays.

Points are plain ``numpy.ndarray`` objects of shape ``(3,)`` (or ``(n, 3)`` for
batches); no wrapper class is introduced so that the hot BEM loops can operate
on contiguous arrays without boxing/unboxing overhead (see the "vectorizing for
loops" guidance in the scientific-Python optimisation notes).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.constants import GEOMETRIC_TOLERANCE
from repro.exceptions import GeometryError

__all__ = [
    "as_point",
    "as_points",
    "distance",
    "norm",
    "unit_vector",
    "midpoint",
    "is_close",
    "collinear",
    "point_segment_distance",
    "segment_segment_distance",
    "project_onto_segment",
    "lexicographic_key",
]


def as_point(value: Sequence[float] | np.ndarray) -> np.ndarray:
    """Coerce ``value`` into a float64 array of shape ``(3,)``.

    Raises
    ------
    GeometryError
        If the value does not have exactly three coordinates or contains
        non-finite entries.
    """
    arr = np.asarray(value, dtype=float)
    if arr.shape != (3,):
        raise GeometryError(f"a 3D point must have shape (3,), got {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise GeometryError(f"point contains non-finite coordinates: {arr}")
    return arr


def as_points(values: Iterable[Sequence[float]] | np.ndarray) -> np.ndarray:
    """Coerce an iterable of points into an array of shape ``(n, 3)``."""
    arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values, dtype=float)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2 or arr.shape[1] != 3:
        raise GeometryError(f"expected an (n, 3) array of points, got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise GeometryError("point array contains non-finite coordinates")
    return arr


def distance(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean distance between two points."""
    return float(np.linalg.norm(np.asarray(a, dtype=float) - np.asarray(b, dtype=float)))


def norm(v: np.ndarray) -> float:
    """Euclidean norm of a vector."""
    return float(np.linalg.norm(np.asarray(v, dtype=float)))


def unit_vector(v: np.ndarray) -> np.ndarray:
    """Return ``v`` normalised to unit length.

    Raises
    ------
    GeometryError
        If ``v`` has (numerically) zero length.
    """
    v = np.asarray(v, dtype=float)
    n = np.linalg.norm(v)
    if n <= GEOMETRIC_TOLERANCE:
        raise GeometryError("cannot normalise a zero-length vector")
    return v / n


def midpoint(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Midpoint of the segment ``ab``."""
    return 0.5 * (np.asarray(a, dtype=float) + np.asarray(b, dtype=float))


def is_close(a: np.ndarray, b: np.ndarray, tol: float = GEOMETRIC_TOLERANCE) -> bool:
    """Whether two points coincide within ``tol`` (absolute, in metres)."""
    return distance(a, b) <= tol


def collinear(a: np.ndarray, b: np.ndarray, c: np.ndarray, tol: float = 1.0e-9) -> bool:
    """Whether the three points are collinear.

    The test compares the area of the triangle ``abc`` (via the cross product)
    with ``tol`` times the square of the largest side, making it scale
    invariant.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    c = np.asarray(c, dtype=float)
    ab = b - a
    ac = c - a
    cross = np.cross(ab, ac)
    scale = max(np.dot(ab, ab), np.dot(ac, ac), 1.0e-300)
    return float(np.linalg.norm(cross)) <= tol * scale


def project_onto_segment(p: np.ndarray, a: np.ndarray, b: np.ndarray) -> tuple[float, np.ndarray]:
    """Project point ``p`` onto segment ``ab``.

    Returns
    -------
    (t, q)
        ``t`` is the clamped parameter in ``[0, 1]`` along ``ab`` and ``q`` the
        closest point on the segment.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    p = np.asarray(p, dtype=float)
    d = b - a
    dd = float(np.dot(d, d))
    if dd <= GEOMETRIC_TOLERANCE**2:
        return 0.0, a.copy()
    t = float(np.dot(p - a, d) / dd)
    t = min(1.0, max(0.0, t))
    return t, a + t * d


def point_segment_distance(p: np.ndarray, a: np.ndarray, b: np.ndarray) -> float:
    """Shortest distance from point ``p`` to the segment ``ab``."""
    _, q = project_onto_segment(p, a, b)
    return distance(p, q)


def segment_segment_distance(
    a0: np.ndarray, a1: np.ndarray, b0: np.ndarray, b1: np.ndarray
) -> float:
    """Shortest distance between two segments ``a0a1`` and ``b0b1``.

    Uses the standard closest-point-of-approach algorithm with clamping of the
    two segment parameters.  Degenerate (zero-length) segments are handled by
    falling back to point/segment distances.
    """
    a0 = np.asarray(a0, dtype=float)
    a1 = np.asarray(a1, dtype=float)
    b0 = np.asarray(b0, dtype=float)
    b1 = np.asarray(b1, dtype=float)
    u = a1 - a0
    v = b1 - b0
    w0 = a0 - b0
    a = float(np.dot(u, u))
    b = float(np.dot(u, v))
    c = float(np.dot(v, v))
    d = float(np.dot(u, w0))
    e = float(np.dot(v, w0))

    if a <= GEOMETRIC_TOLERANCE**2 and c <= GEOMETRIC_TOLERANCE**2:
        return distance(a0, b0)
    if a <= GEOMETRIC_TOLERANCE**2:
        return point_segment_distance(a0, b0, b1)
    if c <= GEOMETRIC_TOLERANCE**2:
        return point_segment_distance(b0, a0, a1)

    denom = a * c - b * b
    if denom > GEOMETRIC_TOLERANCE * a * c:
        s = (b * e - c * d) / denom
    else:  # nearly parallel segments
        s = 0.0
    s = min(1.0, max(0.0, s))
    # For the chosen s, the best t on the other segment:
    t = (b * s + e) / c
    t = min(1.0, max(0.0, t))
    # Re-clamp s for the chosen t (one extra pass is enough for convex problem).
    s = (b * t - d) / a
    s = min(1.0, max(0.0, s))
    p = a0 + s * u
    q = b0 + t * v
    # The clamped single-pass solution can land in a boundary sub-optimum for
    # (anti-)parallel overlapping segments; the true minimum is then attained
    # at an endpoint of one of the segments, so take the best of both.
    return min(
        distance(p, q),
        point_segment_distance(a0, b0, b1),
        point_segment_distance(a1, b0, b1),
        point_segment_distance(b0, a0, a1),
        point_segment_distance(b1, a0, a1),
    )


def lexicographic_key(p: np.ndarray, decimals: int = 6) -> tuple[float, float, float]:
    """A hashable, rounded key for a point, used to merge coincident nodes."""
    arr = np.round(np.asarray(p, dtype=float), decimals=decimals) + 0.0  # normalise -0.0
    return (float(arr[0]), float(arr[1]), float(arr[2]))
