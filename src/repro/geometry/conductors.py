"""Physical conductors of a grounding system.

A grounding grid (Section 1 of the paper) is "a mesh of interconnected
cylindrical conductors, horizontally buried and supplemented by ground rods
vertically thrusted in specific places of the installation site".  Both kinds
are represented by :class:`Conductor`: a straight cylinder defined by the two
end points of its axis and its radius.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.constants import GEOMETRIC_TOLERANCE
from repro.exceptions import GeometryError
from repro.geometry import point as pt

__all__ = ["ConductorKind", "Conductor"]


class ConductorKind(str, enum.Enum):
    """Role of a conductor inside the grounding system."""

    #: Horizontal conductor belonging to the buried mesh.
    GRID = "grid"
    #: Vertical ground rod.
    ROD = "rod"
    #: Any other auxiliary electrode (risers, connections ...).
    AUXILIARY = "auxiliary"


@dataclass(frozen=True)
class Conductor:
    """A straight cylindrical electrode.

    Parameters
    ----------
    start, end:
        End points of the conductor axis, ``(x, y, z)`` with ``z`` the depth
        below the earth surface (positive downwards, metres).
    radius:
        Radius of the cylinder [m].  The paper quotes diameters
        (e.g. 12.85 mm for the Barberá grid), i.e. ``radius = diameter / 2``.
    kind:
        Role of the conductor (grid bar, rod, auxiliary).
    label:
        Optional human readable identifier.
    """

    start: np.ndarray
    end: np.ndarray
    radius: float
    kind: ConductorKind = ConductorKind.GRID
    label: str = ""
    _extra: Mapping[str, Any] = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        start = pt.as_point(self.start)
        end = pt.as_point(self.end)
        object.__setattr__(self, "start", start)
        object.__setattr__(self, "end", end)
        if not np.isfinite(self.radius) or self.radius <= 0.0:
            raise GeometryError(f"conductor radius must be positive, got {self.radius!r}")
        length = pt.distance(start, end)
        if length <= GEOMETRIC_TOLERANCE:
            raise GeometryError("conductor has (numerically) zero length")
        if length <= 2.0 * self.radius:
            raise GeometryError(
                f"conductor length {length:.3g} m is not larger than its diameter "
                f"{2 * self.radius:.3g} m; the thin-wire model does not apply"
            )

    # -- geometric properties -------------------------------------------------

    @property
    def length(self) -> float:
        """Axis length [m]."""
        return pt.distance(self.start, self.end)

    @property
    def diameter(self) -> float:
        """Cylinder diameter [m]."""
        return 2.0 * self.radius

    @property
    def direction(self) -> np.ndarray:
        """Unit vector pointing from ``start`` to ``end``."""
        return pt.unit_vector(self.end - self.start)

    @property
    def midpoint(self) -> np.ndarray:
        """Midpoint of the axis."""
        return pt.midpoint(self.start, self.end)

    @property
    def slenderness(self) -> float:
        """Diameter-to-length ratio (the paper notes it is ~1e-3 in practice)."""
        return self.diameter / self.length

    @property
    def is_horizontal(self) -> bool:
        """True when both end points share the same depth."""
        return abs(float(self.start[2]) - float(self.end[2])) <= GEOMETRIC_TOLERANCE

    @property
    def is_vertical(self) -> bool:
        """True when the axis is parallel to the depth axis."""
        horizontal_extent = float(np.linalg.norm((self.end - self.start)[:2]))
        return horizontal_extent <= GEOMETRIC_TOLERANCE

    @property
    def surface_area(self) -> float:
        """Lateral surface area of the cylinder [m^2]."""
        return 2.0 * np.pi * self.radius * self.length

    @property
    def depth_range(self) -> tuple[float, float]:
        """``(min_depth, max_depth)`` spanned by the axis [m]."""
        z0 = float(self.start[2])
        z1 = float(self.end[2])
        return (min(z0, z1), max(z0, z1))

    def point_at(self, t: float) -> np.ndarray:
        """Point on the axis at normalised coordinate ``t`` in ``[0, 1]``."""
        if not 0.0 <= t <= 1.0:
            raise GeometryError(f"axis parameter must be in [0, 1], got {t}")
        return self.start + t * (self.end - self.start)

    def split_at(self, t: float) -> tuple["Conductor", "Conductor"]:
        """Split the conductor at normalised coordinate ``t`` into two pieces."""
        if not 0.0 < t < 1.0:
            raise GeometryError(f"split parameter must lie strictly inside (0, 1), got {t}")
        mid = self.point_at(t)
        first = Conductor(self.start, mid, self.radius, self.kind, self.label, self._extra)
        second = Conductor(mid, self.end, self.radius, self.kind, self.label, self._extra)
        return first, second

    def reversed(self) -> "Conductor":
        """Same conductor with swapped end points."""
        return Conductor(self.end, self.start, self.radius, self.kind, self.label, self._extra)

    # -- (de)serialisation ----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable representation."""
        return {
            "start": [float(v) for v in self.start],
            "end": [float(v) for v in self.end],
            "radius": float(self.radius),
            "kind": self.kind.value,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Conductor":
        """Inverse of :meth:`to_dict`."""
        return cls(
            start=np.asarray(data["start"], dtype=float),
            end=np.asarray(data["end"], dtype=float),
            radius=float(data["radius"]),
            kind=ConductorKind(data.get("kind", "grid")),
            label=str(data.get("label", "")),
        )
