"""Parametric reconstructions of the paper's two case-study grounding grids.

The original CAD drawings of the Barberá and Balaidos substations are not
publicly available, so this module rebuilds both grids from every quantity the
paper states:

**Barberá** (Section 5.1, Fig. 5.1)
    * right-angled triangular plan of 143 m x 89 m protecting about 6 600 m²,
    * 408 cylindrical conductor segments of diameter 12.85 mm,
    * buried at 0.80 m,
    * discretised with one linear leakage element per segment giving 238
      degrees of freedom (nodes).

**Balaidos** (Section 5.2, Fig. 5.3)
    * a stepped rectangular mesh of 107 cylindrical conductors of diameter
      11.28 mm buried at 0.80 m,
    * supplemented by 67 vertical rods of length 1.5 m and diameter 14 mm,
    * analysed with a Galerkin discretisation of 241 elements.

The reconstructions keep the protected area, total conductor length scale,
burial depth, conductor radii and (approximately) the number of segments and
nodes; the exact internal topology of the original drawings is unknown, so the
absolute resistances computed on these grids are expected to differ from the
paper's by a few percent while every qualitative trend is preserved (see
EXPERIMENTS.md).
"""

from __future__ import annotations

import numpy as np

from repro.constants import MM_TO_M
from repro.geometry.builder import GridBuilder
from repro.geometry.conductors import Conductor, ConductorKind
from repro.geometry.grid import GroundingGrid

__all__ = [
    "barbera_grid",
    "balaidos_grid",
    "BARBERA_DIAMETER_MM",
    "BALAIDOS_CONDUCTOR_DIAMETER_MM",
    "BALAIDOS_ROD_DIAMETER_MM",
    "BALAIDOS_ROD_LENGTH_M",
    "BURIAL_DEPTH_M",
]

#: Conductor diameter of the Barberá grid [mm] (paper, Section 5.1).
BARBERA_DIAMETER_MM = 12.85
#: Conductor diameter of the Balaidos mesh [mm] (paper, Section 5.2).
BALAIDOS_CONDUCTOR_DIAMETER_MM = 11.28
#: Rod diameter of the Balaidos grid [mm] (paper, Section 5.2).
BALAIDOS_ROD_DIAMETER_MM = 14.0
#: Rod length of the Balaidos grid [m] (paper, Section 5.2).
BALAIDOS_ROD_LENGTH_M = 1.5
#: Burial depth of both grids [m] (paper, Sections 5.1 and 5.2).
BURIAL_DEPTH_M = 0.80


def barbera_grid(
    spacing_x: float = 89.0 / 14.0,
    spacing_y: float = 143.0 / 24.0,
    depth: float = BURIAL_DEPTH_M,
) -> GroundingGrid:
    """Reconstruction of the Barberá substation grounding grid.

    A right-angled triangular reticulated grid with legs of 89 m (x direction)
    and 143 m (y direction); the default spacings are chosen so that the
    reconstructed grid has exactly the paper's 408 conductor segments (and 223
    nodes, versus the paper's 238 — the exact internal topology of the original
    drawing is unknown).

    Parameters
    ----------
    spacing_x, spacing_y:
        Distance between interior grid lines [m].
    depth:
        Burial depth [m].
    """
    builder = GridBuilder(
        depth=depth,
        conductor_radius=0.5 * BARBERA_DIAMETER_MM * MM_TO_M,
        name="Barberá",
    )
    grid = builder.right_triangle_mesh(
        leg_x=89.0,
        leg_y=143.0,
        spacing_x=spacing_x,
        spacing_y=spacing_y,
    )
    grid.metadata.update(
        {
            "substation": "Barberá",
            "paper_segments": 408,
            "paper_dof": 238,
            "paper_area_m2": 6600.0,
            "gpr_v": 10_000.0,
        }
    )
    return grid


def _balaidos_mesh(depth: float) -> GroundingGrid:
    """The stepped (L-shaped) horizontal mesh of the Balaidos grid.

    Built as the union of two aligned rectangular meshes:

    * main field: 81 m x 36 m meshed in 9 x 4 cells,
    * upper extension: 45 m x 18 m meshed in 5 x 2 cells,

    which after removing the duplicated shared boundary yields exactly 107
    conductor segments — the number quoted by the paper.
    """
    builder = GridBuilder(
        depth=depth,
        conductor_radius=0.5 * BALAIDOS_CONDUCTOR_DIAMETER_MM * MM_TO_M,
        name="Balaidos",
    )
    main_field = builder.rectangular_mesh(width=81.0, height=36.0, nx=9, ny=4)
    extension = builder.rectangular_mesh(
        width=45.0, height=18.0, nx=5, ny=2, origin=(0.0, 36.0)
    )
    return GridBuilder.merge("Balaidos", main_field, extension)


def balaidos_grid(
    depth: float = BURIAL_DEPTH_M,
    rod_length: float = BALAIDOS_ROD_LENGTH_M,
    n_rods: int = 67,
) -> GroundingGrid:
    """Reconstruction of the Balaidos substation grounding grid.

    The horizontal mesh has exactly 107 conductor segments (see
    :func:`_balaidos_mesh`).  Sixty-seven vertical rods of 1.5 m are attached:
    one at every mesh node (62 nodes) plus, to reach the paper's count, five
    additional rods welded at the midpoints of the five longest boundary
    conductors of the lower edge (splitting those conductors in two).

    Parameters
    ----------
    depth:
        Burial depth of the horizontal mesh [m].
    rod_length:
        Rod length [m]; the rods run from ``depth`` to ``depth + rod_length``.
    n_rods:
        Number of rods to attach (67 in the paper).  Values smaller than the
        number of mesh nodes simply use the first ``n_rods`` nodes.
    """
    mesh = _balaidos_mesh(depth)
    rod_radius = 0.5 * BALAIDOS_ROD_DIAMETER_MM * MM_TO_M

    nodes = GridBuilder.node_positions(mesh)
    # Deterministic ordering: boundary-first, then by (y, x).
    order = np.lexsort((nodes[:, 0], nodes[:, 1]))
    nodes = nodes[order]

    rod_positions: list[np.ndarray] = [nodes[i, :2] for i in range(min(n_rods, nodes.shape[0]))]

    n_missing = n_rods - len(rod_positions)
    grid = GroundingGrid(name="Balaidos", metadata=dict(mesh.metadata))
    if n_missing > 0:
        # Split the n_missing longest conductors of the lower boundary (y == 0)
        # at their midpoint and plant the extra rods there.
        lower_edge = [
            (idx, c)
            for idx, c in enumerate(mesh)
            if abs(float(c.start[1])) < 1e-9 and abs(float(c.end[1])) < 1e-9
        ]
        lower_edge.sort(key=lambda item: item[1].length, reverse=True)
        to_split = {idx for idx, _ in lower_edge[:n_missing]}
        for idx, conductor in enumerate(mesh):
            if idx in to_split:
                first, second = conductor.split_at(0.5)
                grid.add(first)
                grid.add(second)
                rod_positions.append(np.asarray(first.end[:2], dtype=float))
            else:
                grid.add(conductor)
    else:
        grid.extend(mesh)

    builder = GridBuilder(
        depth=depth,
        conductor_radius=0.5 * BALAIDOS_CONDUCTOR_DIAMETER_MM * MM_TO_M,
        rod_radius=rod_radius,
        rod_length=rod_length,
        name="Balaidos",
    )
    builder.add_rods(grid, rod_positions, length=rod_length, radius=rod_radius, top_depth=depth)

    grid.metadata.update(
        {
            "substation": "Balaidos",
            "paper_conductors": 107,
            "paper_rods": 67,
            "paper_elements": 241,
            "gpr_v": 10_000.0,
        }
    )
    return grid


def _demo_rod_bed(
    n_rods: int = 4,
    spacing: float = 3.0,
    rod_length: float = 2.0,
    depth: float = 0.6,
) -> GroundingGrid:
    """A tiny rod-bed grid used by examples and tests (not from the paper)."""
    builder = GridBuilder(depth=depth, conductor_radius=5e-3, rod_radius=7e-3, name="rod-bed")
    grid = GroundingGrid(name="rod-bed")
    xs = np.arange(n_rods) * spacing
    # A single horizontal bus bar connecting the rod tops.
    for x0, x1 in zip(xs[:-1], xs[1:]):
        grid.add(
            Conductor(
                start=np.array([x0, 0.0, depth]),
                end=np.array([x1, 0.0, depth]),
                radius=5e-3,
                kind=ConductorKind.GRID,
                label="bus",
            )
        )
    builder.add_rods(grid, [(x, 0.0) for x in xs], length=rod_length, top_depth=depth)
    return grid
