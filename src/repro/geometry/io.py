"""Serialisation of grounding grids.

The CAD system described in the paper reads the grid description from a data
file ("Data Input" phase of Table 6.1).  This module provides a small,
dependency-free JSON format for :class:`~repro.geometry.grid.GroundingGrid`
objects plus a CSV export convenient for spreadsheets and plotting tools.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Any

from repro.exceptions import GeometryError
from repro.geometry.conductors import Conductor
from repro.geometry.grid import GroundingGrid

__all__ = [
    "grid_to_json",
    "grid_from_json",
    "save_grid",
    "load_grid",
    "grid_to_csv",
    "grid_from_csv",
]

#: Format identifier embedded in saved files.
_FORMAT = "repro-grounding-grid"
_VERSION = 1


def grid_to_json(grid: GroundingGrid, indent: int | None = 2) -> str:
    """Serialise a grid to a JSON string."""
    payload: dict[str, Any] = {
        "format": _FORMAT,
        "version": _VERSION,
        "grid": grid.to_dict(),
    }
    return json.dumps(payload, indent=indent, sort_keys=True)


def grid_from_json(text: str) -> GroundingGrid:
    """Rebuild a grid from a JSON string produced by :func:`grid_to_json`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise GeometryError(f"invalid grid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("format") != _FORMAT:
        raise GeometryError("not a repro grounding-grid file")
    version = payload.get("version", 0)
    if version > _VERSION:
        raise GeometryError(
            f"grid file version {version} is newer than supported version {_VERSION}"
        )
    return GroundingGrid.from_dict(payload["grid"])


def save_grid(grid: GroundingGrid, path: str | Path) -> Path:
    """Write a grid to a JSON file and return the path."""
    path = Path(path)
    path.write_text(grid_to_json(grid), encoding="utf-8")
    return path


def load_grid(path: str | Path) -> GroundingGrid:
    """Read a grid from a JSON file."""
    path = Path(path)
    if not path.exists():
        raise GeometryError(f"grid file not found: {path}")
    return grid_from_json(path.read_text(encoding="utf-8"))


_CSV_HEADER = [
    "label",
    "kind",
    "x0",
    "y0",
    "z0",
    "x1",
    "y1",
    "z1",
    "radius",
]


def grid_to_csv(grid: GroundingGrid) -> str:
    """Serialise a grid to CSV text (one conductor per row)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(_CSV_HEADER)
    for conductor in grid:
        writer.writerow(
            [
                conductor.label,
                conductor.kind.value,
                *(f"{v:.9g}" for v in conductor.start),
                *(f"{v:.9g}" for v in conductor.end),
                f"{conductor.radius:.9g}",
            ]
        )
    return buffer.getvalue()


def grid_from_csv(text: str, name: str = "grid") -> GroundingGrid:
    """Rebuild a grid from CSV text produced by :func:`grid_to_csv`."""
    reader = csv.reader(io.StringIO(text))
    rows = list(reader)
    if not rows:
        raise GeometryError("empty CSV grid file")
    header = rows[0]
    if header != _CSV_HEADER:
        raise GeometryError(
            f"unexpected CSV header {header!r}; expected {_CSV_HEADER!r}"
        )
    grid = GroundingGrid(name=name)
    for line_number, row in enumerate(rows[1:], start=2):
        if not row or all(not cell.strip() for cell in row):
            continue
        if len(row) != len(_CSV_HEADER):
            raise GeometryError(f"CSV line {line_number} has {len(row)} fields")
        try:
            conductor = Conductor.from_dict(
                {
                    "label": row[0],
                    "kind": row[1],
                    "start": [float(row[2]), float(row[3]), float(row[4])],
                    "end": [float(row[5]), float(row[6]), float(row[7])],
                    "radius": float(row[8]),
                }
            )
        except ValueError as exc:
            raise GeometryError(f"CSV line {line_number}: {exc}") from exc
        grid.add(conductor)
    return grid
