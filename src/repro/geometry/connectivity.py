"""Connectivity analysis of discretised grounding grids.

A physically meaningful grounding grid is a single connected network: every
electrode must be galvanically bonded to the rest, otherwise the constant-GPR
boundary condition of the paper (``V = V_Gamma`` on the whole electrode
surface) would not hold.  This module builds a :mod:`networkx` graph from a
:class:`~repro.geometry.discretize.Mesh` and provides the checks and counts
used by validation, reports and tests (number of independent meshes, node
degrees, ...).
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.geometry.discretize import Mesh

__all__ = [
    "connectivity_graph",
    "is_connected",
    "connected_components",
    "count_independent_meshes",
    "node_degrees",
    "isolated_nodes",
    "graph_summary",
]


def connectivity_graph(mesh: Mesh) -> nx.Graph:
    """Undirected graph whose vertices are mesh nodes and edges are elements.

    Element indices are stored on the edges under the ``"elements"`` attribute
    (a list, because two distinct elements may join the same node pair, e.g. a
    rod discretised into several pieces stacked below a grid node).
    """
    graph = nx.Graph()
    graph.add_nodes_from(range(mesh.n_nodes))
    for element in mesh.elements:
        a, b = element.node_ids
        if graph.has_edge(a, b):
            graph.edges[a, b]["elements"].append(element.index)
            graph.edges[a, b]["length"] += element.length
        else:
            graph.add_edge(a, b, elements=[element.index], length=element.length)
    return graph


def is_connected(mesh: Mesh) -> bool:
    """Whether every electrode of the mesh is galvanically connected."""
    graph = connectivity_graph(mesh)
    if graph.number_of_nodes() == 0:
        return False
    return nx.is_connected(graph)


def connected_components(mesh: Mesh) -> list[set[int]]:
    """Connected components as sets of node ids (largest first)."""
    graph = connectivity_graph(mesh)
    components = [set(c) for c in nx.connected_components(graph)]
    return sorted(components, key=len, reverse=True)


def count_independent_meshes(mesh: Mesh) -> int:
    """Number of independent loops (circuit meshes) of the grid network.

    For a graph with ``E`` edges, ``V`` vertices and ``C`` connected
    components the cycle-space dimension is ``E - V + C``; for a healthy,
    single-component reticulated grid this equals the number of visible
    "meshes" of the grid plan.
    """
    graph = connectivity_graph(mesh)
    n_edges = graph.number_of_edges()
    n_vertices = graph.number_of_nodes()
    n_components = nx.number_connected_components(graph) if n_vertices else 0
    return int(n_edges - n_vertices + n_components)


def node_degrees(mesh: Mesh) -> np.ndarray:
    """Array of node degrees (number of incident elements per node)."""
    degrees = np.zeros(mesh.n_nodes, dtype=int)
    for element in mesh.elements:
        degrees[element.node_ids[0]] += 1
        degrees[element.node_ids[1]] += 1
    return degrees


def isolated_nodes(mesh: Mesh) -> np.ndarray:
    """Ids of nodes not referenced by any element (should be empty)."""
    return np.flatnonzero(node_degrees(mesh) == 0)


def graph_summary(mesh: Mesh) -> dict:
    """Aggregate connectivity statistics used by reports and tests."""
    graph = connectivity_graph(mesh)
    degrees = node_degrees(mesh)
    return {
        "n_nodes": mesh.n_nodes,
        "n_elements": mesh.n_elements,
        "n_graph_edges": graph.number_of_edges(),
        "n_components": nx.number_connected_components(graph) if mesh.n_nodes else 0,
        "n_independent_meshes": count_independent_meshes(mesh),
        "max_degree": int(degrees.max()) if degrees.size else 0,
        "mean_degree": float(degrees.mean()) if degrees.size else 0.0,
    }
