"""Geometric substrate: conductors, grounding grids, builders and discretisation.

The grounding systems analysed by the paper are networks of thin cylindrical
conductors: a horizontal mesh buried at a fixed depth, supplemented by vertical
ground rods.  This sub-package provides

* the primitive objects (:class:`~repro.geometry.conductors.Conductor`,
  :class:`~repro.geometry.grid.GroundingGrid`),
* constructors for realistic layouts (:class:`~repro.geometry.builder.GridBuilder`
  and the two case-study reconstructions in :mod:`repro.geometry.substations`),
* the discretiser that turns a grid into boundary elements and nodes
  (:mod:`repro.geometry.discretize`), splitting elements at soil-layer
  interfaces so every element lies inside a single layer,
* connectivity and validation utilities.

Coordinate convention
---------------------
``x`` and ``y`` are horizontal coordinates on the earth surface plane and ``z``
is the **depth**, positive downwards; the earth surface is ``z = 0`` and every
buried electrode has ``z > 0``.  This convention keeps the layered-soil image
formulas free of sign gymnastics.
"""

from repro.geometry.conductors import Conductor, ConductorKind
from repro.geometry.grid import GroundingGrid
from repro.geometry.builder import GridBuilder
from repro.geometry.discretize import Mesh, MeshElement, discretize_grid
from repro.geometry.substations import barbera_grid, balaidos_grid
from repro.geometry.validation import validate_grid, GridIssue

__all__ = [
    "Conductor",
    "ConductorKind",
    "GroundingGrid",
    "GridBuilder",
    "Mesh",
    "MeshElement",
    "discretize_grid",
    "barbera_grid",
    "balaidos_grid",
    "validate_grid",
    "GridIssue",
]
