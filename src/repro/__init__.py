"""repro — parallel BEM analysis of substation earthing systems in layered soils.

A Python reproduction of *"Parallel Computing Aided Design of Earthing Systems
for Electrical Substations in Non-Homogeneous Soil Models"* (Colominas, Gómez,
Navarrina, Casteleiro, Cela — ICPP 2000): a 1D Galerkin boundary-element solver
for grounding grids embedded in uniform and two-layer soils, the CAD workflow
built on it, and the parallelisation study of its dense matrix generation
(OpenMP-style schedules, real process pools plus a shared-memory machine
simulator).

Quick start::

    from repro import GroundingAnalysis, UniformSoil, GridBuilder

    grid = GridBuilder(depth=0.8, conductor_radius=6e-3).rectangular_mesh(60, 40, 6, 4)
    results = GroundingAnalysis(grid, UniformSoil(0.01), gpr=10_000.0).run()
    print(results.equivalent_resistance, "ohm")

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-versus-measured record of every table and figure.
"""

from repro._version import __version__
from repro.constants import DEFAULT_GPR
from repro.exceptions import ReproError

# Geometry
from repro.geometry import (
    Conductor,
    ConductorKind,
    GroundingGrid,
    GridBuilder,
    Mesh,
    discretize_grid,
    barbera_grid,
    balaidos_grid,
    validate_grid,
)

# Soil models
from repro.soil import (
    SoilModel,
    UniformSoil,
    TwoLayerSoil,
    MultiLayerSoil,
    WennerSurvey,
    fit_two_layer_model,
)

# Kernels
from repro.kernels import (
    SeriesControl,
    UniformSoilKernel,
    TwoLayerSoilKernel,
    HankelKernel,
    kernel_for_soil,
)

# BEM core
from repro.bem import (
    ElementType,
    GroundingAnalysis,
    AnalysisResults,
    PotentialEvaluator,
    SurfaceGrid,
    SafetyAssessment,
)

# Parallel machinery
from repro.parallel import (
    ParallelOptions,
    Schedule,
    ScheduleKind,
    Backend,
    LoopLevel,
    MachineModel,
    ScheduleSimulator,
    ShardedHierarchicalOperator,
    WorkerPool,
)

# Scenario campaign engine
from repro.campaign import (
    Campaign,
    CampaignCheckpoint,
    CampaignResult,
    GeometryVariant,
    ScenarioSpec,
    plan_campaign,
    run_campaign,
)

# Resilience layer (fault injection + retry policy)
from repro.resilience import (
    FaultPlan,
    FaultSpec,
    PoolHealth,
    RetryPolicy,
)

# Observability (tracing + metrics + run manifests)
from repro.observe import (
    MetricsRegistry,
    RunManifest,
    Tracer,
    format_trace_tree,
    read_trace_jsonl,
    write_trace_jsonl,
)

# Hierarchical (H-matrix) engine
from repro.cluster import HierarchicalControl, HierarchicalOperator

# CAD layer
from repro.cad import GroundingProject

# Design-support layer
from repro.design import (
    FaultScenario,
    ground_potential_rise,
    minimum_conductor_section,
    optimize_grid_design,
)

__all__ = [
    "__version__",
    "DEFAULT_GPR",
    "ReproError",
    # geometry
    "Conductor",
    "ConductorKind",
    "GroundingGrid",
    "GridBuilder",
    "Mesh",
    "discretize_grid",
    "barbera_grid",
    "balaidos_grid",
    "validate_grid",
    # soil
    "SoilModel",
    "UniformSoil",
    "TwoLayerSoil",
    "MultiLayerSoil",
    "WennerSurvey",
    "fit_two_layer_model",
    # kernels
    "SeriesControl",
    "UniformSoilKernel",
    "TwoLayerSoilKernel",
    "HankelKernel",
    "kernel_for_soil",
    # bem
    "ElementType",
    "GroundingAnalysis",
    "AnalysisResults",
    "PotentialEvaluator",
    "SurfaceGrid",
    "SafetyAssessment",
    # parallel
    "ParallelOptions",
    "Schedule",
    "ScheduleKind",
    "Backend",
    "LoopLevel",
    "MachineModel",
    "ScheduleSimulator",
    "ShardedHierarchicalOperator",
    "WorkerPool",
    # campaign engine
    "Campaign",
    "CampaignCheckpoint",
    "CampaignResult",
    "GeometryVariant",
    "ScenarioSpec",
    "plan_campaign",
    "run_campaign",
    # resilience
    "FaultPlan",
    "FaultSpec",
    "PoolHealth",
    "RetryPolicy",
    # observability
    "MetricsRegistry",
    "RunManifest",
    "Tracer",
    "format_trace_tree",
    "read_trace_jsonl",
    "write_trace_jsonl",
    # hierarchical engine
    "HierarchicalControl",
    "HierarchicalOperator",
    # cad
    "GroundingProject",
    # design
    "FaultScenario",
    "ground_potential_rise",
    "minimum_conductor_section",
    "optimize_grid_design",
]
