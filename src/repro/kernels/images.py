"""Image-series representation of layered-soil kernels.

Every kernel handled analytically by the BEM assembly is a finite (truncated)
sum of point-image contributions

    ``k(x, ξ) = Σ_l  w_l / | x − ξ_l |``,

where the image position ``ξ_l`` has the same horizontal coordinates as the
source point ``ξ`` and depth ``z_l = s_l · z_ξ + c_l`` with ``s_l ∈ {+1, −1}``.
:class:`ImageSeries` stores the triples ``(w_l, s_l, c_l)`` as NumPy arrays so
the hot assembly loops can evaluate all images of a source element at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import KernelError

__all__ = ["ImageTerm", "ImageSeries"]


@dataclass(frozen=True)
class ImageTerm:
    """A single image contribution ``weight / r(x, image(ξ))``."""

    #: Multiplicative weight of the ``1/r`` contribution.
    weight: float
    #: Sign applied to the source depth (+1 keeps it, −1 mirrors it).
    sign: float
    #: Constant added to the (possibly mirrored) source depth [m].
    offset: float

    def __post_init__(self) -> None:
        if self.sign not in (-1.0, 1.0):
            raise KernelError(f"image sign must be +1 or -1, got {self.sign!r}")
        if not np.isfinite(self.weight) or not np.isfinite(self.offset):
            raise KernelError("image weight and offset must be finite")

    def image_depth(self, source_depth: float | np.ndarray) -> float | np.ndarray:
        """Depth of the image of a source at ``source_depth``."""
        return self.sign * source_depth + self.offset


class ImageSeries:
    """An ordered collection of :class:`ImageTerm` stored as arrays."""

    def __init__(self, terms: Iterable[ImageTerm] | Sequence[ImageTerm]) -> None:
        terms = list(terms)
        if not terms:
            raise KernelError("an image series needs at least one term")
        self._terms = tuple(terms)
        self.weights = np.array([t.weight for t in terms], dtype=float)
        self.signs = np.array([t.sign for t in terms], dtype=float)
        self.offsets = np.array([t.offset for t in terms], dtype=float)

    # -- container protocol -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._terms)

    def __iter__(self) -> Iterator[ImageTerm]:
        return iter(self._terms)

    def __getitem__(self, index: int) -> ImageTerm:
        return self._terms[index]

    @property
    def terms(self) -> tuple[ImageTerm, ...]:
        """The individual terms."""
        return self._terms

    # -- evaluation helpers -----------------------------------------------------

    def image_points(self, source_points: np.ndarray) -> np.ndarray:
        """Positions of every image of every source point.

        Parameters
        ----------
        source_points:
            Array of shape ``(n, 3)`` (or ``(3,)``).

        Returns
        -------
        numpy.ndarray
            Array of shape ``(L, n, 3)`` where ``L = len(self)``: entry
            ``[l, i]`` is the ``l``-th image of source point ``i``.
        """
        pts = np.asarray(source_points, dtype=float)
        squeeze = False
        if pts.ndim == 1:
            pts = pts.reshape(1, 3)
            squeeze = True
        if pts.ndim != 2 or pts.shape[1] != 3:
            raise KernelError(f"source points must have shape (n, 3), got {pts.shape}")
        images = np.broadcast_to(pts, (len(self), *pts.shape)).copy()
        images[..., 2] = self.signs[:, None] * pts[None, :, 2] + self.offsets[:, None]
        if squeeze:
            return images[:, 0, :]
        return images

    def evaluate(self, field_points: np.ndarray, source_point: np.ndarray) -> np.ndarray:
        """Evaluate ``Σ_l w_l / |x − ξ_l|`` at one or many field points.

        Parameters
        ----------
        field_points:
            Array of shape ``(m, 3)`` (or ``(3,)``).
        source_point:
            Single source point of shape ``(3,)``.

        Returns
        -------
        numpy.ndarray
            Kernel values, shape ``(m,)`` (scalar array for a single point).
        """
        x = np.asarray(field_points, dtype=float)
        squeeze = False
        if x.ndim == 1:
            x = x.reshape(1, 3)
            squeeze = True
        source = np.asarray(source_point, dtype=float).reshape(3)
        images = self.image_points(source)  # (L, 3)
        diff = x[None, :, :] - images[:, None, :]  # (L, m, 3)
        r = np.sqrt(np.einsum("lmk,lmk->lm", diff, diff))
        if np.any(r <= 0.0):
            raise KernelError("field point coincides with an image source point")
        values = (self.weights[:, None] / r).sum(axis=0)
        return values[0] if squeeze else values

    # -- algebra ------------------------------------------------------------------

    def scaled(self, factor: float) -> "ImageSeries":
        """A new series with every weight multiplied by ``factor``."""
        return ImageSeries(
            [ImageTerm(t.weight * float(factor), t.sign, t.offset) for t in self._terms]
        )

    def truncated(self, min_weight: float) -> "ImageSeries":
        """Drop terms whose absolute weight is below ``min_weight``.

        At least one term is always kept: when every weight falls below the
        cutoff the dominant term survives, so the kernel never silently
        degenerates to an empty (zero) series.  A series whose weights are
        *all zero* cannot be truncated meaningfully and raises
        :class:`~repro.exceptions.KernelError` instead.
        """
        min_weight = float(min_weight)
        if not np.isfinite(min_weight) or min_weight < 0.0:
            raise KernelError(f"min_weight must be finite and non-negative, got {min_weight!r}")
        kept = [t for t in self._terms if abs(t.weight) >= min_weight]
        if not kept:
            dominant = max(self._terms, key=lambda t: abs(t.weight))
            if dominant.weight == 0.0:  # contracts: disable=API001 -- all-zero-series guard: only exactly zero weights are degenerate
                raise KernelError(
                    "cannot truncate an image series whose weights are all zero"
                )
            kept = [dominant]
        return ImageSeries(kept)

    @property
    def total_absolute_weight(self) -> float:
        """Sum of ``|w_l|`` over the series (used by truncation diagnostics)."""
        return float(np.abs(self.weights).sum())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ImageSeries(n_terms={len(self)}, total_weight={self.weights.sum():.6g})"
