"""Numerically integrated Hankel-transform kernel for arbitrary layered soils.

The image series of :mod:`repro.kernels.two_layer` are closed-form expansions
of the Hankel-transform solution of the layered Neumann problem.  This module
evaluates that solution *directly* by numerical quadrature:

1.  In the transform domain the potential in layer ``j`` is

        ``V̂_j(λ, z) = A_j(λ) e^{−λ z} + B_j(λ) e^{+λ z} + δ_{jb} e^{−λ |z−ζ|}``

    with ``B_C = 0`` in the bottom half-space.  The ``2C−1`` coefficients are
    obtained from the surface condition (``∂V/∂z = 0`` at ``z = 0``) and the
    continuity of potential and of normal current density at every interface —
    a small dense linear system solved for a whole batch of ``λ`` values at
    once.
2.  The spatial kernel is recovered through the inverse Hankel transform
    ``∫₀^∞ f(λ) J₀(λ ρ) dλ`` evaluated by composite Gauss–Legendre panels whose
    width follows the oscillation of ``J₀``.

The class serves two purposes:

* an *independent cross-check* of the analytic image series (they must agree to
  quadrature accuracy), used extensively in the test-suite;
* a point-wise kernel for soils with **three or more layers**, for which the
  paper notes that explicit image expansions become double/triple series — an
  extension beyond the paper's two-layer evaluation.

It evaluates the Green's function at individual points and is therefore far too
slow for full matrix assembly; it is not used in the BEM hot path.
"""

from __future__ import annotations

import numpy as np
from scipy import special

from repro.exceptions import KernelError
from repro.soil.base import SoilModel

__all__ = ["HankelKernel"]


class HankelKernel:
    """Layered-soil Green's function evaluated by Hankel quadrature.

    Parameters
    ----------
    soil:
        Any horizontally stratified soil model (one or more layers).
    lambda_max_scale:
        The transform variable is integrated up to
        ``lambda_max_scale / min_decay_length`` where the decay length is the
        smallest vertical distance controlling the exponential decay of the
        secondary kernel; larger values reduce the truncation error.
    points_per_panel:
        Gauss–Legendre points per quadrature panel.
    """

    def __init__(
        self,
        soil: SoilModel,
        lambda_max_scale: float = 40.0,
        points_per_panel: int = 16,
    ) -> None:
        if lambda_max_scale <= 0.0:
            raise KernelError("lambda_max_scale must be positive")
        if points_per_panel < 2:
            raise KernelError("points_per_panel must be at least 2")
        self.soil = soil
        self.lambda_max_scale = float(lambda_max_scale)
        self.points_per_panel = int(points_per_panel)

    # ------------------------------------------------------------------ public API

    def potential_coefficient(
        self,
        field_point: np.ndarray,
        source_point: np.ndarray,
    ) -> float:
        """Potential at ``field_point`` per unit current injected at ``source_point``.

        Both points must be strictly below the surface or on it; the source
        must be strictly buried (``z > 0``) so that the secondary kernel decays
        in the transform domain.
        """
        x = np.asarray(field_point, dtype=float).reshape(3)
        xi = np.asarray(source_point, dtype=float).reshape(3)
        z = float(x[2])
        zeta = float(xi[2])
        if zeta <= 0.0:
            raise KernelError("the source point must be strictly below the surface")
        if z < 0.0:
            raise KernelError("the field point must not be above the surface")

        rho = float(np.hypot(x[0] - xi[0], x[1] - xi[1]))
        source_layer = self.soil.layer_index(zeta)
        field_layer = self.soil.layer_index(z)
        gamma_b = self.soil.conductivity_of_layer(source_layer)

        # Primary (free-space) contribution, only when both points share a layer.
        primary = 0.0
        if field_layer == source_layer:
            r = float(np.sqrt(rho**2 + (z - zeta) ** 2))
            if r <= 0.0:
                raise KernelError("field point coincides with the source point")
            primary = 1.0 / r

        secondary = self._secondary_integral(rho, z, zeta, source_layer, field_layer)
        return (primary + secondary) / (4.0 * np.pi * gamma_b)

    def kernel_value(self, field_point: np.ndarray, source_point: np.ndarray) -> float:
        """The paper's kernel ``k_bc = 4 π γ_b G`` at a single point pair."""
        xi = np.asarray(source_point, dtype=float).reshape(3)
        gamma_b = self.soil.conductivity_of_layer(self.soil.layer_index(float(xi[2])))
        return 4.0 * np.pi * gamma_b * self.potential_coefficient(field_point, source_point)

    # ------------------------------------------------------------------ internals

    def _secondary_integral(
        self, rho: float, z: float, zeta: float, source_layer: int, field_layer: int
    ) -> float:
        """``∫₀^∞ g_c(λ, z) J₀(λρ) dλ`` with ``g_c`` the secondary λ-kernel."""
        decay = self._decay_length(z, zeta, source_layer, field_layer)
        lambda_max = self.lambda_max_scale / decay

        # Panel width: follow the J0 oscillation (period 2π/ρ) but never use
        # fewer than 48 panels over the full range.
        if rho > 0.0:
            panel = min(np.pi / rho, lambda_max / 48.0)
        else:
            panel = lambda_max / 48.0
        edges = np.arange(0.0, lambda_max + panel, panel)
        gauss_x, gauss_w = np.polynomial.legendre.leggauss(self.points_per_panel)

        # All quadrature nodes at once.
        mid = 0.5 * (edges[:-1] + edges[1:])
        half = 0.5 * (edges[1:] - edges[:-1])
        nodes = (mid[:, None] + half[:, None] * gauss_x[None, :]).ravel()
        weights = (half[:, None] * gauss_w[None, :]).ravel()

        g = self._secondary_lambda_kernel(nodes, z, zeta, source_layer, field_layer)
        return float(np.sum(weights * g * special.j0(nodes * rho)))

    def _decay_length(
        self, z: float, zeta: float, source_layer: int, field_layer: int
    ) -> float:
        """Smallest vertical distance governing the decay of the secondary kernel."""
        candidates = [z + zeta]  # surface image distance
        for interface in self.soil.interface_depths():
            candidates.append(abs(2.0 * interface - z - zeta))
            candidates.append(2.0 * interface - min(z, zeta) + abs(z - zeta))
        if field_layer != source_layer:
            candidates.append(abs(z - zeta))
        decay = max(min(c for c in candidates if c > 0.0), 1.0e-3)
        return decay

    def _secondary_lambda_kernel(
        self,
        lambdas: np.ndarray,
        z: float,
        zeta: float,
        source_layer: int,
        field_layer: int,
    ) -> np.ndarray:
        """Secondary part of the λ-domain kernel, ``A_c e^{−λz} + B_c e^{+λz}``."""
        lambdas = np.asarray(lambdas, dtype=float)
        positive = lambdas > 0.0
        coefficients = self._solve_coefficients(lambdas[positive], zeta, source_layer)
        n_layers = self.soil.n_layers
        a_index = field_layer - 1
        b_index = n_layers + field_layer - 1  # B of the field layer (absent for bottom layer)

        result = np.zeros_like(lambdas)
        lam = lambdas[positive]
        a_coeff = coefficients[:, a_index]
        value = a_coeff * np.exp(-lam * z)
        if field_layer < n_layers:
            b_coeff = coefficients[:, b_index]
            value = value + b_coeff * np.exp(lam * z)
        result[positive] = value
        # λ = 0 contributes zero measure in the integral; the secondary kernel
        # is finite there, so leaving 0 is harmless.
        return result

    def _solve_coefficients(
        self, lambdas: np.ndarray, zeta: float, source_layer: int
    ) -> np.ndarray:
        """Solve for ``(A_1..A_C, B_1..B_{C-1})`` for a batch of λ values.

        The unknown vector is ordered ``[A_1, ..., A_C, B_1, ..., B_{C-1}]``;
        the returned array has shape ``(n_lambda, 2C-1)``.
        """
        n_layers = self.soil.n_layers
        interfaces = self.soil.interface_depths()
        gammas = self.soil.conductivities
        n_unknowns = 2 * n_layers - 1
        n_lambda = lambdas.size

        matrix = np.zeros((n_lambda, n_unknowns, n_unknowns))
        rhs = np.zeros((n_lambda, n_unknowns))

        def a_col(layer: int) -> int:
            return layer - 1

        def b_col(layer: int) -> int:
            if layer >= n_layers:
                raise KernelError("the bottom layer has no growing exponential")
            return n_layers + layer - 1

        lam = lambdas

        # Primary term present only in the source layer:  e^{-λ|z-ζ|}.
        def primary_value(z: float) -> np.ndarray:
            return np.exp(-lam * abs(z - zeta))

        def primary_derivative(z: float) -> np.ndarray:
            # d/dz e^{-λ|z-ζ|} = -λ sign(z-ζ) e^{-λ|z-ζ|}
            return -lam * np.sign(z - zeta) * np.exp(-lam * abs(z - zeta))

        row = 0
        # Surface condition: dV_1/dz = 0 at z = 0.
        matrix[:, row, a_col(1)] = -lam
        if n_layers > 1:
            matrix[:, row, b_col(1)] = lam
        if source_layer == 1:
            rhs[:, row] = -primary_derivative(0.0)
        row += 1

        # Interface conditions.
        for interface_index, depth in enumerate(interfaces, start=1):
            upper = interface_index
            lower = interface_index + 1
            exp_minus = np.exp(-lam * depth)
            exp_plus = np.exp(lam * depth)

            # Potential continuity: V_upper(depth) = V_lower(depth).
            matrix[:, row, a_col(upper)] += exp_minus
            if upper < n_layers:
                matrix[:, row, b_col(upper)] += exp_plus
            matrix[:, row, a_col(lower)] -= exp_minus
            if lower < n_layers:
                matrix[:, row, b_col(lower)] -= exp_plus
            if source_layer == upper:
                rhs[:, row] -= primary_value(depth)
            if source_layer == lower:
                rhs[:, row] += primary_value(depth)
            row += 1

            # Current continuity: γ_up dV_up/dz = γ_low dV_low/dz.
            g_up = gammas[upper - 1]
            g_low = gammas[lower - 1]
            matrix[:, row, a_col(upper)] += -g_up * lam * exp_minus
            if upper < n_layers:
                matrix[:, row, b_col(upper)] += g_up * lam * exp_plus
            matrix[:, row, a_col(lower)] -= -g_low * lam * exp_minus
            if lower < n_layers:
                matrix[:, row, b_col(lower)] -= g_low * lam * exp_plus
            if source_layer == upper:
                rhs[:, row] -= g_up * primary_derivative(depth)
            if source_layer == lower:
                rhs[:, row] += g_low * primary_derivative(depth)
            row += 1

        if row != n_unknowns:  # pragma: no cover - defensive
            raise KernelError("internal error assembling the layered-kernel system")

        return np.linalg.solve(matrix, rhs[..., None])[..., 0]
