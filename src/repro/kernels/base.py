"""Common interface of the analytic (image-series) layered-soil kernels.

A :class:`LayeredKernel` answers two questions for a given pair of layers
``(b, c)`` — the layer ``b`` containing the source and the layer ``c``
containing the field point:

* :meth:`LayeredKernel.image_series` — the ``(weight, sign, offset)`` triples of
  the truncated image expansion of the paper's kernel ``k_bc``;
* :meth:`LayeredKernel.potential_coefficient` — the full Green's function
  ``k_bc / (4 π γ_b)``, i.e. the potential created at the field points by a
  unit point current injected at the source point.

The BEM assembly only uses the first (it integrates the ``1/r`` images
analytically over the source elements); post-processing and the verification
tests use the second.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import KernelError
from repro.kernels.images import ImageSeries
from repro.kernels.series import SeriesControl
from repro.soil.base import SoilModel
from repro.soil.two_layer import TwoLayerSoil
from repro.soil.uniform import UniformSoil

__all__ = ["LayeredKernel", "kernel_for_soil"]


class LayeredKernel(abc.ABC):
    """Kernel of a horizontally stratified soil, expressed with point images."""

    def __init__(self, soil: SoilModel, control: SeriesControl | None = None) -> None:
        self._soil = soil
        self._control = control if control is not None else SeriesControl()
        self._cache: dict[tuple[int, int], ImageSeries] = {}

    # -- descriptive properties ---------------------------------------------------

    @property
    def soil(self) -> SoilModel:
        """The soil model this kernel describes."""
        return self._soil

    @property
    def control(self) -> SeriesControl:
        """Truncation parameters of the image series."""
        return self._control

    @property
    def n_layers(self) -> int:
        """Number of soil layers."""
        return self._soil.n_layers

    # -- abstract construction of the series ---------------------------------------

    @abc.abstractmethod
    def _build_series(self, source_layer: int, field_layer: int) -> ImageSeries:
        """Construct the (truncated) image series of ``k_bc``."""

    # -- public API -----------------------------------------------------------------

    def image_series(self, source_layer: int, field_layer: int) -> ImageSeries:
        """Truncated image series of the kernel ``k_bc`` (cached)."""
        self._check_layer(source_layer)
        self._check_layer(field_layer)
        key = (int(source_layer), int(field_layer))
        series = self._cache.get(key)
        if series is None:
            series = self._build_series(*key)
            self._cache[key] = series
        return series

    def normalization(self, source_layer: int) -> float:
        """The prefactor ``1 / (4 π γ_b)`` of the paper's integral expression."""
        self._check_layer(source_layer)
        gamma_b = self._soil.conductivity_of_layer(source_layer)
        return 1.0 / (4.0 * np.pi * gamma_b)

    def kernel_value(
        self,
        field_points: np.ndarray,
        source_point: np.ndarray,
        source_layer: int,
        field_layer: int,
    ) -> np.ndarray:
        """The paper's kernel ``k_bc(x, ξ)`` at one or many field points."""
        series = self.image_series(source_layer, field_layer)
        return series.evaluate(field_points, source_point)

    def potential_coefficient(
        self,
        field_points: np.ndarray,
        source_point: np.ndarray,
        source_layer: int | None = None,
        field_layer: int | None = None,
    ) -> np.ndarray:
        """Potential per unit point current, ``k_bc / (4 π γ_b)``.

        When the layer indices are omitted they are deduced from the depths of
        the source point and of the field points (all field points must then
        lie in the same layer).
        """
        source = np.asarray(source_point, dtype=float).reshape(3)
        x = np.asarray(field_points, dtype=float)
        if source_layer is None:
            source_layer = self._soil.layer_index(float(source[2]))
        if field_layer is None:
            depths = np.atleast_2d(x)[:, 2]
            layers = {self._soil.layer_index(float(z)) for z in depths}
            if len(layers) != 1:
                raise KernelError(
                    "field points span several layers; pass field_layer explicitly or "
                    "split the evaluation per layer"
                )
            field_layer = layers.pop()
        value = self.kernel_value(x, source, source_layer, field_layer)
        return self.normalization(source_layer) * value

    # -- helpers ----------------------------------------------------------------------

    def _check_layer(self, layer: int) -> None:
        if not 1 <= int(layer) <= self.n_layers:
            raise KernelError(
                f"layer index {layer} outside the valid range 1..{self.n_layers}"
            )

    def series_length(self, source_layer: int, field_layer: int) -> int:
        """Number of image terms used for the layer pair (after truncation)."""
        return len(self.image_series(source_layer, field_layer))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(soil={self._soil!r})"


def kernel_for_soil(soil: SoilModel, control: SeriesControl | None = None) -> LayeredKernel:
    """Factory returning the appropriate analytic kernel for a soil model.

    * :class:`~repro.soil.uniform.UniformSoil` →
      :class:`~repro.kernels.uniform.UniformSoilKernel`
    * :class:`~repro.soil.two_layer.TwoLayerSoil` (or any 2-layer model) →
      :class:`~repro.kernels.two_layer.TwoLayerSoilKernel`

    Soils with three or more layers have no closed-form image expansion in this
    library (the paper itself only parallelises the two-layer case); use
    :class:`~repro.kernels.hankel.HankelKernel` for point-wise evaluations or
    reduce the model first.
    """
    # Imports are local to avoid circular imports at module load time.
    from repro.kernels.two_layer import TwoLayerSoilKernel
    from repro.kernels.uniform import UniformSoilKernel

    if soil.n_layers == 1:
        if not isinstance(soil, UniformSoil):
            soil = UniformSoil(soil.conductivities[0])
        return UniformSoilKernel(soil, control)
    if soil.n_layers == 2:
        if not isinstance(soil, TwoLayerSoil):
            soil = TwoLayerSoil(
                soil.conductivities[0], soil.conductivities[1], soil.thicknesses[0]
            )
        return TwoLayerSoilKernel(soil, control)
    raise KernelError(
        f"no analytic image-series kernel is available for {soil.n_layers} layers; "
        "use HankelKernel or a one/two-layer reduction of the soil model"
    )
