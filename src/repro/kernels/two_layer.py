"""Image-series kernels of the two-layer soil model.

Derivation
----------
Let layer 1 (conductivity ``γ₁``) occupy ``0 ≤ z ≤ h`` and layer 2
(conductivity ``γ₂``) the half-space ``z ≥ h``; let ``κ = (γ₁−γ₂)/(γ₁+γ₂)``.
Solving the layered Neumann problem of the paper's equation (2.3) with a unit
point current at depth ``ζ`` by separation in the Hankel domain and expanding
``1/(1 − κ e^{−2λh})`` as a geometric series turns every term into the
potential of a point image (Weber–Lipschitz integral), giving the classical
expansions (Tagg 1964; Colominas et al. 2002):

``source and field point in layer 1``::

    k₁₁ = 1/r(z−ζ) + 1/r(z+ζ)
        + Σ_{n≥1} κⁿ [ 1/r(z+ζ+2nh) + 1/r(z−ζ+2nh)
                     + 1/r(z+ζ−2nh) + 1/r(z−ζ−2nh) ]

``source in layer 1, field point in layer 2``::

    k₁₂ = (1+κ) Σ_{n≥0} κⁿ [ 1/r(z−ζ+2nh) + 1/r(z+ζ+2nh) ]

``source in layer 2, field point in layer 1``::

    k₂₁ = (1−κ) Σ_{n≥0} κⁿ [ 1/r(z+ζ+2nh) + 1/r(z−ζ−2nh) ]

``source and field point in layer 2``::

    k₂₂ = 1/r(z−ζ) − κ/r(z+ζ−2h) + (1−κ²) Σ_{n≥0} κⁿ 1/r(z+ζ+2nh)

where ``r(a) = sqrt(ρ² + a²)`` and ``ρ`` is the horizontal distance.  Each
argument ``z ∓ (±ζ + c)`` corresponds to an image at depth ``±ζ + c``, which is
exactly the ``(weight, sign, offset)`` triple stored in the
:class:`~repro.kernels.images.ImageSeries`.

Consistency checks encoded in the test-suite:

* ``κ → 0`` (equal conductivities) recovers the uniform-soil kernel;
* the potential is continuous across the interface (``k₁₁ = k₁₂`` at ``z=h``);
* the normal current density is continuous across the interface;
* ``∂V/∂z = 0`` at the earth surface;
* the series agree with the independent Hankel-quadrature kernel.

Normalisation: the paper's potential integral carries the prefactor
``1/(4π γ_b)`` with ``b`` the *source* layer; the weights above follow the same
convention (e.g. ``k₂₂`` is normalised by ``γ₂``).
"""

from __future__ import annotations

from repro.exceptions import KernelError
from repro.kernels.base import LayeredKernel
from repro.kernels.images import ImageSeries, ImageTerm
from repro.kernels.series import SeriesControl
from repro.soil.two_layer import TwoLayerSoil

__all__ = ["TwoLayerSoilKernel"]


class TwoLayerSoilKernel(LayeredKernel):
    """Truncated image-series kernels ``k₁₁``, ``k₁₂``, ``k₂₁``, ``k₂₂``."""

    def __init__(self, soil: TwoLayerSoil, control: SeriesControl | None = None) -> None:
        if soil.n_layers != 2:
            raise KernelError("TwoLayerSoilKernel requires a two-layer soil model")
        if not isinstance(soil, TwoLayerSoil):
            soil = TwoLayerSoil(
                soil.conductivities[0], soil.conductivities[1], soil.thicknesses[0]
            )
        super().__init__(soil, control)

    # -- convenience accessors ----------------------------------------------------

    @property
    def kappa(self) -> float:
        """Reflection ratio κ of the soil model."""
        return self._soil.kappa  # type: ignore[attr-defined]

    @property
    def thickness(self) -> float:
        """Thickness h of the upper layer [m]."""
        return self._soil.upper_thickness  # type: ignore[attr-defined]

    # -- series construction --------------------------------------------------------

    def _build_series(self, source_layer: int, field_layer: int) -> ImageSeries:
        kappa = self.kappa
        h = self.thickness
        n_groups = self.control.n_groups(kappa)
        tol = self.control.tolerance

        builders = {
            (1, 1): self._series_11,
            (1, 2): self._series_12,
            (2, 1): self._series_21,
            (2, 2): self._series_22,
        }
        terms = builders[(source_layer, field_layer)](kappa, h, n_groups)
        # Drop negligible terms but never produce an empty series.
        series = ImageSeries(terms)
        return series.truncated(min_weight=tol * 1.0e-3)

    @staticmethod
    def _series_11(kappa: float, h: float, n_groups: int) -> list[ImageTerm]:
        terms = [
            ImageTerm(weight=1.0, sign=+1.0, offset=0.0),
            ImageTerm(weight=1.0, sign=-1.0, offset=0.0),
        ]
        for n in range(1, n_groups + 1):
            weight = kappa**n
            if weight == 0.0:  # contracts: disable=API001 -- stops on exact underflow of kappa**n; approximate zero must keep the term
                break
            shift = 2.0 * n * h
            terms.extend(
                [
                    ImageTerm(weight=weight, sign=-1.0, offset=-shift),
                    ImageTerm(weight=weight, sign=+1.0, offset=-shift),
                    ImageTerm(weight=weight, sign=+1.0, offset=+shift),
                    ImageTerm(weight=weight, sign=-1.0, offset=+shift),
                ]
            )
        return terms

    @staticmethod
    def _series_12(kappa: float, h: float, n_groups: int) -> list[ImageTerm]:
        factor = 1.0 + kappa
        terms: list[ImageTerm] = []
        for n in range(0, n_groups + 1):
            weight = factor * kappa**n
            if weight == 0.0 and n > 0:  # contracts: disable=API001 -- stops on exact underflow of the group weight, as in _series_11
                break
            shift = 2.0 * n * h
            terms.extend(
                [
                    ImageTerm(weight=weight, sign=+1.0, offset=-shift),
                    ImageTerm(weight=weight, sign=-1.0, offset=-shift),
                ]
            )
        return terms

    @staticmethod
    def _series_21(kappa: float, h: float, n_groups: int) -> list[ImageTerm]:
        factor = 1.0 - kappa
        terms: list[ImageTerm] = []
        for n in range(0, n_groups + 1):
            weight = factor * kappa**n
            if weight == 0.0 and n > 0:  # contracts: disable=API001 -- stops on exact underflow of the group weight, as in _series_11
                break
            shift = 2.0 * n * h
            terms.extend(
                [
                    ImageTerm(weight=weight, sign=-1.0, offset=-shift),
                    ImageTerm(weight=weight, sign=+1.0, offset=+shift),
                ]
            )
        return terms

    @staticmethod
    def _series_22(kappa: float, h: float, n_groups: int) -> list[ImageTerm]:
        terms = [ImageTerm(weight=1.0, sign=+1.0, offset=0.0)]
        if kappa != 0.0:  # contracts: disable=API001 -- exact uniform-soil sentinel: kappa is 0.0 by construction there
            terms.append(ImageTerm(weight=-kappa, sign=-1.0, offset=+2.0 * h))
        factor = 1.0 - kappa**2
        for n in range(0, n_groups + 1):
            weight = factor * kappa**n
            if weight == 0.0 and n > 0:  # contracts: disable=API001 -- stops on exact underflow of the group weight, as in _series_11
                break
            terms.append(ImageTerm(weight=weight, sign=-1.0, offset=-2.0 * n * h))
        return terms
