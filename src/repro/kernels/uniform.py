"""Kernel of the uniform (single-layer) soil model.

With a homogeneous half-space the method of images gives exactly two
contributions (paper, Section 3: "In the case of uniform soil, the series are
reduced to only two summands, since there is only one image of the original
grid"):

    ``k(x, ξ) = 1 / |x − ξ| + 1 / |x − ξ'|``

where ``ξ'`` is the mirror image of ``ξ`` above the earth surface.  The image
guarantees the natural boundary condition ``σᵗ n = 0`` on the surface (the air
is a perfect insulator).
"""

from __future__ import annotations

from repro.kernels.base import LayeredKernel
from repro.kernels.images import ImageSeries, ImageTerm
from repro.kernels.series import SeriesControl
from repro.soil.uniform import UniformSoil

__all__ = ["UniformSoilKernel"]


class UniformSoilKernel(LayeredKernel):
    """Two-term image kernel of a homogeneous soil."""

    def __init__(self, soil: UniformSoil, control: SeriesControl | None = None) -> None:
        if soil.n_layers != 1:
            raise ValueError("UniformSoilKernel requires a single-layer soil model")
        super().__init__(soil, control)

    def _build_series(self, source_layer: int, field_layer: int) -> ImageSeries:
        # Both layer indices are necessarily 1; the series is the source plus
        # its reflection about the earth surface.
        return ImageSeries(
            [
                ImageTerm(weight=1.0, sign=+1.0, offset=0.0),
                ImageTerm(weight=1.0, sign=-1.0, offset=0.0),
            ]
        )
