"""Integral kernels of the layered-soil grounding problem.

Section 3 of the paper writes the potential created at a point ``x`` of layer
``c`` by the leakage current density ``σ`` on the electrode surface (buried in
layer ``b``) as

    ``V_c(x) = 1/(4 π γ_b) ∫_Γ k_bc(x, ξ) σ(ξ) dΓ``,

where the *weakly singular kernel* ``k_bc`` is an infinite series of ``1/r``
terms: the contributions of the images of the source point with respect to the
earth surface and the layer interfaces.  Every image position is an affine
function of the source depth (``z_image = ± z_source + offset``), so the kernel
of each layer pair is fully described by a list of ``(weight, sign, offset)``
triples — the :class:`~repro.kernels.images.ImageSeries`.

Provided kernels:

* :class:`~repro.kernels.uniform.UniformSoilKernel` — two terms (source and its
  mirror image above the surface);
* :class:`~repro.kernels.two_layer.TwoLayerSoilKernel` — the four series
  ``k_11``, ``k_12``, ``k_21``, ``k_22`` of the two-layer model, truncated with
  a relative tolerance on the weights;
* :class:`~repro.kernels.hankel.HankelKernel` — a numerically integrated
  Hankel-transform kernel valid for any number of layers, used as an
  independent cross-check of the image series and for multi-layer extensions.
"""

from repro.kernels.images import ImageSeries, ImageTerm
from repro.kernels.series import SeriesControl
from repro.kernels.truncation import AdaptiveControl, TruncationPlan
from repro.kernels.base import LayeredKernel, kernel_for_soil
from repro.kernels.uniform import UniformSoilKernel
from repro.kernels.two_layer import TwoLayerSoilKernel
from repro.kernels.hankel import HankelKernel

__all__ = [
    "ImageSeries",
    "ImageTerm",
    "SeriesControl",
    "AdaptiveControl",
    "TruncationPlan",
    "LayeredKernel",
    "kernel_for_soil",
    "UniformSoilKernel",
    "TwoLayerSoilKernel",
    "HankelKernel",
]
