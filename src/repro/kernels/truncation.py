"""Adaptive, distance-aware evaluation plans for the image-series kernels.

The assembly and post-processing hot loops evaluate, for every
(field point, source element) pair, the analytic ``1/r`` line integrals of
*every* image term of the layered-soil kernel at full precision.  The paper's
formulation tolerates this uniform cost only because its era lacked vector
hardware; on modern CPUs most of that work is numerically irrelevant:

* a term whose image lies far from the whole pair-group contributes less than
  the target accuracy and can be *dropped*;
* a term whose image is merely "far" (a few source lengths away) is a smooth
  function over the source segment and its analytic integral collapses to a
  cheap second-order midpoint expansion (the *midpoint tail*) instead of the
  ``asinh``-based exact form;
* on flat meshes (every element horizontal at one burial depth — the paper's
  grids) several images of a term group become *geometrically identical* for
  every pair and can be merged into a single term with summed weight.

:class:`TruncationPlan` encodes those decisions per *distance bin*: pairs are
binned by a conservative lower bound of their in-plane separation, and each
bin gets a partition of the (possibly merged) term list into ``exact``,
``midpoint`` and dropped terms.  All decisions are pure functions of the mesh
and the kernel — never of how the caller batches the work — so adaptive
evaluation decisions are identical across batch sizes and parallel backends
(the evaluated values agree to BLAS reduction round-off; fixing the batch
composition, as the hierarchical per-block assembly does, makes them
bit-identical).

Error model (validated by ``tests/kernels/test_truncation.py`` and the
accuracy study in ``benchmarks/bench_adaptive_truncation.py``):

* the exact integral obeys ``I0 <= 2 asinh(L_s / (2 r))`` for any field point
  at distance ``>= r`` from the image segment, hence a term's influence-entry
  contribution is bounded by ``|w_l| * I0_max * L_t_max * norm``;
* the second-order midpoint expansion of ``(I0, I1)`` has absolute error
  below ``C_PT * |w_l| * (L_s / r)**5`` (measured constants 0.013 for ``I0``
  and 0.75 for ``I1``; ``C_PT = 1.0`` is conservative).

Both bounds are compared against ``tolerance * scale / safety`` where
``scale`` is the largest self-influence entry bound of the mesh, so the knob
is *relative to the matrix norm*: the accumulated matrix max-norm error stays
below ``tolerance * ||A||_max`` with a wide margin (the study measures the
actual margin).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.exceptions import KernelError
from repro.kernels.images import ImageSeries

__all__ = [
    "AdaptiveControl",
    "MergedSeries",
    "TruncationPlan",
    "merge_degenerate_terms",
    "i0_upper_bound",
    "midpoint_error_bound",
    "max_pair_distance",
]

#: Conservative constant of the midpoint-tail error bound (measured: 0.013 for
#: ``I0`` and 0.75 for the first-moment integral ``I1``).
C_PT: float = 1.0

#: The midpoint expansion is only meaningful when the image segment is at
#: least this many source lengths away from the field points.
MIN_MIDPOINT_SEPARATION: float = 1.5

#: Single-precision machine epsilon and the amplification factor of the
#: exact-integral chain (typical amplification is O(1); the factor covers the
#: moderate ``asinh`` cancellation of nearly-on-axis pairs — the accuracy
#: study measures the end-to-end margin this leaves).
EPS_F32: float = 1.2e-7
C_F32: float = 8.0

#: Relative cost of one single-precision exact / midpoint term evaluation vs
#: one double-precision exact term (measured on the reference container; used
#: by the deterministic cost model).
EXACT32_TERM_COST: float = 0.40
MIDPOINT_TERM_COST: float = 0.35

#: Default pair-separation bin edges [m] (first bin is ``[0, edges[0])``).
DEFAULT_BIN_EDGES: tuple[float, ...] = (2.0, 8.0, 32.0, 128.0)


def i0_upper_bound(source_length: float | np.ndarray, r: np.ndarray) -> np.ndarray:
    """Upper bound of ``∫_0^L dl / |x − ξ(l)|`` over field points at distance ``>= r``.

    The maximum over all positions is attained opposite the segment midpoint:
    ``I0 <= 2 asinh(L / (2 r))``.
    """
    return 2.0 * np.arcsinh(np.asarray(source_length) / (2.0 * r))


def midpoint_error_bound(source_length: float | np.ndarray, r: np.ndarray) -> np.ndarray:
    """Absolute error bound of the second-order midpoint expansion of ``(I0, I1)``."""
    return C_PT * (np.asarray(source_length) / r) ** 5


def max_pair_distance(p0: np.ndarray, p1: np.ndarray, offset_max: float) -> float:
    """Upper bound on the distance between any field point near a mesh and any
    image of any of its elements.

    Mesh bounding-box diagonal plus the largest image offset plus the mirror
    of the deepest coordinate; used to guard the single-precision ``d²``
    cancellation (see :class:`TruncationPlan`).
    """
    points = np.concatenate((np.asarray(p0, dtype=float), np.asarray(p1, dtype=float)))
    diameter = float(np.linalg.norm(points.max(axis=0) - points.min(axis=0)))
    z_extent = float(np.abs(points[:, 2]).max())
    return diameter + float(offset_max) + 2.0 * z_extent


@dataclass(frozen=True)
class AdaptiveControl:
    """Knobs of the adaptive image-series evaluation layer.

    Parameters
    ----------
    tolerance:
        Target relative accuracy of the assembled matrix (relative to its
        max-norm).  The default ``1e-8`` reproduces the full-series matrices
        to ``atol 1e-8 * ||A||_max`` with a comfortable margin.
    safety:
        Per-term bounds are compared against ``tolerance * scale / safety``;
        the factor absorbs the accumulation of many dropped/approximated
        terms into one entry.
    use_midpoint_tail:
        Evaluate sufficiently far image terms with the cheap second-order
        midpoint expansion instead of the exact ``asinh`` form.
    merge_degenerate:
        Merge geometrically identical images on flat meshes.
    bin_edges:
        Pair-separation bin edges [m]; decisions are made per bin from the
        bin's lower edge (conservative for every pair inside).
    min_series_terms:
        Series shorter than this skip the adaptive path entirely (the
        bookkeeping would cost more than the savings).
    """

    tolerance: float = 1.0e-8
    safety: float = 8.0
    use_midpoint_tail: bool = True
    merge_degenerate: bool = True
    bin_edges: tuple[float, ...] = DEFAULT_BIN_EDGES
    min_series_terms: int = 8

    def __post_init__(self) -> None:
        if not 0.0 < self.tolerance < 1.0:
            raise KernelError(
                f"adaptive tolerance must lie strictly between 0 and 1, got {self.tolerance!r}"
            )
        if self.safety < 1.0:
            raise KernelError(f"safety factor must be >= 1, got {self.safety!r}")
        if len(self.bin_edges) < 1 or any(
            b <= a for a, b in zip(self.bin_edges, self.bin_edges[1:])
        ):
            raise KernelError("bin_edges must be strictly increasing and non-empty")
        if self.bin_edges[0] <= 0.0:
            raise KernelError("the first bin edge must be positive")

    @property
    def cutoff_fraction(self) -> float:
        """The per-term bound threshold as a fraction of the reference scale."""
        return self.tolerance / self.safety


@dataclass(frozen=True)
class MergedSeries:
    """Image terms specialised to one (source depth, field depth) pair class.

    ``weights / signs / offsets`` play the same role as in
    :class:`~repro.kernels.images.ImageSeries`; on flat meshes several
    original terms may have been merged (their weights summed).
    """

    weights: np.ndarray
    signs: np.ndarray
    offsets: np.ndarray

    def __len__(self) -> int:
        return self.weights.size


def merge_degenerate_terms(
    series: ImageSeries, source_z: float, target_z: float
) -> MergedSeries:
    """Merge images that coincide for a horizontal source at ``source_z`` and
    field points at ``target_z``.

    Two images are geometrically identical for such a pair class when their
    image depths ``a_l = sign_l * source_z + offset_l`` are either equal or
    mirror images across the field plane (``a + a' = 2 * target_z``) — both
    give the same ``|x_z − a_l|`` for every field point at ``target_z``.
    Merged terms are emitted with ``sign = +1`` (irrelevant for a horizontal
    source) and ``offset = a_l − source_z``.
    """
    a_z = series.signs * float(source_z) + series.offsets
    mirrored = 2.0 * float(target_z) - a_z
    key = np.round(np.minimum(a_z, mirrored), 9)
    uniq, inverse = np.unique(key, return_inverse=True)
    weights = np.zeros(uniq.size)
    np.add.at(weights, inverse, series.weights)
    # Keep one representative depth per group (the first occurrence).
    rep = np.full(uniq.size, -1, dtype=int)
    for index, group in enumerate(inverse):
        if rep[group] < 0:
            rep[group] = index
    depths = a_z[rep]
    return MergedSeries(
        weights=weights,
        signs=np.ones(uniq.size),
        offsets=depths - float(source_z),
    )


@dataclass(frozen=True)
class BinPlan:
    """Evaluation decisions of one pair-separation bin."""

    #: Indices (into the plan's term arrays) evaluated with the exact kernel
    #: in double precision — the near images whose contribution is large.
    exact_idx: np.ndarray
    #: Indices evaluated with the exact kernel in single precision (their
    #: round-off is provably below the error budget).
    exact32_idx: np.ndarray
    #: Indices evaluated with the single-precision midpoint expansion.
    midpoint_idx: np.ndarray
    #: Number of dropped terms (for diagnostics / the cost model).
    n_dropped: int

    @property
    def cost_units(self) -> float:
        """Work units of one pair evaluated under this plan (f64 exact term = 1)."""
        return (
            float(self.exact_idx.size)
            + EXACT32_TERM_COST * float(self.exact32_idx.size)
            + MIDPOINT_TERM_COST * float(self.midpoint_idx.size)
        )


@dataclass(frozen=True)
class TruncationPlan:
    """Distance-binned evaluation plan of one image series for one source.

    Built by :meth:`build` from pure mesh/kernel data; the per-bin decisions
    apply to every (field point, source) pair whose in-plane separation lower
    bound falls in the bin, so callers may batch pairs arbitrarily without
    changing results.
    """

    #: Term arrays the bin indices refer to (merged on flat pair classes).
    weights: np.ndarray
    signs: np.ndarray
    offsets: np.ndarray
    #: Ascending separation bin edges [m]; bin ``i`` covers
    #: ``[edges[i-1], edges[i])`` with ``edges[-1] -> inf``.
    bin_edges: np.ndarray
    #: One :class:`BinPlan` per bin (``len(bin_edges) + 1`` entries).
    bins: tuple[BinPlan, ...]
    #: True when the term arrays are a merged specialisation.
    merged: bool

    @classmethod
    def build(
        cls,
        series: ImageSeries,
        control: AdaptiveControl,
        *,
        source_length: float,
        source_z_interval: tuple[float, float],
        target_z_interval: tuple[float, float],
        target_length_max: float,
        normalization: float,
        scale: float,
        merge_z: tuple[float, float] | None = None,
        r_max: float = 1.0e4,
    ) -> "TruncationPlan":
        """Build the plan of one source element against a target population.

        Parameters
        ----------
        series:
            The (full) image series of the layer pair.
        control:
            Adaptive knobs.
        source_length, source_z_interval:
            Geometry of the source element (length, depth interval).
        target_z_interval:
            Depth interval containing every possible field point (mesh Gauss
            points or evaluation points) — conservative bounds are fine.
        target_length_max:
            Largest outer (test) integration length that can multiply a term
            contribution (the longest mesh element, or the field-point count
            weight 1.0 for point evaluation).
        normalization:
            The kernel prefactor ``1 / (4 π γ_b)`` of the source layer.
        scale:
            Reference matrix-entry magnitude the tolerance is relative to.
        merge_z:
            ``(source_z, target_z)`` when the pair class is flat (horizontal
            source, all field points at one depth) and degenerate images may
            be merged; ``None`` disables merging.
        r_max:
            Upper bound on any pair distance (mesh diameter plus image
            offsets); guards the single-precision ``d²`` cancellation for
            nearly-on-axis pairs.
        """
        if scale <= 0.0 or not np.isfinite(scale):
            raise KernelError(f"adaptive reference scale must be positive, got {scale!r}")
        if merge_z is not None and control.merge_degenerate:
            merged = merge_degenerate_terms(series, *merge_z)
            weights, signs, offsets = merged.weights, merged.signs, merged.offsets
            was_merged = len(merged) < len(series)
        else:
            weights, signs, offsets = series.weights, series.signs, series.offsets
            was_merged = False

        edges = np.asarray(control.bin_edges, dtype=float)
        cutoff = control.cutoff_fraction * scale
        length = float(source_length)
        z_lo, z_hi = (float(source_z_interval[0]), float(source_z_interval[1]))
        t_lo, t_hi = (float(target_z_interval[0]), float(target_z_interval[1]))

        # Depth interval of every image: sign * [z_lo, z_hi] + offset.
        img_lo = np.minimum(signs * z_lo, signs * z_hi) + offsets
        img_hi = np.maximum(signs * z_lo, signs * z_hi) + offsets
        # Vertical distance between the image interval and the target interval.
        dz = np.maximum.reduce([img_lo - t_hi, t_lo - img_hi, np.zeros_like(img_lo)])

        bins: list[BinPlan] = []
        order = np.arange(weights.size)
        entry_factor = normalization * float(target_length_max) * np.abs(weights)
        for bin_index in range(edges.size + 1):
            rho_min = 0.0 if bin_index == 0 else float(edges[bin_index - 1])
            r = np.sqrt(rho_min**2 + dz**2)
            r = np.maximum(r, 1.0e-12)
            entry_bound = entry_factor * i0_upper_bound(length, r)
            keep = entry_bound > cutoff
            if not np.any(keep):
                # Never drop a whole bin: keep the dominant term so the far
                # field stays qualitatively correct.
                keep[int(np.argmax(np.abs(weights)))] = True

            # Single precision is admissible when the term's round-off — the
            # amplified f32 epsilon times the term magnitude — fits the
            # budget, and the image is far enough off-plane that the in-plane
            # ``d² = |w|² − s²`` cancellation cannot blow up (``d`` is
            # dominated by the vertical offset ``dz``).
            f32_ok = (
                entry_factor * C_F32 * EPS_F32 <= cutoff
            ) & (dz >= 4.0 * np.sqrt(EPS_F32) * float(r_max))

            midpoint_ok = np.zeros_like(keep)
            if control.use_midpoint_tail:
                mp_err = entry_factor * midpoint_error_bound(length, r)
                midpoint_ok = (
                    keep
                    & f32_ok
                    & (mp_err <= cutoff)
                    & (r >= MIN_MIDPOINT_SEPARATION * length)
                )
            exact32 = keep & f32_ok & ~midpoint_ok
            bins.append(
                BinPlan(
                    exact_idx=order[keep & ~f32_ok],
                    exact32_idx=order[exact32],
                    midpoint_idx=order[midpoint_ok],
                    n_dropped=int((~keep).sum()),
                )
            )

        return cls(
            weights=weights,
            signs=signs,
            offsets=offsets,
            bin_edges=edges,
            bins=tuple(bins),
            merged=was_merged,
        )

    # -- helpers ---------------------------------------------------------------------

    def bin_of(self, separation: np.ndarray) -> np.ndarray:
        """Bin index of each pair-separation lower bound."""
        return np.digitize(np.asarray(separation, dtype=float), self.bin_edges)

    def cost_units(self, separation: np.ndarray) -> np.ndarray:
        """Per-pair work units (exact term = 1) for an array of separations."""
        per_bin = np.array([plan.cost_units for plan in self.bins])
        return per_bin[self.bin_of(separation)]

    @property
    def n_terms(self) -> int:
        """Number of (possibly merged) terms the plan partitions."""
        return int(self.weights.size)

    def summary(self) -> dict:
        """Diagnostics: per-bin kept/midpoint/dropped counts."""
        return {
            "n_terms": self.n_terms,
            "merged": self.merged,
            "bins": [
                {
                    "rho_min": 0.0 if i == 0 else float(self.bin_edges[i - 1]),
                    "exact": int(plan.exact_idx.size),
                    "exact32": int(plan.exact32_idx.size),
                    "midpoint": int(plan.midpoint_idx.size),
                    "dropped": plan.n_dropped,
                }
                for i, plan in enumerate(self.bins)
            ],
        }
