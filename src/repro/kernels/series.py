"""Truncation control for the layered-soil image series.

The two-layer kernel is an infinite series whose ``n``-th group of images is
weighted by ``κⁿ`` (|κ| < 1).  Following the paper, the series is "numerically
added up until a tolerance is fulfilled or an upper limit of summands is
achieved"; :class:`SeriesControl` carries those two knobs and computes the
number of groups they imply.
"""

from __future__ import annotations

from dataclasses import dataclass

import math

from repro.constants import DEFAULT_MAX_IMAGE_GROUPS, DEFAULT_SERIES_TOLERANCE
from repro.exceptions import KernelError

__all__ = ["SeriesControl"]


@dataclass(frozen=True)
class SeriesControl:
    """Image-series truncation parameters.

    Parameters
    ----------
    tolerance:
        Relative tolerance: groups are generated while ``|κ|ⁿ >= tolerance``.
    max_groups:
        Hard cap on the number of groups regardless of the tolerance.
    """

    tolerance: float = DEFAULT_SERIES_TOLERANCE
    max_groups: int = DEFAULT_MAX_IMAGE_GROUPS

    def __post_init__(self) -> None:
        if not 0.0 < self.tolerance < 1.0:
            raise KernelError(
                f"series tolerance must lie strictly between 0 and 1, got {self.tolerance!r}"
            )
        if self.max_groups < 1:
            raise KernelError(f"max_groups must be at least 1, got {self.max_groups!r}")

    def n_groups(self, kappa: float) -> int:
        """Number of series groups to evaluate for a reflection ratio ``κ``.

        Returns the smallest ``n`` with ``|κ|ⁿ < tolerance`` (clamped to
        ``[1, max_groups]``).  ``κ = 0`` (uniform soil) needs a single group.
        """
        kappa = abs(float(kappa))
        if kappa >= 1.0:
            raise KernelError(f"|kappa| must be < 1 for a physical soil, got {kappa}")
        if kappa == 0.0:  # contracts: disable=API001 -- exact uniform-soil sentinel: kappa is 0.0 by construction there
            return 1
        needed = int(math.ceil(math.log(self.tolerance) / math.log(kappa)))
        return int(min(self.max_groups, max(1, needed)))

    def truncation_error_bound(self, kappa: float) -> float:
        """Upper bound on the neglected relative weight ``Σ_{n>N} |κ|ⁿ``."""
        kappa = abs(float(kappa))
        if kappa == 0.0:  # contracts: disable=API001 -- exact uniform-soil sentinel: kappa is 0.0 by construction there
            return 0.0
        n = self.n_groups(kappa)
        return kappa ** (n + 1) / (1.0 - kappa)
