"""Grid design optimisation: find the cheapest compliant reticulated design.

A simple but realistic design-space search on top of the BEM solver: candidate
designs are rectangular grids of increasing mesh density, optionally reinforced
with perimeter ground rods.  For every candidate the solver computes the
equivalent resistance, the GPR produced by the fault scenario and the worst
touch and step voltages over the protected area; the search returns all
evaluated candidates plus the cheapest one (smallest buried conductor length)
that meets the IEEE Std 80 limits.

The search is deliberately exhaustive over a small, explicit candidate list —
grounding designs are reviewed by humans and the full table of candidates is
part of the deliverable, exactly like the soil-model comparison tables of the
paper.

The sweep itself runs as a :mod:`repro.campaign` campaign: every candidate is
one :class:`~repro.campaign.spec.ScenarioSpec` at a unit GPR (the solution is
linear in the GPR, so the fault scenario's GPR is applied afterwards through
``ground_potential_rise``), and the campaign runner provides the shared
geometry/cluster caches — and, optionally, a persistent worker pool plus the
hierarchical engine for large candidate grids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.campaign.runner import run_campaign
from repro.campaign.spec import Campaign, GeometryVariant, ScenarioSpec
from repro.design.fault import FaultScenario, ground_potential_rise
from repro.exceptions import ReproError
from repro.kernels.truncation import AdaptiveControl
from repro.soil.base import SoilModel

__all__ = ["DesignCandidate", "DesignStudy", "optimize_grid_design"]


@dataclass
class DesignCandidate:
    """One evaluated grid design."""

    #: Number of meshes along x and y.
    nx: int
    ny: int
    #: Number of perimeter rods.
    n_rods: int
    #: Total buried conductor length (the cost proxy) [m].
    total_length: float
    #: Equivalent resistance [Ω].
    equivalent_resistance: float
    #: Ground Potential Rise produced by the fault scenario [V].
    gpr: float
    #: Worst touch voltage over the assessed area [V].
    max_touch_voltage: float
    #: Worst step voltage over the assessed area [V].
    max_step_voltage: float
    #: Tolerable limits used for the verdict [V].
    tolerable_touch_voltage: float
    tolerable_step_voltage: float
    #: Extra data (timings, grid summary ...).
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def compliant(self) -> bool:
        """Whether both IEEE Std 80 criteria are met."""
        return (
            self.max_touch_voltage <= self.tolerable_touch_voltage
            and self.max_step_voltage <= self.tolerable_step_voltage
        )

    def summary(self) -> dict[str, Any]:
        """Row used by reports."""
        return {
            "nx": self.nx,
            "ny": self.ny,
            "n_rods": self.n_rods,
            "total_length_m": round(self.total_length, 1),
            "Req_ohm": round(self.equivalent_resistance, 4),
            "gpr_v": round(self.gpr, 1),
            "max_touch_v": round(self.max_touch_voltage, 1),
            "max_step_v": round(self.max_step_voltage, 1),
            "compliant": self.compliant,
        }


@dataclass
class DesignStudy:
    """All evaluated candidates plus the selected design."""

    candidates: list[DesignCandidate]
    best: DesignCandidate | None

    @property
    def n_candidates(self) -> int:
        """Number of evaluated designs."""
        return len(self.candidates)

    @property
    def n_compliant(self) -> int:
        """Number of designs meeting both limits."""
        return sum(1 for c in self.candidates if c.compliant)

    def table(self) -> list[dict[str, Any]]:
        """Summary rows of every candidate (cheapest first)."""
        ordered = sorted(self.candidates, key=lambda c: c.total_length)
        return [c.summary() for c in ordered]


def optimize_grid_design(
    width: float,
    height: float,
    soil: SoilModel,
    fault: FaultScenario,
    mesh_densities: Sequence[int] = (2, 3, 4, 6, 8),
    try_rods: bool = True,
    depth: float = 0.8,
    conductor_radius: float = 6.0e-3,
    rod_length: float = 2.4,
    surface_resistivity: float | None = None,
    surface_thickness: float = 0.1,
    body_weight_kg: float = 70.0,
    raster: int = 25,
    adaptive: "AdaptiveControl | None" = None,
    hierarchical=None,
    pool=None,
) -> DesignStudy:
    """Search rectangular designs until the IEEE Std 80 limits are met.

    Parameters
    ----------
    width, height:
        Plan dimensions of the area to protect [m].
    soil:
        Soil model (uniform or two-layer).
    fault:
        Fault scenario producing the grid current.
    mesh_densities:
        Candidate numbers of meshes along the longer side; the shorter side is
        meshed proportionally (at least one mesh).
    try_rods:
        Also evaluate each density with perimeter rods.
    depth, conductor_radius, rod_length:
        Construction parameters.
    surface_resistivity, surface_thickness, body_weight_kg:
        IEEE Std 80 tolerable-voltage parameters.
    raster:
        Resolution of the surface-potential raster used for the touch/step
        assessment.
    adaptive:
        Optional :class:`repro.kernels.truncation.AdaptiveControl` enabling
        the adaptive assembly engine for every candidate analysis (the
        surface-potential rasters always use the adaptive evaluator, sharing
        one geometry cache across the sweep).
    hierarchical:
        Optional :class:`repro.cluster.operator.HierarchicalControl`
        switching every candidate analysis to the matrix-free hierarchical
        engine (worthwhile for very dense candidate grids).
    pool:
        Optional persistent :class:`repro.parallel.pool.WorkerPool` shared
        with other campaigns (requires ``hierarchical``).

    Returns
    -------
    DesignStudy
        Every evaluated candidate and the cheapest compliant one (``best`` is
        ``None`` when no candidate meets the limits).
    """
    if width <= 0 or height <= 0:
        raise ReproError("the protected area dimensions must be positive")
    if not mesh_densities:
        raise ReproError("at least one mesh density must be proposed")

    long_side, short_side = max(width, height), min(width, height)
    variants: list[GeometryVariant] = []
    for density in sorted(set(int(d) for d in mesh_densities)):
        if density < 1:
            raise ReproError("mesh densities must be >= 1")
        n_long = density
        n_short = max(1, int(round(density * short_side / long_side)))
        nx, ny = (n_long, n_short) if width >= height else (n_short, n_long)
        rod_options = (False, True) if try_rods else (False,)
        for with_rods in rod_options:
            variants.append(
                GeometryVariant(
                    name=f"design-{nx}x{ny}{'-rods' if with_rods else ''}",
                    width=width,
                    height=height,
                    nx=nx,
                    ny=ny,
                    depth=depth,
                    conductor_radius=conductor_radius,
                    rod_radius=conductor_radius * 1.2,
                    rod_length=rod_length,
                    rods="perimeter" if with_rods else "none",
                )
            )

    # The sweep runs as a campaign at a unit GPR: the solution scales
    # linearly with the GPR, so the fault scenario's GPR — which depends on
    # each candidate's resistance — is applied to the results afterwards.
    campaign = Campaign(
        name="design-sweep",
        scenarios=tuple(
            ScenarioSpec(name=variant.name, geometry=variant, soil=soil, gpr=1.0)
            for variant in variants
        ),
        hierarchical=hierarchical,
        adaptive=adaptive,
        assess_safety=True,
        safety_raster=raster,
        safety_margin=10.0,
        fault_duration_s=fault.duration_s,
        body_weight_kg=body_weight_kg,
        surface_resistivity=surface_resistivity,
        surface_thickness=surface_thickness,
    )
    outcome = run_campaign(campaign, pool=pool)

    candidates: list[DesignCandidate] = []
    for variant, scenario in zip(variants, outcome.scenarios):
        grid_facts = scenario.metadata["grid"]  # from the runner's built grid
        resistance = scenario.equivalent_resistance
        gpr = ground_potential_rise(resistance, fault)
        candidates.append(
            DesignCandidate(
                nx=variant.nx,
                ny=variant.ny,
                n_rods=grid_facts["n_rods"],
                total_length=grid_facts["total_length_m"],
                equivalent_resistance=resistance,
                gpr=gpr,
                # Unit-GPR touch/step voltages scaled to the fault GPR.
                max_touch_voltage=scenario.max_touch_voltage * gpr,
                max_step_voltage=scenario.max_step_voltage * gpr,
                tolerable_touch_voltage=scenario.tolerable_touch_voltage,
                tolerable_step_voltage=scenario.tolerable_step_voltage,
                metadata={"grid": grid_facts["summary"], "campaign": outcome.plan_summary},
            )
        )

    compliant = [c for c in candidates if c.compliant]
    best = min(compliant, key=lambda c: c.total_length) if compliant else None
    return DesignStudy(candidates=candidates, best=best)
