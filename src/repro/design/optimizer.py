"""Grid design optimisation: find the cheapest compliant reticulated design.

A simple but realistic design-space search on top of the BEM solver: candidate
designs are rectangular grids of increasing mesh density, optionally reinforced
with perimeter ground rods.  For every candidate the solver computes the
equivalent resistance, the GPR produced by the fault scenario and the worst
touch and step voltages over the protected area; the search returns all
evaluated candidates plus the cheapest one (smallest buried conductor length)
that meets the IEEE Std 80 limits.

The search is deliberately exhaustive over a small, explicit candidate list —
grounding designs are reviewed by humans and the full table of candidates is
part of the deliverable, exactly like the soil-model comparison tables of the
paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.bem.formulation import GroundingAnalysis
from repro.bem.geometry_cache import GeometryCache
from repro.bem.potential import PotentialEvaluator
from repro.bem.safety import ieee80_tolerable_step, ieee80_tolerable_touch
from repro.design.fault import FaultScenario, ground_potential_rise
from repro.exceptions import ReproError
from repro.geometry.builder import GridBuilder
from repro.kernels.truncation import AdaptiveControl
from repro.soil.base import SoilModel

__all__ = ["DesignCandidate", "DesignStudy", "optimize_grid_design"]


@dataclass
class DesignCandidate:
    """One evaluated grid design."""

    #: Number of meshes along x and y.
    nx: int
    ny: int
    #: Number of perimeter rods.
    n_rods: int
    #: Total buried conductor length (the cost proxy) [m].
    total_length: float
    #: Equivalent resistance [Ω].
    equivalent_resistance: float
    #: Ground Potential Rise produced by the fault scenario [V].
    gpr: float
    #: Worst touch voltage over the assessed area [V].
    max_touch_voltage: float
    #: Worst step voltage over the assessed area [V].
    max_step_voltage: float
    #: Tolerable limits used for the verdict [V].
    tolerable_touch_voltage: float
    tolerable_step_voltage: float
    #: Extra data (timings, grid summary ...).
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def compliant(self) -> bool:
        """Whether both IEEE Std 80 criteria are met."""
        return (
            self.max_touch_voltage <= self.tolerable_touch_voltage
            and self.max_step_voltage <= self.tolerable_step_voltage
        )

    def summary(self) -> dict[str, Any]:
        """Row used by reports."""
        return {
            "nx": self.nx,
            "ny": self.ny,
            "n_rods": self.n_rods,
            "total_length_m": round(self.total_length, 1),
            "Req_ohm": round(self.equivalent_resistance, 4),
            "gpr_v": round(self.gpr, 1),
            "max_touch_v": round(self.max_touch_voltage, 1),
            "max_step_v": round(self.max_step_voltage, 1),
            "compliant": self.compliant,
        }


@dataclass
class DesignStudy:
    """All evaluated candidates plus the selected design."""

    candidates: list[DesignCandidate]
    best: DesignCandidate | None

    @property
    def n_candidates(self) -> int:
        """Number of evaluated designs."""
        return len(self.candidates)

    @property
    def n_compliant(self) -> int:
        """Number of designs meeting both limits."""
        return sum(1 for c in self.candidates if c.compliant)

    def table(self) -> list[dict[str, Any]]:
        """Summary rows of every candidate (cheapest first)."""
        ordered = sorted(self.candidates, key=lambda c: c.total_length)
        return [c.summary() for c in ordered]


def _evaluate_candidate(
    width: float,
    height: float,
    nx: int,
    ny: int,
    with_rods: bool,
    depth: float,
    conductor_radius: float,
    rod_length: float,
    soil: SoilModel,
    fault: FaultScenario,
    surface_resistivity: float | None,
    surface_thickness: float,
    body_weight_kg: float,
    raster: int,
    adaptive: "AdaptiveControl | None" = None,
    geometry_cache: "GeometryCache | None" = None,
) -> DesignCandidate:
    builder = GridBuilder(
        depth=depth,
        conductor_radius=conductor_radius,
        rod_radius=conductor_radius * 1.2,
        rod_length=rod_length,
        name=f"design-{nx}x{ny}{'-rods' if with_rods else ''}",
    )
    grid = builder.rectangular_mesh(width, height, nx, ny)
    n_rods = 0
    if with_rods:
        positions = GridBuilder.perimeter_node_positions(grid)[:, :2]
        builder.add_rods(grid, positions)
        n_rods = positions.shape[0]

    # The solution scales linearly with the GPR, so solve once at a unit GPR
    # and rescale with the GPR produced by the fault scenario.
    results = GroundingAnalysis(
        grid, soil, gpr=1.0, validate=False, adaptive=adaptive
    ).run()
    resistance = results.equivalent_resistance
    gpr = ground_potential_rise(resistance, fault)

    # The evaluator shares one geometry cache across the whole design sweep:
    # candidates revisiting a geometry (or a repeated GPR/fault re-analysis)
    # reuse the in-plane pair data instead of recomputing it.  A caller's
    # explicit adaptive control governs the rasters too; the evaluator's own
    # default applies otherwise.
    evaluator = PotentialEvaluator(
        results.mesh,
        results.soil,
        results.kernel,
        results.dof_manager,
        results.dof_values,
        gpr=results.gpr,
        adaptive=adaptive if adaptive is not None else "default",
        geometry_cache=geometry_cache,
    )
    surface = evaluator.surface_potential_over_grid(margin=10.0, n_x=raster, n_y=raster)
    # Scale the unit-GPR surface potential to the GPR of the fault scenario.
    scaled_values = surface.values * gpr
    # Touch voltage is assessed over the area a person can reach while touching
    # grounded structures: the grid footprint plus a one-metre reach margin.
    # The step voltage is assessed over the whole sampled area (it also matters
    # outside the fence).
    lower, upper = grid.bounding_box()
    reach = 1.0
    in_reach_x = (surface.x >= lower[0] - reach) & (surface.x <= upper[0] + reach)
    in_reach_y = (surface.y >= lower[1] - reach) & (surface.y <= upper[1] + reach)
    touch_area = scaled_values[np.ix_(in_reach_y, in_reach_x)]
    touch = float(gpr - touch_area.min())
    grad_y, grad_x = np.gradient(scaled_values, surface.y, surface.x)
    step = float(np.hypot(grad_x, grad_y).max())

    soil_resistivity = 1.0 / soil.conductivities[0]
    tolerable_touch = ieee80_tolerable_touch(
        soil_resistivity,
        fault.duration_s,
        body_weight_kg,
        surface_resistivity,
        surface_thickness,
    )
    tolerable_step = ieee80_tolerable_step(
        soil_resistivity,
        fault.duration_s,
        body_weight_kg,
        surface_resistivity,
        surface_thickness,
    )
    return DesignCandidate(
        nx=nx,
        ny=ny,
        n_rods=n_rods,
        total_length=grid.total_length,
        equivalent_resistance=resistance,
        gpr=gpr,
        max_touch_voltage=touch,
        max_step_voltage=step,
        tolerable_touch_voltage=float(tolerable_touch),
        tolerable_step_voltage=float(tolerable_step),
        metadata={"grid": grid.summary()},
    )


def optimize_grid_design(
    width: float,
    height: float,
    soil: SoilModel,
    fault: FaultScenario,
    mesh_densities: Sequence[int] = (2, 3, 4, 6, 8),
    try_rods: bool = True,
    depth: float = 0.8,
    conductor_radius: float = 6.0e-3,
    rod_length: float = 2.4,
    surface_resistivity: float | None = None,
    surface_thickness: float = 0.1,
    body_weight_kg: float = 70.0,
    raster: int = 25,
    adaptive: "AdaptiveControl | None" = None,
) -> DesignStudy:
    """Search rectangular designs until the IEEE Std 80 limits are met.

    Parameters
    ----------
    width, height:
        Plan dimensions of the area to protect [m].
    soil:
        Soil model (uniform or two-layer).
    fault:
        Fault scenario producing the grid current.
    mesh_densities:
        Candidate numbers of meshes along the longer side; the shorter side is
        meshed proportionally (at least one mesh).
    try_rods:
        Also evaluate each density with perimeter rods.
    depth, conductor_radius, rod_length:
        Construction parameters.
    surface_resistivity, surface_thickness, body_weight_kg:
        IEEE Std 80 tolerable-voltage parameters.
    raster:
        Resolution of the surface-potential raster used for the touch/step
        assessment.
    adaptive:
        Optional :class:`repro.kernels.truncation.AdaptiveControl` enabling
        the adaptive assembly engine for every candidate analysis (the
        surface-potential rasters always use the adaptive evaluator, sharing
        one geometry cache across the sweep).

    Returns
    -------
    DesignStudy
        Every evaluated candidate and the cheapest compliant one (``best`` is
        ``None`` when no candidate meets the limits).
    """
    if width <= 0 or height <= 0:
        raise ReproError("the protected area dimensions must be positive")
    if not mesh_densities:
        raise ReproError("at least one mesh density must be proposed")

    long_side, short_side = max(width, height), min(width, height)
    sweep_cache = GeometryCache()
    candidates: list[DesignCandidate] = []
    for density in sorted(set(int(d) for d in mesh_densities)):
        if density < 1:
            raise ReproError("mesh densities must be >= 1")
        n_long = density
        n_short = max(1, int(round(density * short_side / long_side)))
        nx, ny = (n_long, n_short) if width >= height else (n_short, n_long)
        rod_options = (False, True) if try_rods else (False,)
        for with_rods in rod_options:
            candidates.append(
                _evaluate_candidate(
                    width,
                    height,
                    nx,
                    ny,
                    with_rods,
                    depth,
                    conductor_radius,
                    rod_length,
                    soil,
                    fault,
                    surface_resistivity,
                    surface_thickness,
                    body_weight_kg,
                    raster,
                    adaptive,
                    sweep_cache,
                )
            )

    compliant = [c for c in candidates if c.compliant]
    best = min(compliant, key=lambda c: c.total_length) if compliant else None
    return DesignStudy(candidates=candidates, best=best)
