"""Design-support layer: fault data, conductor sizing and grid optimisation.

The BEM solver answers "what are the resistance and the surface potentials of
*this* grid in *this* soil"; a grounding designer also needs the surrounding
workflow the paper's CAD system targets:

* :mod:`repro.design.fault` — from the fault current and the system X/R ratio
  to the Ground Potential Rise actually applied to the grid (split factor,
  decrement factor);
* :mod:`repro.design.sizing` — minimum conductor cross-section able to carry
  the fault current without fusing (IEEE Std 80 thermal sizing);
* :mod:`repro.design.optimizer` — a small design-space search that densifies a
  reticulated grid (and adds rods) until the IEEE Std 80 touch/step limits are
  met, reporting the cheapest compliant design.
"""

from repro.design.fault import FaultScenario, decrement_factor, ground_potential_rise
from repro.design.sizing import ConductorMaterial, MATERIALS, minimum_conductor_section
from repro.design.optimizer import DesignCandidate, DesignStudy, optimize_grid_design

__all__ = [
    "FaultScenario",
    "decrement_factor",
    "ground_potential_rise",
    "ConductorMaterial",
    "MATERIALS",
    "minimum_conductor_section",
    "DesignCandidate",
    "DesignStudy",
    "optimize_grid_design",
]
