"""Fault-current data and the resulting Ground Potential Rise.

The paper applies a fixed GPR of 10 kV to its grids; in practice the GPR is a
*result*: the symmetrical ground-fault current released by the network, reduced
by the fraction that returns through overhead ground wires and cable sheaths
(the split factor), increased by the DC-offset decrement factor, and multiplied
by the grid resistance computed by the BEM solver.  This module implements that
standard IEEE Std 80 chain so analyses can be driven by fault data instead of
an assumed GPR.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ReproError

__all__ = ["decrement_factor", "FaultScenario", "ground_potential_rise"]


def decrement_factor(fault_duration_s: float, x_over_r: float, frequency_hz: float = 50.0) -> float:
    """IEEE Std 80 decrement factor ``D_f`` accounting for the DC offset.

    ``D_f = sqrt(1 + (T_a / t_f) (1 − e^{−2 t_f / T_a}))`` with the subtransient
    time constant ``T_a = (X/R) / (2 π f)``.

    Parameters
    ----------
    fault_duration_s:
        Fault clearing time ``t_f`` [s].
    x_over_r:
        System reactance-to-resistance ratio at the fault location.
    frequency_hz:
        Power frequency [Hz].
    """
    if fault_duration_s <= 0.0:
        raise ReproError("the fault duration must be positive")
    if x_over_r < 0.0:
        raise ReproError("the X/R ratio cannot be negative")
    if frequency_hz <= 0.0:
        raise ReproError("the power frequency must be positive")
    if x_over_r == 0.0:  # contracts: disable=API001 -- exact user-given sentinel: X/R = 0.0 means no DC offset
        return 1.0
    time_constant = x_over_r / (2.0 * np.pi * frequency_hz)
    ratio = time_constant / fault_duration_s
    return float(np.sqrt(1.0 + ratio * (1.0 - np.exp(-2.0 * fault_duration_s / time_constant))))


@dataclass(frozen=True)
class FaultScenario:
    """Ground-fault data at the substation.

    Parameters
    ----------
    symmetrical_current_a:
        RMS symmetrical ground-fault current ``3 I_0`` [A].
    duration_s:
        Fault clearing time [s].
    split_factor:
        Fraction ``S_f`` of the fault current that actually flows between the
        grid and the surrounding earth (the rest returns through ground wires
        and cable sheaths); between 0 and 1.
    x_over_r:
        System X/R ratio used for the decrement factor.
    frequency_hz:
        Power frequency [Hz].
    """

    symmetrical_current_a: float
    duration_s: float = 0.5
    split_factor: float = 1.0
    x_over_r: float = 10.0
    frequency_hz: float = 50.0

    def __post_init__(self) -> None:
        if self.symmetrical_current_a <= 0.0:
            raise ReproError("the symmetrical fault current must be positive")
        if not 0.0 < self.split_factor <= 1.0:
            raise ReproError("the split factor must lie in (0, 1]")
        if self.duration_s <= 0.0:
            raise ReproError("the fault duration must be positive")

    @property
    def decrement_factor(self) -> float:
        """Decrement factor ``D_f`` of this scenario."""
        return decrement_factor(self.duration_s, self.x_over_r, self.frequency_hz)

    @property
    def grid_current_a(self) -> float:
        """Maximum grid current ``I_G = S_f · D_f · 3I_0`` dissipated by the grid [A]."""
        return self.symmetrical_current_a * self.split_factor * self.decrement_factor


def ground_potential_rise(equivalent_resistance: float, fault: FaultScenario) -> float:
    """GPR produced by a fault scenario on a grid of known resistance [V].

    ``GPR = R_eq · I_G``; this is the value to compare against the tolerable
    touch voltage (if the GPR itself is below the touch limit no further
    analysis is needed, per IEEE Std 80).
    """
    if equivalent_resistance <= 0.0:
        raise ReproError("the equivalent resistance must be positive")
    return float(equivalent_resistance * fault.grid_current_a)
