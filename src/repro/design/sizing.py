"""Thermal sizing of grounding conductors (IEEE Std 80).

The grid conductors must survive the fault current without approaching their
fusing temperature.  IEEE Std 80 gives the minimum cross section as

    ``A_mm² = I_kA · K_f · sqrt(t_c)``  (simplified form), or in full

    ``A_mm² = I_kA / sqrt( (TCAP · 1e-4) / (t_c · α_r · ρ_r)
                           · ln( (K_0 + T_m) / (K_0 + T_a) ) )``

with the material constants tabulated by the standard.  Both forms are
implemented; the full form is the default.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ReproError

__all__ = ["ConductorMaterial", "MATERIALS", "minimum_conductor_section", "section_to_diameter"]


@dataclass(frozen=True)
class ConductorMaterial:
    """Material constants of IEEE Std 80 Table 1 (hard-drawn values)."""

    #: Material name.
    name: str
    #: Thermal coefficient of resistivity at the reference temperature [1/°C].
    alpha_r: float
    #: K0 = 1/alpha_0 [°C].
    k0: float
    #: Fusing temperature [°C].
    fusing_temperature_c: float
    #: Resistivity at the reference temperature [µΩ·cm].
    rho_r: float
    #: Thermal capacity per unit volume [J/(cm³·°C)].
    tcap: float


#: Common grounding conductor materials (IEEE Std 80-2000, Table 1).
MATERIALS: dict[str, ConductorMaterial] = {
    "copper-annealed": ConductorMaterial(
        name="copper-annealed",
        alpha_r=0.00393,
        k0=234.0,
        fusing_temperature_c=1083.0,
        rho_r=1.72,
        tcap=3.42,
    ),
    "copper-hard-drawn": ConductorMaterial(
        name="copper-hard-drawn",
        alpha_r=0.00381,
        k0=242.0,
        fusing_temperature_c=1084.0,
        rho_r=1.78,
        tcap=3.42,
    ),
    "copper-clad-steel": ConductorMaterial(
        name="copper-clad-steel",
        alpha_r=0.00378,
        k0=245.0,
        fusing_temperature_c=1084.0,
        rho_r=4.40,
        tcap=3.85,
    ),
    "aluminum": ConductorMaterial(
        name="aluminum",
        alpha_r=0.00403,
        k0=228.0,
        fusing_temperature_c=657.0,
        rho_r=2.86,
        tcap=2.56,
    ),
    "steel": ConductorMaterial(
        name="steel",
        alpha_r=0.00160,
        k0=605.0,
        fusing_temperature_c=1510.0,
        rho_r=15.90,
        tcap=3.28,
    ),
}


def minimum_conductor_section(
    fault_current_a: float,
    fault_duration_s: float,
    material: ConductorMaterial | str = "copper-hard-drawn",
    ambient_temperature_c: float = 40.0,
    maximum_temperature_c: float | None = None,
) -> float:
    """Minimum conductor cross-section [mm²] able to carry the fault current.

    Parameters
    ----------
    fault_current_a:
        RMS fault current carried by the conductor [A].
    fault_duration_s:
        Current duration [s].
    material:
        A :class:`ConductorMaterial` or one of the keys of :data:`MATERIALS`.
    ambient_temperature_c:
        Ambient (initial) temperature [°C].
    maximum_temperature_c:
        Maximum allowable temperature [°C]; defaults to the material's fusing
        temperature (use a lower value for brazed or bolted joints).
    """
    if isinstance(material, str):
        try:
            material = MATERIALS[material]
        except KeyError as exc:
            raise ReproError(
                f"unknown conductor material {material!r}; known: {sorted(MATERIALS)}"
            ) from exc
    if fault_current_a <= 0.0:
        raise ReproError("the fault current must be positive")
    if fault_duration_s <= 0.0:
        raise ReproError("the fault duration must be positive")
    t_max = material.fusing_temperature_c if maximum_temperature_c is None else float(
        maximum_temperature_c
    )
    if t_max <= ambient_temperature_c:
        raise ReproError("the maximum temperature must exceed the ambient temperature")

    log_term = np.log((material.k0 + t_max) / (material.k0 + ambient_temperature_c))
    denominator = (material.tcap * 1.0e-4) / (
        fault_duration_s * material.alpha_r * material.rho_r
    ) * log_term
    section_mm2 = (fault_current_a / 1.0e3) / np.sqrt(denominator)
    return float(section_mm2)


def section_to_diameter(section_mm2: float) -> float:
    """Diameter [m] of a solid round conductor of the given cross-section [mm²]."""
    if section_mm2 <= 0.0:
        raise ReproError("the cross-section must be positive")
    return float(2.0 * np.sqrt(section_mm2 / np.pi) * 1.0e-3)
