"""``python -m repro.contracts`` — the analyzer's command-line interface.

::

    python -m repro.contracts check src              # human report, exit 1 on findings
    python -m repro.contracts check src --format json --output contracts-report.json
    python -m repro.contracts rules                  # list the rule battery

``check`` analyzes every ``.py`` file under the given paths (default:
``src``) with the default rule battery and exits 0 only when no active
finding remains — suppressed findings (justified pragmas) are listed in the
report but do not gate.  ``--output`` always writes the report file, even
when findings gate the exit code, so CI can upload it as an artifact.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.contracts.engine import analyze_paths
from repro.contracts.report import render_human, render_json
from repro.contracts.rules import default_rules, rule_catalog

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.contracts`` argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro.contracts",
        description="Static determinism/fork-safety contract analyzer.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    check = subparsers.add_parser("check", help="analyze paths and gate on findings")
    check.add_argument(
        "paths", nargs="*", default=["src"], help="files/directories to analyze (default: src)"
    )
    check.add_argument(
        "--format", choices=("human", "json"), default="human", help="report format"
    )
    check.add_argument(
        "--output",
        default=None,
        help="also write the JSON report (the CI artifact) to this file, "
        "whatever --format prints to stdout",
    )
    check.add_argument(
        "--verbose",
        action="store_true",
        help="list the suppressed findings and their justifications (human format)",
    )

    subparsers.add_parser("rules", help="list the rule battery")
    return parser


def _cmd_check(args: argparse.Namespace) -> int:
    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        print(f"repro.contracts: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2
    report = analyze_paths(args.paths, default_rules())
    rendered = (
        render_json(report)
        if args.format == "json"
        else render_human(report, verbose=args.verbose) + "\n"
    )
    if args.output:
        Path(args.output).write_text(
            rendered if args.format == "json" else render_json(report),
            encoding="utf-8",
        )
    sys.stdout.write(rendered)
    return report.exit_code


def _cmd_rules(args: argparse.Namespace) -> int:
    for rule_id, title in rule_catalog():
        print(f"{rule_id}  {title}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``python -m repro.contracts`` (returns the exit code)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "rules":
        return _cmd_rules(args)
    return _cmd_check(args)
