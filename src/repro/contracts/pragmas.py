"""Pragma parsing: ``# contracts: disable=RULE-ID -- justification``.

Two pragma forms are recognised, both *requiring* a justification after a
``--`` separator (a suppression whose reason is not recorded in the source is
itself a contract violation, reported as ``PRAGMA001`` and never honoured):

* line pragma — suppresses the listed rules on the physical line it sits on::

      if factor == 1.0:  # contracts: disable=API001 -- exact sentinel, set by us

* file pragma — suppresses the listed rules for the whole file; put it near
  the top of the module::

      # contracts: disable-file=DET002 -- phase-timing module, metadata only

Several rule ids may be listed, comma-separated.  Comments are extracted with
:mod:`tokenize`, so ``contracts:`` text inside string literals is ignored.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.contracts.findings import Finding

__all__ = ["FilePragmas", "Pragma", "PRAGMA_RULE_ID", "parse_pragmas"]

#: Meta rule id of malformed / unjustified pragmas (not disableable).
PRAGMA_RULE_ID = "PRAGMA001"

#: A comment mentioning the analyzer at all — used to catch malformed pragmas.
_MENTION = re.compile(r"#\s*contracts\s*:")

_PRAGMA = re.compile(
    r"#\s*contracts\s*:\s*(?P<kind>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
    r"(?:\s*--\s*(?P<why>.*\S))?\s*$"
)


@dataclass(frozen=True)
class Pragma:
    """One parsed pragma comment."""

    line: int
    kind: str  # "disable" | "disable-file"
    rule_ids: tuple[str, ...]
    justification: str | None


@dataclass
class FilePragmas:
    """All pragmas of one file, indexed for the engine.

    ``line_disables`` maps ``(line, rule_id)`` to the justified pragma
    covering it; ``file_disables`` maps ``rule_id`` to a justified whole-file
    pragma.  ``problems`` holds the ``PRAGMA001`` findings of malformed or
    unjustified pragmas (which are never honoured).
    """

    line_disables: dict[tuple[int, str], Pragma] = field(default_factory=dict)
    file_disables: dict[str, Pragma] = field(default_factory=dict)
    problems: list[Finding] = field(default_factory=list)

    def suppression_for(self, line: int, rule_id: str) -> Pragma | None:
        """The justified pragma covering ``rule_id`` at ``line``, if any."""
        pragma = self.line_disables.get((line, rule_id))
        if pragma is not None:
            return pragma
        return self.file_disables.get(rule_id)


def _iter_comments(source: str) -> list[tuple[int, int, str]]:
    """``(line, column, text)`` of every comment token in ``source``."""
    comments: list[tuple[int, int, str]] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.start[1], token.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # The AST parse of the same file will report the syntax problem.
        pass
    return comments


def parse_pragmas(source: str, path: str, known_rule_ids: set[str]) -> FilePragmas:
    """Parse every contract pragma of ``source``.

    ``known_rule_ids`` validates the listed ids — a pragma naming an unknown
    rule is reported (it usually means a typo silently disabling nothing).
    """
    pragmas = FilePragmas()
    for line, column, text in _iter_comments(source):
        if not _MENTION.search(text):
            continue
        match = _PRAGMA.search(text)
        if match is None:
            pragmas.problems.append(
                Finding(
                    path=path,
                    line=line,
                    column=column,
                    rule_id=PRAGMA_RULE_ID,
                    message=(
                        "malformed contracts pragma (expected '# contracts: "
                        "disable=RULE-ID -- justification'): " + text.strip()
                    ),
                )
            )
            continue
        rule_ids = tuple(
            part.strip().upper() for part in match.group("rules").split(",")
        )
        justification = match.group("why")
        pragma = Pragma(
            line=line,
            kind=match.group("kind"),
            rule_ids=rule_ids,
            justification=justification,
        )
        unknown = [rule for rule in rule_ids if rule not in known_rule_ids]
        if unknown:
            pragmas.problems.append(
                Finding(
                    path=path,
                    line=line,
                    column=column,
                    rule_id=PRAGMA_RULE_ID,
                    message=(
                        "contracts pragma names unknown rule id(s) "
                        + ", ".join(sorted(unknown))
                    ),
                )
            )
            continue
        if not justification:
            pragmas.problems.append(
                Finding(
                    path=path,
                    line=line,
                    column=column,
                    rule_id=PRAGMA_RULE_ID,
                    message=(
                        "contracts pragma is missing its mandatory justification "
                        "('-- why the violation is acceptable'); the suppression "
                        "is not honoured"
                    ),
                )
            )
            continue
        if pragma.kind == "disable-file":
            for rule in rule_ids:
                pragmas.file_disables.setdefault(rule, pragma)
        else:
            for rule in rule_ids:
                pragmas.line_disables.setdefault((line, rule), pragma)
    return pragmas
