"""Report rendering: human-readable text and lossless JSON.

The JSON form is the CI artifact (``--format json``): it round-trips through
:func:`report_from_json` without loss, so suppression inventories and finding
trends can be diffed across runs.  Keys are emitted sorted and findings are
already in canonical order, making the document byte-deterministic for a
given tree.
"""

from __future__ import annotations

import json

from repro.contracts.findings import Report

__all__ = ["render_human", "render_json", "report_from_json"]


def render_human(report: Report, verbose: bool = False) -> str:
    """Plain-text report: one ``path:line:col: RULE message`` line per finding."""
    lines: list[str] = []
    for finding in report.findings:
        lines.append(f"{finding.location()}: {finding.rule_id} {finding.message}")
    if verbose and report.suppressed:
        lines.append("")
        lines.append(f"suppressed by justified pragmas ({len(report.suppressed)}):")
        for finding in report.suppressed:
            lines.append(
                f"  {finding.location()}: {finding.rule_id} -- {finding.justification}"
            )
    lines.append("")
    lines.append(
        f"{len(report.findings)} finding(s), {len(report.suppressed)} suppressed, "
        f"{report.n_files} file(s) analyzed"
    )
    return "\n".join(lines).lstrip("\n")


def render_json(report: Report) -> str:
    """The lossless JSON document of ``report`` (sorted keys, 2-space indent)."""
    return json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n"


def report_from_json(text: str) -> Report:
    """Inverse of :func:`render_json`."""
    return Report.from_dict(json.loads(text))
