"""Analysis engine: file walking, per-file visitor dispatch, suppression.

The engine parses each Python file once, builds a :class:`ModuleContext`
(AST, parent links, resolved import aliases, pragma index, module name) and
walks the tree a single time, dispatching every node to the rules that
registered interest in its type — the per-file visitor-dispatch pattern that
keeps a growing rule battery at one AST traversal per file.

Determinism contract of the analyzer itself: files are analysed in sorted
display-path order and findings are sorted by ``(path, line, column, rule
id, message)``, so the report is byte-identical regardless of filesystem walk
order or the order paths are passed in.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Protocol, Sequence, runtime_checkable

from repro.contracts.findings import Finding, Report
from repro.contracts.pragmas import FilePragmas, parse_pragmas

__all__ = [
    "ModuleContext",
    "Rule",
    "analyze_paths",
    "analyze_source",
    "iter_python_files",
    "module_name_for",
    "resolved_call_name",
]

#: Meta rule id of files the parser rejects (not disableable).
PARSE_RULE_ID = "PARSE001"

#: Directory names whose contents are never analysed.
_SKIPPED_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache", "results"}

#: Path parts marking measurement / test code, exempt from the library rules.
_TEST_PARTS = {"tests", "benchmarks"}


@runtime_checkable
class Rule(Protocol):
    """The contract every analyzer rule implements.

    ``rule_id`` / ``title`` identify the rule in reports; ``node_types`` are
    the AST node classes the engine dispatches to :meth:`visit_node`.
    :meth:`applies_to` is consulted once per file — rules scope themselves to
    packages / module families there.
    """

    rule_id: str
    title: str
    node_types: tuple[type, ...]

    def applies_to(self, context: "ModuleContext") -> bool:
        """Whether this rule runs on ``context``'s file at all."""
        ...

    def visit_node(self, node: ast.AST, context: "ModuleContext") -> Iterable[Finding]:
        """Findings of one dispatched node (empty iterable when clean)."""
        ...


@dataclass
class ModuleContext:
    """Everything a rule may need about the file under analysis."""

    path: Path
    display_path: str
    module: str | None
    source: str
    tree: ast.Module
    lines: list[str]
    pragmas: FilePragmas
    is_test_code: bool
    #: import alias -> fully qualified module/name ("np" -> "numpy",
    #: "default_rng" -> "numpy.random.default_rng").
    imports: dict[str, str] = field(default_factory=dict)
    #: child AST node -> parent AST node (for scope walking).
    parents: dict[ast.AST, ast.AST] = field(default_factory=dict)

    def finding(self, node: ast.AST, rule_id: str, message: str) -> Finding:
        """A finding anchored at ``node``'s location in this file."""
        return Finding(
            path=self.display_path,
            line=int(getattr(node, "lineno", 1)),
            column=int(getattr(node, "col_offset", 0)),
            rule_id=rule_id,
            message=message,
        )

    def enclosing_functions(self, node: ast.AST) -> list[ast.AST]:
        """Enclosing function defs of ``node``, innermost first."""
        stack: list[ast.AST] = []
        current = self.parents.get(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                stack.append(current)
            current = self.parents.get(current)
        return stack

    def module_calls(self, qualified_name: str) -> bool:
        """Whether any call in the file resolves to ``qualified_name``."""
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Call):
                if resolved_call_name(node, self) == qualified_name:
                    return True
        return False


def module_name_for(path: Path) -> str | None:
    """Dotted module name of ``path``, best effort.

    Uses the last ``src`` directory on the path as the import root, falling
    back to the last ``repro`` package directory, then to the bare stem.
    ``__init__`` / ``__main__`` resolve to their package.
    """
    parts = list(path.parts)
    stem = path.stem
    if "src" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("src")
        dotted = parts[anchor + 1 : -1]
    elif "repro" in parts[:-1]:
        anchor = len(parts) - 1 - parts[:-1][::-1].index("repro")
        dotted = parts[anchor:-1]
    else:
        dotted = []
    if stem not in ("__init__", "__main__"):
        dotted = list(dotted) + [stem]
    return ".".join(dotted) if dotted else None


def _display_path(path: Path) -> str:
    """Stable, POSIX-separated display path (relative to cwd when inside)."""
    resolved = path.resolve()
    try:
        return resolved.relative_to(Path.cwd()).as_posix()
    except ValueError:
        return resolved.as_posix()


def iter_python_files(paths: Sequence[Path | str]) -> list[Path]:
    """Every ``.py`` file under ``paths``, deduplicated and sorted.

    Sorting happens on the display path, which is what makes the report
    independent of ``os.walk`` ordering and of the order ``paths`` are given.
    """
    found: dict[str, Path] = {}
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py":
                found[_display_path(path)] = path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = [d for d in dirnames if d not in _SKIPPED_DIRS]
            for filename in filenames:
                if filename.endswith(".py"):
                    file_path = Path(dirpath) / filename
                    found[_display_path(file_path)] = file_path
    return [found[key] for key in sorted(found)]


def _build_imports(tree: ast.Module) -> dict[str, str]:
    """Alias table of every ``import`` / ``from ... import`` in the file."""
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                table[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname:
                    table[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                table[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return table


def _dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for Name/Attribute chains, else ``None``."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def resolved_call_name(call: ast.Call, context: ModuleContext) -> str | None:
    """Fully qualified name of ``call``'s callee, through the import aliases.

    ``np.random.default_rng(...)`` resolves to
    ``numpy.random.default_rng`` whatever numpy was imported as; a bare
    ``default_rng(...)`` resolves through its ``from numpy.random import
    default_rng`` alias.  Unresolvable callees (attribute chains rooted at a
    local object) return the syntactic dotted name, or ``None``.
    """
    dotted = _dotted_name(call.func)
    if dotted is None:
        return None
    root, _, rest = dotted.partition(".")
    target = context.imports.get(root)
    if target is None:
        return dotted
    return f"{target}.{rest}" if rest else target


def _build_parents(tree: ast.Module) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return parents


def _is_test_code(path: Path) -> bool:
    parts = set(path.parts)
    return bool(parts & _TEST_PARTS) or path.name == "conftest.py"


def build_context(
    source: str,
    path: Path,
    display_path: str,
    known_rule_ids: set[str],
) -> ModuleContext | Finding:
    """Parse ``source`` into a :class:`ModuleContext` (or a PARSE001 finding)."""
    try:
        tree = ast.parse(source, filename=display_path)
    except SyntaxError as error:
        return Finding(
            path=display_path,
            line=int(error.lineno or 1),
            column=int(error.offset or 0),
            rule_id=PARSE_RULE_ID,
            message=f"file cannot be parsed: {error.msg}",
        )
    return ModuleContext(
        path=path,
        display_path=display_path,
        module=module_name_for(path),
        source=source,
        tree=tree,
        lines=source.splitlines(),
        pragmas=parse_pragmas(source, display_path, known_rule_ids),
        is_test_code=_is_test_code(path),
        imports=_build_imports(tree),
        parents=_build_parents(tree),
    )


def _run_rules(context: ModuleContext, rules: Sequence[Rule]) -> list[Finding]:
    """One AST walk, dispatching each node to the interested rules."""
    dispatch: dict[type, list[Rule]] = {}
    for rule in rules:
        if not rule.applies_to(context):
            continue
        for node_type in rule.node_types:
            dispatch.setdefault(node_type, []).append(rule)
    if not dispatch:
        return []
    findings: list[Finding] = []
    for node in ast.walk(context.tree):
        for rule in dispatch.get(type(node), ()):
            findings.extend(rule.visit_node(node, context))
    return findings


def _apply_pragmas(
    findings: list[Finding], pragmas: FilePragmas
) -> tuple[list[Finding], list[Finding]]:
    """Split raw findings into (active, suppressed) under the file's pragmas."""
    active: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in findings:
        pragma = pragmas.suppression_for(finding.line, finding.rule_id)
        if pragma is None:
            active.append(finding)
        else:
            suppressed.append(
                Finding(
                    path=finding.path,
                    line=finding.line,
                    column=finding.column,
                    rule_id=finding.rule_id,
                    message=finding.message,
                    suppressed=True,
                    justification=pragma.justification,
                )
            )
    return active, suppressed


def analyze_source(
    source: str,
    path: Path | str,
    rules: Sequence[Rule],
    display_path: str | None = None,
) -> tuple[list[Finding], list[Finding]]:
    """Analyze one in-memory source: ``(active, suppressed)`` findings.

    The unit the tests exercise directly; :func:`analyze_paths` is a sorted
    fold of this over a file set.
    """
    path = Path(path)
    display = display_path if display_path is not None else _display_path(path)
    known = {rule.rule_id for rule in rules}
    context = build_context(source, path, display, known)
    if isinstance(context, Finding):
        return [context], []
    findings = _run_rules(context, rules)
    active, suppressed = _apply_pragmas(findings, context.pragmas)
    # Pragma problems (missing justification, unknown ids, bad syntax) are
    # findings in their own right and can never be pragma'd away.
    active.extend(context.pragmas.problems)
    return active, suppressed


def analyze_paths(paths: Sequence[Path | str], rules: Sequence[Rule]) -> Report:
    """Analyze every Python file under ``paths`` into a :class:`Report`."""
    files = iter_python_files(paths)
    all_active: list[Finding] = []
    all_suppressed: list[Finding] = []
    for file_path in files:
        source = file_path.read_text(encoding="utf-8")
        active, suppressed = analyze_source(source, file_path, rules)
        all_active.extend(active)
        all_suppressed.extend(suppressed)
    return Report(
        findings=tuple(all_active),
        suppressed=tuple(all_suppressed),
        n_files=len(files),
        rule_ids=tuple(sorted(rule.rule_id for rule in rules)),
    )
