"""``python -m repro.contracts`` — command-line entry point."""

import sys

from repro.contracts.cli import main

if __name__ == "__main__":
    sys.exit(main())
