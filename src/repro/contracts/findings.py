"""Finding and report value objects of the contract analyzer.

A :class:`Finding` is one rule violation at one source location.  Findings are
plain frozen dataclasses with a lossless dict/JSON representation
(:meth:`Finding.to_dict` / :meth:`Finding.from_dict`) so reports can be
archived as CI artifacts and diffed across runs.  A :class:`Report` aggregates
the findings of one analysis run, split into *active* findings (which gate the
exit code) and *suppressed* ones (disabled by a justified pragma — kept in the
report so the suppression inventory stays inspectable).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Finding", "Report"]


@dataclass(frozen=True)
class Finding:
    """One contract violation (or suppressed violation) at one location.

    Parameters
    ----------
    path:
        Display path of the offending file (POSIX separators; stable across
        filesystem walk order).
    line, column:
        1-based line and 0-based column of the offending node.
    rule_id:
        Identifier of the violated rule (``DET001`` ... ``API001``, or the
        built-in ``PRAGMA001`` / ``PARSE001`` meta rules).
    message:
        Human-readable description of the violation.
    suppressed:
        Whether a justified ``# contracts: disable=`` pragma covers the
        finding (suppressed findings do not gate the exit code).
    justification:
        The pragma's mandatory justification text (suppressed findings only).
    """

    path: str
    line: int
    column: int
    rule_id: str
    message: str
    suppressed: bool = False
    justification: str | None = None

    def sort_key(self) -> tuple:
        """Canonical report order: (path, line, column, rule, message)."""
        return (self.path, self.line, self.column, self.rule_id, self.message)

    def to_dict(self) -> dict:
        """Lossless plain-dict form (JSON-serialisable)."""
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule_id": self.rule_id,
            "message": self.message,
            "suppressed": self.suppressed,
            "justification": self.justification,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Finding":
        """Inverse of :meth:`to_dict`."""
        return cls(
            path=str(payload["path"]),
            line=int(payload["line"]),
            column=int(payload["column"]),
            rule_id=str(payload["rule_id"]),
            message=str(payload["message"]),
            suppressed=bool(payload.get("suppressed", False)),
            justification=payload.get("justification"),
        )

    def location(self) -> str:
        """``path:line:column`` prefix used by the human reporter."""
        return f"{self.path}:{self.line}:{self.column}"


@dataclass(frozen=True)
class Report:
    """The outcome of one analysis run.

    ``findings`` are the active (gating) violations, ``suppressed`` the
    pragma-disabled ones; both are stored in canonical sort order.
    """

    findings: tuple[Finding, ...] = ()
    suppressed: tuple[Finding, ...] = ()
    n_files: int = 0
    rule_ids: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "findings", tuple(sorted(self.findings, key=Finding.sort_key))
        )
        object.__setattr__(
            self, "suppressed", tuple(sorted(self.suppressed, key=Finding.sort_key))
        )
        object.__setattr__(self, "rule_ids", tuple(self.rule_ids))

    @property
    def exit_code(self) -> int:
        """Process exit code: 0 when no active finding remains."""
        return 0 if not self.findings else 1

    def to_dict(self) -> dict:
        """Lossless plain-dict form (JSON-serialisable)."""
        return {
            "version": 1,
            "n_files": self.n_files,
            "rule_ids": list(self.rule_ids),
            "findings": [finding.to_dict() for finding in self.findings],
            "suppressed": [finding.to_dict() for finding in self.suppressed],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Report":
        """Inverse of :meth:`to_dict`."""
        return cls(
            findings=tuple(Finding.from_dict(f) for f in payload.get("findings", [])),
            suppressed=tuple(
                Finding.from_dict(f) for f in payload.get("suppressed", [])
            ),
            n_files=int(payload.get("n_files", 0)),
            rule_ids=tuple(str(r) for r in payload.get("rule_ids", [])),
        )
