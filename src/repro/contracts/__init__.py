"""Static determinism / fork-safety contract analyzer.

The library's core promise — bit-identical solutions for any worker count,
pool size or backend (the deterministic-reduction contract of
:mod:`repro.parallel.block_backend`) — rests on a handful of coding
invariants that the runtime golden/hypothesis suites can only *sample*:

* no unseeded randomness in library code (**DET001**),
* no wall-clock or entropy sources inside the numeric packages — timing goes
  through the sanctioned :func:`repro.timing.wall_clock` facade (**DET002**),
* no accumulation over unordered (dict/set) iteration in the operator /
  matvec modules, where summation order is the determinism contract itself
  (**DET003**),
* every long-lived :class:`threading.Lock` re-armed after ``fork()`` the way
  :mod:`repro.bem.geometry_cache` does (**FORK001**),
* worker tasks dispatched to :class:`~repro.parallel.pool.WorkerPool` /
  :meth:`~repro.parallel.executor.ScheduledExecutor.run_partition` must be
  module-level callables, never closures (**MSG001**),
* no exact floating-point ``==`` / ``!=`` outside tests (**API001**).

:mod:`repro.contracts` enforces them *statically*, at CI time, over the whole
tree: an AST pass with a :class:`~repro.contracts.engine.Rule` battery,
``# contracts: disable=RULE-ID -- justification`` pragmas (the justification
is mandatory), JSON + human reporters and exit-code gating::

    python -m repro.contracts check src

The analyzer itself honours the determinism contract: findings are reported
sorted by ``(path, line, column, rule id)`` regardless of filesystem walk
order or the order paths are given in.
"""

from __future__ import annotations

from repro.contracts.engine import ModuleContext, Rule, analyze_paths, analyze_source
from repro.contracts.findings import Finding, Report
from repro.contracts.report import render_human, render_json, report_from_json
from repro.contracts.rules import default_rules

__all__ = [
    "Finding",
    "ModuleContext",
    "Report",
    "Rule",
    "analyze_paths",
    "analyze_source",
    "default_rules",
    "render_human",
    "render_json",
    "report_from_json",
]
