"""Resilience rule: RES001 (worker channels must be timeout-guarded).

The fault-tolerance layer of :mod:`repro.parallel` only works if no code
path can block forever on a dead or hung peer.  The enforceable invariant:
every inter-process channel read in the parallel package goes through the
deadline-aware helpers of :mod:`repro.resilience.channel`
(:func:`~repro.resilience.channel.recv_message`,
:func:`~repro.resilience.channel.recv_ready`,
:func:`~repro.resilience.channel.wait_readable`), never through a bare
``Connection.recv()`` or an untimed ``multiprocessing.connection.wait()``.
The same rule bans ``except: pass`` / ``except Exception: pass`` handlers in
the package — a swallowed worker error turns a diagnosable fault into a
silent hang, which is exactly what the resilience layer exists to prevent.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.contracts.engine import ModuleContext, resolved_call_name
from repro.contracts.findings import Finding
from repro.contracts.rules import ContractRule

__all__ = ["ResilientChannelRule"]

#: Package whose channel reads must be deadline-aware.
_SCOPE_PREFIX = "repro.parallel"

#: Fully qualified names of the untimed multi-connection wait.
_WAIT_NAMES = {"multiprocessing.connection.wait"}

#: Exception names an except-and-ignore handler is never allowed to catch.
_BLANKET_EXCEPTIONS = {"Exception", "BaseException"}


def _is_blanket_handler(handler: ast.ExceptHandler) -> bool:
    """Whether ``handler`` catches everything (bare / Exception / BaseException)."""
    if handler.type is None:
        return True
    if isinstance(handler.type, ast.Name):
        return handler.type.id in _BLANKET_EXCEPTIONS
    if isinstance(handler.type, ast.Tuple):
        return any(
            isinstance(item, ast.Name) and item.id in _BLANKET_EXCEPTIONS
            for item in handler.type.elts
        )
    return False


class ResilientChannelRule(ContractRule):
    """RES001 — no unbounded channel reads or swallowed errors in the pool.

    Three patterns are flagged inside :mod:`repro.parallel`:

    * ``connection.recv()`` — blocks forever on a hung peer; route the read
      through :func:`repro.resilience.channel.recv_message` (deadline poll
      loop) or :func:`~repro.resilience.channel.recv_ready` (post-``wait``
      drain of an already-readable connection);
    * ``multiprocessing.connection.wait(...)`` without a ``timeout=`` —
      same unbounded block across many connections; use
      :func:`repro.resilience.channel.wait_readable`, whose timeout is
      mandatory;
    * ``except``/``except Exception``/``except BaseException`` whose body is
      a single ``pass`` — swallowing an unexpected worker error converts a
      diagnosable crash into a silent hang or a wrong result.
    """

    rule_id = "RES001"
    title = "parallel channel reads must carry deadlines (no swallowed errors)"
    node_types = (ast.Call, ast.ExceptHandler)

    def applies_to(self, context: ModuleContext) -> bool:
        if context.is_test_code:
            return False
        module = context.module or ""
        return module == _SCOPE_PREFIX or module.startswith(_SCOPE_PREFIX + ".")

    def visit_node(self, node: ast.AST, context: ModuleContext) -> Iterable[Finding]:
        if isinstance(node, ast.ExceptHandler):
            yield from self._visit_handler(node, context)
            return
        assert isinstance(node, ast.Call)
        callee = node.func
        if isinstance(callee, ast.Attribute) and callee.attr == "recv":
            yield self.found(
                context,
                node,
                "bare Connection.recv() blocks forever on a hung or dead "
                "peer; read through repro.resilience.channel.recv_message "
                "(deadline poll loop) or recv_ready (post-wait drain)",
            )
            return
        name = resolved_call_name(node, context)
        if name in _WAIT_NAMES and not any(
            keyword.arg == "timeout" for keyword in node.keywords
        ):
            yield self.found(
                context,
                node,
                "multiprocessing.connection.wait() without timeout= blocks "
                "forever when every worker hangs; use "
                "repro.resilience.channel.wait_readable (mandatory timeout)",
            )

    def _visit_handler(
        self, handler: ast.ExceptHandler, context: ModuleContext
    ) -> Iterable[Finding]:
        if not _is_blanket_handler(handler):
            return
        if len(handler.body) == 1 and isinstance(handler.body[0], ast.Pass):
            caught = "bare except" if handler.type is None else "except Exception"
            yield self.found(
                context,
                handler,
                f"{caught}: pass in the parallel package swallows worker "
                "errors, turning diagnosable faults into silent hangs; "
                "handle, record on PoolHealth, or re-raise",
            )
