"""API rule: API001 — no exact floating-point equality outside tests.

``x == 0.0`` on computed floats is almost always a latent bug: whether it
holds depends on reduction order, compiler flags and backend — exactly the
degrees of freedom the determinism contract pins down elsewhere.  Library
code must compare with an explicit tolerance (``np.isclose``,
``abs(a - b) <= tol``); the rare *exact-contract* sites (sentinels the code
itself assigned, never computed) carry a justified
``# contracts: disable=API001`` pragma instead.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.contracts.engine import ModuleContext
from repro.contracts.findings import Finding
from repro.contracts.rules import ContractRule

__all__ = ["ExactFloatComparisonRule"]


def _is_float_expression(node: ast.AST) -> bool:
    """Whether ``node`` is syntactically a float value.

    Conservative on purpose: only float literals (possibly signed), ``float``
    / ``np.float64`` / ``np.float32`` conversions and ``float("inf")``-style
    constants are recognised — names and attribute loads stay unflagged, so
    the rule has no false positives on integer or enum comparisons.
    """
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_float_expression(node.operand)
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id == "float":
            return True
        if isinstance(func, ast.Attribute) and func.attr in ("float64", "float32"):
            return True
    return False


class ExactFloatComparisonRule(ContractRule):
    """API001 — flag ``==`` / ``!=`` against floating-point values."""

    rule_id = "API001"
    title = "no exact floating-point ==/!= outside tests"
    node_types = (ast.Compare,)

    def applies_to(self, context: ModuleContext) -> bool:
        if context.is_test_code or context.module is None:
            return False
        return context.module == "repro" or context.module.startswith("repro.")

    def visit_node(self, node: ast.Compare, context: ModuleContext) -> Iterable[Finding]:
        operands = [node.left, *node.comparators]
        for index, operator in enumerate(node.ops):
            if not isinstance(operator, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[index], operands[index + 1]
            if _is_float_expression(left) or _is_float_expression(right):
                symbol = "==" if isinstance(operator, ast.Eq) else "!="
                yield self.found(
                    context,
                    node,
                    f"exact floating-point '{symbol}' comparison: use np.isclose "
                    "or an explicit tolerance, or pragma the site if it compares "
                    "an exact sentinel the code itself assigned",
                )
                return
