"""Determinism rules: DET001 (RNG), DET002 (wall clock), DET003 (reductions).

These encode the invariants behind the deterministic-reduction contract: the
numeric pipeline must be a pure function of its inputs (no entropy, no
clock-dependent values feeding results) and every floating-point reduction
must run in a canonical order (the pairwise tree-sum of
:func:`repro.parallel.block_backend.pairwise_tree_sum`), because summation
order is exactly what the bit-identical-for-any-worker-count promise pins
down.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.contracts.engine import ModuleContext, resolved_call_name
from repro.contracts.findings import Finding
from repro.contracts.rules import ContractRule

__all__ = ["AccumulationOrderRule", "UnseededRandomRule", "WallClockRule"]


def _first_argument(call: ast.Call) -> ast.AST | None:
    if call.args:
        return call.args[0]
    return None


def _is_none(node: ast.AST | None) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


class UnseededRandomRule(ContractRule):
    """DET001 — no unseeded randomness in library code.

    Flags the legacy module-level ``numpy.random`` samplers (they draw from
    hidden global state), ``default_rng()`` / ``RandomState()`` without an
    explicit seed, the stdlib ``random`` module samplers and
    ``random.SystemRandom`` (OS entropy).  Test and benchmark code is exempt;
    library code must thread an explicitly seeded generator.
    """

    rule_id = "DET001"
    title = "no unseeded randomness outside tests/ and benchmarks/"
    node_types = (ast.Call,)

    #: numpy.random attributes that are fine to call (seedable constructors
    #: and state plumbing) — everything else on the module is a global-state
    #: sampler.
    _NUMPY_ALLOWED = {"default_rng", "Generator", "RandomState", "SeedSequence"}
    #: seedable constructors checked for a missing/None seed argument.
    _SEEDABLE = {"numpy.random.default_rng", "numpy.random.RandomState"}
    _STDLIB_SAMPLERS = {
        "betavariate", "choice", "choices", "expovariate", "gauss",
        "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
        "randbytes", "randint", "random", "randrange", "sample", "seed",
        "shuffle", "triangular", "uniform", "vonmisesvariate",
        "weibullvariate",
    }  # fmt: skip

    def visit_node(self, node: ast.Call, context: ModuleContext) -> Iterable[Finding]:
        name = resolved_call_name(node, context)
        if name is None:
            return
        if name in self._SEEDABLE:
            seed = _first_argument(node)
            if seed is None:
                for keyword in node.keywords:
                    if keyword.arg == "seed":
                        seed = keyword.value
                        break
            if seed is None or _is_none(seed):
                yield self.found(
                    context,
                    node,
                    f"{name.rsplit('.', 1)[-1]}() without an explicit seed is "
                    "nondeterministic; thread a seeded generator instead",
                )
            return
        if name.startswith("numpy.random."):
            attribute = name.rsplit(".", 1)[-1]
            if attribute not in self._NUMPY_ALLOWED:
                yield self.found(
                    context,
                    node,
                    f"module-level numpy.random.{attribute}() draws from hidden "
                    "global state; use an explicitly seeded "
                    "numpy.random.default_rng(seed)",
                )
            return
        root, _, attribute = name.partition(".")
        if root == "random" and context.imports.get("random") == "random":
            if attribute in self._STDLIB_SAMPLERS:
                yield self.found(
                    context,
                    node,
                    f"stdlib random.{attribute}() draws from hidden global state; "
                    "use an explicitly seeded generator",
                )
            elif attribute == "SystemRandom":
                yield self.found(
                    context,
                    node,
                    "random.SystemRandom draws OS entropy and can never be "
                    "seeded; results would be irreproducible",
                )


class WallClockRule(ContractRule):
    """DET002 — no wall-clock / entropy sources inside the numeric packages.

    Within ``repro.bem``, ``repro.cluster``, ``repro.kernels`` and
    ``repro.parallel``, calls to the clock and entropy primitives are
    forbidden: a clock-dependent value that leaks into a numeric result (or
    into work partitioning) silently breaks the bit-identical contract.
    Observability timing goes through the sanctioned facade
    :func:`repro.timing.wall_clock`; the measurement module
    ``repro.parallel.speedup``, ``repro.timing`` itself and benchmarks are
    allowlisted (``repro.parallel.timing`` is a pure re-export shim of
    ``repro.timing`` and needs no allowance of its own).
    """

    rule_id = "DET002"
    title = "no wall-clock/entropy sources inside numeric packages"
    node_types = (ast.Call,)

    SCOPED_PACKAGES = ("repro.bem", "repro.cluster", "repro.kernels", "repro.parallel")
    ALLOWED_MODULES = ("repro.parallel.speedup", "repro.timing")

    _FORBIDDEN = {
        "time.time", "time.time_ns", "time.perf_counter", "time.perf_counter_ns",
        "time.monotonic", "time.monotonic_ns", "time.process_time",
        "time.process_time_ns", "time.clock_gettime", "time.clock_gettime_ns",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
        "os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4",
        "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
        "secrets.randbelow", "secrets.choice",
    }  # fmt: skip

    def applies_to(self, context: ModuleContext) -> bool:
        if context.is_test_code or context.module is None:
            return False
        if context.module in self.ALLOWED_MODULES:
            return False
        return any(
            context.module == package or context.module.startswith(package + ".")
            for package in self.SCOPED_PACKAGES
        )

    def visit_node(self, node: ast.Call, context: ModuleContext) -> Iterable[Finding]:
        name = resolved_call_name(node, context)
        if name in self._FORBIDDEN:
            yield self.found(
                context,
                node,
                f"{name}() inside numeric package {context.module}: clock/entropy "
                "values must not exist where they could feed results; route "
                "observability timing through repro.timing.wall_clock()",
            )


def _is_unordered_iterable(node: ast.AST) -> str | None:
    """A label when ``node`` iterates in dict/set (unordered-contract) order."""
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "values",
            "items",
            "keys",
        ):
            return f"dict .{node.func.attr}()"
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return node.func.id + "(...)"
    if isinstance(node, ast.SetComp):
        return "set comprehension"
    if isinstance(node, ast.Set):
        return "set literal"
    return None


class AccumulationOrderRule(ContractRule):
    """DET003 — canonical accumulation order in operator/matvec modules.

    In the modules whose floating-point summation order *is* the determinism
    contract (the hierarchical operator and the sharded block backend), flags
    ``sum()`` over dict/set iteration, ``+=`` accumulation inside loops over
    dict/set iteration, and ``numpy.add.reduce`` — all of which tie the
    result to insertion/hash order or to a non-canonical reduction tree.
    Reductions there must run over explicitly ordered sequences, pairwise via
    :func:`repro.parallel.block_backend.pairwise_tree_sum`.
    """

    rule_id = "DET003"
    title = "no accumulation over unordered iteration in operator/matvec modules"
    node_types = (ast.Call, ast.For)

    SCOPED_PREFIXES = ("repro.cluster",)
    SCOPED_MODULES = ("repro.parallel.block_backend", "repro.parallel.pool")

    def applies_to(self, context: ModuleContext) -> bool:
        if context.is_test_code or context.module is None:
            return False
        return context.module in self.SCOPED_MODULES or any(
            context.module == prefix or context.module.startswith(prefix + ".")
            for prefix in self.SCOPED_PREFIXES
        )

    def visit_node(self, node: ast.AST, context: ModuleContext) -> Iterable[Finding]:
        if isinstance(node, ast.Call):
            name = resolved_call_name(node, context)
            if name == "numpy.add.reduce":
                yield self.found(
                    context,
                    node,
                    "numpy.add.reduce applies a non-canonical reduction tree; "
                    "use pairwise_tree_sum (repro.parallel.block_backend) so the "
                    "summation order is part of the contract",
                )
                return
            if name == "sum" and node.args:
                target = node.args[0]
                if isinstance(target, (ast.GeneratorExp, ast.ListComp)):
                    target = target.generators[0].iter
                label = _is_unordered_iterable(target)
                if label is not None:
                    yield self.found(
                        context,
                        node,
                        f"sum() over {label} accumulates in dict/set order; "
                        "iterate an explicitly ordered sequence (sorted keys) "
                        "or reduce with pairwise_tree_sum",
                    )
            return
        # ast.For: += accumulation inside a loop over unordered iteration.
        assert isinstance(node, ast.For)
        label = _is_unordered_iterable(node.iter)
        if label is None:
            return
        for child in ast.walk(node):
            if isinstance(child, ast.AugAssign) and isinstance(child.op, ast.Add):
                yield self.found(
                    context,
                    child,
                    f"'+=' accumulation inside a loop over {label} depends on "
                    "dict/set order; iterate an explicitly ordered sequence or "
                    "reduce with pairwise_tree_sum",
                )
