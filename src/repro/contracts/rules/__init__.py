"""The contract-rule battery.

Every rule is a small stateless object implementing the
:class:`repro.contracts.engine.Rule` protocol; :func:`default_rules` returns
the battery the CLI, the CI job and the tier-1 self-check all run.  Rules are
grouped by the invariant family they encode:

* :mod:`repro.contracts.rules.determinism` — DET001 (unseeded RNG),
  DET002 (wall-clock / entropy sources in numeric packages),
  DET003 (accumulation over unordered iteration in operator/matvec modules);
* :mod:`repro.contracts.rules.concurrency` — FORK001 (module-lifetime locks
  without the ``os.register_at_fork`` re-arm), MSG001 (closures dispatched as
  worker tasks);
* :mod:`repro.contracts.rules.api` — API001 (exact floating-point
  ``==`` / ``!=``);
* :mod:`repro.contracts.rules.resilience` — RES001 (unbounded channel reads
  and except-and-ignore handlers in the parallel package);
* :mod:`repro.contracts.rules.observability` — OBS001 (ad-hoc phase-timing
  dicts instead of the ``repro.observe`` / ``repro.timing`` runtime).
"""

from __future__ import annotations

import ast
from typing import Iterable, Sequence

from repro.contracts.engine import ModuleContext, Rule
from repro.contracts.findings import Finding

__all__ = ["ContractRule", "default_rules", "rule_catalog"]


class ContractRule:
    """Convenience base: one-finding helper plus the default file scope.

    Subclasses set ``rule_id`` / ``title`` / ``node_types`` and implement
    :meth:`visit_node`; the default :meth:`applies_to` skips test and
    benchmark code (measurement code is allowed to time, seed ad hoc and
    compare exactly — it asserts the contracts rather than carrying them).
    """

    rule_id: str = ""
    title: str = ""
    node_types: tuple[type, ...] = ()

    def applies_to(self, context: ModuleContext) -> bool:
        return not context.is_test_code

    def visit_node(
        self, node: ast.AST, context: ModuleContext
    ) -> Iterable[Finding]:  # pragma: no cover - abstract
        raise NotImplementedError

    def found(self, context: ModuleContext, node: ast.AST, message: str) -> Finding:
        return context.finding(node, self.rule_id, message)


def default_rules() -> Sequence[Rule]:
    """The full battery, in rule-id order."""
    from repro.contracts.rules.api import ExactFloatComparisonRule
    from repro.contracts.rules.concurrency import ForkSafeLockRule, WorkerTaskPurityRule
    from repro.contracts.rules.determinism import (
        AccumulationOrderRule,
        UnseededRandomRule,
        WallClockRule,
    )
    from repro.contracts.rules.observability import PhaseBookkeepingRule
    from repro.contracts.rules.resilience import ResilientChannelRule

    return (
        UnseededRandomRule(),
        WallClockRule(),
        AccumulationOrderRule(),
        ForkSafeLockRule(),
        WorkerTaskPurityRule(),
        ExactFloatComparisonRule(),
        ResilientChannelRule(),
        PhaseBookkeepingRule(),
    )


def rule_catalog() -> list[tuple[str, str]]:
    """``(rule_id, title)`` of every default rule (for ``--list-rules``)."""
    return [(rule.rule_id, rule.title) for rule in default_rules()]
