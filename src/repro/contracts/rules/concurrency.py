"""Concurrency rules: FORK001 (fork-safe locks), MSG001 (worker-task purity).

Both encode invariants the worker-pool architecture depends on:

* the process backends ``fork()`` workers, and a ``threading.Lock`` held by
  another parent thread at fork time stays locked forever in the child —
  every module that creates locks outliving a function call must re-arm them
  with ``os.register_at_fork`` the way :mod:`repro.bem.geometry_cache` does;
* the worker protocol is pure message passing — the task callables are
  shipped (or inherited copy-on-write) once per assembly, so they must be
  module-level objects; a closure or lambda drags its enclosing frame (live
  operators, locks, open files) into the workers and breaks both
  picklability and the purity the bit-identical re-execution relies on.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.contracts.engine import ModuleContext, resolved_call_name
from repro.contracts.findings import Finding
from repro.contracts.rules import ContractRule

__all__ = ["ForkSafeLockRule", "WorkerTaskPurityRule"]

_LOCK_CONSTRUCTORS = {"threading.Lock", "threading.RLock"}
_REARM_HOOK = "os.register_at_fork"


class ForkSafeLockRule(ContractRule):
    """FORK001 — every lock-creating module must register a fork re-arm.

    A module that creates ``threading.Lock`` / ``threading.RLock`` objects
    (at module scope, class scope or as instance attributes) without calling
    ``os.register_at_fork`` anywhere in the same module is flagged at each
    creation site.  The check is per module on purpose: the re-arm handler
    must live next to the locks it resets (see
    ``repro.bem.geometry_cache._reset_locks_after_fork`` for the pattern —
    a ``weakref.WeakSet`` of instances whose locks the ``after_in_child``
    hook replaces).
    """

    rule_id = "FORK001"
    title = "locks require the os.register_at_fork re-arm pattern"
    node_types = (ast.Call,)

    def applies_to(self, context: ModuleContext) -> bool:
        if context.is_test_code:
            return False
        # One pass over the file decides everything: a module that registers
        # the re-arm hook is trusted to reset the locks it creates.
        return not context.module_calls(_REARM_HOOK)

    def visit_node(self, node: ast.Call, context: ModuleContext) -> Iterable[Finding]:
        name = resolved_call_name(node, context)
        if name in _LOCK_CONSTRUCTORS:
            yield self.found(
                context,
                node,
                f"{name}() created in a module without an os.register_at_fork "
                "re-arm: a lock held at fork time deadlocks the forked worker; "
                "register an after_in_child handler that replaces the module's "
                "locks (see repro.bem.geometry_cache)",
            )


#: Callees whose call sites dispatch task callables to worker processes.
_DISPATCH_ATTRIBUTES = {"run_partition", "submit"}
_DISPATCH_CONSTRUCTORS = {"ScheduledExecutor", "run_scheduled_tasks", "PoolJob"}
#: Keyword arguments that carry task callables at those sites.
_TASK_KEYWORDS = {"task", "task_fn", "batch_fn", "fn"}


class WorkerTaskPurityRule(ContractRule):
    """MSG001 — worker tasks must be module-level callables, not closures.

    At every dispatch site (``ScheduledExecutor(...)``,
    ``*.run_partition(...)``, ``*.submit(...)``, ``run_scheduled_tasks(...)``
    and every ``PoolJob(...)`` request yielded to a pool driver) the task/batch
    callables must not be lambdas or functions defined inside the enclosing
    function: such closures capture their defining frame — live operators,
    locks, open files — which the fork inherits invisibly and pickling
    rejects.  Ship module-level functions or instances of module-level task
    classes whose payloads are plain arrays/tuples/dataclasses (the runtime
    worker-pool suite asserts the payload side of the contract).
    """

    rule_id = "MSG001"
    title = "worker-task callables must be module-level (no closures)"
    node_types = (ast.Call,)

    def _candidate_arguments(self, call: ast.Call) -> list[ast.AST]:
        """The argument expressions that carry task callables, if this is a
        dispatch site (empty list otherwise)."""
        callee = call.func
        is_dispatch = False
        first_positional_is_task = False
        if isinstance(callee, ast.Attribute) and callee.attr in _DISPATCH_ATTRIBUTES:
            # pool.run_partition(task, shards, ...) passes the task first;
            # executor.run_partition(shards) carries callables only via
            # keywords.  Inspecting both stays correct because a plain
            # partition argument is neither a lambda nor a nested def.
            is_dispatch = True
            first_positional_is_task = True
        elif isinstance(callee, ast.Name) and callee.id in _DISPATCH_CONSTRUCTORS:
            is_dispatch = True
            first_positional_is_task = True
        if not is_dispatch:
            return []
        candidates: list[ast.AST] = []
        if first_positional_is_task and call.args:
            candidates.append(call.args[0])
        for keyword in call.keywords:
            if keyword.arg in _TASK_KEYWORDS:
                candidates.append(keyword.value)
        return candidates

    @staticmethod
    def _locally_defined(name: str, scopes: list[ast.AST]) -> bool:
        """Whether ``name`` is a function/lambda defined inside ``scopes``."""
        for scope in scopes:
            for node in ast.walk(scope):
                if (
                    isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and node is not scope
                    and node.name == name
                ):
                    return True
                if isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
                    for target in node.targets:
                        if isinstance(target, ast.Name) and target.id == name:
                            return True
        return False

    def visit_node(self, node: ast.Call, context: ModuleContext) -> Iterable[Finding]:
        candidates = self._candidate_arguments(node)
        if not candidates:
            return
        scopes = context.enclosing_functions(node)
        for argument in candidates:
            if isinstance(argument, ast.Lambda):
                yield self.found(
                    context,
                    argument,
                    "lambda dispatched as a worker task: closures capture their "
                    "frame and cannot cross the process boundary as pure "
                    "messages; define a module-level task callable",
                )
            elif isinstance(argument, ast.Name) and self._locally_defined(
                argument.id, scopes
            ):
                yield self.found(
                    context,
                    argument,
                    f"'{argument.id}' is defined inside the enclosing function "
                    "and dispatched as a worker task: move it (or a task class) "
                    "to module level so it is picklable and closure-free",
                )
