"""Observability rule: OBS001 (phase bookkeeping through the sanctioned layer).

PR after PR, elapsed-time bookkeeping used to accrete as hand-rolled dicts:
``timings = {...}`` literals seeded with ``*_seconds`` keys and
``timings["phase"] += wall_clock() - start`` deltas scattered through the
pipeline layers.  :mod:`repro.observe` (and the :class:`repro.timing.Timer` /
:class:`repro.timing.PhaseTimer` helpers) replaced that idiom with one
runtime; **OBS001** keeps it replaced by flagging the two shapes that start a
new ad-hoc accumulator inside ``repro.bem``, ``repro.cluster``,
``repro.solvers``, ``repro.parallel`` and ``repro.campaign``:

* a dict *literal* assigned to a ``timings`` / ``stats`` / ``_stats`` /
  ``cache_stats`` name that already carries ``*_seconds`` keys — phase tables
  belong in a :class:`~repro.timing.PhaseTimer` (or a
  :class:`~repro.observe.MetricsRegistry`) so they export uniformly;
* an assignment (or ``+=``) into a subscript of one of those names — or into
  any ``...["*_seconds"]`` slot — whose right-hand side folds a
  :func:`repro.timing.wall_clock` call directly, i.e. raw
  ``d[k] = wall_clock() - start`` delta bookkeeping.

Measurement modules (``repro.parallel.speedup``) are allowlisted, and a
module that deliberately keeps a legacy stats payload can carry a
``# contracts: disable-file=OBS001 -- <why>`` pragma.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.contracts.engine import ModuleContext, resolved_call_name
from repro.contracts.findings import Finding
from repro.contracts.rules import ContractRule

__all__ = ["PhaseBookkeepingRule"]

#: Accumulator names whose dict literals / subscript stores are scrutinised.
_BOOKKEEPING_NAMES = ("timings", "stats", "_stats", "cache_stats")


def _target_name(node: ast.AST) -> str | None:
    """The bare name of an assignment target (``x`` or ``obj.x``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _seconds_key(node: ast.AST | None) -> bool:
    """Whether a dict key / subscript slice is a ``*_seconds`` string."""
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, str)
        and node.value.endswith("_seconds")
    )


class PhaseBookkeepingRule(ContractRule):
    """OBS001 — no new ad-hoc timing dicts outside ``repro.observe``."""

    rule_id = "OBS001"
    title = "phase/stat bookkeeping goes through repro.observe or repro.timing helpers"
    node_types = (ast.Assign, ast.AnnAssign, ast.AugAssign)

    SCOPED_PACKAGES = (
        "repro.bem",
        "repro.cluster",
        "repro.solvers",
        "repro.parallel",
        "repro.campaign",
    )
    ALLOWED_MODULES = ("repro.parallel.speedup",)

    def applies_to(self, context: ModuleContext) -> bool:
        if context.is_test_code or context.module is None:
            return False
        if context.module in self.ALLOWED_MODULES:
            return False
        return any(
            context.module == package or context.module.startswith(package + ".")
            for package in self.SCOPED_PACKAGES
        )

    def visit_node(self, node: ast.AST, context: ModuleContext) -> Iterable[Finding]:
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            yield from self._check_dict_literal(node, context)
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            yield from self._check_clock_delta(node, context)

    # -- finding 1: timing-table dict literals ------------------------------

    def _check_dict_literal(
        self, node: ast.Assign | ast.AnnAssign, context: ModuleContext
    ) -> Iterable[Finding]:
        value = node.value
        if not isinstance(value, ast.Dict):
            return
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        names = {_target_name(target) for target in targets}
        if not names.intersection(_BOOKKEEPING_NAMES):
            return
        if not any(_seconds_key(key) for key in value.keys):
            return
        yield self.found(
            context,
            node,
            "dict literal seeds an ad-hoc phase-timing table (*_seconds keys); "
            "accumulate through repro.timing.PhaseTimer or a repro.observe "
            "MetricsRegistry so timings export uniformly",
        )

    # -- finding 2: raw wall_clock deltas stored by subscript ---------------

    def _check_clock_delta(
        self,
        node: ast.Assign | ast.AnnAssign | ast.AugAssign,
        context: ModuleContext,
    ) -> Iterable[Finding]:
        targets: list[ast.expr] = (
            list(node.targets) if isinstance(node, ast.Assign) else [node.target]
        )
        value = node.value
        if value is None:  # annotation-only AnnAssign
            return
        for target in targets:
            if not isinstance(target, ast.Subscript):
                continue
            base = _target_name(target.value)
            if base not in _BOOKKEEPING_NAMES and not _seconds_key(target.slice):
                continue
            if not self._contains_clock_call(value, context):
                continue
            yield self.found(
                context,
                node,
                "raw wall_clock() delta folded straight into a bookkeeping "
                "dict; time the block with repro.timing.Timer/PhaseTimer or "
                "MetricsRegistry.timer() instead",
            )
            return

    #: Every import path the sanctioned clock facade is reachable under.
    _CLOCK_CALLS = frozenset(
        {
            "repro.timing.wall_clock",
            "repro.parallel.timing.wall_clock",
            "repro.observe.wall_clock",
        }
    )

    @classmethod
    def _contains_clock_call(cls, value: ast.AST, context: ModuleContext) -> bool:
        for child in ast.walk(value):
            if isinstance(child, ast.Call):
                name = resolved_call_name(child, context)
                if name in cls._CLOCK_CALLS:
                    return True
        return False
