"""Per-run provenance manifest written next to checkpoints and traces.

A :class:`RunManifest` records everything needed to say *what produced this
result*: the code version, the campaign's solver/tolerance/discretisation
knobs, the content fingerprints of every structure group (mesh digest, soil
model, the same blake2b fingerprints the campaign checkpoint keys on), the
final metric snapshot and the phase timings.  Fingerprint-keyed result
stores and trend-tracked BENCH comparisons both hang off this record: two
manifests with equal fingerprints describe the same numeric problem, so
their results are interchangeable and their timings comparable.

The manifest is plain sorted-key JSON — no clocks, no entropy — written by
:func:`repro.campaign.run_campaign` as ``<checkpoint>.manifest.json`` when
tracing is enabled, and by the ``--trace`` CLI path next to the trace file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro._version import __version__

__all__ = ["MANIFEST_FORMAT_VERSION", "RunManifest"]

#: Bump when the manifest schema changes shape.
#: v2 added the ``aggregate`` field: the per-span-name rollups of
#: :func:`repro.observe.analyze.aggregate_trace`, split deterministic vs
#: volatile.  Loading stays tolerant of v1 files (``aggregate`` -> {}).
MANIFEST_FORMAT_VERSION = 2


@dataclass
class RunManifest:
    """Provenance record of one campaign (or analysis) run."""

    #: What ran: campaign name, solver, tolerances, element/series knobs.
    run: dict[str, Any] = field(default_factory=dict)
    #: One entry per structure group: fingerprint, geometry, mesh digest, soil.
    groups: list[dict[str, Any]] = field(default_factory=list)
    #: Final :meth:`~repro.observe.metrics.MetricsRegistry.snapshot`.
    metrics: dict[str, Any] = field(default_factory=dict)
    #: Phase timings (seconds) of the run.
    timings: dict[str, float] = field(default_factory=dict)
    #: Trace shape: recorded span/event counts.
    trace: dict[str, int] = field(default_factory=dict)
    #: :func:`repro.observe.analyze.aggregate_trace` of the recorded trace
    #: ({"deterministic": ..., "volatile": ...}); empty for v1 manifests.
    aggregate: dict[str, Any] = field(default_factory=dict)
    code_version: str = __version__
    format_version: int = MANIFEST_FORMAT_VERSION

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready dict of the manifest."""
        return {
            "format_version": self.format_version,
            "code_version": self.code_version,
            "run": self.run,
            "groups": self.groups,
            "metrics": self.metrics,
            "timings": self.timings,
            "trace": self.trace,
            "aggregate": self.aggregate,
        }

    def write(self, path: Path | str) -> Path:
        """Write the manifest as sorted-key, indented JSON."""
        path = Path(path)
        path.write_text(
            json.dumps(self.as_dict(), sort_keys=True, indent=2, default=repr) + "\n",
            encoding="utf-8",
        )
        return path

    @classmethod
    def load(cls, path: Path | str) -> "RunManifest":
        """Read a manifest written by :meth:`write`."""
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        return cls(
            run=dict(data.get("run", {})),
            groups=list(data.get("groups", [])),
            metrics=dict(data.get("metrics", {})),
            timings=dict(data.get("timings", {})),
            trace=dict(data.get("trace", {})),
            aggregate=dict(data.get("aggregate", {})),
            code_version=str(data.get("code_version", "")),
            format_version=int(data.get("format_version", MANIFEST_FORMAT_VERSION)),
        )

    @staticmethod
    def path_for(anchor: Path | str) -> Path:
        """The conventional manifest path next to ``anchor`` (checkpoint/trace)."""
        anchor = Path(anchor)
        return anchor.with_name(anchor.name + ".manifest.json")
