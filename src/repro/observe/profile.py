"""Opt-in per-span resource profiling and pool utilization analytics.

Two consumers of one principle — resource numbers are **volatile**:

* :class:`ResourceProfiler` hooks a :class:`~repro.observe.trace.Tracer`
  (``Tracer(profile=...)``) and stamps every closed span with its process
  CPU seconds (:func:`repro.timing.cpu_clock`, the sanctioned facade) and
  its ``tracemalloc`` high-water mark.  Both land in the span's *volatile*
  payload, so the canonical projection — and every deterministic aggregate
  built on it — is byte-identical with or without profiling.  The default
  stays ``profile=None``: an unprofiled tracer pays one ``is not None``
  check per span, and the :data:`~repro.observe.trace.NULL_TRACER` path is
  untouched (the <2% ``bench_observe_overhead`` gate still holds).
* :func:`pool_utilization` derives per-worker busy/idle fractions, pool
  saturation and master-side dispatch gaps from the volatile
  ``pool.dispatch`` / ``pool.result`` events the :class:`WorkerPool`
  already records — no new instrumentation in the pool's hot loop.

Interleaved spans (concurrent structure groups record on branch tracers
that share one profiler) are handled without a strict stack: frames are
keyed by span identity, and a measured memory peak folds into *every*
currently open frame — any allocation observed during a span happened
while all open spans were open, so each enclosing phase's high-water mark
is correct.  CPU seconds of interleaved spans overlap by construction;
they are advisory wait-vs-compute indicators, never determinism inputs.
"""

from __future__ import annotations

import tracemalloc
from typing import Any, Sequence

from repro.observe.trace import Span
from repro.timing import cpu_clock

__all__ = ["ResourceProfiler", "pool_utilization"]


class ResourceProfiler:
    """Per-span CPU/memory accounting attached via ``Tracer(profile=...)``.

    ``cpu`` stamps ``cpu_seconds`` (process CPU time including children,
    like the wall duration); ``memory`` stamps ``mem_peak_kb`` (the
    ``tracemalloc`` high-water mark while the span was open).  The profiler
    starts ``tracemalloc`` on first use if nobody else did, and
    :meth:`close` stops it again only in that case.
    """

    def __init__(self, cpu: bool = True, memory: bool = True) -> None:
        self.cpu = bool(cpu)
        self.memory = bool(memory)
        self._frames: dict[int, list[float]] = {}  # id(span) -> [cpu0, peak]
        self._started_tracemalloc = False

    def _fold_peak(self, peak: float) -> None:
        for frame in self._frames.values():
            if peak > frame[1]:
                frame[1] = peak

    def enter(self, node: Span) -> None:
        """Open a frame for ``node`` (called by ``Tracer.span`` on entry)."""
        if self.memory:
            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._started_tracemalloc = True
            _, peak = tracemalloc.get_traced_memory()
            self._fold_peak(float(peak))
            tracemalloc.reset_peak()
        self._frames[id(node)] = [cpu_clock() if self.cpu else 0.0, 0.0]

    def exit(self, node: Span) -> None:
        """Close ``node``'s frame and stamp its volatile resource numbers."""
        frame = self._frames.pop(id(node), None)
        if frame is None:
            return
        if self.cpu:
            node.volatile["cpu_seconds"] = round(cpu_clock() - frame[0], 6)
        if self.memory and tracemalloc.is_tracing():
            _, peak = tracemalloc.get_traced_memory()
            peak = max(float(peak), frame[1])
            node.volatile["mem_peak_kb"] = round(peak / 1024.0, 3)
            self._fold_peak(peak)
            tracemalloc.reset_peak()

    def close(self) -> None:
        """Stop ``tracemalloc`` iff this profiler started it."""
        self._frames.clear()
        if self._started_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
        self._started_tracemalloc = False


def _chunk_intervals(
    roots: "Span | Sequence[Span]",
) -> list[tuple[int, float, float]]:
    """``(slot, dispatch_t, result_t)`` per completed chunk, dispatch order.

    Pairs the pool's volatile ``pool.dispatch`` / ``pool.result`` events on
    ``(slot, job)`` exactly like ``worker_timeline``; malformed events
    (missing or non-numeric coordinates) are skipped, never raised on.
    """
    if isinstance(roots, Span):
        roots = [roots]
    open_chunks: dict[tuple[int, int], float] = {}
    intervals: list[tuple[int, float, float]] = []
    for root in roots:
        for node in root.walk():
            if node.kind != "event":
                continue
            data = node.volatile
            try:
                key = (int(data["slot"]), int(data.get("job", -1)))
                t = float(data["t"])
            except (KeyError, TypeError, ValueError):
                continue
            if node.name == "pool.dispatch":
                open_chunks[key] = t
            elif node.name == "pool.result":
                start = open_chunks.pop(key, None)
                if start is not None:
                    intervals.append((key[0], start, t))
    return intervals


def pool_utilization(roots: "Span | Sequence[Span]") -> dict[str, Any]:
    """Busy/idle fractions, saturation and dispatch gaps per worker slot.

    Everything here is volatile — it describes this run's scheduling.  Per
    slot: busy seconds, idle seconds, utilization and the master-side
    *dispatch gap* (time from one chunk's result to the slot's next
    dispatch — how long the worker starved waiting for the master).
    ``saturation`` is the mean number of busy slots over the first-dispatch
    → last-result window divided by the slot count (1.0 = perfectly full
    pool).  Returns a zeroed shape for traces without pool events.
    """
    intervals = _chunk_intervals(roots)
    if not intervals:
        return {
            "span_seconds": 0.0,
            "n_slots": 0,
            "chunks": 0,
            "mean_concurrency": 0.0,
            "saturation": 0.0,
            "slots": {},
        }
    first = min(start for _, start, _ in intervals)
    last = max(end for _, _, end in intervals)
    span = max(last - first, 0.0)
    by_slot: dict[int, list[tuple[float, float]]] = {}
    for slot, start, end in intervals:
        by_slot.setdefault(slot, []).append((start, end))
    slots: dict[str, dict[str, float]] = {}
    total_busy = 0.0
    for slot in sorted(by_slot):
        windows = sorted(by_slot[slot])
        busy = sum(end - start for start, end in windows)
        total_busy += busy
        gaps = [
            max(windows[i + 1][0] - windows[i][1], 0.0)
            for i in range(len(windows) - 1)
        ]
        slots[str(slot)] = {
            "chunks": len(windows),
            "busy_seconds": busy,
            "idle_seconds": max(span - busy, 0.0),
            "utilization": (busy / span) if span > 0.0 else 0.0,
            "dispatch_gap_mean_seconds": (sum(gaps) / len(gaps)) if gaps else 0.0,
            "dispatch_gap_max_seconds": max(gaps) if gaps else 0.0,
        }
    n_slots = len(by_slot)
    mean_concurrency = (total_busy / span) if span > 0.0 else 0.0
    return {
        "span_seconds": span,
        "n_slots": n_slots,
        "chunks": len(intervals),
        "mean_concurrency": mean_concurrency,
        "saturation": (mean_concurrency / n_slots) if n_slots else 0.0,
        "slots": slots,
    }
