"""Run reports: aggregated trace + manifest rendered for terminals or CI.

``python -m repro report run.jsonl`` renders the attribution layer's view
of one recorded run — and, with ``--baseline``, of what changed since
another.  The report is laid out in two halves that mirror the payload
contract of the whole observe package:

* the **deterministic section** (:func:`deterministic_report_text`) —
  span rollups, attribute breakdown counts and, when a baseline is given,
  the structural diff.  Rendered purely from the canonical projection, so
  its bytes are identical for any pool worker count, any
  ``group_concurrency`` and any fault-recovered run of the same campaign
  (asserted by the golden suite);
* the **volatile section** — wall/self/p50/p95 duration rollups, worker
  utilization, event counts, resource stamps and the diff's wall-time
  attribution.  Honest run-dependent numbers, clearly labelled as such.

Both plain-text and Markdown renderings share the same row content; only
the table syntax differs, so the CI artifact and the terminal agree.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.observe.analyze import (
    DEFAULT_NOISE_FLOOR,
    aggregate_trace,
    diff_traces,
)
from repro.observe.profile import pool_utilization
from repro.observe.trace import Span

__all__ = ["deterministic_report_text", "render_report"]


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return format(value, ".6g")
    return str(value)


def _table(header: list[str], rows: list[list[Any]], markdown: bool) -> list[str]:
    cells = [[_fmt(cell) for cell in row] for row in rows]
    if markdown:
        lines = ["| " + " | ".join(header) + " |"]
        lines.append("|" + "|".join("---" for _ in header) + "|")
        for row in cells:
            lines.append("| " + " | ".join(row) + " |")
        return lines
    widths = [
        max(len(header[i]), *(len(row[i]) for row in cells)) if cells else len(header[i])
        for i in range(len(header))
    ]
    lines = ["  ".join(header[i].ljust(widths[i]) for i in range(len(header)))]
    lines.append("  ".join("-" * widths[i] for i in range(len(header))))
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(header))))
    return lines


def _heading(title: str, markdown: bool, level: int = 2) -> list[str]:
    if markdown:
        return ["#" * level + " " + title, ""]
    underline = "=" if level == 1 else "-"
    return [title, underline * len(title)]


def _attr_summary(entry: dict[str, Any]) -> str:
    """One-cell summary of a span name's deterministic attribute rollups."""
    parts: list[str] = []
    for key, rollup in entry["attributes"].items():
        if rollup["min"] == rollup["max"]:
            parts.append(f"{key}={_fmt(rollup['min'])}")
        else:
            parts.append(
                f"{key}={_fmt(rollup['min'])}..{_fmt(rollup['max'])}"
                f" (total {_fmt(rollup['total'])})"
            )
    for key, table in entry["labels"].items():
        inner = ",".join(f"{label}:{count}" for label, count in table.items())
        parts.append(f"{key}[{inner}]")
    return " ".join(parts) if parts else "-"


def deterministic_report_text(
    roots: "Span | Sequence[Span]",
    baseline: "Span | Sequence[Span] | None" = None,
    markdown: bool = False,
) -> str:
    """The byte-comparable half of the report.

    Everything here is a function of the canonical projection(s) only: the
    per-span-name rollup table, the attribute-keyed breakdown counts and —
    when ``baseline`` is given — the structural diff.  The golden suite
    asserts these bytes are identical across worker counts,
    ``group_concurrency`` values and fault-recovered runs.
    """
    aggregate = aggregate_trace(roots)["deterministic"]
    lines = _heading(
        "Span rollups (deterministic: byte-identical across worker counts)",
        markdown,
    )
    rows = [
        [name, entry["count"], entry["children"], _attr_summary(entry)]
        for name, entry in aggregate["spans"].items()
    ]
    lines += _table(["span", "count", "children", "attributes"], rows, markdown)
    lines.append("")
    if aggregate["breakdowns"]:
        lines += _heading("Attribute breakdowns (deterministic counts)", markdown)
        for key, table in aggregate["breakdowns"].items():
            inner = "  ".join(f"{value}: {count}" for value, count in table.items())
            bullet = "- " if markdown else "  "
            lines.append(f"{bullet}{key}: {inner}")
        lines.append("")
    if baseline is not None:
        structural = diff_traces(baseline, roots).structural()
        lines += _heading("Structural diff vs baseline (deterministic)", markdown)
        bullet = "- " if markdown else "  "
        lines.append(
            f"{bullet}matched spans: {structural['matched']}; identical: "
            f"{structural['identical']}"
        )
        for kind in ("added", "removed", "changed_attributes"):
            paths = structural[kind]
            if paths:
                shown = ", ".join(paths[:8]) + (" …" if len(paths) > 8 else "")
                lines.append(f"{bullet}{kind} ({len(paths)}): {shown}")
        lines.append("")
    return "\n".join(lines)


def _volatile_report_text(
    roots: "Span | Sequence[Span]",
    manifest: Any = None,
    baseline: "Span | Sequence[Span] | None" = None,
    top: int = 10,
    markdown: bool = False,
    noise_floor: float = DEFAULT_NOISE_FLOOR,
) -> str:
    volatile = aggregate_trace(roots)["volatile"]
    lines: list[str] = []

    lines += _heading(f"Top self-time spans (volatile, top {top})", markdown)
    by_self = sorted(
        volatile["durations"].items(),
        key=lambda item: (-item[1]["self_seconds"], item[0]),
    )[:top]
    rows = [
        [
            name,
            row["count"],
            row["total_seconds"],
            row["self_seconds"],
            row["p50_seconds"],
            row["p95_seconds"],
        ]
        for name, row in by_self
    ]
    lines += _table(
        ["span", "count", "total s", "self s", "p50 s", "p95 s"], rows, markdown
    )
    lines.append("")

    utilization = pool_utilization(roots)
    if utilization["slots"]:
        lines += _heading("Worker utilization (volatile)", markdown)
        bullet = "- " if markdown else "  "
        lines.append(
            f"{bullet}window {_fmt(utilization['span_seconds'])}s, "
            f"{utilization['n_slots']} slot(s), {utilization['chunks']} chunk(s), "
            f"mean concurrency {_fmt(utilization['mean_concurrency'])}, "
            f"saturation {_fmt(utilization['saturation'])}"
        )
        rows = [
            [
                slot,
                stats["chunks"],
                stats["busy_seconds"],
                stats["idle_seconds"],
                stats["utilization"],
                stats["dispatch_gap_mean_seconds"],
            ]
            for slot, stats in utilization["slots"].items()
        ]
        lines += _table(
            ["slot", "chunks", "busy s", "idle s", "util", "gap mean s"],
            rows,
            markdown,
        )
        lines.append("")

    if volatile["resources"]:
        lines += _heading("Resources (volatile, profiled run)", markdown)
        rows = [
            [name, usage["cpu_seconds"], usage["mem_peak_kb"]]
            for name, usage in volatile["resources"].items()
        ]
        lines += _table(["span", "cpu s", "mem peak KB"], rows, markdown)
        lines.append("")

    if volatile["events"]:
        lines += _heading("Scheduling events (volatile counts)", markdown)
        rows = [[name, count] for name, count in volatile["events"].items()]
        lines += _table(["event", "count"], rows, markdown)
        lines.append("")

    if baseline is not None:
        diff = diff_traces(baseline, roots, noise_floor=noise_floor)
        lines += _heading("Wall-time diff vs baseline (volatile)", markdown)
        bullet = "- " if markdown else "  "
        lines.append(
            f"{bullet}total delta {_fmt(diff.total_delta_seconds)}s "
            f"(noise floor {_fmt(noise_floor)}s)"
        )
        attribution = diff.attribution()[:top]
        if attribution:
            rows = [
                [
                    row["path"],
                    row["status"],
                    "-" if row["base_seconds"] is None else row["base_seconds"],
                    "-" if row["other_seconds"] is None else row["other_seconds"],
                    row["self_delta_seconds"],
                ]
                for row in attribution
            ]
            lines += _table(
                ["path", "status", "base s", "now s", "self delta s"],
                rows,
                markdown,
            )
        else:
            lines.append(f"{bullet}no subtree above the noise floor")
        lines.append("")

    if manifest is not None:
        run = getattr(manifest, "run", None) or {}
        timings = getattr(manifest, "timings", None) or {}
        if run or timings:
            lines += _heading("Manifest", markdown)
            bullet = "- " if markdown else "  "
            if run:
                summary = ", ".join(
                    f"{key}={_fmt(run[key])}" for key in sorted(run)
                )
                lines.append(f"{bullet}run: {summary}")
            if timings:
                summary = ", ".join(
                    f"{key}={_fmt(timings[key])}s" for key in sorted(timings)
                )
                lines.append(f"{bullet}timings (volatile): {summary}")
            lines.append("")
    return "\n".join(lines)


def render_report(
    roots: "Span | Sequence[Span]",
    manifest: Any = None,
    baseline: "Span | Sequence[Span] | None" = None,
    top: int = 10,
    markdown: bool = False,
    noise_floor: float = DEFAULT_NOISE_FLOOR,
    title: str = "Run report",
) -> str:
    """The full report: deterministic section first, volatile sections after.

    ``manifest`` is an optional :class:`~repro.observe.manifest.RunManifest`
    (its run configuration and phase timings are echoed at the end);
    ``baseline`` adds the structural + wall-time diff sections.
    """
    parts = _heading(title, markdown, level=1)
    parts.append("")
    parts.append(deterministic_report_text(roots, baseline=baseline, markdown=markdown))
    parts.append(
        _volatile_report_text(
            roots,
            manifest=manifest,
            baseline=baseline,
            top=top,
            markdown=markdown,
            noise_floor=noise_floor,
        )
    )
    return "\n".join(parts).rstrip() + "\n"
