"""Span-tree tracer with content-derived ids and a free disabled path.

A :class:`Tracer` records a nested tree of :class:`Span` nodes — phase →
structure group → assembly → per-block work — each carrying three strictly
separated payloads:

* ``attributes`` — **deterministic** facts about the work itself (element
  counts, block ranks, solver iterations, content fingerprints).  These are
  pure functions of the run's inputs, never of its scheduling, so the
  attribute payload of a span is bit-identical across pool worker counts.
* ``volatile`` — run/host-dependent data (worker slots, shard loads, relative
  timestamps, backend labels).  Excluded from the canonical projection and
  from span ids.
* ``duration_seconds`` — the :func:`repro.timing.wall_clock` wall of the
  span, also excluded from the canonical projection.

Nodes come in two kinds.  ``"span"`` nodes describe *what work happened* and
form the deterministic tree; ``"event"`` nodes describe *scheduling
happenings* (chunk dispatch, retry, respawn) whose count and order legally
vary between runs — they are always dropped from the canonical projection,
which is what lets the golden suite assert byte-identical traces across
worker counts and across fault-injected/recovered runs.

Span ids are derived from content, not clock or entropy (DET002 stays
clean): each id is a blake2b fingerprint of the parent id, the span name,
the span's ordinal among its *span* siblings and its canonical attribute
JSON.  Two runs of the same inputs therefore produce the same ids, making
traces from recovered, replayed or differently-sharded runs directly
comparable node-by-node.

The disabled path is a single attribute check: every hot loop guards on
``tracer.enabled`` and the shared :data:`NULL_TRACER` singleton makes every
recording method a no-op, so an uninstrumented run pays (asserted <2% on the
quick bench) nothing for the machinery.
"""

from __future__ import annotations

import hashlib
import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.observe.metrics import MetricsRegistry
from repro.timing import wall_clock

__all__ = ["NULL_TRACER", "NullTracer", "Span", "Tracer", "ensure_tracer"]


def _canonical_json(payload: Any) -> str:
    """Sorted-key JSON with a stable fallback for exotic values."""
    return json.dumps(payload, sort_keys=True, default=repr, separators=(",", ":"))


@dataclass
class Span:
    """One node of the trace tree (a unit of work, or an event within one)."""

    name: str
    kind: str = "span"  # "span" (deterministic tree) | "event" (scheduling)
    attributes: dict[str, Any] = field(default_factory=dict)
    volatile: dict[str, Any] = field(default_factory=dict)
    duration_seconds: float | None = None
    children: list["Span"] = field(default_factory=list)
    span_id: str = ""

    def child_spans(self) -> list["Span"]:
        """The ``"span"``-kind children, in recording order."""
        return [child for child in self.children if child.kind == "span"]

    def events(self) -> list["Span"]:
        """The ``"event"``-kind children, in recording order."""
        return [child for child in self.children if child.kind == "event"]

    def walk(self) -> Iterator["Span"]:
        """This node and every descendant, depth-first pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First descendant (or self) with ``name``, depth-first."""
        for node in self.walk():
            if node.name == name:
                return node
        return None

    def canonical_attributes(self) -> str:
        """The deterministic attribute payload as sorted-key JSON."""
        return _canonical_json(self.attributes)


def assign_span_ids(roots: list[Span], parent_id: str = "") -> None:
    """Derive content-fingerprint ids for every node under ``roots``.

    A span's id hashes ``parent_id | name | ordinal | attributes`` where the
    ordinal counts preceding *span* siblings only — event counts may legally
    differ between runs (retries, respawns) and must never shift the ids of
    the deterministic tree around them.  Events get ids in a separate
    ordinal space (prefixed ``e:``), unique within the trace but with no
    cross-run stability promise.
    """
    span_ordinal = 0
    event_ordinal = 0
    for node in roots:
        if node.kind == "span":
            seed = f"{parent_id}|{node.name}|{span_ordinal}|{node.canonical_attributes()}"
            span_ordinal += 1
        else:
            seed = f"e:{parent_id}|{node.name}|{event_ordinal}"
            event_ordinal += 1
        node.span_id = hashlib.blake2b(seed.encode("utf-8"), digest_size=8).hexdigest()
        assign_span_ids(node.children, node.span_id)


class Tracer:
    """Records a span tree plus a :class:`MetricsRegistry` for one run.

    ``profile`` optionally attaches a
    :class:`~repro.observe.profile.ResourceProfiler`: every ``span()``
    block additionally gets volatile ``cpu_seconds`` / ``mem_peak_kb``
    stamps.  The default stays ``None`` — one ``is not None`` check per
    span, nothing on the :data:`NULL_TRACER` path — so profiling is
    strictly opt-in and the canonical projection never changes either way.
    """

    enabled: bool = True

    def __init__(
        self, metrics: MetricsRegistry | None = None, profile: Any = None
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.profile = profile
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    # -- recording ---------------------------------------------------------

    def _attach(self, node: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(node)
        else:
            self.roots.append(node)

    @contextmanager
    def span(self, name: str, /, **attributes: Any) -> Iterator[Span]:
        """Open a child span for a ``with`` block, timing it via wall_clock."""
        node = Span(name=name, attributes=dict(attributes))
        self._attach(node)
        self._stack.append(node)
        profile = self.profile
        if profile is not None:
            profile.enter(node)
        start = wall_clock()
        try:
            yield node
        finally:
            node.duration_seconds = wall_clock() - start
            if profile is not None:
                profile.exit(node)
            self._stack.pop()

    def record_span(
        self,
        name: str,
        /,
        duration_seconds: float | None = None,
        volatile: dict[str, Any] | None = None,
        **attributes: Any,
    ) -> Span:
        """Append an already-measured span (work executed elsewhere).

        The sharded backends run block work on worker processes and only
        learn per-task durations after collection; they re-emit those units
        here, in canonical (ascending block) order, so the trace tree stays
        identical to the serial engine's.
        """
        node = Span(
            name=name,
            attributes=dict(attributes),
            volatile=dict(volatile) if volatile else {},
            duration_seconds=duration_seconds,
        )
        self._attach(node)
        return node

    def event(self, name: str, /, **data: Any) -> Span:
        """Append a scheduling event (dispatch/retry/respawn) to the open span.

        All event payload is volatile by definition — events exist precisely
        because their occurrence depends on scheduling, faults and timing.
        """
        node = Span(name=name, kind="event", volatile=dict(data))
        self._attach(node)
        return node

    def annotate(self, **attributes: Any) -> None:
        """Add deterministic attributes to the innermost open span."""
        if self._stack:
            self._stack[-1].attributes.update(attributes)

    def annotate_volatile(self, **data: Any) -> None:
        """Add volatile (run-dependent) data to the innermost open span."""
        if self._stack:
            self._stack[-1].volatile.update(data)

    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def graft(self, roots: list[Span]) -> None:
        """Attach finished subtrees recorded by a branch tracer.

        Concurrent pipelines record each in-flight branch on its own
        ``Tracer`` (isolated span stack), then graft the branch roots under
        the main tracer's open span **in canonical order** once the branch
        completes.  Ids are assigned only at :meth:`finalize`, so grafted
        nodes get exactly the ids they would have had if recorded inline —
        the canonical projection is independent of completion order.
        """
        for node in roots:
            self._attach(node)

    # -- finishing ---------------------------------------------------------

    def finalize(self) -> list[Span]:
        """Assign content-derived ids over the whole tree and return roots."""
        assign_span_ids(self.roots)
        return self.roots

    def stats(self) -> dict[str, int]:
        """Node counts of the recorded tree (spans vs events)."""
        spans = 0
        events = 0
        for root in self.roots:
            for node in root.walk():
                if node.kind == "span":
                    spans += 1
                else:
                    events += 1
        return {"spans": spans, "events": events}


class _NullSpanContext:
    """Shared allocation-free context manager yielding no span."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_CONTEXT = _NullSpanContext()


class NullTracer(Tracer):
    """The default tracer: every recording call is a no-op.

    ``span()`` returns a shared context manager yielding ``None`` — callers
    that need the yielded span object must guard on ``tracer.enabled`` (the
    single attribute check that keeps disabled overhead immeasurable).  The
    metrics registry exists (bounded state, never exported) so unguarded
    ``tracer.metrics`` access stays valid.
    """

    enabled = False

    def span(self, name: str, /, **attributes: Any) -> Any:  # type: ignore[override]
        return _NULL_CONTEXT

    def record_span(
        self,
        name: str,
        /,
        duration_seconds: float | None = None,
        volatile: dict[str, Any] | None = None,
        **attributes: Any,
    ) -> Span | None:  # type: ignore[override]
        return None

    def event(self, name: str, /, **data: Any) -> Span | None:  # type: ignore[override]
        return None

    def annotate(self, **attributes: Any) -> None:
        return None

    def annotate_volatile(self, **data: Any) -> None:
        return None

    def graft(self, roots: list[Span]) -> None:
        return None


#: Shared no-op tracer used wherever ``tracer=None`` was passed.
NULL_TRACER = NullTracer()


def ensure_tracer(tracer: Tracer | None) -> Tracer:
    """``tracer`` itself, or the shared :data:`NULL_TRACER` when ``None``."""
    return tracer if tracer is not None else NULL_TRACER
