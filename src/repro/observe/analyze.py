"""Performance attribution over recorded traces: aggregation and diff.

The analysis layer answers "where did the time go, and what changed?"
from a trace's span tree alone — it never re-runs anything, so it works
identically on a live :class:`~repro.observe.trace.Tracer`'s roots and on
a :func:`~repro.observe.export.read_trace_jsonl` re-import.

Every output honours the PR-8 payload contract by splitting into two
sections:

* ``"deterministic"`` — derived purely from the canonical projection
  (span names, tree structure, deterministic attributes).  Byte-identical
  for any pool worker count, any ``group_concurrency`` and any
  fault-recovered run — the golden suite asserts this on the rendered
  report.
* ``"volatile"`` — durations, self times, p50/p95, event counts, resource
  stamps, worker analytics.  Legitimately run-dependent.

:func:`diff_traces` walks two trees in canonical order (children paired by
name and occurrence — the same ordinal space the content-derived span ids
hash), attributes wall-time deltas to the deepest responsible subtrees via
*self deltas* (a node's delta minus its children's), and reports the nodes
above a noise floor — so a >1.25x ``bench_trend`` failure names the phase
that regressed.  :func:`attribute_snapshot_regression` does the same for
the flat ``BENCH_*.json`` wall-time leaves.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.observe.metrics import Histogram
from repro.observe.trace import Span

__all__ = [
    "DEFAULT_BREAKDOWNS",
    "DEFAULT_NOISE_FLOOR",
    "TraceDiff",
    "aggregate_trace",
    "attribute_breakdown",
    "attribute_snapshot_regression",
    "canonical_aggregate_text",
    "diff_traces",
]

#: Wall-time deltas below this many seconds are noise, not attribution.
DEFAULT_NOISE_FLOOR = 0.005

#: Attribute-keyed breakdowns computed by default: per-block far-field
#: rank and kind (``"far"`` vs ``"fallback"``) versus count and seconds.
DEFAULT_BREAKDOWNS: tuple[tuple[str, str], ...] = (
    ("block", "rank"),
    ("block", "kind"),
)

#: A label attribute with more distinct values than this is summarised as
#: its distinct-value count (fingerprints, per-scenario names) instead of
#: an unbounded value->count table.
_LABEL_LIMIT = 12


def _as_roots(roots: "Span | Sequence[Span]") -> list[Span]:
    return [roots] if isinstance(roots, Span) else list(roots)


def _span_nodes(roots: Sequence[Span]):
    for root in roots:
        for node in root.walk():
            if node.kind == "span":
                yield node


def _self_seconds(node: Span) -> float | None:
    """Wall time of ``node`` minus its timed child spans, clamped at 0.

    Children re-emitted from worker processes (``record_span``) carry
    worker-side walls that can overlap, so their sum may exceed the parent
    wall on a multi-worker pool — hence the clamp.
    """
    if node.duration_seconds is None:
        return None
    children = sum(
        child.duration_seconds
        for child in node.child_spans()
        if child.duration_seconds is not None
    )
    return max(node.duration_seconds - children, 0.0)


def aggregate_trace(
    roots: "Span | Sequence[Span]",
    breakdowns: Sequence[tuple[str, str]] = DEFAULT_BREAKDOWNS,
) -> dict[str, Any]:
    """Per-span-name rollups of a trace, split deterministic vs volatile.

    ``deterministic`` holds, per span name: occurrence count, child-span
    count, numeric-attribute rollups (count/total/min/max) and bounded
    label tables — all functions of the canonical projection only.
    ``volatile`` holds the duration rollups (total/self/mean and
    bucket-estimated p50/p95 via the bounded
    :class:`~repro.observe.metrics.Histogram`), event counts, resource
    stamps (when a profiler ran) and the attribute-keyed seconds of the
    requested ``breakdowns``.
    """
    roots = _as_roots(roots)
    det_spans: dict[str, dict[str, Any]] = {}
    durations: dict[str, dict[str, Any]] = {}
    histograms: dict[str, Histogram] = {}
    events: dict[str, int] = {}
    resources: dict[str, dict[str, float]] = {}
    n_spans = 0

    for root in roots:
        for node in root.walk():
            if node.kind == "event":
                events[node.name] = events.get(node.name, 0) + 1
                continue
            n_spans += 1
            entry = det_spans.setdefault(
                node.name,
                {"count": 0, "children": 0, "attributes": {}, "labels": {}},
            )
            entry["count"] += 1
            entry["children"] += len(node.child_spans())
            for key in sorted(node.attributes):
                value = node.attributes[key]
                if isinstance(value, bool) or isinstance(value, str):
                    table = entry["labels"].setdefault(key, {})
                    label = str(value)
                    table[label] = table.get(label, 0) + 1
                elif isinstance(value, (int, float)):
                    value = float(value)
                    rollup = entry["attributes"].get(key)
                    if rollup is None:
                        rollup = entry["attributes"][key] = {
                            "count": 0,
                            "total": 0.0,
                            "min": value,
                            "max": value,
                        }
                    rollup["count"] += 1
                    rollup["total"] += value
                    rollup["min"] = min(rollup["min"], value)
                    rollup["max"] = max(rollup["max"], value)

            if node.duration_seconds is not None:
                row = durations.setdefault(
                    node.name,
                    {"count": 0, "total_seconds": 0.0, "self_seconds": 0.0},
                )
                row["count"] += 1
                row["total_seconds"] += node.duration_seconds
                row["self_seconds"] += _self_seconds(node) or 0.0
                histogram = histograms.get(node.name)
                if histogram is None:
                    histogram = histograms[node.name] = Histogram(node.name)
                histogram.observe(node.duration_seconds)
            for stamp in ("cpu_seconds", "mem_peak_kb"):
                value = node.volatile.get(stamp)
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    usage = resources.setdefault(
                        node.name, {"cpu_seconds": 0.0, "mem_peak_kb": 0.0}
                    )
                    if stamp == "cpu_seconds":
                        usage[stamp] += float(value)
                    else:  # high-water marks aggregate by max, not sum
                        usage[stamp] = max(usage[stamp], float(value))

    for name, entry in det_spans.items():
        entry["labels"] = {
            key: (
                table
                if len(table) <= _LABEL_LIMIT
                else {"(distinct values)": len(table)}
            )
            for key, table in entry["labels"].items()
        }
    for name, row in durations.items():
        histogram = histograms[name]
        row["mean_seconds"] = row["total_seconds"] / row["count"]
        row["p50_seconds"] = histogram.quantile(0.5)
        row["p95_seconds"] = histogram.quantile(0.95)
        row["max_seconds"] = histogram.maximum or 0.0

    det_breakdowns: dict[str, dict[str, int]] = {}
    vol_breakdowns: dict[str, dict[str, float]] = {}
    for span_name, attribute in breakdowns:
        rows = attribute_breakdown(roots, span_name, attribute)
        if not rows:
            continue
        key = f"{span_name}.{attribute}"
        det_breakdowns[key] = {value: row["count"] for value, row in rows.items()}
        vol_breakdowns[key] = {value: row["seconds"] for value, row in rows.items()}

    return {
        "deterministic": {
            "n_spans": n_spans,
            "spans": {name: det_spans[name] for name in sorted(det_spans)},
            "breakdowns": det_breakdowns,
        },
        "volatile": {
            "durations": {name: durations[name] for name in sorted(durations)},
            "events": {name: events[name] for name in sorted(events)},
            "resources": {name: resources[name] for name in sorted(resources)},
            "breakdowns": vol_breakdowns,
        },
    }


def attribute_breakdown(
    roots: "Span | Sequence[Span]", span_name: str, attribute: str
) -> dict[str, dict[str, Any]]:
    """``attribute`` value -> {count, seconds} over spans named ``span_name``.

    The per-block far-field table of the paper's assembly, generalised:
    ``attribute_breakdown(roots, "block", "rank")`` answers "how many far
    blocks compressed to rank r, and how long did each rank class take".
    Counts are deterministic, seconds volatile.  Values sort numerically
    when possible, lexically otherwise.
    """
    rows: dict[Any, dict[str, Any]] = {}
    for node in _span_nodes(_as_roots(roots)):
        if node.name != span_name or attribute not in node.attributes:
            continue
        value = node.attributes[attribute]
        row = rows.setdefault(value, {"count": 0, "seconds": 0.0})
        row["count"] += 1
        if node.duration_seconds is not None:
            row["seconds"] += node.duration_seconds

    def _order(value: Any):
        if isinstance(value, bool):
            return (1, str(value))
        if isinstance(value, (int, float)):
            return (0, value)
        return (1, str(value))

    return {str(value): rows[value] for value in sorted(rows, key=_order)}


# --------------------------------------------------------------------------- diff


@dataclass
class DiffEntry:
    """One node pairing of a trace diff (matched, added or removed)."""

    path: str
    name: str
    status: str  # "matched" | "added" | "removed"
    base_seconds: float | None = None
    other_seconds: float | None = None
    delta_seconds: float = 0.0
    #: ``delta`` minus the children's deltas: the part of the regression
    #: this node is itself responsible for (deepest-subtree attribution).
    self_delta_seconds: float = 0.0
    attrs_equal: bool = True


@dataclass
class TraceDiff:
    """Structured comparison of two recorded traces."""

    entries: list[DiffEntry] = field(default_factory=list)
    noise_floor: float = DEFAULT_NOISE_FLOOR

    @property
    def total_delta_seconds(self) -> float:
        return sum(e.delta_seconds for e in self.entries if e.path.count("/") == 0)

    def structural(self) -> dict[str, Any]:
        """The deterministic half: tree/attribute changes, no durations."""
        added = [e.path for e in self.entries if e.status == "added"]
        removed = [e.path for e in self.entries if e.status == "removed"]
        changed = [
            e.path
            for e in self.entries
            if e.status == "matched" and not e.attrs_equal
        ]
        return {
            "added": added,
            "removed": removed,
            "changed_attributes": changed,
            "matched": sum(e.status == "matched" for e in self.entries),
            "identical": not (added or removed or changed),
        }

    def attribution(self) -> list[dict[str, Any]]:
        """Volatile: nodes above the noise floor, largest self delta first.

        The deepest responsible subtrees — a slow child claims its own
        delta, leaving the parent only the part it cannot delegate.
        """
        rows = [
            {
                "path": e.path,
                "status": e.status,
                "base_seconds": e.base_seconds,
                "other_seconds": e.other_seconds,
                "delta_seconds": e.delta_seconds,
                "self_delta_seconds": e.self_delta_seconds,
            }
            for e in self.entries
            if abs(e.self_delta_seconds) >= self.noise_floor
        ]
        rows.sort(key=lambda r: (-r["self_delta_seconds"], r["path"]))
        return rows

    def summary(self) -> dict[str, Any]:
        """JSON-ready split view (deterministic structure, volatile times)."""
        return {
            "deterministic": self.structural(),
            "volatile": {
                "total_delta_seconds": self.total_delta_seconds,
                "attribution": self.attribution(),
            },
        }


def _pair_children(
    base: Sequence[Span], other: Sequence[Span]
) -> list[tuple[Span | None, Span | None, str]]:
    """Pair two sibling lists by (name, occurrence) in canonical order.

    Occurrence counting mirrors the span-ordinal space of
    :func:`~repro.observe.trace.assign_span_ids` per name, so two runs of
    the same campaign pair node-for-node regardless of durations.
    """
    pairs: list[tuple[Span | None, Span | None, str]] = []
    base_by_name: dict[str, list[Span]] = {}
    other_by_name: dict[str, list[Span]] = {}
    for node in base:
        base_by_name.setdefault(node.name, []).append(node)
    for node in other:
        other_by_name.setdefault(node.name, []).append(node)
    seen: set[str] = set()
    for node in list(base) + list(other):
        if node.name in seen:
            continue
        seen.add(node.name)
        base_run = base_by_name.get(node.name, [])
        other_run = other_by_name.get(node.name, [])
        for occurrence in range(max(len(base_run), len(other_run))):
            b = base_run[occurrence] if occurrence < len(base_run) else None
            o = other_run[occurrence] if occurrence < len(other_run) else None
            suffix = f"#{occurrence}" if occurrence else ""
            pairs.append((b, o, f"{node.name}{suffix}"))
    return pairs


def diff_traces(
    base: "Span | Sequence[Span]",
    other: "Span | Sequence[Span]",
    noise_floor: float = DEFAULT_NOISE_FLOOR,
) -> TraceDiff:
    """Compare two traces node-by-node in canonical order.

    Matched spans contribute a wall-time ``delta`` (other minus base) and a
    ``self_delta`` (delta minus the children's deltas); spans present in
    only one trace count their whole subtree wall as added/removed.  The
    structural half of the result is a pure function of the two canonical
    projections; the attribution half carries the volatile durations.
    """
    diff = TraceDiff(noise_floor=noise_floor)

    def _wall(node: Span | None) -> float:
        if node is None or node.duration_seconds is None:
            return 0.0
        return node.duration_seconds

    def _walk(b: Span | None, o: Span | None, label: str, prefix: str) -> float:
        path = f"{prefix}{label}"
        status = "matched" if b is not None and o is not None else (
            "added" if b is None else "removed"
        )
        child_delta = 0.0
        for cb, co, clabel in _pair_children(
            b.child_spans() if b is not None else [],
            o.child_spans() if o is not None else [],
        ):
            child_delta += _walk(cb, co, clabel, f"{path}/")
        delta = _wall(o) - _wall(b)
        entry = DiffEntry(
            path=path,
            name=(o or b).name,
            status=status,
            base_seconds=None if b is None else b.duration_seconds,
            other_seconds=None if o is None else o.duration_seconds,
            delta_seconds=delta,
            self_delta_seconds=delta - child_delta,
            attrs_equal=(
                b is not None
                and o is not None
                and b.canonical_attributes() == o.canonical_attributes()
            ),
        )
        if status != "matched":
            entry.attrs_equal = False
        diff.entries.append(entry)
        return delta

    for b, o, label in _pair_children(_as_roots(base), _as_roots(other)):
        _walk(b, o, label, "")
    diff.entries.sort(key=lambda e: e.path)
    return diff


def canonical_aggregate_text(roots: "Span | Sequence[Span]") -> str:
    """The deterministic aggregation section as sorted-key JSON.

    The byte-comparable companion of
    :func:`~repro.observe.export.canonical_trace_text`: identical for any
    worker count / ``group_concurrency`` / fault-recovery history of the
    same campaign.
    """
    deterministic = aggregate_trace(roots)["deterministic"]
    return json.dumps(deterministic, sort_keys=True, indent=2, default=repr) + "\n"


# --------------------------------------------------------------------------- BENCH snapshots


def attribute_snapshot_regression(
    committed: dict[str, float],
    fresh: dict[str, float],
    path: str,
    limit: int = 5,
) -> list[dict[str, Any]]:
    """Explain a regressed wall-time leaf by its sibling/descendant leaves.

    ``committed`` / ``fresh`` are the flat dotted-path -> seconds maps of
    :func:`bench_trend.walltime_leaves`.  For a regressed ``path`` (e.g.
    ``campaign_runs.0.wall_seconds``) the candidate contributors are the
    other leaves under the same parent prefix (the per-phase ``timings.*``
    entries of the same run), ranked by their absolute delta — the phases
    whose growth accounts for the regression come first.
    """
    if path not in committed or path not in fresh:
        return []
    parent = path.rsplit(".", 1)[0] if "." in path else ""
    prefix = f"{parent}." if parent else ""
    delta = fresh[path] - committed[path]
    rows: list[dict[str, Any]] = []
    for other in sorted(set(committed) & set(fresh)):
        if other == path or not other.startswith(prefix):
            continue
        contribution = fresh[other] - committed[other]
        rows.append(
            {
                "path": other,
                "committed_seconds": committed[other],
                "fresh_seconds": fresh[other],
                "delta_seconds": contribution,
                "share": (contribution / delta) if delta > 0 else 0.0,
            }
        )
    rows.sort(key=lambda r: (-r["delta_seconds"], r["path"]))
    return rows[:limit]
