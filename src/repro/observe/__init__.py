"""repro.observe — unified tracing + metrics for the whole pipeline.

The zero-dependency observability layer every subsystem reports through:

* :class:`Tracer` / :class:`Span` — a nested span tree (phase → structure
  group → block shard → chunk) with wall-clock durations, deterministic
  attributes, scheduling *events* and content-derived span ids
  (:mod:`repro.observe.trace`);
* :class:`MetricsRegistry` — counters/gauges/histograms absorbing the
  historical ``timings`` / pool ``stats`` / ``cache_stats`` / ``PoolHealth``
  dicts behind one snapshot-exportable API (:mod:`repro.observe.metrics`);
* sinks — JSONL trace export/import, the byte-comparable canonical
  projection, a human tree renderer and the pool worker timeline
  (:mod:`repro.observe.export`);
* :class:`RunManifest` — the per-run provenance record (code version,
  mesh/cluster fingerprints, knobs, metric snapshot) written next to
  campaign checkpoints (:mod:`repro.observe.manifest`).

The default is the shared :data:`NULL_TRACER`: instrumented hot paths guard
on ``tracer.enabled`` (one attribute check), so a run without tracing pays
nothing measurable.  Phase bookkeeping helpers (:class:`Timer`,
:class:`PhaseTimer`) are re-exported from :mod:`repro.timing` — together
with this package they are the sanctioned alternative the OBS001 contract
rule steers ad-hoc timing dicts toward.

Determinism contract: span attributes hold only worker-count-independent
facts, events are excluded from the canonical projection, and span ids are
content fingerprints — so ``canonical_trace_lines`` of a campaign run is
byte-identical across pool worker counts and across fault-recovered runs.
"""

from repro.observe.export import (
    canonical_trace_lines,
    canonical_trace_text,
    format_trace_tree,
    read_trace_jsonl,
    trace_records,
    worker_timeline,
    write_trace_jsonl,
)
from repro.observe.manifest import MANIFEST_FORMAT_VERSION, RunManifest
from repro.observe.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.observe.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    ensure_tracer,
)
from repro.timing import PhaseTimer, Timer, wall_clock

__all__ = [
    "MANIFEST_FORMAT_VERSION",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullTracer",
    "PhaseTimer",
    "RunManifest",
    "Span",
    "Timer",
    "Tracer",
    "canonical_trace_lines",
    "canonical_trace_text",
    "ensure_tracer",
    "format_trace_tree",
    "read_trace_jsonl",
    "trace_records",
    "wall_clock",
    "worker_timeline",
    "write_trace_jsonl",
]
