"""repro.observe — unified tracing + metrics for the whole pipeline.

The zero-dependency observability layer every subsystem reports through:

* :class:`Tracer` / :class:`Span` — a nested span tree (phase → structure
  group → block shard → chunk) with wall-clock durations, deterministic
  attributes, scheduling *events* and content-derived span ids
  (:mod:`repro.observe.trace`);
* :class:`MetricsRegistry` — counters/gauges/histograms absorbing the
  historical ``timings`` / pool ``stats`` / ``cache_stats`` / ``PoolHealth``
  dicts behind one snapshot-exportable API (:mod:`repro.observe.metrics`);
* sinks — JSONL trace export/import, the byte-comparable canonical
  projection, a human tree renderer and the pool worker timeline
  (:mod:`repro.observe.export`);
* :class:`RunManifest` — the per-run provenance record (code version,
  mesh/cluster fingerprints, knobs, metric snapshot, trace aggregate)
  written next to campaign checkpoints (:mod:`repro.observe.manifest`);
* the attribution layer — per-span-name rollups, attribute-keyed
  breakdowns and canonical-order trace diffs (:mod:`repro.observe.analyze`),
  opt-in per-span CPU/memory profiling plus pool utilization analytics
  (:mod:`repro.observe.profile`), and the two-half run report behind
  ``python -m repro report`` (:mod:`repro.observe.report`).

The default is the shared :data:`NULL_TRACER`: instrumented hot paths guard
on ``tracer.enabled`` (one attribute check), so a run without tracing pays
nothing measurable.  Phase bookkeeping helpers (:class:`Timer`,
:class:`PhaseTimer`) are re-exported from :mod:`repro.timing` — together
with this package they are the sanctioned alternative the OBS001 contract
rule steers ad-hoc timing dicts toward.

Determinism contract: span attributes hold only worker-count-independent
facts, events are excluded from the canonical projection, and span ids are
content fingerprints — so ``canonical_trace_lines`` of a campaign run is
byte-identical across pool worker counts and across fault-recovered runs.
"""

from repro.observe.analyze import (
    TraceDiff,
    aggregate_trace,
    attribute_breakdown,
    attribute_snapshot_regression,
    canonical_aggregate_text,
    diff_traces,
)
from repro.observe.export import (
    canonical_trace_lines,
    canonical_trace_text,
    format_trace_tree,
    read_trace_jsonl,
    trace_records,
    worker_timeline,
    write_trace_jsonl,
)
from repro.observe.manifest import MANIFEST_FORMAT_VERSION, RunManifest
from repro.observe.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_metric_key,
    split_metric_name,
)
from repro.observe.profile import ResourceProfiler, pool_utilization
from repro.observe.report import deterministic_report_text, render_report
from repro.observe.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    ensure_tracer,
)
from repro.timing import PhaseTimer, Timer, cpu_clock, wall_clock

__all__ = [
    "MANIFEST_FORMAT_VERSION",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullTracer",
    "PhaseTimer",
    "ResourceProfiler",
    "RunManifest",
    "Span",
    "Timer",
    "TraceDiff",
    "Tracer",
    "aggregate_trace",
    "attribute_breakdown",
    "attribute_snapshot_regression",
    "canonical_aggregate_text",
    "canonical_trace_lines",
    "canonical_trace_text",
    "cpu_clock",
    "deterministic_report_text",
    "diff_traces",
    "ensure_tracer",
    "escape_metric_key",
    "format_trace_tree",
    "pool_utilization",
    "read_trace_jsonl",
    "render_report",
    "split_metric_name",
    "trace_records",
    "wall_clock",
    "worker_timeline",
    "write_trace_jsonl",
]
