"""Counters, gauges and histograms behind one deterministic registry.

The tree used to scatter its runtime numbers across ad-hoc dicts: the
campaign runner's ``timings``, the worker pool's ``_stats`` counters, the
``PoolHealth`` incident counters, the geometry/cluster-plan ``cache_stats``.
:class:`MetricsRegistry` unifies them behind one get-or-create API with a
sorted :meth:`~MetricsRegistry.snapshot` export, so every subsystem reports
through the same vocabulary and a run's metric state can be written into its
:class:`~repro.observe.manifest.RunManifest` verbatim.

Design constraints, shared with the tracer:

* **zero dependencies** — plain Python, no numpy, importable everywhere;
* **deterministic export** — :meth:`~MetricsRegistry.snapshot` sorts by
  metric name, so two runs that record the same values serialise to the
  same bytes regardless of registration order;
* **bounded state** — histograms keep count/total/min/max plus a fixed set
  of log-spaced bucket counts (no sample reservoirs), so a registry never
  grows with the number of observations while still supporting the
  p50/p95 estimates of the attribution layer.
"""

from __future__ import annotations

from bisect import bisect_right
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.timing import wall_clock

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "escape_metric_key",
    "split_metric_name",
]


def escape_metric_key(key: str) -> str:
    """One mapping key as a metric-name component: ``.`` and ``\\`` escaped.

    :meth:`MetricsRegistry.absorb` joins nested mapping keys with ``.``; a
    key that itself contains a dot (legacy dicts keyed by dotted paths or
    by metric names) would otherwise be indistinguishable from nesting.
    """
    return key.replace("\\", "\\\\").replace(".", "\\.")


def split_metric_name(name: str) -> list[str]:
    """Invert the dotted flattening of :meth:`MetricsRegistry.absorb`.

    Splits on unescaped dots and unescapes each component, so
    ``split_metric_name("pool.a\\.b") == ["pool", "a.b"]``.
    """
    components: list[str] = []
    current: list[str] = []
    index = 0
    while index < len(name):
        char = name[index]
        if char == "\\" and index + 1 < len(name):
            current.append(name[index + 1])
            index += 2
        elif char == ".":
            components.append("".join(current))
            current = []
            index += 1
        else:
            current.append(char)
            index += 1
    components.append("".join(current))
    return components

#: Upper bounds of the fixed log-spaced quantile buckets: four per decade
#: from 1e-12 to 1e6 (covers PCG residuals through campaign walls).  The
#: bucket list is a constant, so histogram state stays bounded at
#: ``len(_BUCKET_BOUNDS) + 1`` integers regardless of observation count.
_BUCKET_BOUNDS = tuple(10.0 ** (exponent / 4.0) for exponent in range(-48, 25))


@dataclass
class Counter:
    """A monotonically increasing count (events, retries, cache hits)."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> float:
        """Increase the counter and return the new value."""
        self.value += float(amount)
        return self.value


@dataclass
class Gauge:
    """A point-in-time value that may go up or down (sizes, occupancy)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> float:
        """Replace the gauge value."""
        self.value = float(value)
        return self.value


@dataclass
class Histogram:
    """Bounded summary of a value stream: count, total, min, max, buckets.

    Deliberately reservoir-free — the registry must stay O(metrics), not
    O(observations).  Besides the mean/extremes the BENCH tables need, a
    fixed set of log-spaced bucket counts supports :meth:`quantile`
    estimates (p50/p95 of span durations in the attribution layer) without
    ever retaining samples.
    """

    name: str
    count: int = 0
    total: float = 0.0
    minimum: float | None = None
    maximum: float | None = None
    #: Lazily allocated bucket counts (``len(_BUCKET_BOUNDS) + 1`` slots;
    #: the last is the overflow bucket).  ``None`` until the first observe,
    #: so empty histograms stay tiny.
    _buckets: list[int] | None = field(default=None, repr=False)

    def observe(self, value: float) -> None:
        """Fold one observation into the summary."""
        value = float(value)
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        if self._buckets is None:
            self._buckets = [0] * (len(_BUCKET_BOUNDS) + 1)
        self._buckets[bisect_right(_BUCKET_BOUNDS, value)] += 1

    @property
    def mean(self) -> float:
        """Mean of the observed values (0 when empty)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def quantile(self, q: float) -> float:
        """Bucket-estimated ``q``-quantile (0 <= q <= 1) of the stream.

        Resolution is the bucket width (a quarter decade); the estimate is
        the geometric bucket midpoint clamped into ``[min, max]``, so
        single-bucket streams return exact values.  Deterministic for a
        given observation multiset — bucket counts don't depend on order.
        """
        if self.count == 0 or self._buckets is None:
            return 0.0
        target = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self._buckets):
            cumulative += bucket_count
            if cumulative >= target and bucket_count:
                if index == 0:
                    estimate = _BUCKET_BOUNDS[0]
                elif index == len(_BUCKET_BOUNDS):
                    estimate = _BUCKET_BOUNDS[-1]
                else:
                    low, high = _BUCKET_BOUNDS[index - 1], _BUCKET_BOUNDS[index]
                    estimate = (low * high) ** 0.5
                low_clamp = self.minimum if self.minimum is not None else estimate
                high_clamp = self.maximum if self.maximum is not None else estimate
                return min(max(estimate, low_clamp), high_clamp)
        return self.maximum if self.maximum is not None else 0.0

    def summary(self) -> dict[str, float]:
        """The exportable count/total/min/max summary."""
        return {
            "count": float(self.count),
            "total": self.total,
            "min": 0.0 if self.minimum is None else self.minimum,
            "max": 0.0 if self.maximum is None else self.maximum,
        }


class MetricsRegistry:
    """Get-or-create registry of named counters, gauges and histograms."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- get-or-create accessors ------------------------------------------

    def counter(self, name: str) -> Counter:
        """The counter named ``name``, created at zero on first use."""
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name``, created at zero on first use."""
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        """The histogram named ``name``, created empty on first use."""
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name)
        return metric

    # -- convenience recording --------------------------------------------

    def inc(self, name: str, amount: float = 1.0) -> float:
        """Increment counter ``name`` (created on first use)."""
        return self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> float:
        """Set gauge ``name`` (created on first use)."""
        return self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        """Fold one observation into histogram ``name``."""
        self.histogram(name).observe(value)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time a ``with`` block into histogram ``name`` (seconds)."""
        start = wall_clock()
        try:
            yield
        finally:
            self.observe(name, wall_clock() - start)

    def absorb(self, values: Mapping[str, Any], prefix: str = "") -> None:
        """Fold a legacy stats mapping into gauges, one per numeric leaf.

        Nested mappings flatten with dotted names
        (``pool.health.retries``); booleans coerce to 0/1; non-numeric
        leaves are skipped.  This is the migration path for the historical
        ``cache_stats`` / ``PoolHealth.counters()`` dicts: their values land
        in the registry under stable dotted names without every producer
        rewriting at once.

        Keys that themselves contain ``.`` (or ``\\``) are escaped via
        :func:`escape_metric_key`, so ``{"a": {"b": 1}}`` and
        ``{"a.b": 2}`` land under distinct names (``a.b`` vs ``a\\.b``)
        instead of silently colliding — snapshot consumers can invert the
        flattening with :func:`split_metric_name`.
        """
        for key in sorted(values, key=str):
            value = values[key]
            name = f"{prefix}{escape_metric_key(str(key))}"
            if isinstance(value, Mapping):
                self.absorb(value, prefix=f"{name}.")
            elif isinstance(value, bool):
                self.set_gauge(name, 1.0 if value else 0.0)
            elif isinstance(value, (int, float)):
                self.set_gauge(name, float(value))

    # -- export ------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Sorted, JSON-ready export of every metric in the registry."""
        return {
            "counters": {
                name: self._counters[name].value for name in sorted(self._counters)
            },
            "gauges": {name: self._gauges[name].value for name in sorted(self._gauges)},
            "histograms": {
                name: self._histograms[name].summary()
                for name in sorted(self._histograms)
            },
        }

    def counters_dict(self) -> dict[str, float]:
        """Just the counters, sorted by name (legacy ``stats`` shape)."""
        return {name: self._counters[name].value for name in sorted(self._counters)}
