"""Counters, gauges and histograms behind one deterministic registry.

The tree used to scatter its runtime numbers across ad-hoc dicts: the
campaign runner's ``timings``, the worker pool's ``_stats`` counters, the
``PoolHealth`` incident counters, the geometry/cluster-plan ``cache_stats``.
:class:`MetricsRegistry` unifies them behind one get-or-create API with a
sorted :meth:`~MetricsRegistry.snapshot` export, so every subsystem reports
through the same vocabulary and a run's metric state can be written into its
:class:`~repro.observe.manifest.RunManifest` verbatim.

Design constraints, shared with the tracer:

* **zero dependencies** — plain Python, no numpy, importable everywhere;
* **deterministic export** — :meth:`~MetricsRegistry.snapshot` sorts by
  metric name, so two runs that record the same values serialise to the
  same bytes regardless of registration order;
* **bounded state** — histograms keep count/total/min/max only (no sample
  reservoirs), so a registry never grows with the number of observations.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator, Mapping

from repro.timing import wall_clock

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


@dataclass
class Counter:
    """A monotonically increasing count (events, retries, cache hits)."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> float:
        """Increase the counter and return the new value."""
        self.value += float(amount)
        return self.value


@dataclass
class Gauge:
    """A point-in-time value that may go up or down (sizes, occupancy)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> float:
        """Replace the gauge value."""
        self.value = float(value)
        return self.value


@dataclass
class Histogram:
    """Bounded summary of a value stream: count, total, min, max.

    Deliberately reservoir-free — the registry must stay O(metrics), not
    O(observations) — which is enough for the mean/extremes reporting the
    BENCH tables and manifests need.
    """

    name: str
    count: int = 0
    total: float = 0.0
    minimum: float | None = None
    maximum: float | None = None

    def observe(self, value: float) -> None:
        """Fold one observation into the summary."""
        value = float(value)
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        """Mean of the observed values (0 when empty)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def summary(self) -> dict[str, float]:
        """The exportable count/total/min/max summary."""
        return {
            "count": float(self.count),
            "total": self.total,
            "min": 0.0 if self.minimum is None else self.minimum,
            "max": 0.0 if self.maximum is None else self.maximum,
        }


class MetricsRegistry:
    """Get-or-create registry of named counters, gauges and histograms."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- get-or-create accessors ------------------------------------------

    def counter(self, name: str) -> Counter:
        """The counter named ``name``, created at zero on first use."""
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name``, created at zero on first use."""
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        """The histogram named ``name``, created empty on first use."""
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name)
        return metric

    # -- convenience recording --------------------------------------------

    def inc(self, name: str, amount: float = 1.0) -> float:
        """Increment counter ``name`` (created on first use)."""
        return self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> float:
        """Set gauge ``name`` (created on first use)."""
        return self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        """Fold one observation into histogram ``name``."""
        self.histogram(name).observe(value)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time a ``with`` block into histogram ``name`` (seconds)."""
        start = wall_clock()
        try:
            yield
        finally:
            self.observe(name, wall_clock() - start)

    def absorb(self, values: Mapping[str, Any], prefix: str = "") -> None:
        """Fold a legacy stats mapping into gauges, one per numeric leaf.

        Nested mappings flatten with dotted names
        (``pool.health.retries``); booleans coerce to 0/1; non-numeric
        leaves are skipped.  This is the migration path for the historical
        ``cache_stats`` / ``PoolHealth.counters()`` dicts: their values land
        in the registry under stable dotted names without every producer
        rewriting at once.
        """
        for key in sorted(values):
            value = values[key]
            name = f"{prefix}{key}"
            if isinstance(value, Mapping):
                self.absorb(value, prefix=f"{name}.")
            elif isinstance(value, bool):
                self.set_gauge(name, 1.0 if value else 0.0)
            elif isinstance(value, (int, float)):
                self.set_gauge(name, float(value))

    # -- export ------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Sorted, JSON-ready export of every metric in the registry."""
        return {
            "counters": {
                name: self._counters[name].value for name in sorted(self._counters)
            },
            "gauges": {name: self._gauges[name].value for name in sorted(self._gauges)},
            "histograms": {
                name: self._histograms[name].summary()
                for name in sorted(self._histograms)
            },
        }

    def counters_dict(self) -> dict[str, float]:
        """Just the counters, sorted by name (legacy ``stats`` shape)."""
        return {name: self._counters[name].value for name in sorted(self._counters)}
