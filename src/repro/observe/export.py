"""Trace sinks: JSONL export/import, canonical projection, tree renderer.

Three views of one recorded span tree:

* :func:`write_trace_jsonl` / :func:`read_trace_jsonl` — the full lossless
  record (attributes, volatile data, durations, events), one JSON object per
  line in depth-first pre-order with parent pointers;
* :func:`canonical_trace_lines` — the deterministic projection: ``"span"``
  nodes only, deterministic attributes only, no durations, no volatile data,
  sorted JSON keys.  Two runs of the same campaign on different pool worker
  counts (or one recovered from injected faults) must produce byte-identical
  canonical lines — the golden determinism suite asserts exactly this;
* :func:`format_trace_tree` — the human renderer behind
  ``python -m repro trace run.jsonl``.

:func:`worker_timeline` folds the pool's dispatch/result events into a
per-slot busy/utilization report.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Sequence

from repro.observe.trace import Span, assign_span_ids

__all__ = [
    "canonical_trace_lines",
    "canonical_trace_text",
    "format_trace_tree",
    "read_trace_jsonl",
    "trace_records",
    "worker_timeline",
    "write_trace_jsonl",
]


def _ensure_ids(roots: Sequence[Span]) -> None:
    if any(root.span_id == "" for root in roots):
        assign_span_ids(list(roots))


def trace_records(roots: Sequence[Span]) -> list[dict[str, Any]]:
    """Flat depth-first records of the full tree, parent-linked by id."""
    _ensure_ids(roots)
    records: list[dict[str, Any]] = []

    def _emit(node: Span, parent_id: str | None) -> None:
        record: dict[str, Any] = {
            "id": node.span_id,
            "parent": parent_id,
            "kind": node.kind,
            "name": node.name,
            "attrs": node.attributes,
            "volatile": node.volatile,
            "duration_seconds": node.duration_seconds,
        }
        records.append(record)
        for child in node.children:
            _emit(child, node.span_id)

    for root in roots:
        _emit(root, None)
    return records


def write_trace_jsonl(path: Path | str, roots: Sequence[Span]) -> Path:
    """Write the full trace as JSONL (one node per line, sorted keys)."""
    path = Path(path)
    lines = [json.dumps(record, sort_keys=True, default=repr) for record in trace_records(roots)]
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


def read_trace_jsonl(path: Path | str) -> list[Span]:
    """Rebuild the span tree from a :func:`write_trace_jsonl` file."""
    roots: list[Span] = []
    by_id: dict[str, Span] = {}
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        node = Span(
            name=record["name"],
            kind=record.get("kind", "span"),
            attributes=dict(record.get("attrs", {})),
            volatile=dict(record.get("volatile", {})),
            duration_seconds=record.get("duration_seconds"),
            span_id=record["id"],
        )
        by_id[node.span_id] = node
        parent_id = record.get("parent")
        if parent_id is None:
            roots.append(node)
        else:
            parent = by_id.get(parent_id)
            if parent is None:  # orphan (truncated file): promote to root
                roots.append(node)
            else:
                parent.children.append(node)
    return roots


def canonical_trace_lines(roots: Sequence[Span]) -> list[str]:
    """The deterministic projection: span nodes, attributes, ids — nothing else.

    Everything scheduling- or host-dependent is stripped: events, volatile
    payloads and durations.  What remains is a pure function of the run's
    inputs, so these lines are byte-identical across pool worker counts and
    across fault-injected runs that recovered to the same result.
    """
    _ensure_ids(roots)
    lines: list[str] = []

    def _emit(node: Span, parent_id: str | None) -> None:
        if node.kind != "span":
            return
        lines.append(
            json.dumps(
                {
                    "attrs": node.attributes,
                    "id": node.span_id,
                    "name": node.name,
                    "parent": parent_id,
                },
                sort_keys=True,
                default=repr,
            )
        )
        for child in node.children:
            _emit(child, node.span_id)

    for root in roots:
        _emit(root, None)
    return lines


def canonical_trace_text(roots: Sequence[Span]) -> str:
    """:func:`canonical_trace_lines` joined into one comparable blob."""
    return "\n".join(canonical_trace_lines(roots)) + "\n"


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _format_payload(payload: dict[str, Any], limit: int = 6) -> str:
    parts = [f"{key}={_format_value(payload[key])}" for key in list(payload)[:limit]]
    if len(payload) > limit:
        parts.append(f"+{len(payload) - limit} more")
    return " ".join(parts)


def format_trace_tree(
    roots: Sequence[Span],
    durations: bool = True,
    events: bool = True,
    max_children: int = 40,
) -> str:
    """Human-readable tree rendering of a trace.

    ``max_children`` elides the middle of very wide sibling runs (per-block
    spans of a big assembly) so the rendering stays terminal-sized; set it
    ``<= 0`` to disable eliding.
    """
    out: list[str] = []

    def _label(node: Span) -> str:
        parts = [node.name]
        if durations and node.duration_seconds is not None and node.kind == "span":
            parts.append(f"({node.duration_seconds:.3f}s)")
        payload = node.attributes if node.kind == "span" else node.volatile
        if payload:
            parts.append(_format_payload(payload))
        if node.kind == "event":
            parts.insert(0, "!")
        return "  ".join(parts)

    def _children(node: Span) -> list[Span | None]:
        kept = [c for c in node.children if events or c.kind == "span"]
        if max_children > 0 and len(kept) > max_children:
            head = kept[: max_children // 2]
            tail = kept[-(max_children - max_children // 2) :]
            return [*head, None, *tail]  # None marks the elision
        return list(kept)

    def _emit(node: Span | None, prefix: str, is_last: bool) -> None:
        connector = "└─ " if is_last else "├─ "
        if node is None:
            out.append(f"{prefix}{connector}…")
            return
        out.append(f"{prefix}{connector}{_label(node)}")
        child_prefix = prefix + ("   " if is_last else "│  ")
        kids = _children(node)
        for index, child in enumerate(kids):
            _emit(child, child_prefix, index == len(kids) - 1)

    for root in roots:
        out.append(_label(root))
        kids = _children(root)
        for index, child in enumerate(kids):
            _emit(child, "", index == len(kids) - 1)
    return "\n".join(out)


def worker_timeline(roots: "Span | Sequence[Span]") -> dict[str, Any]:
    """Per-slot busy time and utilization from the pool's chunk events.

    Pairs ``pool.dispatch`` with ``pool.result`` events on ``(slot, job)``
    volatile coordinates; the busy fraction is measured against the span of
    first dispatch → last result.  Everything here is volatile by nature —
    it describes scheduling, not results — and is meant for human perf
    reading, not for determinism assertions.

    Tolerant by design: accepts a single root :class:`Span` or a sequence,
    works on traces whose pool events have no enclosing group span (a
    standalone ``GroundingAnalysis`` run records them as roots), and skips
    malformed events (missing or non-numeric ``slot``/``t``) instead of
    raising — a truncated trace still yields a timeline.
    """
    if isinstance(roots, Span):
        roots = [roots]
    dispatches: dict[tuple[int, int], float] = {}
    busy: dict[int, float] = {}
    chunks: dict[int, int] = {}
    first: float | None = None
    last: float | None = None
    for root in roots:
        for node in root.walk():
            if node.kind != "event":
                continue
            data = node.volatile
            try:
                key = (int(data["slot"]), int(data.get("job", -1)))
                t = float(data["t"])
            except (KeyError, TypeError, ValueError):
                continue
            if node.name == "pool.dispatch":
                dispatches[key] = t
                first = t if first is None else min(first, t)
            elif node.name == "pool.result":
                start = dispatches.pop(key, None)
                if start is not None:
                    slot = key[0]
                    busy[slot] = busy.get(slot, 0.0) + (t - start)
                    chunks[slot] = chunks.get(slot, 0) + 1
                    last = t if last is None else max(last, t)
    span = 0.0 if first is None or last is None else max(last - first, 0.0)
    slots = {
        str(slot): {
            "busy_seconds": busy[slot],
            "chunks": chunks.get(slot, 0),
            "utilization": (busy[slot] / span) if span > 0.0 else 0.0,
        }
        for slot in sorted(busy)
    }
    return {"span_seconds": span, "slots": slots}
