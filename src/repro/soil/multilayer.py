"""General multi-layer soil model (three or more layers).

The paper restricts its parallel study to two-layer models and notes that
three- and four-layer models involve double and triple image series with an
even poorer convergence rate.  This class describes the general stratification;
the corresponding integral kernel is evaluated numerically from the
Hankel-transform (recursive reflection coefficient) representation in
:mod:`repro.kernels.multilayer_kernel` rather than from explicit nested image
series.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import SoilModelError
from repro.soil.base import SoilModel
from repro.soil.two_layer import TwoLayerSoil
from repro.soil.uniform import UniformSoil

__all__ = ["MultiLayerSoil"]


class MultiLayerSoil(SoilModel):
    """Horizontally stratified soil with an arbitrary number of layers.

    Parameters
    ----------
    conductivities:
        Layer conductivities, top to bottom, in (Ω·m)⁻¹.
    thicknesses:
        Thicknesses of every layer except the last (which extends to infinite
        depth), in metres.
    """

    def __init__(self, conductivities: Sequence[float], thicknesses: Sequence[float]) -> None:
        conductivities = tuple(float(g) for g in conductivities)
        thicknesses = tuple(float(t) for t in thicknesses)
        self._validate(conductivities, thicknesses)
        self._conductivities = conductivities
        self._thicknesses = thicknesses

    @classmethod
    def from_resistivities(
        cls, resistivities: Sequence[float], thicknesses: Sequence[float]
    ) -> "MultiLayerSoil":
        """Build the model from layer resistivities in Ω·m."""
        resistivities = tuple(float(r) for r in resistivities)
        if any(r <= 0.0 for r in resistivities):
            raise SoilModelError("resistivities must be positive")
        return cls(tuple(1.0 / r for r in resistivities), thicknesses)

    # -- SoilModel interface ----------------------------------------------------

    @property
    def conductivities(self) -> tuple[float, ...]:
        return self._conductivities

    @property
    def thicknesses(self) -> tuple[float, ...]:
        return self._thicknesses

    # -- conversions -------------------------------------------------------------

    def simplify(self) -> SoilModel:
        """Return the most specific model for the data.

        * one layer  -> :class:`~repro.soil.uniform.UniformSoil`
        * two layers -> :class:`~repro.soil.two_layer.TwoLayerSoil`
        * otherwise  -> ``self``

        Adjacent layers with (numerically) identical conductivities are merged
        before deciding.
        """
        merged_gammas: list[float] = [self._conductivities[0]]
        merged_thicknesses: list[float] = []
        pending_thickness = list(self._thicknesses) + [float("inf")]
        accumulated = pending_thickness[0]
        for gamma, thickness in zip(self._conductivities[1:], pending_thickness[1:]):
            if np.isclose(gamma, merged_gammas[-1], rtol=1e-12, atol=0.0):
                accumulated += thickness
            else:
                merged_thicknesses.append(accumulated)
                merged_gammas.append(gamma)
                accumulated = thickness
        if len(merged_gammas) == 1:
            return UniformSoil(merged_gammas[0])
        if len(merged_gammas) == 2:
            return TwoLayerSoil(merged_gammas[0], merged_gammas[1], merged_thicknesses[0])
        return MultiLayerSoil(tuple(merged_gammas), tuple(merged_thicknesses))

    def reflection_coefficients(self) -> tuple[float, ...]:
        """Interface reflection coefficients κ_c = (γ_c − γ_{c+1}) / (γ_c + γ_{c+1})."""
        gammas = self._conductivities
        return tuple(
            (gammas[c] - gammas[c + 1]) / (gammas[c] + gammas[c + 1])
            for c in range(len(gammas) - 1)
        )
