"""Least-squares interpretation of Wenner soundings as a two-layer soil.

Given a measured apparent-resistivity curve ``ρ_a(a)``, find the two-layer
model (ρ₁, ρ₂, h) whose forward response (:func:`repro.soil.wenner
.wenner_apparent_resistivity`) best matches it.  The optimisation works on the
logarithms of the three parameters (they are positive and span orders of
magnitude) and is restarted from several initial guesses to avoid the local
minima typical of resistivity inversion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro.exceptions import SoilModelError
from repro.soil.two_layer import TwoLayerSoil
from repro.soil.wenner import WennerSurvey, wenner_apparent_resistivity

__all__ = ["TwoLayerFit", "fit_two_layer_model"]


@dataclass(frozen=True)
class TwoLayerFit:
    """Result of a two-layer inversion."""

    #: The fitted soil model.
    soil: TwoLayerSoil
    #: Root-mean-square relative misfit between model and measurements.
    rms_relative_error: float
    #: Number of forward evaluations spent by the optimiser.
    n_evaluations: int
    #: Whether the optimiser reported convergence.
    converged: bool

    @property
    def upper_resistivity(self) -> float:
        """Fitted resistivity of the top layer [Ω·m]."""
        return 1.0 / self.soil.upper_conductivity

    @property
    def lower_resistivity(self) -> float:
        """Fitted resistivity of the bottom half-space [Ω·m]."""
        return 1.0 / self.soil.lower_conductivity

    @property
    def thickness(self) -> float:
        """Fitted thickness of the top layer [m]."""
        return self.soil.upper_thickness


def _residuals(log_params: np.ndarray, survey: WennerSurvey) -> np.ndarray:
    rho1, rho2, h = np.exp(log_params)
    soil = TwoLayerSoil.from_resistivities(rho1, rho2, h)
    model = wenner_apparent_resistivity(soil, survey.spacings)
    # Relative residuals in log space behave well for resistivities spanning
    # orders of magnitude.
    return np.log(model) - np.log(survey.apparent_resistivities)


def fit_two_layer_model(
    survey: WennerSurvey,
    n_starts: int = 6,
    max_nfev: int = 400,
    seed: int = 0,
) -> TwoLayerFit:
    """Fit a two-layer soil model to a Wenner survey.

    Parameters
    ----------
    survey:
        The measured (spacing, apparent resistivity) pairs; at least three
        measurements are required to constrain the three parameters.
    n_starts:
        Number of random multi-start initial guesses (in addition to the
        deterministic guess derived from the short- and long-spacing
        asymptotes).
    max_nfev:
        Maximum forward evaluations per start.
    seed:
        Seed of the random-start generator.

    Returns
    -------
    TwoLayerFit
        Best fit across all starts.
    """
    if survey.n_measurements < 3:
        raise SoilModelError(
            "at least three Wenner measurements are needed to fit (ρ1, ρ2, h)"
        )

    spacings = survey.spacings
    rho_measured = survey.apparent_resistivities

    # Asymptotic initial guess: shortest spacing ~ rho1, longest ~ rho2,
    # thickness ~ geometric mean of the spacings.
    order = np.argsort(spacings)
    rho1_guess = float(rho_measured[order[0]])
    rho2_guess = float(rho_measured[order[-1]])
    h_guess = float(np.exp(np.mean(np.log(spacings))))

    rng = np.random.default_rng(seed)
    starts = [np.log([rho1_guess, rho2_guess, h_guess])]
    for _ in range(max(0, n_starts)):
        factors = rng.uniform(-1.0, 1.0, size=3)  # up to one decade of perturbation
        starts.append(np.log([rho1_guess, rho2_guess, h_guess]) + factors * np.log(10.0))

    lower_bounds = np.log([1e-3, 1e-3, 1e-3])
    upper_bounds = np.log([1e7, 1e7, 1e4])

    best: TwoLayerFit | None = None
    total_evaluations = 0
    for start in starts:
        start_clipped = np.clip(start, lower_bounds + 1e-9, upper_bounds - 1e-9)
        result = optimize.least_squares(
            _residuals,
            start_clipped,
            args=(survey,),
            bounds=(lower_bounds, upper_bounds),
            max_nfev=max_nfev,
            xtol=1e-12,
            ftol=1e-12,
        )
        total_evaluations += int(result.nfev)
        rho1, rho2, h = np.exp(result.x)
        soil = TwoLayerSoil.from_resistivities(float(rho1), float(rho2), float(h))
        model = wenner_apparent_resistivity(soil, spacings)
        rms = float(np.sqrt(np.mean(((model - rho_measured) / rho_measured) ** 2)))
        candidate = TwoLayerFit(
            soil=soil,
            rms_relative_error=rms,
            n_evaluations=total_evaluations,
            converged=bool(result.success),
        )
        if best is None or candidate.rms_relative_error < best.rms_relative_error:
            best = candidate

    assert best is not None  # guaranteed: at least one start
    return TwoLayerFit(
        soil=best.soil,
        rms_relative_error=best.rms_relative_error,
        n_evaluations=total_evaluations,
        converged=best.converged,
    )
