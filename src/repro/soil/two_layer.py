"""Two-layer soil model.

The paper's central soil model: an upper layer of conductivity ``γ_1`` and
thickness ``h`` over a lower half-space of conductivity ``γ_2``.  The key
parameter of the image-series kernels is the ratio (paper, Section 3)

    ``κ = (γ_1 - γ_2) / (γ_1 + γ_2)``,

whose absolute value is strictly below one for physical conductivities and
controls the convergence rate of the series: the closer the two conductivities,
the faster the series converges (κ → 0 recovers the uniform soil, where only
two image terms remain).
"""

from __future__ import annotations

from repro.exceptions import SoilModelError
from repro.soil.base import SoilModel
from repro.soil.uniform import UniformSoil

__all__ = ["TwoLayerSoil"]


class TwoLayerSoil(SoilModel):
    """Upper layer over an infinite lower half-space.

    Parameters
    ----------
    upper_conductivity:
        Conductivity γ₁ of the top layer [(Ω·m)⁻¹].
    lower_conductivity:
        Conductivity γ₂ of the half-space below the interface [(Ω·m)⁻¹].
    upper_thickness:
        Thickness h of the top layer [m].
    """

    def __init__(
        self,
        upper_conductivity: float,
        lower_conductivity: float,
        upper_thickness: float,
    ) -> None:
        self._validate((upper_conductivity, lower_conductivity), (upper_thickness,))
        self._gamma1 = float(upper_conductivity)
        self._gamma2 = float(lower_conductivity)
        self._thickness = float(upper_thickness)

    @classmethod
    def from_resistivities(
        cls, upper_resistivity: float, lower_resistivity: float, upper_thickness: float
    ) -> "TwoLayerSoil":
        """Build the model from layer resistivities in Ω·m."""
        if upper_resistivity <= 0.0 or lower_resistivity <= 0.0:
            raise SoilModelError("resistivities must be positive")
        return cls(1.0 / upper_resistivity, 1.0 / lower_resistivity, upper_thickness)

    # -- named accessors ---------------------------------------------------------

    @property
    def upper_conductivity(self) -> float:
        """Conductivity γ₁ of the top layer [(Ω·m)⁻¹]."""
        return self._gamma1

    @property
    def lower_conductivity(self) -> float:
        """Conductivity γ₂ of the lower half-space [(Ω·m)⁻¹]."""
        return self._gamma2

    @property
    def upper_thickness(self) -> float:
        """Thickness h of the top layer [m]."""
        return self._thickness

    @property
    def kappa(self) -> float:
        """Reflection ratio κ = (γ₁ - γ₂) / (γ₁ + γ₂) (paper, Section 3)."""
        return (self._gamma1 - self._gamma2) / (self._gamma1 + self._gamma2)

    @property
    def resistivity_contrast(self) -> float:
        """Ratio ρ₂ / ρ₁ = γ₁ / γ₂ of the layer resistivities."""
        return self._gamma1 / self._gamma2

    def as_uniform(self, layer: int = 1) -> UniformSoil:
        """The uniform model obtained by keeping only one of the two layers."""
        return UniformSoil(self.conductivity_of_layer(layer))

    # -- SoilModel interface ----------------------------------------------------

    @property
    def conductivities(self) -> tuple[float, ...]:
        return (self._gamma1, self._gamma2)

    @property
    def thicknesses(self) -> tuple[float, ...]:
        return (self._thickness,)
