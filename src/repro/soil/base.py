"""Abstract base class for horizontally stratified soil models.

A soil model is a stack of ``C`` horizontal layers.  Layer ``c`` (1-based, as
in the paper's equation (2.3)) occupies the depth interval between interface
``c - 1`` and interface ``c``; the last layer extends to infinite depth.  Every
layer has a constant, isotropic scalar conductivity ``γ_c`` [(Ω·m)⁻¹].
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.exceptions import SoilModelError

__all__ = ["SoilModel"]


class SoilModel(abc.ABC):
    """Common interface of all horizontally layered soil models."""

    # -- abstract description --------------------------------------------------

    @property
    @abc.abstractmethod
    def conductivities(self) -> tuple[float, ...]:
        """Layer conductivities ``(γ_1, ..., γ_C)`` in (Ω·m)⁻¹, top to bottom."""

    @property
    @abc.abstractmethod
    def thicknesses(self) -> tuple[float, ...]:
        """Thicknesses of the first ``C - 1`` layers [m] (the last is infinite)."""

    # -- derived quantities -----------------------------------------------------

    @property
    def n_layers(self) -> int:
        """Number of layers ``C``."""
        return len(self.conductivities)

    @property
    def resistivities(self) -> tuple[float, ...]:
        """Layer resistivities ``(ρ_1, ..., ρ_C)`` in Ω·m."""
        return tuple(1.0 / g for g in self.conductivities)

    def interface_depths(self) -> tuple[float, ...]:
        """Depths of the layer interfaces [m], strictly increasing.

        There are ``C - 1`` interfaces; a uniform soil has none.
        """
        return tuple(np.cumsum(self.thicknesses).tolist())

    def layer_index(self, depth: float) -> int:
        """1-based index of the layer containing the given depth.

        Points exactly on an interface are assigned to the layer *above* it
        (either convention is acceptable because the potential is continuous
        across interfaces); negative depths (above the surface) raise.
        """
        depth = float(depth)
        if depth < 0.0:
            raise SoilModelError(f"depth {depth} is above the earth surface")
        for index, interface in enumerate(self.interface_depths(), start=1):
            if depth <= interface:
                return index
        return self.n_layers

    def conductivity_at(self, depth: float) -> float:
        """Conductivity of the layer containing ``depth`` [(Ω·m)⁻¹]."""
        return self.conductivities[self.layer_index(depth) - 1]

    def conductivity_of_layer(self, layer: int) -> float:
        """Conductivity of the 1-based layer index [(Ω·m)⁻¹]."""
        if not 1 <= layer <= self.n_layers:
            raise SoilModelError(
                f"layer index {layer} outside the valid range 1..{self.n_layers}"
            )
        return self.conductivities[layer - 1]

    def layer_bounds(self, layer: int) -> tuple[float, float]:
        """Depth interval ``(top, bottom)`` of a 1-based layer (bottom may be inf)."""
        if not 1 <= layer <= self.n_layers:
            raise SoilModelError(
                f"layer index {layer} outside the valid range 1..{self.n_layers}"
            )
        interfaces = (0.0, *self.interface_depths(), float("inf"))
        return (interfaces[layer - 1], interfaces[layer])

    # -- validation helper ------------------------------------------------------

    @staticmethod
    def _validate(conductivities: Sequence[float], thicknesses: Sequence[float]) -> None:
        if len(conductivities) == 0:
            raise SoilModelError("a soil model needs at least one layer")
        if len(thicknesses) != len(conductivities) - 1:
            raise SoilModelError(
                f"{len(conductivities)} layers require {len(conductivities) - 1} "
                f"thicknesses, got {len(thicknesses)}"
            )
        for gamma in conductivities:
            if not np.isfinite(gamma) or gamma <= 0.0:
                raise SoilModelError(f"layer conductivities must be positive, got {gamma!r}")
        for thickness in thicknesses:
            if not np.isfinite(thickness) or thickness <= 0.0:
                raise SoilModelError(f"layer thicknesses must be positive, got {thickness!r}")

    # -- misc -------------------------------------------------------------------

    @property
    def is_uniform(self) -> bool:
        """Whether the model has a single layer."""
        return self.n_layers == 1

    def describe(self) -> str:
        """One-line human readable description."""
        parts = []
        interfaces = (0.0, *self.interface_depths())
        for index, gamma in enumerate(self.conductivities, start=1):
            top = interfaces[index - 1]
            if index < self.n_layers:
                bottom = interfaces[index]
                parts.append(f"layer {index}: γ={gamma:g} (Ω·m)⁻¹, {top:g}–{bottom:g} m")
            else:
                parts.append(f"layer {index}: γ={gamma:g} (Ω·m)⁻¹, below {top:g} m")
        return "; ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.describe()})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SoilModel):
            return NotImplemented
        return (
            self.conductivities == other.conductivities
            and self.thicknesses == other.thicknesses
        )

    def __hash__(self) -> int:
        return hash((self.conductivities, self.thicknesses))

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "type": type(self).__name__,
            "conductivities": list(self.conductivities),
            "thicknesses": list(self.thicknesses),
        }
