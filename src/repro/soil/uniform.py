"""Single-layer ("uniform") soil model.

This is the model used by most classical grounding-analysis methods and the
one for which the paper's BEM formulation "runs in real time in personal
computers": the image series of the kernel collapses to just two terms (the
source and its mirror image above the earth surface).
"""

from __future__ import annotations

from repro.exceptions import SoilModelError
from repro.soil.base import SoilModel

__all__ = ["UniformSoil"]


class UniformSoil(SoilModel):
    """Homogeneous, isotropic soil of a single scalar conductivity.

    Parameters
    ----------
    conductivity:
        Apparent soil conductivity γ in (Ω·m)⁻¹ (the paper's Barberá uniform
        model uses γ = 0.016 (Ω·m)⁻¹, i.e. ρ = 62.5 Ω·m).
    """

    def __init__(self, conductivity: float) -> None:
        self._validate((conductivity,), ())
        self._conductivity = float(conductivity)

    @classmethod
    def from_resistivity(cls, resistivity: float) -> "UniformSoil":
        """Build the model from a resistivity ρ in Ω·m."""
        if resistivity <= 0.0:
            raise SoilModelError(f"resistivity must be positive, got {resistivity!r}")
        return cls(1.0 / float(resistivity))

    @property
    def conductivity(self) -> float:
        """Soil conductivity γ [(Ω·m)⁻¹]."""
        return self._conductivity

    @property
    def resistivity(self) -> float:
        """Soil resistivity ρ [Ω·m]."""
        return 1.0 / self._conductivity

    # -- SoilModel interface ----------------------------------------------------

    @property
    def conductivities(self) -> tuple[float, ...]:
        return (self._conductivity,)

    @property
    def thicknesses(self) -> tuple[float, ...]:
        return ()
