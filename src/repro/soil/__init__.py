"""Soil models for grounding analysis.

The paper analyses grounding grids embedded in *horizontally stratified* soils:
the ground is modelled as ``C`` horizontal layers, each with a constant scalar
conductivity, the last one extending to infinite depth.  This sub-package
provides:

* :class:`~repro.soil.uniform.UniformSoil` — the single-layer ("uniform") model
  that runs in real time on conventional computers,
* :class:`~repro.soil.two_layer.TwoLayerSoil` — the two-layer model that is the
  paper's main subject (and the source of the heavy image series),
* :class:`~repro.soil.multilayer.MultiLayerSoil` — an arbitrary number of
  layers (the paper notes three- and four-layer models need double and triple
  series; we expose them through a numerically integrated kernel),
* a Wenner four-probe measurement forward model and a least-squares inversion
  (:mod:`repro.soil.wenner`, :mod:`repro.soil.inversion`) — the field procedure
  by which the layer parameters are obtained in practice.

Conductivities are expressed in (Ω·m)⁻¹ as in the paper; resistivities in Ω·m.
"""

from repro.soil.base import SoilModel
from repro.soil.uniform import UniformSoil
from repro.soil.two_layer import TwoLayerSoil
from repro.soil.multilayer import MultiLayerSoil
from repro.soil.wenner import wenner_apparent_resistivity, WennerSurvey
from repro.soil.inversion import fit_two_layer_model, TwoLayerFit

__all__ = [
    "SoilModel",
    "UniformSoil",
    "TwoLayerSoil",
    "MultiLayerSoil",
    "wenner_apparent_resistivity",
    "WennerSurvey",
    "fit_two_layer_model",
    "TwoLayerFit",
]
