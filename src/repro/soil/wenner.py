"""Wenner four-probe soil-resistivity sounding (forward model).

The layer conductivities and thicknesses used by the paper "must be
experimentally obtained" (Section 2).  In practice they come from a Wenner
survey: four equally spaced probes are driven into the ground, a current is
injected through the outer pair and the voltage across the inner pair gives an
*apparent resistivity* for each probe spacing ``a``.  Short spacings sample the
shallow soil, long spacings the deep soil; fitting the measured
``ρ_a(a)`` curve yields the layered model (see :mod:`repro.soil.inversion`).

For a two-layer soil the classical expression of the apparent resistivity is

    ``ρ_a(a) = ρ₁ [ 1 + 4 Σ_{n≥1} κⁿ ( (1 + (2 n h / a)²)^{-1/2}
                                        − (4 + (2 n h / a)²)^{-1/2} ) ]``

with ``κ = (ρ₂ − ρ₁)/(ρ₂ + ρ₁) = (γ₁ − γ₂)/(γ₁ + γ₂)`` — the same reflection
ratio that drives the BEM image series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.exceptions import SoilModelError
from repro.soil.base import SoilModel
from repro.soil.two_layer import TwoLayerSoil
from repro.soil.uniform import UniformSoil

__all__ = ["wenner_apparent_resistivity", "WennerSurvey"]


def wenner_apparent_resistivity(
    soil: SoilModel,
    spacings: Sequence[float] | np.ndarray,
    tolerance: float = 1.0e-9,
    max_terms: int = 10_000,
) -> np.ndarray:
    """Apparent resistivity measured by a Wenner array over a layered soil.

    Parameters
    ----------
    soil:
        A uniform or two-layer soil model (deeper stratifications are not
        supported by the closed-form series).
    spacings:
        Probe spacings ``a`` [m]; must be strictly positive.
    tolerance:
        Relative truncation tolerance of the image series.
    max_terms:
        Hard cap on the number of series terms.

    Returns
    -------
    numpy.ndarray
        Apparent resistivities [Ω·m], one per spacing.
    """
    a = np.asarray(spacings, dtype=float)
    if a.ndim == 0:
        a = a.reshape(1)
    if np.any(a <= 0.0) or not np.all(np.isfinite(a)):
        raise SoilModelError("Wenner spacings must be positive and finite")

    if isinstance(soil, UniformSoil) or soil.n_layers == 1:
        return np.full_like(a, 1.0 / soil.conductivities[0])

    if not isinstance(soil, TwoLayerSoil):
        if soil.n_layers == 2:
            soil = TwoLayerSoil(
                soil.conductivities[0], soil.conductivities[1], soil.thicknesses[0]
            )
        else:
            raise SoilModelError(
                "the closed-form Wenner series only supports uniform and two-layer soils; "
                f"got {soil.n_layers} layers"
            )

    rho1 = 1.0 / soil.upper_conductivity
    kappa = soil.kappa
    h = soil.upper_thickness

    if abs(kappa) < 1.0e-15:
        return np.full_like(a, rho1)

    total = np.zeros_like(a)
    for n in range(1, max_terms + 1):
        ratio = 2.0 * n * h / a
        term = kappa**n * (1.0 / np.sqrt(1.0 + ratio**2) - 1.0 / np.sqrt(4.0 + ratio**2))
        total += term
        # The term magnitude is bounded by |kappa|^n; stop when that bound is
        # negligible relative to the accumulated series.
        if abs(kappa) ** n < tolerance * max(1.0, float(np.abs(total).max())):
            break
    return rho1 * (1.0 + 4.0 * total)


@dataclass
class WennerSurvey:
    """A set of Wenner measurements (spacing, apparent resistivity) pairs.

    The class is a thin container used by the inversion routine and the
    examples; it can also synthesise noisy measurements from a known soil model
    for testing and demonstration purposes.
    """

    spacings: np.ndarray
    apparent_resistivities: np.ndarray
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.spacings = np.asarray(self.spacings, dtype=float)
        self.apparent_resistivities = np.asarray(self.apparent_resistivities, dtype=float)
        if self.spacings.shape != self.apparent_resistivities.shape:
            raise SoilModelError("spacings and apparent resistivities must have equal shapes")
        if self.spacings.ndim != 1 or self.spacings.size < 1:
            raise SoilModelError("a survey needs at least one measurement")
        if np.any(self.spacings <= 0.0):
            raise SoilModelError("Wenner spacings must be positive")
        if np.any(self.apparent_resistivities <= 0.0):
            raise SoilModelError("apparent resistivities must be positive")

    @property
    def n_measurements(self) -> int:
        """Number of (spacing, resistivity) pairs."""
        return int(self.spacings.size)

    @classmethod
    def synthetic(
        cls,
        soil: SoilModel,
        spacings: Sequence[float],
        noise_fraction: float = 0.0,
        seed: int = 0,
    ) -> "WennerSurvey":
        """Generate measurements from a known soil model (optionally noisy).

        Parameters
        ----------
        soil:
            The true soil model.
        spacings:
            Probe spacings [m].
        noise_fraction:
            Standard deviation of multiplicative log-normal noise (0 = exact).
        seed:
            Seed of the random generator used for the noise.  Explicit (and
            deterministic by default): synthetic surveys must reproduce
            bit-identically run to run, per the DET001 contract.
        """
        spacings_arr = np.asarray(spacings, dtype=float)
        rho = wenner_apparent_resistivity(soil, spacings_arr)
        if noise_fraction > 0.0:
            rng = np.random.default_rng(seed)
            rho = rho * np.exp(rng.normal(0.0, noise_fraction, size=rho.shape))
        return cls(
            spacings=spacings_arr,
            apparent_resistivities=rho,
            metadata={"synthetic": True, "noise_fraction": noise_fraction},
        )
