"""Command-line interface of the grounding-analysis library.

Five sub-commands cover the common workflows::

    python -m repro analyze  --grid grid.json --rho1 400 --rho2 100 --h 1.5 --gpr 10000
    python -m repro barbera  --case two_layer
    python -m repro balaidos --model C
    python -m repro scaling  --case barbera/two_layer --workers 1 2 4 8
    python -m repro scaling  --case barbera/two_layer --workers 1 2 --hierarchical
    python -m repro campaign --scenarios 12 --workers 2 --group-concurrency 2
    python -m repro campaign --scenarios 6 --workers 2 --trace run.jsonl --profile
    python -m repro report   run.jsonl --baseline other.jsonl --markdown

``analyze`` reads a grid saved with :func:`repro.geometry.io.save_grid`,
builds a uniform or two-layer soil from the resistivity options, runs the BEM
analysis (optionally in parallel) and prints the design report.  The
``barbera`` / ``balaidos`` commands run the paper's case studies, and
``scaling`` reproduces the parallel study on the local machine —
``--hierarchical`` switches it to the sharded hierarchical block backend
(assemble+solve vs the serial hierarchical engine).  ``campaign`` runs the
demo batch grounding study of :mod:`repro.campaign` — many soil/injection/rod
variants of one grid analysed with cross-scenario reuse, optionally on a
persistent worker pool — and prints the per-scenario safety table plus the
reuse statistics.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro._version import __version__

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing and documentation)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel BEM analysis of substation earthing systems in layered soils.",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    analyze = subparsers.add_parser("analyze", help="analyse a grid file")
    analyze.add_argument("--grid", required=True, help="path to a grid JSON file")
    analyze.add_argument("--gpr", type=float, default=10_000.0, help="ground potential rise [V]")
    analyze.add_argument("--rho1", type=float, required=True, help="upper-layer resistivity [ohm*m]")
    analyze.add_argument(
        "--rho2", type=float, default=None, help="lower-layer resistivity [ohm*m] (omit for uniform soil)"
    )
    analyze.add_argument("--h", type=float, default=None, help="upper-layer thickness [m]")
    analyze.add_argument("--solver", default="pcg", help="cholesky | lu | cg | pcg")
    analyze.add_argument(
        "--element-type", default="linear", choices=("linear", "constant"), help="trial functions"
    )
    analyze.add_argument("--workers", type=int, default=0, help="parallel workers (0 = sequential)")
    analyze.add_argument("--schedule", default="Dynamic,1", help="loop schedule, e.g. Static,4")
    analyze.add_argument("--workdir", default=None, help="directory for result files")

    barbera = subparsers.add_parser("barbera", help="run the paper's Example 1 (Barberá)")
    barbera.add_argument("--case", default="two_layer", choices=("uniform", "two_layer"))
    barbera.add_argument("--coarse", action="store_true", help="use the reduced test-size grid")
    barbera.add_argument("--workers", type=int, default=0)

    balaidos = subparsers.add_parser("balaidos", help="run the paper's Example 2 (Balaidos)")
    balaidos.add_argument("--model", default="A", choices=("A", "B", "C"))
    balaidos.add_argument("--workers", type=int, default=0)

    scaling = subparsers.add_parser("scaling", help="reproduce the parallel study (Section 6)")
    scaling.add_argument("--case", default="barbera/two_layer")
    scaling.add_argument("--coarse", action="store_true")
    scaling.add_argument(
        "--workers", type=int, nargs="+", default=[1, 2, 4, 8], help="processor counts to measure"
    )
    scaling.add_argument("--schedule", default="Dynamic,1")
    scaling.add_argument(
        "--simulate-up-to", type=int, default=64, help="largest simulated processor count"
    )
    scaling.add_argument(
        "--hierarchical",
        action="store_true",
        help="measure the sharded hierarchical block backend instead of the column loop",
    )
    scaling.add_argument(
        "--trace",
        default=None,
        metavar="OUT.JSONL",
        help="record the study under a repro.observe span tree and write it "
        "as JSONL (a RunManifest lands next to it)",
    )
    scaling.add_argument(
        "--profile",
        action="store_true",
        help="opt-in per-span CPU + tracemalloc profiling (volatile stamps "
        "in the trace; requires --trace)",
    )

    campaign = subparsers.add_parser(
        "campaign", help="run the demo batch grounding study (scenario campaign engine)"
    )
    campaign.add_argument(
        "--scenarios", type=int, default=12, help="number of scenarios (1..20)"
    )
    campaign.add_argument(
        "--workers",
        type=int,
        default=0,
        help="persistent pool workers for the sharded assemblies (0 = in-process)",
    )
    campaign.add_argument(
        "--nx", type=int, default=8, help="meshes per side of the shared grid"
    )
    campaign.add_argument(
        "--group-concurrency",
        type=int,
        default=1,
        help="structure groups kept in flight concurrently on the worker pool "
        "(results are bit-identical for any value; >1 requires --workers)",
    )
    campaign.add_argument(
        "--dense",
        action="store_true",
        help="use the dense assembly engine instead of the hierarchical operator",
    )
    campaign.add_argument(
        "--no-safety",
        action="store_true",
        help="skip the touch/step safety rasters (timing studies)",
    )
    campaign.add_argument(
        "--checkpoint",
        default=None,
        help="checkpoint file: completed structure groups persist there, and a "
        "rerun with the same path resumes recomputing only incomplete groups",
    )
    campaign.add_argument(
        "--chunk-timeout",
        type=float,
        default=None,
        help="per-chunk deadline [s] for the pool workers (hung workers are "
        "SIGKILLed and their shards retried); requires --workers",
    )
    campaign.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help="per-chunk retry budget before the pool degrades to serial "
        "execution (default 3); requires --workers",
    )
    campaign.add_argument(
        "--trace",
        default=None,
        metavar="OUT.JSONL",
        help="record the run under a repro.observe span tree and write it as "
        "JSONL (a RunManifest lands next to it); render with "
        "'python -m repro trace OUT.JSONL'",
    )

    campaign.add_argument(
        "--profile",
        action="store_true",
        help="opt-in per-span CPU + tracemalloc profiling (volatile stamps "
        "in the trace; requires --trace)",
    )

    report = subparsers.add_parser(
        "report",
        help="render an aggregated performance report from a recorded trace",
    )
    report.add_argument("path", help="a trace JSONL file written by --trace")
    report.add_argument(
        "--baseline",
        default=None,
        metavar="OTHER.JSONL",
        help="second trace to diff against (structural + wall-time "
        "attribution sections)",
    )
    report.add_argument(
        "--manifest",
        default=None,
        help="manifest JSON path (default: <trace>.manifest.json when present)",
    )
    report.add_argument(
        "--markdown", action="store_true", help="render Markdown instead of plain text"
    )
    report.add_argument(
        "--top", type=int, default=10, help="rows in the top-self-time table"
    )
    report.add_argument(
        "--noise-floor",
        type=float,
        default=None,
        help="seconds below which a diff subtree is noise (default 0.005)",
    )
    report.add_argument(
        "--deterministic-only",
        action="store_true",
        help="print only the byte-comparable deterministic section",
    )
    report.add_argument(
        "--output", default=None, help="write the report to a file instead of stdout"
    )

    trace = subparsers.add_parser(
        "trace", help="render a recorded JSONL trace as a span tree"
    )
    trace.add_argument("path", help="a trace JSONL file written by --trace")
    trace.add_argument(
        "--no-durations",
        action="store_true",
        help="hide wall-clock durations (the deterministic projection)",
    )
    trace.add_argument(
        "--no-events", action="store_true", help="hide scheduling events"
    )
    trace.add_argument(
        "--canonical",
        action="store_true",
        help="print the canonical span projection (the byte-comparable JSONL "
        "lines) instead of the tree",
    )
    return parser


def _make_soil(rho1: float, rho2: float | None, h: float | None):
    from repro.exceptions import ReproError
    from repro.soil.two_layer import TwoLayerSoil
    from repro.soil.uniform import UniformSoil

    if rho2 is None:
        return UniformSoil.from_resistivity(rho1)
    if h is None:
        raise ReproError("--h (upper-layer thickness) is required for a two-layer soil")
    return TwoLayerSoil.from_resistivities(rho1, rho2, h)


def _make_parallel(workers: int, schedule: str):
    if workers and workers > 1:
        from repro.parallel.options import ParallelOptions
        from repro.parallel.schedule import Schedule

        return ParallelOptions(n_workers=workers, schedule=Schedule.parse(schedule))
    return None


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.cad.project import GroundingProject
    from repro.cad.report import design_report

    soil = _make_soil(args.rho1, args.rho2, args.h)
    project = GroundingProject(
        args.grid,
        soil,
        gpr=args.gpr,
        element_type=args.element_type,
        solver=args.solver,
        parallel=_make_parallel(args.workers, args.schedule),
        workdir=args.workdir,
    )
    results = project.run()
    print(design_report(results))
    return 0


def _cmd_barbera(args: argparse.Namespace) -> int:
    from repro.cad.report import design_report
    from repro.experiments.barbera import BARBERA_PAPER_RESULTS, run_barbera

    results = run_barbera(
        args.case, coarse=args.coarse, parallel=_make_parallel(args.workers, "Dynamic,1")
    )
    print(design_report(results))
    paper = BARBERA_PAPER_RESULTS[args.case]
    print(
        f"\npaper reference: Req = {paper['equivalent_resistance_ohm']} ohm, "
        f"I = {paper['total_current_ka']} kA"
    )
    return 0


def _cmd_balaidos(args: argparse.Namespace) -> int:
    from repro.cad.report import design_report
    from repro.experiments.balaidos import BALAIDOS_PAPER_RESULTS, run_balaidos

    results = run_balaidos(args.model, parallel=_make_parallel(args.workers, "Dynamic,1"))
    print(design_report(results))
    paper = BALAIDOS_PAPER_RESULTS[args.model]
    print(
        f"\npaper reference (Table 5.1): Req = {paper['equivalent_resistance_ohm']} ohm, "
        f"I = {paper['total_current_ka']} kA"
    )
    return 0


def _finish_trace(tracer, path: str, manifest_dict=None, run_info=None) -> None:
    """Write a finished tracer as JSONL plus its RunManifest sibling."""
    import json
    from pathlib import Path

    from repro.observe import RunManifest, aggregate_trace, write_trace_jsonl

    if tracer.profile is not None:
        tracer.profile.close()
    roots = tracer.finalize()
    write_trace_jsonl(path, roots)
    manifest_path = RunManifest.path_for(path)
    if manifest_dict is None:
        manifest_dict = RunManifest(
            run=dict(run_info or {}),
            groups=[],
            metrics=tracer.metrics.snapshot(),
            timings={},
            trace=tracer.stats(),
            aggregate=aggregate_trace(roots),
        ).as_dict()
    Path(manifest_path).write_text(
        json.dumps(manifest_dict, sort_keys=True, indent=2, default=repr) + "\n",
        encoding="utf-8",
    )
    print(f"trace: {path}")
    print(f"manifest: {manifest_path}")


def _make_tracer(args: argparse.Namespace):
    """An optionally profiling Tracer for a ``--trace [--profile]`` command."""
    from repro.observe import ResourceProfiler, Tracer

    if getattr(args, "profile", False) and not args.trace:
        raise SystemExit("--profile records into the trace; add --trace OUT.JSONL")
    profile = ResourceProfiler() if getattr(args, "profile", False) else None
    return Tracer(profile=profile)


def _cmd_scaling(args: argparse.Namespace) -> int:
    if args.trace or args.profile:
        tracer = _make_tracer(args)
        with tracer.span(
            "scaling",
            case=args.case,
            mode="sharded" if args.hierarchical else "columns",
            workers=",".join(str(w) for w in args.workers),
        ):
            code = _scaling_body(args)
        _finish_trace(
            tracer, args.trace, run_info={"command": "scaling", "case": args.case}
        )
        return code
    return _scaling_body(args)


def _scaling_body(args: argparse.Namespace) -> int:
    from repro.cad.report import format_table
    from repro.experiments.scaling import (
        figure_6_1_curves,
        measure_column_costs,
        measure_real_speedups,
    )

    if args.hierarchical:
        from repro.experiments.scaling import resolve_case
        from repro.geometry.discretize import discretize_grid
        from repro.parallel.speedup import measure_sharded_speedup, sharded_speedup_table

        grid, soil, gpr = resolve_case(args.case, coarse=args.coarse)
        mesh = discretize_grid(grid, soil=soil)
        rows = measure_sharded_speedup(
            mesh, soil, worker_counts=[w for w in args.workers if w >= 1], gpr=gpr
        )
        print("sharded hierarchical block backend (serial hierarchical reference):")
        print(format_table(*sharded_speedup_table(rows)))
        return 0

    column_costs, total = measure_column_costs(args.case, coarse=args.coarse)
    print(f"sequential matrix generation: {total:.2f} s over {column_costs.size} columns")

    rows = measure_real_speedups(
        args.case, processor_counts=args.workers, schedule=args.schedule, coarse=args.coarse
    )
    print("\nreal process-pool measurements:")
    print(
        format_table(
            ["processors", "wall seconds", "speed-up", "oversubscribed"],
            [
                [
                    r["n_processors"],
                    r["cpu_seconds"],
                    r["speedup"],
                    "yes" if r["oversubscribed"] else "no",
                ]
                for r in rows
            ],
        )
    )

    counts = sorted({1, 2, 4, 8, 16, 32, args.simulate_up_to})
    curves = figure_6_1_curves(column_costs, processor_counts=counts, schedule=args.schedule)
    print("\nsimulated speed-up (outer vs inner loop):")
    print(
        format_table(
            ["processors", "outer", "inner"],
            [
                [o["n_processors"], o["speedup"], i["speedup"]]
                for o, i in zip(curves["outer"], curves["inner"])
            ],
        )
    )
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.cad.report import format_table
    from repro.campaign import demo_campaign, run_campaign

    campaign = demo_campaign(
        n_scenarios=args.scenarios,
        nx=args.nx,
        ny=args.nx,
        hierarchical=not args.dense,
        assess_safety=not args.no_safety,
    )
    if args.workers and args.dense:
        raise SystemExit("--workers requires the hierarchical engine (drop --dense)")
    if args.group_concurrency < 1:
        raise SystemExit("--group-concurrency must be >= 1")
    if args.group_concurrency > 1 and not args.workers:
        raise SystemExit("--group-concurrency > 1 requires --workers")
    retry = None
    if args.chunk_timeout is not None or args.max_retries is not None:
        if not args.workers:
            raise SystemExit("--chunk-timeout/--max-retries require --workers")
        from repro.resilience import RetryPolicy

        overrides = {}
        if args.chunk_timeout is not None:
            overrides["chunk_timeout"] = args.chunk_timeout
        if args.max_retries is not None:
            overrides["max_retries"] = args.max_retries
        retry = RetryPolicy(**overrides)
    tracer = None
    if args.trace or args.profile:
        tracer = _make_tracer(args)
    result = run_campaign(
        campaign,
        workers=args.workers,
        checkpoint=args.checkpoint,
        retry=retry,
        tracer=tracer,
        group_concurrency=args.group_concurrency,
    )

    columns = ["scenario", "kind", "n_elements", "gpr_v", "Req_ohm", "seconds"]
    if campaign.assess_safety:
        columns += ["max_touch_v", "max_step_v", "compliant"]
    print(
        format_table(columns, [[row[key] for key in columns] for row in result.table()])
    )
    summary = result.plan_summary
    print(
        f"\n{result.n_scenarios} scenarios, {summary['n_assemblies']} assemblies "
        f"(reuse: {summary['reuse_counts']}), total {result.total_seconds:.2f} s"
    )
    print(f"cache stats: {result.cache_stats}")
    if tracer is not None:
        _finish_trace(
            tracer, args.trace, manifest_dict=result.metadata.get("manifest")
        )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.observe import RunManifest, read_trace_jsonl
    from repro.observe.analyze import DEFAULT_NOISE_FLOOR
    from repro.observe.report import deterministic_report_text, render_report

    roots = read_trace_jsonl(args.path)
    manifest = None
    manifest_path = (
        Path(args.manifest) if args.manifest else RunManifest.path_for(args.path)
    )
    if manifest_path.is_file():
        manifest = RunManifest.load(manifest_path)
    baseline = read_trace_jsonl(args.baseline) if args.baseline else None
    noise_floor = (
        DEFAULT_NOISE_FLOOR if args.noise_floor is None else args.noise_floor
    )
    if args.deterministic_only:
        text = deterministic_report_text(
            roots, baseline=baseline, markdown=args.markdown
        )
    else:
        text = render_report(
            roots,
            manifest=manifest,
            baseline=baseline,
            top=args.top,
            markdown=args.markdown,
            noise_floor=noise_floor,
            title=f"Run report: {args.path}",
        )
    if args.output:
        Path(args.output).write_text(text.rstrip() + "\n", encoding="utf-8")
        print(f"report: {args.output}")
    else:
        print(text.rstrip())
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.observe import canonical_trace_text, format_trace_tree, read_trace_jsonl

    roots = read_trace_jsonl(args.path)
    if args.canonical:
        sys.stdout.write(canonical_trace_text(roots))
    else:
        print(
            format_trace_tree(
                roots,
                durations=not args.no_durations,
                events=not args.no_events,
            )
        )
    return 0


_COMMANDS = {
    "analyze": _cmd_analyze,
    "barbera": _cmd_barbera,
    "balaidos": _cmd_balaidos,
    "scaling": _cmd_scaling,
    "campaign": _cmd_campaign,
    "report": _cmd_report,
    "trace": _cmd_trace,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point used by ``python -m repro`` (returns a process exit code)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _COMMANDS[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
