"""The sanctioned wall-clock facade of the numeric packages.

The static contract rule **DET002** (:mod:`repro.contracts`) forbids direct
clock access inside ``repro.bem``, ``repro.cluster``, ``repro.kernels`` and
``repro.parallel``: a clock-dependent value that leaks into a numeric result
or into work partitioning silently breaks the bit-identical-for-any-worker-
count contract.  Observability timing — phase timings, executor walls,
benchmark metadata — instead calls :func:`wall_clock`, which keeps every
clock read in the tree greppable and the analyzer's allowlist at exactly one
module.  The rule of thumb enforced across the tree:

* **allowed** — ``wall_clock()`` deltas stored in ``timings`` / ``stats``
  metadata that never feeds back into numbers or schedules;
* **forbidden** — clock values used in numeric expressions, seeds, keys,
  orderings or partitioning decisions (those must come from the
  deterministic cost models of :mod:`repro.parallel.costs`).
"""

from __future__ import annotations

import time

__all__ = ["wall_clock"]


def wall_clock() -> float:
    """Monotonic wall-clock seconds (``time.perf_counter``).

    Use only for observability: elapsed-time metadata, progress reporting,
    benchmark tables.  Never let the returned value feed a numeric result.
    """
    return time.perf_counter()
