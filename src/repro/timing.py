"""The sanctioned timing module of the whole tree.

The static contract rule **DET002** (:mod:`repro.contracts`) forbids direct
clock access inside ``repro.bem``, ``repro.cluster``, ``repro.kernels`` and
``repro.parallel``: a clock-dependent value that leaks into a numeric result
or into work partitioning silently breaks the bit-identical-for-any-worker-
count contract.  Observability timing — phase timings, executor walls,
benchmark metadata — instead calls :func:`wall_clock`, which keeps every
clock read in the tree greppable and the analyzer's allowlist at exactly one
module.  The rule of thumb enforced across the tree:

* **allowed** — ``wall_clock()`` deltas recorded through the
  :class:`Timer` / :class:`PhaseTimer` helpers here or the span/metric
  runtime of :mod:`repro.observe`, never feeding back into numbers or
  schedules;
* **forbidden** — clock values used in numeric expressions, seeds, keys,
  orderings or partitioning decisions (those must come from the
  deterministic cost models of :mod:`repro.parallel.costs`).

This module also hosts the elapsed-time bookkeeping helpers (:class:`Timer`,
:class:`PhaseTimer`) that used to live in ``repro.parallel.timing``; that
module remains as a pure re-export shim so old imports keep working, and
the companion contract rule **OBS001** steers new phase bookkeeping through
these helpers (or :mod:`repro.observe`) instead of hand-rolled
``timings[...] += wall_clock() - start`` dicts.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["PhaseTimer", "Timer", "cpu_clock", "wall_clock"]


def wall_clock() -> float:
    """Monotonic wall-clock seconds (``time.perf_counter``).

    Use only for observability: elapsed-time metadata, progress reporting,
    benchmark tables.  Never let the returned value feed a numeric result.
    """
    return time.perf_counter()


def cpu_clock() -> float:
    """Process CPU seconds (``time.process_time``).

    The CPU-side companion of :func:`wall_clock`, used by the opt-in
    resource profiler (:class:`repro.observe.profile.ResourceProfiler`) to
    split a span's wall time into compute vs wait.  Same rule as
    ``wall_clock``: observability only — the returned value must never feed
    a numeric result, a seed or a scheduling decision.
    """
    return time.process_time()


@dataclass
class Timer:
    """A simple start/stop wall-clock timer.

    Can be used manually (:meth:`start` / :meth:`stop`) or as a context
    manager; the elapsed time accumulates across repeated uses.
    """

    elapsed: float = 0.0
    _started_at: float | None = field(default=None, repr=False)

    def start(self) -> "Timer":
        """Start (or restart) the timer."""
        self._started_at = wall_clock()
        return self

    def stop(self) -> float:
        """Stop the timer and return the total elapsed time."""
        if self._started_at is None:
            raise RuntimeError("Timer.stop() called before start()")
        self.elapsed += wall_clock() - self._started_at
        self._started_at = None
        return self.elapsed

    @property
    def running(self) -> bool:
        """Whether the timer is currently running."""
        return self._started_at is not None

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


class PhaseTimer:
    """Accumulates wall-clock time per named phase (the paper's Table 6.1 rows)."""

    def __init__(self) -> None:
        self._phases: dict[str, float] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a ``with`` block under the given phase name."""
        start = wall_clock()
        try:
            yield
        finally:
            self.add(name, wall_clock() - start)

    def add(self, name: str, seconds: float) -> None:
        """Add seconds to a phase (creating it if needed)."""
        self._phases[name] = self._phases.get(name, 0.0) + float(seconds)

    def as_dict(self) -> dict[str, float]:
        """Phase timings in insertion order."""
        return dict(self._phases)

    @property
    def total(self) -> float:
        """Total time across all phases."""
        return float(sum(self._phases.values()))

    def fraction(self, name: str) -> float:
        """Fraction of the total spent in one phase (0 when nothing recorded)."""
        total = self.total
        if total <= 0.0:
            return 0.0
        return self._phases.get(name, 0.0) / total

    def __getitem__(self, name: str) -> float:
        return self._phases[name]

    def __contains__(self, name: str) -> bool:
        return name in self._phases

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}={v:.3f}s" for k, v in self._phases.items())
        return f"PhaseTimer({inner})"
