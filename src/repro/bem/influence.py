"""Element-pair and element-column influence coefficients.

This module computes the paper's Galerkin coefficients (equation (4.5))

    ``R_ji = 1/(4 π γ_b) ∫_Γβ w_j(χ) ∫_Γα Σ_l k^l(χ, ξ) N_i(ξ) dΓα dΓβ``

for the 1D approximated formulation: the outer (test) integral over the target
element β is evaluated with a small Gauss–Legendre rule, while the inner
(trial) integral over the source element α is evaluated *analytically* for
every image term of the layered-soil kernel (the images of a straight segment
are straight segments, see :mod:`repro.geometry.transforms`).

Two entry points are provided:

* :func:`element_pair_influence` — a clear, reference implementation working on
  a single (target, source) pair; used by the unit tests and small problems;
* :class:`ColumnAssembler` — a vectorised implementation that computes the
  influence of one source element on *many* target elements at once.  One call
  corresponds to one cycle of the paper's outer assembly loop (a "column" of
  the triangular element-pair structure), which is exactly the task that
  Section 6 distributes among processors.
"""

from __future__ import annotations

import numpy as np

from repro.bem.elements import DofManager, ElementType
from repro.bem.quadrature import gauss_legendre_rule
from repro.bem.segment_integrals import line_integrals
from repro.constants import DEFAULT_GAUSS_POINTS
from repro.exceptions import AssemblyError
from repro.geometry.discretize import Mesh, MeshElement
from repro.kernels.base import LayeredKernel

__all__ = ["element_pair_influence", "ColumnAssembler"]


def element_pair_influence(
    target: MeshElement,
    source: MeshElement,
    kernel: LayeredKernel,
    dof_manager: DofManager,
    n_gauss: int = DEFAULT_GAUSS_POINTS,
) -> np.ndarray:
    """Influence block of a single (target, source) element pair.

    Returns
    -------
    numpy.ndarray
        Block of shape ``(basis_per_element, basis_per_element)``; entry
        ``[j, i]`` couples the ``j``-th test function on the target with the
        ``i``-th trial function on the source.
    """
    series = kernel.image_series(source.layer, target.layer)
    normalization = kernel.normalization(source.layer)

    nodes, weights = gauss_legendre_rule(n_gauss)
    gauss_points = target.p0[None, :] + nodes[:, None] * (target.p1 - target.p0)[None, :]
    outer_weights = weights * target.length
    test_values = dof_manager.shape_values(nodes)  # (G, nb)

    # Image-transformed source end points, shape (L, 3).
    q0 = np.broadcast_to(source.p0, (len(series), 3)).copy()
    q1 = np.broadcast_to(source.p1, (len(series), 3)).copy()
    q0[:, 2] = series.signs * source.p0[2] + series.offsets
    q1[:, 2] = series.signs * source.p1[2] + series.offsets

    # Inner analytic integrals for every (image, Gauss point): shape (L, G).
    i0, i1 = line_integrals(
        gauss_points[None, :, :], q0[:, None, :], q1[:, None, :], min_distance=source.radius
    )
    w0 = np.einsum("l,lg->g", series.weights, i0)
    w1 = np.einsum("l,lg->g", series.weights, i1)

    if dof_manager.element_type is ElementType.CONSTANT:
        trial_integrals = w0[:, None]  # (G, 1)
    else:
        trial_integrals = np.stack((w0 - w1, w1), axis=-1)  # (G, 2)

    block = normalization * np.einsum(
        "g,gj,gi->ji", outer_weights, test_values, trial_integrals
    )
    return block


class ColumnAssembler:
    """Vectorised computation of the influence of one source element on many targets.

    The assembler pre-computes, once per mesh, every per-element array needed by
    the hot loop (Gauss points, lengths, layers, radii) so that each column
    evaluation is a handful of NumPy einsum calls.  It is deliberately free of
    any mutable shared state: the same instance can be used concurrently from
    several threads, and it pickles cleanly for process-based parallel
    assembly.
    """

    def __init__(
        self,
        mesh: Mesh,
        kernel: LayeredKernel,
        dof_manager: DofManager,
        n_gauss: int = DEFAULT_GAUSS_POINTS,
    ) -> None:
        if n_gauss < 1:
            raise AssemblyError("the outer quadrature needs at least one Gauss point")
        self.mesh = mesh
        self.kernel = kernel
        self.dof_manager = dof_manager
        self.n_gauss = int(n_gauss)

        nodes, weights = gauss_legendre_rule(self.n_gauss)
        p0, p1 = mesh.element_endpoints()
        self._p0 = p0
        self._p1 = p1
        self._lengths = mesh.element_lengths()
        self._radii = mesh.element_radii()
        self._layers = mesh.element_layers()
        # Gauss points of every element, shape (M, G, 3).
        self._gauss_points = p0[:, None, :] + nodes[None, :, None] * (p1 - p0)[:, None, :]
        # Outer quadrature weights (including the element length), shape (M, G).
        self._outer_weights = weights[None, :] * self._lengths[:, None]
        # Test function values at the Gauss nodes, shape (G, nb).
        self._test_values = dof_manager.shape_values(nodes)

    # -- properties ------------------------------------------------------------------

    @property
    def n_elements(self) -> int:
        """Number of mesh elements."""
        return self.mesh.n_elements

    @property
    def basis_per_element(self) -> int:
        """Local basis functions per element (1 or 2)."""
        return self.dof_manager.element_type.basis_per_element

    # -- the column kernel --------------------------------------------------------------

    def column_blocks(
        self, source_index: int, target_indices: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Influence blocks of one source element on a set of target elements.

        Parameters
        ----------
        source_index:
            Index of the source element (the paper's outer-loop cycle).
        target_indices:
            Indices of the target elements; defaults to ``source_index..M-1``,
            i.e. the column of the lower triangle the paper assigns to this
            cycle.

        Returns
        -------
        (targets, blocks)
            ``targets`` is the array of target indices actually used and
            ``blocks`` has shape ``(len(targets), nb, nb)`` with the same
            ``[j, i]`` convention as :func:`element_pair_influence`.
        """
        m = self.n_elements
        if not 0 <= source_index < m:
            raise AssemblyError(f"source element index {source_index} out of range 0..{m - 1}")
        if target_indices is None:
            targets = np.arange(source_index, m, dtype=int)
        else:
            targets = np.asarray(target_indices, dtype=int)
            if targets.size and (targets.min() < 0 or targets.max() >= m):
                raise AssemblyError("target element indices out of range")
        if targets.size == 0:
            nb = self.basis_per_element
            return targets, np.zeros((0, nb, nb))

        source_layer = int(self._layers[source_index])
        normalization = self.kernel.normalization(source_layer)
        source_p0 = self._p0[source_index]
        source_p1 = self._p1[source_index]
        source_radius = float(self._radii[source_index])

        nb = self.basis_per_element
        blocks = np.empty((targets.size, nb, nb))

        # Targets may live in different layers (e.g. rods crossing the
        # interface in the Balaidos model C); group them so each group uses a
        # single image series.
        target_layers = self._layers[targets]
        for field_layer in np.unique(target_layers):
            mask = target_layers == field_layer
            group = targets[mask]
            series = self.kernel.image_series(source_layer, int(field_layer))

            # Image-transformed source segment end points, shape (L, 3).
            q0 = np.broadcast_to(source_p0, (len(series), 3)).copy()
            q1 = np.broadcast_to(source_p1, (len(series), 3)).copy()
            q0[:, 2] = series.signs * source_p0[2] + series.offsets
            q1[:, 2] = series.signs * source_p1[2] + series.offsets

            gauss_points = self._gauss_points[group]  # (T, G, 3)
            i0, i1 = line_integrals(
                gauss_points[None, :, :, :],
                q0[:, None, None, :],
                q1[:, None, None, :],
                min_distance=source_radius,
            )  # each (L, T, G)
            w0 = np.einsum("l,ltg->tg", series.weights, i0)
            w1 = np.einsum("l,ltg->tg", series.weights, i1)

            if self.dof_manager.element_type is ElementType.CONSTANT:
                trial_integrals = w0[..., None]  # (T, G, 1)
            else:
                trial_integrals = np.stack((w0 - w1, w1), axis=-1)  # (T, G, 2)

            outer = self._outer_weights[group]  # (T, G)
            blocks[mask] = normalization * np.einsum(
                "tg,gj,tgi->tji", outer, self._test_values, trial_integrals
            )

        return targets, blocks

    # -- work decomposition helpers -------------------------------------------------------

    def column_sizes(self) -> np.ndarray:
        """Number of target elements of every column (linearly decreasing)."""
        m = self.n_elements
        return np.arange(m, 0, -1, dtype=int)

    def column_cost_estimate(self) -> np.ndarray:
        """Relative cost estimate of each column (targets x image terms).

        Used by the parallel simulator when no measured timings are available.
        """
        m = self.n_elements
        costs = np.zeros(m)
        for source_index in range(m):
            source_layer = int(self._layers[source_index])
            remaining_layers = self._layers[source_index:]
            terms = 0.0
            for field_layer in np.unique(remaining_layers):
                count = int((remaining_layers == field_layer).sum())
                terms += count * self.kernel.series_length(source_layer, int(field_layer))
            costs[source_index] = terms * self.n_gauss
        return costs
