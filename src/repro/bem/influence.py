"""Element-pair and element-column influence coefficients.

This module computes the paper's Galerkin coefficients (equation (4.5))

    ``R_ji = 1/(4 π γ_b) ∫_Γβ w_j(χ) ∫_Γα Σ_l k^l(χ, ξ) N_i(ξ) dΓα dΓβ``

for the 1D approximated formulation: the outer (test) integral over the target
element β is evaluated with a small Gauss–Legendre rule, while the inner
(trial) integral over the source element α is evaluated *analytically* for
every image term of the layered-soil kernel (the images of a straight segment
are straight segments, see :mod:`repro.geometry.transforms`).

Three entry points are provided:

* :func:`element_pair_influence` — a clear, reference implementation working on
  a single (target, source) pair; used by the unit tests and small problems;
* :meth:`ColumnAssembler.column_blocks` — the influence of one source element
  on many target elements at once.  One call corresponds to one cycle of the
  paper's outer assembly loop (a "column" of the triangular element-pair
  structure), which is exactly the task that Section 6 distributes among
  processors;
* :meth:`ColumnAssembler.column_batch` — the batched engine: a whole *block of
  source columns* is evaluated in one vectorised NumPy pass over
  ``images × targets × Gauss points × sources``.  Both the sequential assembly
  and the parallel backends dispatch schedule-sized batches through this path;
  :meth:`ColumnAssembler.column_blocks` is a single-source wrapper around it.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.bem.elements import DofManager, ElementType
from repro.bem.geometry_cache import GeometryCache, array_fingerprint, default_geometry_cache
from repro.bem.quadrature import gauss_legendre_rule
from repro.bem.segment_integrals import (
    adaptive_segment_sums,
    image_segment_integrals,
    line_integrals,
)
from repro.constants import DEFAULT_GAUSS_POINTS
from repro.exceptions import AssemblyError
from repro.geometry.discretize import Mesh, MeshElement
from repro.kernels.base import LayeredKernel
from repro.kernels.truncation import (
    AdaptiveControl,
    MergedSeries,
    TruncationPlan,
    i0_upper_bound,
    max_pair_distance,
)

__all__ = ["element_pair_influence", "ColumnAssembler", "BATCH_ELEMENT_BUDGET"]

#: Upper bound on the number of ``images × targets × Gauss × sources`` entries
#: evaluated in one vectorised pass of :meth:`ColumnAssembler.column_batch`.
#: Chosen so the per-pass temporaries stay around a megabyte each and remain
#: cache-resident: interleaved A/B timing on the reference host showed the
#: cache-friendly regime beating larger (DRAM-spilling) batches by 1.1–1.6×
#: on both the coarse and the full Barberá case.
BATCH_ELEMENT_BUDGET: int = 150_000


def element_pair_influence(
    target: MeshElement,
    source: MeshElement,
    kernel: LayeredKernel,
    dof_manager: DofManager,
    n_gauss: int = DEFAULT_GAUSS_POINTS,
) -> np.ndarray:
    """Influence block of a single (target, source) element pair.

    Returns
    -------
    numpy.ndarray
        Block of shape ``(basis_per_element, basis_per_element)``; entry
        ``[j, i]`` couples the ``j``-th test function on the target with the
        ``i``-th trial function on the source.
    """
    series = kernel.image_series(source.layer, target.layer)
    normalization = kernel.normalization(source.layer)

    nodes, weights = gauss_legendre_rule(n_gauss)
    gauss_points = target.p0[None, :] + nodes[:, None] * (target.p1 - target.p0)[None, :]
    outer_weights = weights * target.length
    test_values = dof_manager.shape_values(nodes)  # (G, nb)

    # Image-transformed source end points, shape (L, 3).
    q0 = np.broadcast_to(source.p0, (len(series), 3)).copy()
    q1 = np.broadcast_to(source.p1, (len(series), 3)).copy()
    q0[:, 2] = series.signs * source.p0[2] + series.offsets
    q1[:, 2] = series.signs * source.p1[2] + series.offsets

    # Inner analytic integrals for every (image, Gauss point): shape (L, G).
    i0, i1 = line_integrals(
        gauss_points[None, :, :], q0[:, None, :], q1[:, None, :], min_distance=source.radius
    )
    w0 = np.einsum("l,lg->g", series.weights, i0)
    w1 = np.einsum("l,lg->g", series.weights, i1)

    if dof_manager.element_type is ElementType.CONSTANT:
        trial_integrals = w0[:, None]  # (G, 1)
    else:
        trial_integrals = np.stack((w0 - w1, w1), axis=-1)  # (G, 2)

    block = normalization * np.einsum(
        "g,gj,gi->ji", outer_weights, test_values, trial_integrals
    )
    return block


class ColumnAssembler:
    """Vectorised computation of the influence of source columns on many targets.

    The assembler pre-computes, once per mesh, every per-element array needed by
    the hot loop (Gauss points, lengths, layers, radii) so that each batch
    evaluation is a handful of NumPy calls.  It is deliberately free of any
    mutable shared state: the same instance can be used concurrently from
    several threads, and it pickles cleanly for process-based parallel
    assembly.
    """

    def __init__(
        self,
        mesh: Mesh,
        kernel: LayeredKernel,
        dof_manager: DofManager,
        n_gauss: int = DEFAULT_GAUSS_POINTS,
        batch_element_budget: int = BATCH_ELEMENT_BUDGET,
        adaptive: AdaptiveControl | None = None,
        geometry_cache: GeometryCache | None = None,
    ) -> None:
        if n_gauss < 1:
            raise AssemblyError("the outer quadrature needs at least one Gauss point")
        if batch_element_budget < 1:
            raise AssemblyError("batch_element_budget must be positive")
        self.mesh = mesh
        self.kernel = kernel
        self.dof_manager = dof_manager
        self.n_gauss = int(n_gauss)
        self.batch_element_budget = int(batch_element_budget)
        self.adaptive = adaptive

        nodes, weights = gauss_legendre_rule(self.n_gauss)
        p0, p1 = mesh.element_endpoints()
        self._p0 = p0
        self._p1 = p1
        self._lengths = mesh.element_lengths()
        self._radii = mesh.element_radii()
        self._layers = mesh.element_layers()
        # Gauss points of every element, shape (M, G, 3).
        self._gauss_points = p0[:, None, :] + nodes[None, :, None] * (p1 - p0)[:, None, :]
        # Outer quadrature weights (including the element length), shape (M, G).
        self._outer_weights = weights[None, :] * self._lengths[:, None]
        # Test function values at the Gauss nodes, shape (G, nb).
        self._test_values = dof_manager.shape_values(nodes)

        self._geometry_cache = geometry_cache
        if adaptive is not None:
            self._init_adaptive()

    # -- adaptive precomputation ----------------------------------------------------

    def _init_adaptive(self) -> None:
        """Pure per-mesh data driving the adaptive evaluation decisions.

        Everything here depends only on the mesh and the kernel — never on
        how callers batch the columns — so adaptive results are identical for
        any batch size and for every parallel backend.
        """
        if self._geometry_cache is None:
            self._geometry_cache = default_geometry_cache()
        p0, p1 = self._p0, self._p1
        self._mesh_fp = array_fingerprint(p0, p1, self._radii)
        mid = 0.5 * (p0 + p1)
        self._mid_xy = mid[:, :2]
        self._half_lengths = 0.5 * self._lengths
        self._z_slope = (p1[:, 2] - p0[:, 2]) / self._lengths
        self._horizontal = np.abs(p1[:, 2] - p0[:, 2]) <= 1.0e-12

        # Per-layer target population summaries (z interval, flat depth, max
        # outer integration length).
        self._layer_z_interval: dict[int, tuple[float, float]] = {}
        self._layer_flat_z: dict[int, float | None] = {}
        self._layer_max_length: dict[int, float] = {}
        for layer in np.unique(self._layers):
            members = np.flatnonzero(self._layers == layer)
            z_values = np.concatenate((p0[members, 2], p1[members, 2]))
            self._layer_z_interval[int(layer)] = (float(z_values.min()), float(z_values.max()))
            flat = bool(np.all(self._horizontal[members])) and np.ptp(z_values) <= 1.0e-12
            self._layer_flat_z[int(layer)] = float(z_values[0]) if flat else None
            self._layer_max_length[int(layer)] = float(self._lengths[members].max())

        self.reference_entry_scale()  # warm the cache once per mesh
        offset_max = max(
            float(np.abs(self.kernel.image_series(int(b), int(c)).offsets).max())
            for b in np.unique(self._layers)
            for c in np.unique(self._layers)
        )
        self._r_max = max_pair_distance(p0, p1, offset_max)
        self._plans: dict[tuple, TruncationPlan] = {}
        self._adaptive_costs: np.ndarray | None = None

    # -- pickling (the geometry cache holds a lock and stays process-local) ---------

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_geometry_cache"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        if self.adaptive is not None and self._geometry_cache is None:
            self._geometry_cache = default_geometry_cache()

    # -- properties ------------------------------------------------------------------

    @property
    def n_elements(self) -> int:
        """Number of mesh elements."""
        return self.mesh.n_elements

    @property
    def basis_per_element(self) -> int:
        """Local basis functions per element (1 or 2)."""
        return self.dof_manager.element_type.basis_per_element

    def reference_entry_scale(self) -> float:
        """Reference matrix-entry magnitude of the mesh.

        The largest self-influence entry bound (direct image, test integral
        ``~ L/2``, field point on the conductor surface) — the quantity the
        relative tolerances of both the adaptive evaluation layer and the
        hierarchical far-field compression are measured against.
        """
        cached = getattr(self, "_reference_scale", None)
        if cached is not None:
            return cached
        dominant = np.empty(self.n_elements)
        for layer in np.unique(self._layers):
            members = self._layers == layer
            series = self.kernel.image_series(int(layer), int(layer))
            w_max = float(np.abs(series.weights).max())
            dominant[members] = (
                self.kernel.normalization(int(layer))
                * 0.5
                * self._lengths[members]
                * w_max
                * i0_upper_bound(self._lengths[members], self._radii[members])
            )
        self._reference_scale = float(dominant.max())
        return self._reference_scale

    # -- the batched column kernel ------------------------------------------------------

    def column_batch(
        self,
        source_indices: Sequence[int] | np.ndarray,
        target_indices: Sequence[int] | np.ndarray | None = None,
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Influence blocks of a batch of source columns.

        Parameters
        ----------
        source_indices:
            Indices of the source elements (a chunk of the paper's outer loop).
        target_indices:
            Either ``None`` — every source gets its lower-triangle column
            ``source..M-1``, the task decomposition of the paper — or one
            explicit target list shared by every source of the batch.

        Returns
        -------
        list of (targets, blocks)
            One entry per requested source, in input order, with the same
            conventions as :meth:`column_blocks`.
        """
        m = self.n_elements
        sources = np.asarray(source_indices, dtype=int).ravel()
        if sources.size == 0:
            return []
        if sources.min() < 0 or sources.max() >= m:
            raise AssemblyError(
                f"source element indices out of range 0..{m - 1}"
            )
        nb = self.basis_per_element

        if self.adaptive is not None:
            if target_indices is not None:
                shared_targets = np.asarray(target_indices, dtype=int).ravel()
                if shared_targets.size and (
                    shared_targets.min() < 0 or shared_targets.max() >= m
                ):
                    raise AssemblyError("target element indices out of range")
                if shared_targets.size == 0:
                    empty = np.zeros((0, nb, nb))
                    return [(shared_targets.copy(), empty.copy()) for _ in sources]
                column_targets = [shared_targets for _ in sources]
            else:
                column_targets = [np.arange(int(s), m, dtype=int) for s in sources]
            blocks = self._adaptive_batch(sources, column_targets)
            return [
                (targets.copy(), column_blocks)
                for targets, column_blocks in zip(column_targets, blocks)
            ]

        if target_indices is not None:
            shared_targets = np.asarray(target_indices, dtype=int).ravel()
            if shared_targets.size and (
                shared_targets.min() < 0 or shared_targets.max() >= m
            ):
                raise AssemblyError("target element indices out of range")
            if shared_targets.size == 0:
                empty = np.zeros((0, nb, nb))
                return [(shared_targets.copy(), empty.copy()) for _ in sources]
            blocks = self._rectangle_blocks(sources, shared_targets)
            return [(shared_targets.copy(), blocks[k]) for k in range(sources.size)]

        # Triangle mode: each source couples with the targets source..M-1.
        # Schedule chunks are runs of consecutive indices, so evaluating one
        # rectangle per run (targets run_start..M-1) wastes at most a tiny
        # triangular corner of the rectangle.
        order = np.argsort(sources, kind="stable")
        results: list[tuple[np.ndarray, np.ndarray] | None] = [None] * sources.size
        run: list[int] = []
        for position in order:
            if run and sources[position] > sources[run[-1]] + 1:
                self._emit_triangle_run(sources, run, results)
                run = []
            run.append(int(position))
        if run:
            self._emit_triangle_run(sources, run, results)
        return results  # type: ignore[return-value]

    def _emit_triangle_run(
        self,
        sources: np.ndarray,
        run_positions: list[int],
        results: list,
    ) -> None:
        """Evaluate one run of consecutive sources against shared rectangles.

        The rectangle of a run spans the targets of its *first* source, so the
        sources further into the run waste the triangular corner below their
        own column.  Long runs near the end of the mesh (short columns) are cut
        into sub-runs sized a fraction of the remaining targets, which bounds
        the wasted corner to a few percent of each rectangle.
        """
        m = self.n_elements
        index = 0
        while index < len(run_positions):
            first = int(sources[run_positions[index]])
            remaining = m - first
            sub_size = min(len(run_positions) - index, max(1, remaining // 8))
            sub_positions = run_positions[index : index + sub_size]
            sub_sources = sources[sub_positions]
            targets = np.arange(first, m, dtype=int)
            blocks = self._rectangle_blocks(sub_sources, targets)
            for k, position in enumerate(sub_positions):
                start = int(sub_sources[k]) - first
                results[position] = (targets[start:], blocks[k, start:])
            index += sub_size

    def _rectangle_blocks(self, sources: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Dense rectangle of influence blocks, shape ``(S, T, nb, nb)``.

        Sources and targets may each span several soil layers; the rectangle is
        evaluated per (source layer, field layer) group because each group uses
        a distinct image series.  Groups larger than the memory budget are cut
        into source sub-batches.
        """
        nb = self.basis_per_element
        blocks = np.empty((sources.size, targets.size, nb, nb))
        source_layers = self._layers[sources]
        target_layers = self._layers[targets]
        for source_layer in np.unique(source_layers):
            source_positions = np.flatnonzero(source_layers == source_layer)
            normalization = self.kernel.normalization(int(source_layer))
            for field_layer in np.unique(target_layers):
                target_positions = np.flatnonzero(target_layers == field_layer)
                series = self.kernel.image_series(int(source_layer), int(field_layer))
                per_source = len(series) * target_positions.size * self.n_gauss
                step = max(1, self.batch_element_budget // max(per_source, 1))
                for start in range(0, source_positions.size, step):
                    chunk = source_positions[start : start + step]
                    rect = self._evaluate_group(
                        sources[chunk], targets[target_positions], series, normalization
                    )
                    blocks[np.ix_(chunk, target_positions)] = rect
        return blocks

    def _evaluate_group(
        self,
        source_ids: np.ndarray,
        target_ids: np.ndarray,
        series,
        normalization: float,
    ) -> np.ndarray:
        """One vectorised evaluation over ``images × targets × Gauss × sources``.

        All sources share one layer, all targets share one field layer, so a
        single image series applies.  Returns blocks of shape
        ``(S, T, nb, nb)``.
        """
        n_images = len(series)
        gauss_points = self._gauss_points[target_ids]  # (T, G, 3)
        i0, i1 = image_segment_integrals(
            gauss_points,
            self._p0[source_ids],
            self._p1[source_ids],
            self._lengths[source_ids],
            series.signs,
            series.offsets,
            self._radii[source_ids],
        )  # each (L, T, G, S)

        # Weight-sum over the images: a single BLAS matrix-vector product.
        shape = i0.shape[1:]
        w0 = (series.weights @ i0.reshape(n_images, -1)).reshape(shape)  # (T, G, S)
        w1 = (series.weights @ i1.reshape(n_images, -1)).reshape(shape)

        if self.dof_manager.element_type is ElementType.CONSTANT:
            trial_integrals = w0[..., None]  # (T, G, S, 1)
        else:
            trial_integrals = np.stack((w0 - w1, w1), axis=-1)  # (T, G, S, 2)

        outer = self._outer_weights[target_ids]  # (T, G)
        scaled = outer[:, :, None, None] * trial_integrals  # (T, G, S, nb)
        blocks = np.einsum("gj,tgsi->stji", self._test_values, scaled)
        blocks *= normalization
        return blocks

    # -- the adaptive column kernel -------------------------------------------------------

    def _pair_separation(self, source_index: int, target_ids: np.ndarray) -> np.ndarray:
        """Conservative lower bound of the in-plane pair separation [m]."""
        delta = self._mid_xy[target_ids] - self._mid_xy[source_index]
        distance = np.sqrt(np.einsum("tk,tk->t", delta, delta))
        return np.maximum(
            0.0,
            distance - self._half_lengths[target_ids] - self._half_lengths[source_index],
        )

    def _plan_for(self, source_index: int, field_layer: int) -> TruncationPlan:
        """The (cached) truncation plan of one source element vs one field layer."""
        source_layer = int(self._layers[source_index])
        length = float(self._lengths[source_index])
        z0 = float(self._p0[source_index, 2])
        z1 = float(self._p1[source_index, 2])
        radius = float(self._radii[source_index])
        # The key identifies every scalar of the evaluation (radius included),
        # so all sources sharing a plan can be evaluated in one batch group.
        # Evaluation uses the *rounded* key scalars, never an individual
        # source's raw values: sources agreeing only to the rounding
        # tolerance would otherwise make the result depend on which of them
        # a batch presents first — batch composition must not leak into the
        # entries (the determinism contract of the sharded block backend).
        key = (
            source_layer,
            field_layer,
            round(length, 12),
            round(z0, 12),
            round(z1, 12),
            round(radius, 12),
        )
        plan = self._plans.get(key)
        if plan is None:
            # The plan is built from the *key's* rounded scalars as well:
            # sources agreeing only to the rounding tolerance must produce
            # the identical plan (offsets, keep/drop decisions) no matter
            # which of them registers it first, or the registration order —
            # which differs between shard workers — would leak into entries.
            key_length, key_z0, key_z1 = key[2], key[3], key[4]
            series = self.kernel.image_series(source_layer, field_layer)
            flat_z = self._layer_flat_z[field_layer]
            merge_z = None
            if flat_z is not None and key_z0 == key_z1:
                merge_z = (key_z0, flat_z)
            plan = TruncationPlan.build(
                series,
                self.adaptive,
                source_length=key_length,
                source_z_interval=(min(key_z0, key_z1), max(key_z0, key_z1)),
                target_z_interval=self._layer_z_interval[field_layer],
                target_length_max=self._layer_max_length[field_layer],
                normalization=self.kernel.normalization(source_layer),
                scale=self.reference_entry_scale(),
                merge_z=merge_z,
                r_max=self._r_max,
            )
            self._plans[key] = plan
        return plan

    def _plan_eval_scalars(self, source_index: int) -> tuple[float, float, float, float]:
        """Canonical evaluation scalars ``(z0, z slope, length, radius)``.

        Derived from the source's values at the *plan-key rounding* (see
        :meth:`_plan_for`): every source sharing a plan yields the identical
        tuple, so a batch group can be evaluated with one scalar set no
        matter which of its sources registered the plan.
        """
        length = round(float(self._lengths[source_index]), 12)
        z0 = round(float(self._p0[source_index, 2]), 12)
        z1 = round(float(self._p1[source_index, 2]), 12)
        radius = round(float(self._radii[source_index]), 12)
        return (z0, (z1 - z0) / length, length, radius)

    def _inplane_geometry_rows(
        self, source_index: int, rows: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """In-plane pair geometry of one source against selected target rows.

        For column-sized target sets this delegates to the cached full-mesh
        arrays of :meth:`_inplane_geometry`; for small target sets (the
        hierarchical near-field rectangles) it computes only the requested
        rows, avoiding the ``O(M)`` full-mesh pass per source.  Both paths are
        elementwise-identical, so results do not depend on the route taken.
        """
        key = (self._mesh_fp, "col", self.n_gauss, int(source_index))
        cached = self._geometry_cache.get(key)
        if cached is not None:
            p_axis, q_norm = cached
            return p_axis[rows], q_norm[rows]
        if 2 * rows.size >= self.n_elements:
            p_axis, q_norm = self._inplane_geometry(source_index)
            return p_axis[rows], q_norm[rows]
        length = self._lengths[source_index]
        u_xy = (self._p1[source_index, :2] - self._p0[source_index, :2]) / length
        disp = self._gauss_points[rows][..., :2] - self._p0[source_index, :2]  # (T, G, 2)
        return disp @ u_xy, np.einsum("tgk,tgk->tg", disp, disp)

    def _inplane_geometry(self, source_index: int) -> tuple[np.ndarray, np.ndarray]:
        """In-plane pair geometry of one source column against every element.

        Returns ``(p_axis, q_norm)`` of shape ``(M, G)`` — the axial
        projection of every Gauss point on the source axis and its squared
        in-plane displacement norm.  Shared by every image term and cached
        across repeated assemblies of the same mesh.
        """
        key = (self._mesh_fp, "col", self.n_gauss, int(source_index))
        cached = self._geometry_cache.get(key)
        if cached is not None:
            return cached  # type: ignore[return-value]
        length = self._lengths[source_index]
        u_xy = (self._p1[source_index, :2] - self._p0[source_index, :2]) / length
        disp = self._gauss_points[..., :2] - self._p0[source_index, :2]  # (M, G, 2)
        p_axis = disp @ u_xy
        q_norm = np.einsum("mgk,mgk->mg", disp, disp)
        return self._geometry_cache.put(key, (p_axis, q_norm))

    def _adaptive_batch(
        self, sources: np.ndarray, column_targets: list[np.ndarray]
    ) -> list[np.ndarray]:
        """Adaptive influence blocks of a batch of columns.

        The (source, target) pairs of every requested column are flattened
        into one pair list, grouped by (truncation plan, separation bin) and
        evaluated in a handful of large vectorised passes — the per-column
        Python overhead of the naive loop dominates otherwise.  Every
        decision (term drops, single-precision eligibility, midpoint-tail
        eligibility, image merging, the plan's canonical source scalars) is a
        pure function of the individual (source element, target element)
        pair, so the evaluated terms are independent of how columns are
        grouped into batches; only BLAS reduction round-off differs between
        batch compositions.
        """
        n_gauss = self.n_gauss
        sizes = np.array([t.size for t in column_targets], dtype=int)
        bounds = np.concatenate(([0], np.cumsum(sizes)))
        n_pairs = int(bounds[-1])
        pair_source = np.repeat(sources, sizes)
        pair_target = np.concatenate(column_targets) if n_pairs else np.zeros(0, dtype=int)
        blocks_flat = np.empty((n_pairs, self.basis_per_element, self.basis_per_element))

        # Pair group ids: one per (source plan, field layer, separation bin);
        # group id -1 marks short-series pairs handled by the exact engine.
        plan_keys: dict[int, int] = {}
        plans: list[TruncationPlan] = []
        plan_scalars: list[tuple[float, float, float, float]] = []
        group_of_pair = np.empty(n_pairs, dtype=int)
        n_bins = len(self.adaptive.bin_edges) + 1
        exact_positions: list[tuple[int, np.ndarray, np.ndarray]] = []
        for k, source in enumerate(sources):
            source = int(source)
            targets = column_targets[k]
            segment = slice(int(bounds[k]), int(bounds[k + 1]))
            source_layer = int(self._layers[source])
            target_layers = self._layers[targets]
            separation = self._pair_separation(source, targets)
            group_row = np.empty(targets.size, dtype=int)
            for field_layer in np.unique(target_layers):
                positions = np.flatnonzero(target_layers == field_layer)
                series = self.kernel.image_series(source_layer, int(field_layer))
                if len(series) < self.adaptive.min_series_terms:
                    group_row[positions] = -1
                    exact_positions.append((source, targets[positions], positions + bounds[k]))
                    continue
                plan = self._plan_for(source, int(field_layer))
                key = id(plan)
                plan_index = plan_keys.get(key)
                if plan_index is None:
                    plan_index = len(plans)
                    plan_keys[key] = plan_index
                    plans.append(plan)
                    plan_scalars.append(self._plan_eval_scalars(source))
                group_row[positions] = plan_index * n_bins + plan.bin_of(
                    separation[positions]
                )
            group_of_pair[segment] = group_row

        # Short-series pairs: the exact rectangle engine, one call per column.
        for source, targets, flat_positions in exact_positions:
            series = self.kernel.image_series(
                int(self._layers[source]), int(self._layers[targets[0]])
            )
            rect = self._evaluate_group(
                np.asarray([source]), targets, series,
                self.kernel.normalization(int(self._layers[source])),
            )
            blocks_flat[flat_positions] = rect[0]

        adaptive_mask = group_of_pair >= 0
        if np.any(adaptive_mask):
            pair_idx = np.flatnonzero(adaptive_mask)
            order = pair_idx[np.argsort(group_of_pair[pair_idx], kind="stable")]
            group_sorted = group_of_pair[order]
            starts = np.flatnonzero(np.concatenate(([True], np.diff(group_sorted) > 0)))
            starts = np.concatenate((starts, [order.size]))

            w0 = np.empty((order.size, n_gauss))
            w1 = np.empty((order.size, n_gauss))
            x_z = self._gauss_points[..., 2]
            # In-plane geometry rows gathered per source (cached across runs).
            p_axis_pairs = np.empty((order.size, n_gauss))
            q_norm_pairs = np.empty((order.size, n_gauss))
            pos_of_pair = np.empty(n_pairs, dtype=int)
            pos_of_pair[order] = np.arange(order.size)
            for k, source in enumerate(sources):
                segment = np.arange(bounds[k], bounds[k + 1])
                segment = segment[adaptive_mask[segment]]
                if segment.size == 0:
                    continue
                rows = pair_target[segment]
                p_axis_rows, q_norm_rows = self._inplane_geometry_rows(int(source), rows)
                p_axis_pairs[pos_of_pair[segment]] = p_axis_rows
                q_norm_pairs[pos_of_pair[segment]] = q_norm_rows

            for g in range(starts.size - 1):
                span = slice(int(starts[g]), int(starts[g + 1]))
                pairs = order[span]
                group = int(group_sorted[int(starts[g])])
                plan = plans[group // n_bins]
                bin_plan = plan.bins[group % n_bins]
                # All sources of the group share the plan-key-rounded source
                # scalars; evaluating with those canonical values — instead of
                # whichever source the batch presents first — keeps every
                # pair's entry independent of the batch composition.
                source_z0, source_slope, source_length, source_radius = plan_scalars[
                    group // n_bins
                ]
                s0, s1 = adaptive_segment_sums(
                    p_axis_pairs[span].ravel(),
                    q_norm_pairs[span].ravel(),
                    x_z[pair_target[pairs]].ravel(),
                    source_z0,
                    source_slope,
                    source_length,
                    source_radius,
                    plan.weights,
                    plan.signs,
                    plan.offsets,
                    bin_plan.exact_idx,
                    bin_plan.exact32_idx,
                    bin_plan.midpoint_idx,
                )
                w0[span] = s0.reshape(pairs.size, n_gauss)
                w1[span] = s1.reshape(pairs.size, n_gauss)

            if self.dof_manager.element_type is ElementType.CONSTANT:
                trial = w0[..., None]  # (P, G, 1)
            else:
                trial = np.stack((w0 - w1, w1), axis=-1)  # (P, G, 2)
            pair_blocks = np.einsum(
                "pg,gj,pgi->pji",
                self._outer_weights[pair_target[order]],
                self._test_values,
                trial,
            )
            normalizations = np.zeros(int(self._layers.max()) + 1)
            for layer in np.unique(self._layers):
                normalizations[int(layer)] = self.kernel.normalization(int(layer))
            pair_blocks *= normalizations[self._layers[pair_source[order]]][:, None, None]
            blocks_flat[order] = pair_blocks

        return [
            blocks_flat[bounds[k] : bounds[k + 1]] for k in range(len(column_targets))
        ]

    def column_batch_lists(
        self, source_indices: Sequence[int] | np.ndarray, target_lists: Sequence[np.ndarray]
    ) -> list[np.ndarray]:
        """Influence blocks of sources with *individual* target lists.

        The generalisation of :meth:`column_batch` the hierarchical near-field
        needs: every source couples with its own target set (its near-field
        partners).  With the adaptive engine active, all (source, target)
        pairs of the batch are flattened into one vectorised pass — the same
        machinery as the dense assembly columns, so every evaluation
        *decision* is identical; values agree across batch compositions to
        BLAS reduction round-off (callers needing bit-exact reproducibility
        must fix the batch composition, as the per-block assembly of
        :mod:`repro.cluster.block_assembly` does).  Returns one block array
        of shape ``(len(targets), nb, nb)`` per source, in input order.
        """
        sources = np.asarray(source_indices, dtype=int).ravel()
        if sources.size != len(target_lists):
            raise AssemblyError(
                f"{sources.size} sources but {len(target_lists)} target lists"
            )
        if sources.size == 0:
            return []
        m = self.n_elements
        if sources.min() < 0 or sources.max() >= m:
            raise AssemblyError(f"source element indices out of range 0..{m - 1}")
        targets = [np.asarray(t, dtype=int).ravel() for t in target_lists]
        for t in targets:
            if t.size and (t.min() < 0 or t.max() >= m):
                raise AssemblyError(f"target element indices out of range 0..{m - 1}")
        if self.adaptive is not None:
            return self._adaptive_batch(sources, targets)
        blocks = []
        for source, t in zip(sources, targets):
            if t.size == 0:
                blocks.append(np.zeros((0, self.basis_per_element, self.basis_per_element)))
                continue
            [(_, column_blocks)] = self.column_batch([int(source)], t)
            blocks.append(column_blocks)
        return blocks

    def adaptive_far_column(
        self, element: int, others: np.ndarray, min_separation: float
    ) -> np.ndarray:
        """Adaptive influence blocks of one source on far targets, one plan bin.

        Returns ``F[t, j, i] = b(target=others[t], source=element)[j, i]``
        with *every* pair evaluated under the single
        :class:`~repro.kernels.truncation.BinPlan` selected by
        ``min_separation`` — the *in-plane* separation lower bound of a
        far-field block (the quantity the plan bins are keyed on).
        Using one bin for the whole fetch keeps the sampled entries smooth
        (per-pair bin boundaries inside a block would put error
        discontinuities in it and inflate the ACA rank) while still dropping,
        down-casting and midpoint-expanding the far image terms.  This is the
        fast entry sampler of the hierarchical far field.
        """
        if self.adaptive is None:
            raise AssemblyError("adaptive_far_column requires an adaptive assembler")
        others = np.asarray(others, dtype=int).ravel()
        element = int(element)
        nb = self.basis_per_element
        if others.size == 0:
            return np.zeros((0, nb, nb))
        n_gauss = self.n_gauss
        source_layer = int(self._layers[element])
        normalization = self.kernel.normalization(source_layer)
        out = np.empty((others.size, nb, nb))
        target_layers = self._layers[others]
        for field_layer in np.unique(target_layers):
            positions = np.flatnonzero(target_layers == field_layer)
            rows = others[positions]
            series = self.kernel.image_series(source_layer, int(field_layer))
            if len(series) < self.adaptive.min_series_terms:
                rect = self._evaluate_group(
                    np.asarray([element]), rows, series, normalization
                )
                out[positions] = rect[0]
                continue
            plan = self._plan_for(element, int(field_layer))
            bin_plan = plan.bins[int(plan.bin_of(np.asarray([min_separation]))[0])]
            p_axis, q_norm = self._inplane_geometry_rows(element, rows)
            # Promote the single-precision exact terms to double precision:
            # their rounding noise, harmless when entries are consumed once,
            # would sit just below the ACA stopping threshold and inflate the
            # factorisation rank.
            s0, s1 = adaptive_segment_sums(
                p_axis.ravel(),
                q_norm.ravel(),
                self._gauss_points[rows][..., 2].ravel(),
                float(self._p0[element, 2]),
                float(self._z_slope[element]),
                float(self._lengths[element]),
                float(self._radii[element]),
                plan.weights,
                plan.signs,
                plan.offsets,
                np.concatenate((bin_plan.exact_idx, bin_plan.exact32_idx)),
                bin_plan.exact32_idx[:0],
                bin_plan.midpoint_idx,
            )
            w0 = s0.reshape(rows.size, n_gauss)
            w1 = s1.reshape(rows.size, n_gauss)
            if self.dof_manager.element_type is ElementType.CONSTANT:
                trial = w0[..., None]
            else:
                trial = np.stack((w0 - w1, w1), axis=-1)  # (T, G, 2)
            out[positions] = normalization * np.einsum(
                "tg,gj,tgi->tji", self._outer_weights[rows], self._test_values, trial
            )
        return out

    def far_series(self, source_layer: int, field_layer: int, distance: float, cutoff: float):
        """Image series of a layer pair, truncated for pairs at ``>= distance``.

        ``distance`` is the *in-plane* pair-separation lower bound (vertical
        image offsets are folded in per term from the layer depth intervals,
        exactly as in :class:`~repro.kernels.truncation.TruncationPlan`).
        Terms whose conservative influence-entry bound
        ``|w| * I0_max * L_t,max * norm`` stays below ``cutoff`` are dropped
        *uniformly*, so every pair of a far-field block sees the same reduced
        series (no per-pair decision boundaries).  Cached per (layer pair,
        distance, cutoff).
        """
        key = (int(source_layer), int(field_layer), round(float(distance), 6), float(cutoff))
        cache = getattr(self, "_far_series_cache", None)
        if cache is None:
            cache = self._far_series_cache = {}
        series = cache.get(key)
        if series is not None:
            return series
        full = self.kernel.image_series(int(source_layer), int(field_layer))
        info = getattr(self, "_far_layer_info", None)
        if info is None:
            info = self._far_layer_info = {}
            for layer in np.unique(self._layers):
                members = np.flatnonzero(self._layers == layer)
                z_values = np.concatenate((self._p0[members, 2], self._p1[members, 2]))
                info[int(layer)] = (
                    float(z_values.min()),
                    float(z_values.max()),
                    float(self._lengths[members].max()),
                )
        s_lo, s_hi, s_len = info[int(source_layer)]
        t_lo, t_hi, t_len = info[int(field_layer)]
        img_lo = np.minimum(full.signs * s_lo, full.signs * s_hi) + full.offsets
        img_hi = np.maximum(full.signs * s_lo, full.signs * s_hi) + full.offsets
        dz = np.maximum.reduce([img_lo - t_hi, t_lo - img_hi, np.zeros(len(full))])
        r = np.maximum(np.sqrt(float(distance) ** 2 + dz**2), 1.0e-12)
        bounds = (
            self.kernel.normalization(int(source_layer))
            * t_len
            * np.abs(full.weights)
            * i0_upper_bound(s_len, r)
        )
        keep = bounds > float(cutoff)
        if not np.any(keep):
            keep[int(np.argmax(np.abs(full.weights)))] = True
        series = MergedSeries(
            weights=full.weights[keep], signs=full.signs[keep], offsets=full.offsets[keep]
        )
        cache[key] = series
        return series

    def pair_block_row(
        self,
        element: int,
        others: np.ndarray,
        min_distance: float | None = None,
        drop_cutoff: float | None = None,
    ) -> np.ndarray:
        """Exact symmetrised influence row of one element against a set of others.

        Returns the entries the *assembled* matrix receives from the pairs
        ``{element, other}``: entry ``[j, t, i]`` is the contribution added at
        ``(dof(element, j), dof(other_t, i))``.  The dense engine evaluates
        every pair once with the lower-index element as the source, so this
        row mixes both orientations — elements below ``element`` are evaluated
        as sources, elements above as targets (transposed).  This is the entry
        generator of the hierarchical far-field ACA sampling, which therefore
        reproduces the dense matrix entrywise instead of introducing an
        orientation-dependent quadrature asymmetry.

        Evaluated through the exact kernels; when ``min_distance`` and
        ``drop_cutoff`` are given (the far-field ACA sampler), the image
        series is first uniformly truncated with :meth:`far_series` for pairs
        separated by at least ``min_distance``.
        """
        others = np.asarray(others, dtype=int).ravel()
        m = self.n_elements
        element = int(element)
        if not 0 <= element < m:
            raise AssemblyError(f"element index {element} out of range 0..{m - 1}")
        if others.size and (others.min() < 0 or others.max() >= m):
            raise AssemblyError(f"element indices out of range 0..{m - 1}")
        if np.any(others == element):
            raise AssemblyError("pair_block_row expects 'others' to exclude the element itself")
        nb = self.basis_per_element
        out = np.empty((nb, others.size, nb))
        element_arr = np.asarray([element])
        element_layer = int(self._layers[element])
        lo = np.flatnonzero(others < element)
        hi = np.flatnonzero(others > element)
        # Straight to the vectorised group kernel (one call per soil-layer
        # group, usually one): ACA samples thousands of these small fetches,
        # so the chunking bookkeeping of _rectangle_blocks would dominate.
        def _series(source_layer: int, field_layer: int):
            if drop_cutoff is None or min_distance is None:
                return self.kernel.image_series(source_layer, field_layer)
            return self.far_series(source_layer, field_layer, min_distance, drop_cutoff)

        if lo.size:
            source_layers = self._layers[others[lo]]
            for layer in np.unique(source_layers):
                members = lo[source_layers == layer]
                rect = self._evaluate_group(
                    others[members],
                    element_arr,
                    _series(int(layer), element_layer),
                    self.kernel.normalization(int(layer)),
                )  # (S, 1, nb, nb)
                out[:, members, :] = rect[:, 0].transpose(1, 0, 2)
        if hi.size:
            normalization = self.kernel.normalization(element_layer)
            target_layers = self._layers[others[hi]]
            for layer in np.unique(target_layers):
                members = hi[target_layers == layer]
                rect = self._evaluate_group(
                    element_arr,
                    others[members],
                    _series(element_layer, int(layer)),
                    normalization,
                )  # (1, T, nb, nb)
                out[:, members, :] = np.transpose(rect[0], (2, 0, 1))
        return out

    # -- the single-column kernel --------------------------------------------------------

    def column_blocks(
        self, source_index: int, target_indices: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Influence blocks of one source element on a set of target elements.

        Parameters
        ----------
        source_index:
            Index of the source element (the paper's outer-loop cycle).
        target_indices:
            Indices of the target elements; defaults to ``source_index..M-1``,
            i.e. the column of the lower triangle the paper assigns to this
            cycle.

        Returns
        -------
        (targets, blocks)
            ``targets`` is the array of target indices actually used and
            ``blocks`` has shape ``(len(targets), nb, nb)`` with the same
            ``[j, i]`` convention as :func:`element_pair_influence`.
        """
        m = self.n_elements
        if not 0 <= int(source_index) < m:
            raise AssemblyError(f"source element index {source_index} out of range 0..{m - 1}")
        [(targets, blocks)] = self.column_batch([int(source_index)], target_indices)
        return targets, blocks

    # -- work decomposition helpers -------------------------------------------------------

    def column_sizes(self) -> np.ndarray:
        """Number of target elements of every column (linearly decreasing)."""
        m = self.n_elements
        return np.arange(m, 0, -1, dtype=int)

    def column_cost_estimate(self) -> np.ndarray:
        """Relative cost estimate of each column (targets x image terms).

        Deterministic and host-independent; used by the parallel simulator and
        the batched executors to apportion chunk times when no measured timings
        are available.  Delegates to
        :func:`repro.parallel.costs.analytic_column_costs`, or — when the
        adaptive evaluation layer is active — to the per-pair adaptive term
        counts of :meth:`adaptive_column_costs`.
        """
        if self.adaptive is not None:
            return self.adaptive_column_costs()
        # Local import: repro.parallel imports repro.bem at package load time.
        from repro.parallel.costs import analytic_column_costs

        return analytic_column_costs(self._layers, self.kernel, self.n_gauss)

    def adaptive_column_costs(self) -> np.ndarray:
        """Per-column work estimate under the adaptive evaluation plans.

        The cost of column ``α`` is ``n_gauss · Σ_{β ≥ α} units(α, β)`` where
        ``units`` counts the exact terms (weight 1) and midpoint-tail terms
        (their measured relative cost) actually evaluated for the pair —
        distance-truncated columns are cheaper than the uniform estimate of
        :func:`repro.parallel.costs.analytic_column_costs`, which keeps the
        Fig. 6.1 / Table 6.2 schedules consistent with what the adaptive
        engine really executes.  Deterministic and host-independent.
        """
        if self.adaptive is None:
            raise AssemblyError("adaptive_column_costs requires an adaptive assembler")
        if self._adaptive_costs is not None:
            return self._adaptive_costs.copy()
        m = self.n_elements
        costs = np.zeros(m)
        for source in range(m):
            targets = np.arange(source, m)
            target_layers = self._layers[targets]
            total = 0.0
            for field_layer in np.unique(target_layers):
                ids = targets[target_layers == field_layer]
                series = self.kernel.image_series(
                    int(self._layers[source]), int(field_layer)
                )
                if len(series) < self.adaptive.min_series_terms:
                    total += float(len(series)) * ids.size
                    continue
                plan = self._plan_for(source, int(field_layer))
                total += float(
                    plan.cost_units(self._pair_separation(source, ids)).sum()
                )
            costs[source] = total * self.n_gauss
        self._adaptive_costs = costs
        return costs.copy()

    def max_batch_size(self, cap: int = 64) -> int:
        """Default column count per assembly batch (scatter / bookkeeping unit).

        Deliberately *larger* than the number of sources that fit one
        cache-resident rectangle: :meth:`_rectangle_blocks` re-chunks each
        batch to the element budget internally, so a bigger batch only
        amortises the per-batch Python overhead (column results, cost shares,
        one scatter) over more columns without growing the vectorised
        working set.
        """
        layers = np.unique(self._layers)
        longest = max(
            self.kernel.series_length(int(b), int(c)) for b in layers for c in layers
        )
        per_source = max(1, longest * self.n_elements * self.n_gauss)
        rectangle_sources = max(1, self.batch_element_budget // per_source)
        return int(np.clip(8 * rectangle_sources, 1, cap))
