"""Gauss–Legendre quadrature rules for the outer (Galerkin) element integrals.

The outer integral of the paper's coefficient ``R_βα`` runs over the target
element; because the inner (source) integral is evaluated analytically, the
outer integrand is smooth (at worst logarithmic near a shared node) and a small
Gauss rule is sufficient.  Rules are cached since the assembly requests the
same order millions of times.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.exceptions import AssemblyError

__all__ = ["gauss_legendre_rule", "map_rule_to_segment"]


@lru_cache(maxsize=64)
def gauss_legendre_rule(n_points: int) -> tuple[np.ndarray, np.ndarray]:
    """Nodes and weights of the ``n_points`` Gauss–Legendre rule on ``[0, 1]``.

    Returns
    -------
    (nodes, weights)
        Arrays of shape ``(n_points,)``; the weights sum to one.
    """
    if n_points < 1:
        raise AssemblyError(f"a quadrature rule needs at least one point, got {n_points}")
    nodes, weights = np.polynomial.legendre.leggauss(int(n_points))
    # Map from [-1, 1] to [0, 1].
    nodes = 0.5 * (nodes + 1.0)
    weights = 0.5 * weights
    nodes.setflags(write=False)
    weights.setflags(write=False)
    return nodes, weights


def map_rule_to_segment(
    p0: np.ndarray, p1: np.ndarray, n_points: int
) -> tuple[np.ndarray, np.ndarray]:
    """Quadrature points and weights on the straight segment ``p0 → p1``.

    The returned weights integrate functions of arc length, i.e. they already
    include the segment length (Jacobian).

    Parameters
    ----------
    p0, p1:
        Segment end points, shape ``(3,)`` or broadcastable batches ``(..., 3)``.
    n_points:
        Number of Gauss points.

    Returns
    -------
    (points, weights)
        ``points`` has shape ``(..., n_points, 3)`` and ``weights`` shape
        ``(..., n_points)``.
    """
    nodes, base_weights = gauss_legendre_rule(n_points)
    p0 = np.asarray(p0, dtype=float)
    p1 = np.asarray(p1, dtype=float)
    direction = p1 - p0
    length = np.linalg.norm(direction, axis=-1)
    points = p0[..., None, :] + nodes[:, None] * direction[..., None, :]
    weights = base_weights * length[..., None]
    return points, weights
