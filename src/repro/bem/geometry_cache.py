"""Byte-budgeted LRU cache for in-plane pair geometry.

The image transforms of a layered-soil kernel only move the *z* coordinate of
a source segment, so the in-plane part of the pair geometry — the axial
projection of the field points and their squared in-plane distance to the
segment axis — is identical for every image term *and* for every repeated
evaluation of the same (mesh, field points) combination.  Sweeps that
re-assemble the same mesh (soil-model comparisons such as the Balaídos A/B/C
study, repeated GPR/fault-scenario analyses in the design optimiser, or
benchmark rounds) therefore recompute arrays that never change.

:class:`GeometryCache` stores those arrays keyed by content fingerprints.  It
is a plain LRU with a byte budget: entries are evicted oldest-first once the
budget is exceeded, so the cache can be left enabled for arbitrarily long
sweeps.  All operations are thread-safe; cached arrays are returned as
read-only views and must not be mutated by callers.
"""

from __future__ import annotations

import hashlib
import os
import threading
import weakref
from collections import OrderedDict

import numpy as np

__all__ = ["GeometryCache", "default_geometry_cache", "array_fingerprint"]

#: Live cache instances, tracked so locks can be re-armed after a fork.
_instances: "weakref.WeakSet[GeometryCache]" = weakref.WeakSet()


def _reset_locks_after_fork() -> None:
    """Re-arm every cache lock in a freshly forked child.

    The process backends fork workers (``multiprocessing`` ``fork`` start
    method), and ``fork()`` copies mutex state: a lock another parent thread
    happened to hold at fork time stays locked forever in the child — whose
    holder does not exist there — deadlocking the first cache access.  Each
    child therefore gets fresh, open locks; the cached entries themselves are
    plain copy-on-write data and stay valid (and warm) across the fork, while
    post-fork mutations remain private to each process.
    """
    global _default_lock
    _default_lock = threading.Lock()
    for cache in list(_instances):
        cache._lock = threading.Lock()


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX in practice
    os.register_at_fork(after_in_child=_reset_locks_after_fork)

#: Default byte budget of the process-wide cache (64 MiB keeps the working set
#: of a few paper-size meshes without competing with the assembly itself).
DEFAULT_CACHE_BYTES: int = 64 * 1024 * 1024


def array_fingerprint(*arrays: np.ndarray) -> str:
    """Stable content fingerprint of a sequence of arrays."""
    digest = hashlib.blake2b(digest_size=16)
    for array in arrays:
        array = np.ascontiguousarray(array)
        digest.update(str(array.shape).encode())
        digest.update(array.tobytes())
    return digest.hexdigest()


class GeometryCache:
    """Thread-safe LRU cache of geometry arrays with a byte budget."""

    def __init__(self, max_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        self.max_bytes = int(max_bytes)
        self._entries: "OrderedDict[tuple, tuple[np.ndarray, ...]]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        _instances.add(self)

    def get(self, key: tuple) -> tuple[np.ndarray, ...] | None:
        """The cached arrays of ``key`` (marking it most recently used)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: tuple, arrays: tuple[np.ndarray, ...]) -> tuple[np.ndarray, ...]:
        """Store ``arrays`` under ``key`` and return the read-only views."""
        frozen = []
        size = 0
        for array in arrays:
            contiguous = np.ascontiguousarray(array)
            if contiguous is array:
                # Never freeze an object the caller may still own.
                contiguous = array.copy()
            contiguous.setflags(write=False)
            frozen.append(contiguous)
            size += contiguous.nbytes
        stored = tuple(frozen)
        if size > self.max_bytes:
            return stored  # larger than the whole budget: serve uncached
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._bytes -= sum(a.nbytes for a in previous)
            self._entries[key] = stored
            self._bytes += size
            while self._bytes > self.max_bytes and self._entries:
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= sum(a.nbytes for a in evicted)
        return stored

    def keys(self) -> list[tuple]:
        """Cached keys in eviction order, oldest first (deterministic)."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        """Drop every entry (the statistics survive)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    @property
    def n_entries(self) -> int:
        """Number of cached entries."""
        with self._lock:
            return len(self._entries)

    @property
    def nbytes(self) -> int:
        """Bytes currently held."""
        with self._lock:
            return self._bytes

    def stats(self) -> dict:
        """Hit/miss counters and occupancy."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
            }


_default_cache: GeometryCache | None = None
_default_lock = threading.Lock()


def default_geometry_cache() -> GeometryCache:
    """The process-wide shared cache (created on first use)."""
    global _default_cache
    with _default_lock:
        if _default_cache is None:
            _default_cache = GeometryCache()
        return _default_cache
