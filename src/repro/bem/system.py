"""Container for the assembled Galerkin linear system."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.bem.elements import DofManager
from repro.exceptions import AssemblyError

__all__ = ["LinearSystem"]


@dataclass
class LinearSystem:
    """The symmetric system ``R q = ν`` of the paper's equation (4.4).

    Attributes
    ----------
    matrix:
        Coefficient matrix ``R``: either the dense symmetric positive
        definite array, or a matrix-free symmetric operator (square
        ``shape`` plus ``matvec``, e.g. the hierarchical far-field
        operator) consumed by the iterative solvers.
    rhs:
        Right-hand side ``ν`` (the GPR times the basis-function integrals).
    dof_manager:
        Mapping between mesh elements and global unknowns.
    gpr:
        Ground Potential Rise used to build the right-hand side [V].
    metadata:
        Free-form assembly information (timings, kernel sizes, backend...).
    """

    matrix: Any
    rhs: np.ndarray
    dof_manager: DofManager
    gpr: float
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self._is_operator(self.matrix):
            self.matrix = np.asarray(self.matrix, dtype=float)
        self.rhs = np.asarray(self.rhs, dtype=float)
        n = self.dof_manager.n_dofs
        if tuple(self.matrix.shape) != (n, n):
            raise AssemblyError(
                f"matrix shape {self.matrix.shape} does not match {n} degrees of freedom"
            )
        if self.rhs.shape != (n,):
            raise AssemblyError(
                f"right-hand side shape {self.rhs.shape} does not match {n} degrees of freedom"
            )

    @staticmethod
    def _is_operator(matrix: Any) -> bool:
        """Matrix-free operand: square ``shape`` plus ``matvec`` or ``@``.

        The same acceptance rule as the solver layer's
        :func:`repro.solvers.cg.as_matvec_operator`, so an operand the CG
        solver would consume is never mangled by ``np.asarray``.
        """
        if isinstance(matrix, np.ndarray):
            return False
        shape = getattr(matrix, "shape", None)
        if shape is None or len(shape) != 2 or shape[0] != shape[1]:
            return False
        return hasattr(matrix, "matvec") or hasattr(type(matrix), "__matmul__")

    @property
    def is_dense(self) -> bool:
        """True for a dense ndarray matrix, False for a matrix-free operator."""
        return isinstance(self.matrix, np.ndarray)

    @property
    def n_dofs(self) -> int:
        """Number of unknowns."""
        return self.dof_manager.n_dofs

    def symmetry_error(self) -> float:
        """Relative Frobenius asymmetry ``|R − Rᵀ| / |R|`` (should be ~0).

        Matrix-free operators are symmetric by construction (every far-field
        block is applied together with its transpose), so they report 0.
        """
        if not self.is_dense:
            return 0.0
        norm = float(np.linalg.norm(self.matrix))
        if norm == 0.0:  # contracts: disable=API001 -- division guard: only an exactly zero norm divides by zero
            return 0.0
        return float(np.linalg.norm(self.matrix - self.matrix.T)) / norm

    def diagonal_dominance_ratio(self) -> float:
        """Smallest ratio of diagonal entry to off-diagonal row sum (diagnostic)."""
        if not self.is_dense:
            raise AssemblyError(
                "diagonal_dominance_ratio needs the dense matrix; the hierarchical "
                "operator does not materialise row sums"
            )
        diag = np.abs(np.diag(self.matrix))
        off = np.abs(self.matrix).sum(axis=1) - diag
        with np.errstate(divide="ignore", invalid="ignore"):
            ratios = np.where(off > 0.0, diag / off, np.inf)
        return float(ratios.min())

    def summary(self) -> dict[str, Any]:
        """Compact description used by reports."""
        return {
            "n_dofs": self.n_dofs,
            "n_elements": self.dof_manager.n_elements,
            "element_type": self.dof_manager.element_type.value,
            "gpr_v": self.gpr,
            "symmetry_error": self.symmetry_error(),
            **{k: v for k, v in self.metadata.items() if np.isscalar(v)},
        }
