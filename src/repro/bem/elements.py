"""Boundary-element types and degree-of-freedom management.

The paper's Galerkin formulation supports different families of trial/test
functions; this module implements the two used in practice:

* ``ElementType.CONSTANT`` — one degree of freedom per element, the leakage
  current per unit length is uniform along the element;
* ``ElementType.LINEAR`` — degrees of freedom at the mesh nodes, the leakage
  density varies linearly along each element and is continuous across nodes
  (these are the "linear leakage current elements" of the Barberá example,
  where 408 elements give 238 nodal unknowns).

:class:`DofManager` maps (element, local basis function) pairs to global
unknown indices and provides the exact integrals of the basis functions used
for the right-hand side and for the total leaked current.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.exceptions import AssemblyError
from repro.geometry.discretize import Mesh, MeshElement

__all__ = ["ElementType", "DofManager"]


class ElementType(str, enum.Enum):
    """Trial/test function family of the 1D Galerkin formulation."""

    #: Piecewise-constant leakage density, one unknown per element.
    CONSTANT = "constant"
    #: Piecewise-linear, nodally continuous leakage density.
    LINEAR = "linear"

    @property
    def basis_per_element(self) -> int:
        """Number of local basis functions supported on one element."""
        return 1 if self is ElementType.CONSTANT else 2


class DofManager:
    """Mapping between elements, local basis functions and global unknowns."""

    def __init__(self, mesh: Mesh, element_type: ElementType = ElementType.LINEAR) -> None:
        if not isinstance(element_type, ElementType):
            element_type = ElementType(element_type)
        self.mesh = mesh
        self.element_type = element_type
        if element_type is ElementType.CONSTANT:
            self._n_dofs = mesh.n_elements
        else:
            self._n_dofs = mesh.n_nodes

    # -- sizes --------------------------------------------------------------------

    @property
    def n_dofs(self) -> int:
        """Number of global unknowns (the paper's ``N``)."""
        return self._n_dofs

    @property
    def n_elements(self) -> int:
        """Number of elements (the paper's ``M``)."""
        return self.mesh.n_elements

    # -- per-element views ----------------------------------------------------------

    def element_dofs(self, element: MeshElement) -> np.ndarray:
        """Global dof indices of the element's local basis functions."""
        if self.element_type is ElementType.CONSTANT:
            return np.array([element.index], dtype=int)
        return np.array(element.node_ids, dtype=int)

    def element_dof_matrix(self) -> np.ndarray:
        """All element dof indices, shape ``(n_elements, basis_per_element)``."""
        return np.array(
            [self.element_dofs(element) for element in self.mesh.elements], dtype=int
        )

    def basis_integrals(self, element: MeshElement) -> np.ndarray:
        """Integrals ``∫ N_i dl`` of the local basis functions over the element.

        For constant elements this is ``[L]``; for linear elements
        ``[L/2, L/2]``.  These integrals define the right-hand side of the
        Galerkin system and the weights turning nodal leakage densities into
        the total leaked current.
        """
        length = element.length
        if self.element_type is ElementType.CONSTANT:
            return np.array([length], dtype=float)
        return np.array([0.5 * length, 0.5 * length], dtype=float)

    def shape_values(self, local_coords: np.ndarray) -> np.ndarray:
        """Basis function values at normalised coordinates ``l / L`` in [0, 1].

        Returns an array of shape ``(len(local_coords), basis_per_element)``.
        """
        t = np.asarray(local_coords, dtype=float)
        if np.any(t < -1e-12) or np.any(t > 1.0 + 1e-12):
            raise AssemblyError("local coordinates must lie in [0, 1]")
        if self.element_type is ElementType.CONSTANT:
            return np.ones((*t.shape, 1))
        return np.stack((1.0 - t, t), axis=-1)

    # -- global helpers ---------------------------------------------------------------

    def assemble_basis_integrals(self) -> np.ndarray:
        """Global vector ``g`` with ``g_j = ∫ N_j dl`` over the whole electrode.

        Multiplying the solved leakage densities by this vector gives the total
        current leaked into the ground, ``I_Γ = Σ_j g_j q_j``.
        """
        g = np.zeros(self.n_dofs)
        for element in self.mesh.elements:
            dofs = self.element_dofs(element)
            np.add.at(g, dofs, self.basis_integrals(element))
        return g

    def element_mean_density(self, dof_values: np.ndarray) -> np.ndarray:
        """Average leakage density per element from the global dof values."""
        values = np.asarray(dof_values, dtype=float)
        if values.shape != (self.n_dofs,):
            raise AssemblyError(
                f"dof vector has shape {values.shape}, expected ({self.n_dofs},)"
            )
        means = np.empty(self.n_elements)
        for element in self.mesh.elements:
            dofs = self.element_dofs(element)
            means[element.index] = float(values[dofs].mean())
        return means

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DofManager(element_type={self.element_type.value!r}, "
            f"n_elements={self.n_elements}, n_dofs={self.n_dofs})"
        )
