"""Safety parameters of a grounding design: touch, step and mesh voltages.

The whole point of grounding analysis (paper, Section 1) is to verify that
"the values of electrical potentials between close points on earth surface that
can be connected by a person [are] kept under certain maximum safe limits
(step, touch and mesh voltages)".  This module computes those design
quantities from an earth-surface potential map and compares them with the
tolerable limits of IEEE Std 80 (reference [1] of the paper):

* **touch voltage** — difference between the Ground Potential Rise of the
  energised structure and the surface potential at a point a person can reach
  while touching it (evaluated over the area covered by the grid);
* **mesh voltage** — the worst touch voltage inside a grid mesh;
* **step voltage** — the largest difference of surface potential between two
  points one metre apart (a person's step).

Tolerable limits follow the IEEE Std 80 body-current criterion for 50 kg and
70 kg persons with an optional high-resistivity surface layer (crushed rock).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.bem.potential import SurfaceGrid
from repro.constants import DEFAULT_BODY_WEIGHT_KG, DEFAULT_FAULT_DURATION_S
from repro.exceptions import ReproError

__all__ = [
    "surface_layer_derating",
    "ieee80_tolerable_touch",
    "ieee80_tolerable_step",
    "touch_voltage_grid",
    "step_voltage_grid",
    "SafetyAssessment",
]


def surface_layer_derating(
    soil_resistivity: float,
    surface_resistivity: float | None,
    surface_thickness: float,
) -> float:
    """IEEE Std 80 surface-layer derating factor ``C_s``.

    Uses the standard's empirical expression
    ``C_s = 1 − 0.09 (1 − ρ/ρ_s) / (2 h_s + 0.09)``; without a surface layer
    (``surface_resistivity`` is ``None`` or equal to the soil resistivity) the
    factor is 1.
    """
    if surface_resistivity is None:
        return 1.0
    if surface_resistivity <= 0.0 or soil_resistivity <= 0.0:
        raise ReproError("resistivities must be positive")
    if surface_thickness < 0.0:
        raise ReproError("the surface-layer thickness cannot be negative")
    if surface_thickness == 0.0:  # contracts: disable=API001 -- exact user-given sentinel: 0.0 means no surface layer
        return 1.0
    return 1.0 - 0.09 * (1.0 - soil_resistivity / surface_resistivity) / (
        2.0 * surface_thickness + 0.09
    )


def _body_current_factor(body_weight_kg: float) -> float:
    """IEEE Std 80 body-current constant: 0.116 (50 kg) or 0.157 (70 kg)."""
    if body_weight_kg not in (50.0, 70.0):
        raise ReproError(
            f"IEEE Std 80 defines tolerable-voltage formulas for 50 kg and 70 kg persons, "
            f"got {body_weight_kg!r} kg"
        )
    return 0.116 if body_weight_kg == 50.0 else 0.157  # contracts: disable=API001 -- IEEE Std 80 enumerates exactly 50.0/70.0 kg, validated above


def ieee80_tolerable_touch(
    soil_resistivity: float,
    fault_duration_s: float = DEFAULT_FAULT_DURATION_S,
    body_weight_kg: float = DEFAULT_BODY_WEIGHT_KG,
    surface_resistivity: float | None = None,
    surface_thickness: float = 0.1,
) -> float:
    """Tolerable touch voltage [V] per IEEE Std 80.

    ``E_touch = (1000 + 1.5 C_s ρ_s) k / sqrt(t)`` with ``k`` the body-current
    constant, ``ρ_s`` the surface-material resistivity (the native soil
    resistivity when no surface layer is present) and ``t`` the fault duration.
    """
    if fault_duration_s <= 0.0:
        raise ReproError("the fault duration must be positive")
    k = _body_current_factor(body_weight_kg)
    cs = surface_layer_derating(soil_resistivity, surface_resistivity, surface_thickness)
    rho_s = surface_resistivity if surface_resistivity is not None else soil_resistivity
    return (1000.0 + 1.5 * cs * rho_s) * k / np.sqrt(fault_duration_s)


def ieee80_tolerable_step(
    soil_resistivity: float,
    fault_duration_s: float = DEFAULT_FAULT_DURATION_S,
    body_weight_kg: float = DEFAULT_BODY_WEIGHT_KG,
    surface_resistivity: float | None = None,
    surface_thickness: float = 0.1,
) -> float:
    """Tolerable step voltage [V] per IEEE Std 80.

    ``E_step = (1000 + 6 C_s ρ_s) k / sqrt(t)``.
    """
    if fault_duration_s <= 0.0:
        raise ReproError("the fault duration must be positive")
    k = _body_current_factor(body_weight_kg)
    cs = surface_layer_derating(soil_resistivity, surface_resistivity, surface_thickness)
    rho_s = surface_resistivity if surface_resistivity is not None else soil_resistivity
    return (1000.0 + 6.0 * cs * rho_s) * k / np.sqrt(fault_duration_s)


def touch_voltage_grid(surface: SurfaceGrid, gpr: float) -> np.ndarray:
    """Touch-voltage map ``GPR − V_surface`` [V] over the sampled surface grid."""
    if gpr <= 0.0:
        raise ReproError("the GPR must be positive")
    return float(gpr) - surface.values


def step_voltage_grid(surface: SurfaceGrid, step_length: float = 1.0) -> np.ndarray:
    """Step-voltage map: largest potential difference over ``step_length`` [V].

    The step voltage at a sample is approximated by the surface-potential
    gradient magnitude (central differences) multiplied by the step length —
    accurate for grids sampled finer than the potential variation scale.
    """
    if step_length <= 0.0:
        raise ReproError("the step length must be positive")
    if surface.x.size < 2 or surface.y.size < 2:
        raise ReproError("the surface grid needs at least two samples per direction")
    grad_y, grad_x = np.gradient(surface.values, surface.y, surface.x)
    magnitude = np.hypot(grad_x, grad_y)
    return magnitude * float(step_length)


@dataclass
class SafetyAssessment:
    """Comparison of computed design voltages against IEEE Std 80 limits."""

    #: Ground Potential Rise [V].
    gpr: float
    #: Equivalent resistance of the earthing system [Ω].
    equivalent_resistance: float
    #: Total current leaked into the soil [A].
    total_current: float
    #: Worst touch voltage over the assessed area [V].
    max_touch_voltage: float
    #: Worst step voltage over the assessed area [V].
    max_step_voltage: float
    #: Tolerable touch voltage [V].
    tolerable_touch_voltage: float
    #: Tolerable step voltage [V].
    tolerable_step_voltage: float
    #: Extra information (fault duration, body weight, margins ...).
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def touch_voltage_ok(self) -> bool:
        """Whether the worst touch voltage is below the tolerable limit."""
        return self.max_touch_voltage <= self.tolerable_touch_voltage

    @property
    def step_voltage_ok(self) -> bool:
        """Whether the worst step voltage is below the tolerable limit."""
        return self.max_step_voltage <= self.tolerable_step_voltage

    @property
    def is_safe(self) -> bool:
        """Whether both criteria are met."""
        return self.touch_voltage_ok and self.step_voltage_ok

    def summary(self) -> dict[str, Any]:
        """Compact report dictionary."""
        return {
            "gpr_v": self.gpr,
            "equivalent_resistance_ohm": self.equivalent_resistance,
            "total_current_ka": self.total_current / 1e3,
            "max_touch_voltage_v": self.max_touch_voltage,
            "tolerable_touch_voltage_v": self.tolerable_touch_voltage,
            "touch_ok": self.touch_voltage_ok,
            "max_step_voltage_v": self.max_step_voltage,
            "tolerable_step_voltage_v": self.tolerable_step_voltage,
            "step_ok": self.step_voltage_ok,
            "safe": self.is_safe,
            **self.metadata,
        }

    @classmethod
    def from_surface(
        cls,
        surface: SurfaceGrid,
        gpr: float,
        equivalent_resistance: float,
        total_current: float,
        soil_resistivity: float,
        fault_duration_s: float = DEFAULT_FAULT_DURATION_S,
        body_weight_kg: float = DEFAULT_BODY_WEIGHT_KG,
        surface_resistivity: float | None = None,
        surface_thickness: float = 0.1,
        step_length: float = 1.0,
    ) -> "SafetyAssessment":
        """Build an assessment from a sampled earth-surface potential map."""
        touch = touch_voltage_grid(surface, gpr)
        step = step_voltage_grid(surface, step_length)
        return cls(
            gpr=float(gpr),
            equivalent_resistance=float(equivalent_resistance),
            total_current=float(total_current),
            max_touch_voltage=float(touch.max()),
            max_step_voltage=float(step.max()),
            tolerable_touch_voltage=float(
                ieee80_tolerable_touch(
                    soil_resistivity,
                    fault_duration_s,
                    body_weight_kg,
                    surface_resistivity,
                    surface_thickness,
                )
            ),
            tolerable_step_voltage=float(
                ieee80_tolerable_step(
                    soil_resistivity,
                    fault_duration_s,
                    body_weight_kg,
                    surface_resistivity,
                    surface_thickness,
                )
            ),
            metadata={
                "fault_duration_s": fault_duration_s,
                "body_weight_kg": body_weight_kg,
            },
        )
