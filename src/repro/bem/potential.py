"""Evaluation of the potential created by the solved leakage current.

Once the linear system has been solved, the paper's equation (4.2) gives the
potential at any point of the ground (and in particular on the earth surface,
where the step and touch voltages are defined) as a sum of element
contributions:

    ``V_c(x) = Σ_i σ_i V_{c,i}(x)``,
    ``V_{c,i}(x) = 1/(4 π γ_b) Σ_α Σ_l ∫_Γα k^l(x, ξ) N_i(ξ) dΓ``.

The element integrals are the same analytic ``1/r`` line integrals used for the
matrix assembly, so the evaluator reuses :mod:`repro.bem.segment_integrals`.
The cost is ``O(M · n_points · n_images)`` — negligible for a handful of points
but, as the paper notes, "if it is necessary to compute potentials at a large
number of points (i.e. to draw contours), computing time may be important";
the evaluation is therefore vectorised over field points and exposed as a task
list that the parallel executors can distribute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.bem.elements import DofManager, ElementType
from repro.bem.geometry_cache import GeometryCache, array_fingerprint, default_geometry_cache
from repro.bem.segment_integrals import adaptive_segment_sums, line_integrals
from repro.exceptions import AssemblyError
from repro.geometry.discretize import Mesh
from repro.kernels.base import LayeredKernel
from repro.kernels.truncation import (
    AdaptiveControl,
    TruncationPlan,
    i0_upper_bound,
    max_pair_distance,
)
from repro.soil.base import SoilModel

__all__ = ["PotentialEvaluator", "SurfaceGrid"]


@dataclass
class SurfaceGrid:
    """Earth-surface potential sampled on a rectangular grid.

    Attributes
    ----------
    x, y:
        1D arrays of the grid coordinates [m].
    values:
        Potential values, shape ``(len(y), len(x))`` [V].
    gpr:
        Ground Potential Rise of the analysis [V]; useful to express values as
        a fraction of the GPR as the paper's figures do (``×10 kV``).
    """

    x: np.ndarray
    y: np.ndarray
    values: np.ndarray
    gpr: float = 1.0
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=float)
        self.y = np.asarray(self.y, dtype=float)
        self.values = np.asarray(self.values, dtype=float)
        if self.values.shape != (self.y.size, self.x.size):
            raise AssemblyError(
                f"surface grid values shape {self.values.shape} does not match "
                f"({self.y.size}, {self.x.size})"
            )

    @property
    def normalized(self) -> np.ndarray:
        """Values divided by the GPR (the per-unit representation of Fig. 5.2/5.4)."""
        return self.values / self.gpr

    @property
    def max_value(self) -> float:
        """Maximum surface potential [V]."""
        return float(self.values.max())

    @property
    def min_value(self) -> float:
        """Minimum surface potential [V]."""
        return float(self.values.min())

    def profile_along_x(self, y_value: float) -> tuple[np.ndarray, np.ndarray]:
        """Potential profile along the row closest to ``y = y_value``."""
        row = int(np.argmin(np.abs(self.y - y_value)))
        return self.x.copy(), self.values[row, :].copy()

    def profile_along_y(self, x_value: float) -> tuple[np.ndarray, np.ndarray]:
        """Potential profile along the column closest to ``x = x_value``."""
        col = int(np.argmin(np.abs(self.x - x_value)))
        return self.y.copy(), self.values[:, col].copy()

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable representation (lists, not arrays)."""
        return {
            "x": self.x.tolist(),
            "y": self.y.tolist(),
            "values": self.values.tolist(),
            "gpr": self.gpr,
            "metadata": dict(self.metadata),
        }


class PotentialEvaluator:
    """Evaluates ground potentials from the solved leakage-current densities.

    By default the evaluation runs through the *adaptive batched kernel*: all
    (field point, source element) pairs are flattened, binned by separation
    and evaluated through the same truncated / merged / mixed-precision image
    sums as the matrix assembly (``adaptive=None`` falls back to the exact
    per-element loop).  Point values match the exact path to roughly
    ``tolerance`` relative to the near-conductor potential scale (the GPR).
    """

    def __init__(
        self,
        mesh: Mesh,
        soil: SoilModel,
        kernel: LayeredKernel,
        dof_manager: DofManager,
        dof_values: np.ndarray,
        gpr: float = 1.0,
        adaptive: AdaptiveControl | None | str = "default",
        geometry_cache: GeometryCache | None = None,
    ) -> None:
        dof_values = np.asarray(dof_values, dtype=float)
        if dof_values.shape != (dof_manager.n_dofs,):
            raise AssemblyError(
                f"dof vector has shape {dof_values.shape}, expected ({dof_manager.n_dofs},)"
            )
        self.mesh = mesh
        self.soil = soil
        self.kernel = kernel
        self.dof_manager = dof_manager
        self.dof_values = dof_values
        self.gpr = float(gpr)
        if isinstance(adaptive, str):
            if adaptive != "default":
                raise AssemblyError(
                    f"adaptive must be an AdaptiveControl, None or 'default', got {adaptive!r}"
                )
            adaptive = AdaptiveControl()
        elif adaptive is not None and not isinstance(adaptive, AdaptiveControl):
            raise AssemblyError(
                f"adaptive must be an AdaptiveControl, None or 'default', got {adaptive!r}"
            )
        self.adaptive = adaptive

        self._p0, self._p1 = mesh.element_endpoints()
        self._radii = mesh.element_radii()
        self._layers = mesh.element_layers()
        self._dof_matrix = dof_manager.element_dof_matrix()
        self._geometry_cache = geometry_cache
        if self.adaptive is not None:
            self._init_adaptive()

    def _init_adaptive(self) -> None:
        """Pure per-solution data driving the adaptive evaluation."""
        if self._geometry_cache is None:
            self._geometry_cache = default_geometry_cache()
        mesh = self.mesh
        p0, p1 = self._p0, self._p1
        self._mesh_fp = array_fingerprint(p0, p1, self._radii)
        self._lengths = mesh.element_lengths()
        self._mid_xy = 0.5 * (p0 + p1)[:, :2]
        self._half_lengths = 0.5 * self._lengths
        self._u_xy = (p1[:, :2] - p0[:, :2]) / self._lengths[:, None]
        self._z_slope = (p1[:, 2] - p0[:, 2]) / self._lengths
        self._horizontal = np.abs(p1[:, 2] - p0[:, 2]) <= 1.0e-12
        self._densities = self.dof_values[self._dof_matrix]  # (M, nb)
        active = np.flatnonzero(np.abs(self._densities).sum(axis=1) > 0.0)
        self._active = active

        # Group active source elements sharing every evaluation scalar; each
        # group is evaluated under one truncation plan per field layer.
        groups: dict[tuple, list[int]] = {}
        for element in active:
            key = (
                int(self._layers[element]),
                round(float(self._lengths[element]), 12),
                round(float(p0[element, 2]), 12),
                round(float(p1[element, 2]), 12),
                round(float(self._radii[element]), 12),
            )
            groups.setdefault(key, []).append(int(element))
        self._plan_groups = [
            (key, np.asarray(members, dtype=int)) for key, members in groups.items()
        ]
        # Cache-key component identifying everything the cached geometry/bin
        # arrays depend on besides the points and the group scalars: the
        # member element set (derived from the solved densities) and the
        # separation bin edges of the control.
        self._group_fp = {
            key: array_fingerprint(members) + "/" + ",".join(
                f"{edge:g}" for edge in self.adaptive.bin_edges
            )
            for key, members in self._plan_groups
        }

        # Reference potential magnitude (the near-conductor potential, ~GPR)
        # and the largest density of any group, both entering the plan bounds.
        if active.size:
            dens_abs = np.abs(self._densities[active]).max(axis=1)
            norms = np.array(
                [self.kernel.normalization(int(self._layers[e])) for e in active]
            )
            w_max = np.array(
                [
                    float(
                        np.abs(
                            self.kernel.image_series(
                                int(self._layers[e]), int(self._layers[e])
                            ).weights
                        ).max()
                    )
                    for e in active
                ]
            )
            bounds = (
                norms
                * dens_abs
                * w_max
                * i0_upper_bound(self._lengths[active], self._radii[active])
            )
            self._adaptive_scale = float(bounds.max())
            self._dens_scale = {
                key: float(np.abs(self._densities[members]).max())
                for key, members in self._plan_groups
            }
        else:
            self._adaptive_scale = 1.0
            self._dens_scale = {}
        offset_max = 0.0
        for b in np.unique(self._layers):
            for c in range(1, self.soil.n_layers + 1):
                offset_max = max(
                    offset_max,
                    float(np.abs(self.kernel.image_series(int(b), int(c)).offsets).max()),
                )
        self._r_max = max_pair_distance(p0, p1, offset_max)

    # ------------------------------------------------------------------ evaluation

    def potential_at(self, points: np.ndarray, batch_size: int = 4096) -> np.ndarray:
        """Potential at arbitrary points of the ground (or on its surface).

        Parameters
        ----------
        points:
            Array of shape ``(n, 3)`` (or a single point of shape ``(3,)``);
            depths must be non-negative.
        batch_size:
            Number of field points processed per vectorised batch (memory
            control for dense contour maps).

        Returns
        -------
        numpy.ndarray
            Potentials in volts, shape ``(n,)`` (or a scalar for a single point).
        """
        pts = np.asarray(points, dtype=float)
        single = pts.ndim == 1
        pts = np.atleast_2d(pts)
        if pts.shape[1] != 3:
            raise AssemblyError("field points must have three coordinates")
        if np.any(pts[:, 2] < -1e-12):
            raise AssemblyError("field points must lie on or below the earth surface")

        if pts.shape[0] == 0:
            return np.empty(0)
        context = self._adaptive_context(pts) if self.adaptive is not None else None
        result = np.empty(pts.shape[0])
        for start in range(0, pts.shape[0], int(batch_size)):
            chunk = pts[start : start + int(batch_size)]
            if context is not None:
                values = self._potential_batch_adaptive(chunk, context)
            else:
                values = self._potential_batch(chunk)
            result[start : start + chunk.shape[0]] = values
        return result[0] if single else result

    # ------------------------------------------------------------- adaptive path

    def _adaptive_context(self, points: np.ndarray) -> dict:
        """Per-call evaluation context (pure in the full ``points`` array).

        The truncation plans depend on the depth interval of *all* requested
        points, so they are built once per call — results are then identical
        for every ``batch_size``.
        """
        z_values = points[:, 2]
        flat_z = float(z_values[0]) if np.ptp(z_values) <= 1.0e-12 else None
        return {
            "z_interval": (float(z_values.min()), float(z_values.max())),
            "flat_z": flat_z,
            "plans": {},
        }

    def _plan_for_group(self, key: tuple, field_layer: int, context: dict) -> TruncationPlan:
        source_layer, length, z0, z1, _radius = key
        cache_key = (key, field_layer)
        plan = context["plans"].get(cache_key)
        if plan is None:
            series = self.kernel.image_series(source_layer, field_layer)
            merge_z = None
            if context["flat_z"] is not None and abs(z1 - z0) <= 1.0e-12:
                merge_z = (z0, context["flat_z"])
            plan = TruncationPlan.build(
                series,
                self.adaptive,
                source_length=length,
                source_z_interval=(min(z0, z1), max(z0, z1)),
                target_z_interval=context["z_interval"],
                target_length_max=1.0,
                normalization=self.kernel.normalization(source_layer)
                * max(self._dens_scale.get(key, 1.0), 1.0e-300),
                scale=self._adaptive_scale,
                merge_z=merge_z,
                r_max=self._r_max,
            )
            context["plans"][cache_key] = plan
        return plan

    def _potential_batch_adaptive(self, points: np.ndarray, context: dict) -> np.ndarray:
        """Batched adaptive evaluation of one chunk of field points.

        All (point, active source element) pairs are binned by in-plane
        separation and evaluated through
        :func:`~repro.bem.segment_integrals.adaptive_segment_sums`, replacing
        the per-element Python loop of the exact path by a handful of large
        vectorised passes.
        """
        n_points = points.shape[0]
        values = np.zeros(n_points)
        if self._active.size == 0:
            return values
        field_layers = np.array(
            [self.soil.layer_index(max(float(z), 0.0)) for z in points[:, 2]], dtype=int
        )
        nb = self.dof_manager.element_type.basis_per_element
        points_fp = array_fingerprint(points)

        for field_layer in np.unique(field_layers):
            point_idx = np.flatnonzero(field_layers == field_layer)
            pts_xy = points[point_idx, :2]
            pts_z = np.ascontiguousarray(points[point_idx, 2])
            for key, members in self._plan_groups:
                source_layer, length, z0, z1, radius = key
                plan = self._plan_for_group(key, int(field_layer), context)

                geo_key = (
                    self._mesh_fp,
                    "pot",
                    points_fp,
                    key,
                    self._group_fp[key],
                    int(field_layer),
                )
                cached = self._geometry_cache.get(geo_key)
                if cached is None:
                    delta = pts_xy[:, None, :] - self._mid_xy[None, members, :]
                    separation = np.sqrt(np.einsum("psk,psk->ps", delta, delta))
                    separation -= self._half_lengths[members][None, :]
                    np.maximum(separation, 0.0, out=separation)
                    bins = plan.bin_of(separation)
                    disp = pts_xy[:, None, :] - self._p0[None, members, :2]
                    p_axis = np.einsum("psk,sk->ps", disp, self._u_xy[members])
                    q_norm = np.einsum("psk,psk->ps", disp, disp)
                    order = np.argsort(bins, axis=None, kind="stable").astype(np.intp)
                    cached = self._geometry_cache.put(
                        geo_key,
                        (bins.ravel()[order], p_axis.ravel()[order], q_norm.ravel()[order], order),
                    )
                bins_sorted, p_axis_sorted, q_norm_sorted, order = cached
                pair_point = order // members.size
                pair_source = members[order % members.size]
                x_z = pts_z[pair_point]
                densities = self._densities[pair_source]  # (P, nb)
                normalization = self.kernel.normalization(source_layer)

                starts = np.flatnonzero(
                    np.concatenate(([True], np.diff(bins_sorted) > 0))
                )
                starts = np.concatenate((starts, [order.size]))
                for g in range(starts.size - 1):
                    span = slice(int(starts[g]), int(starts[g + 1]))
                    bin_plan = plan.bins[int(bins_sorted[int(starts[g])])]
                    w0, w1 = adaptive_segment_sums(
                        p_axis_sorted[span],
                        q_norm_sorted[span],
                        x_z[span],
                        z0,
                        (z1 - z0) / length,
                        length,
                        radius,
                        plan.weights,
                        plan.signs,
                        plan.offsets,
                        bin_plan.exact_idx,
                        bin_plan.exact32_idx,
                        bin_plan.midpoint_idx,
                    )
                    if nb == 1:
                        contribution = densities[span, 0] * w0
                    else:
                        contribution = densities[span, 0] * (w0 - w1) + densities[span, 1] * w1
                    contribution *= normalization
                    values[point_idx] += np.bincount(
                        pair_point[span], weights=contribution, minlength=point_idx.size
                    )
        return values

    def _potential_batch(self, points: np.ndarray) -> np.ndarray:
        field_layers = np.array(
            [self.soil.layer_index(max(float(z), 0.0)) for z in points[:, 2]], dtype=int
        )
        values = np.zeros(points.shape[0])
        nb = self.dof_manager.element_type.basis_per_element

        for element_index in range(self.mesh.n_elements):
            element_dofs = self._dof_matrix[element_index]
            densities = self.dof_values[element_dofs]
            if not np.any(densities):
                continue
            source_layer = int(self._layers[element_index])
            normalization = self.kernel.normalization(source_layer)
            p0 = self._p0[element_index]
            p1 = self._p1[element_index]
            radius = float(self._radii[element_index])

            for field_layer in np.unique(field_layers):
                mask = field_layers == field_layer
                series = self.kernel.image_series(source_layer, int(field_layer))
                q0 = np.broadcast_to(p0, (len(series), 3)).copy()
                q1 = np.broadcast_to(p1, (len(series), 3)).copy()
                q0[:, 2] = series.signs * p0[2] + series.offsets
                q1[:, 2] = series.signs * p1[2] + series.offsets

                i0, i1 = line_integrals(
                    points[mask][None, :, :], q0[:, None, :], q1[:, None, :], min_distance=radius
                )
                w0 = np.einsum("l,ln->n", series.weights, i0)
                w1 = np.einsum("l,ln->n", series.weights, i1)
                if nb == 1:
                    contribution = densities[0] * w0
                else:
                    contribution = densities[0] * (w0 - w1) + densities[1] * w1
                values[mask] += normalization * contribution
        return values

    # ------------------------------------------------------------------ surface maps

    def surface_potential(
        self,
        x: Sequence[float] | np.ndarray,
        y: Sequence[float] | np.ndarray,
        batch_size: int = 4096,
    ) -> SurfaceGrid:
        """Earth-surface potential on the tensor grid ``x × y`` (at ``z = 0``)."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        xx, yy = np.meshgrid(x, y)
        points = np.column_stack((xx.ravel(), yy.ravel(), np.zeros(xx.size)))
        values = self.potential_at(points, batch_size=batch_size)
        return SurfaceGrid(x=x, y=y, values=values.reshape(y.size, x.size), gpr=self.gpr)

    def surface_potential_over_grid(
        self,
        margin: float = 20.0,
        n_x: int = 61,
        n_y: int = 61,
        batch_size: int = 4096,
    ) -> SurfaceGrid:
        """Surface potential over the grid's bounding box extended by ``margin`` [m]."""
        lower, upper = self.mesh.grid.bounding_box()
        x = np.linspace(lower[0] - margin, upper[0] + margin, int(n_x))
        y = np.linspace(lower[1] - margin, upper[1] + margin, int(n_y))
        return self.surface_potential(x, y, batch_size=batch_size)
