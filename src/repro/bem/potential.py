"""Evaluation of the potential created by the solved leakage current.

Once the linear system has been solved, the paper's equation (4.2) gives the
potential at any point of the ground (and in particular on the earth surface,
where the step and touch voltages are defined) as a sum of element
contributions:

    ``V_c(x) = Σ_i σ_i V_{c,i}(x)``,
    ``V_{c,i}(x) = 1/(4 π γ_b) Σ_α Σ_l ∫_Γα k^l(x, ξ) N_i(ξ) dΓ``.

The element integrals are the same analytic ``1/r`` line integrals used for the
matrix assembly, so the evaluator reuses :mod:`repro.bem.segment_integrals`.
The cost is ``O(M · n_points · n_images)`` — negligible for a handful of points
but, as the paper notes, "if it is necessary to compute potentials at a large
number of points (i.e. to draw contours), computing time may be important";
the evaluation is therefore vectorised over field points and exposed as a task
list that the parallel executors can distribute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.bem.elements import DofManager, ElementType
from repro.bem.segment_integrals import line_integrals
from repro.exceptions import AssemblyError
from repro.geometry.discretize import Mesh
from repro.kernels.base import LayeredKernel
from repro.soil.base import SoilModel

__all__ = ["PotentialEvaluator", "SurfaceGrid"]


@dataclass
class SurfaceGrid:
    """Earth-surface potential sampled on a rectangular grid.

    Attributes
    ----------
    x, y:
        1D arrays of the grid coordinates [m].
    values:
        Potential values, shape ``(len(y), len(x))`` [V].
    gpr:
        Ground Potential Rise of the analysis [V]; useful to express values as
        a fraction of the GPR as the paper's figures do (``×10 kV``).
    """

    x: np.ndarray
    y: np.ndarray
    values: np.ndarray
    gpr: float = 1.0
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=float)
        self.y = np.asarray(self.y, dtype=float)
        self.values = np.asarray(self.values, dtype=float)
        if self.values.shape != (self.y.size, self.x.size):
            raise AssemblyError(
                f"surface grid values shape {self.values.shape} does not match "
                f"({self.y.size}, {self.x.size})"
            )

    @property
    def normalized(self) -> np.ndarray:
        """Values divided by the GPR (the per-unit representation of Fig. 5.2/5.4)."""
        return self.values / self.gpr

    @property
    def max_value(self) -> float:
        """Maximum surface potential [V]."""
        return float(self.values.max())

    @property
    def min_value(self) -> float:
        """Minimum surface potential [V]."""
        return float(self.values.min())

    def profile_along_x(self, y_value: float) -> tuple[np.ndarray, np.ndarray]:
        """Potential profile along the row closest to ``y = y_value``."""
        row = int(np.argmin(np.abs(self.y - y_value)))
        return self.x.copy(), self.values[row, :].copy()

    def profile_along_y(self, x_value: float) -> tuple[np.ndarray, np.ndarray]:
        """Potential profile along the column closest to ``x = x_value``."""
        col = int(np.argmin(np.abs(self.x - x_value)))
        return self.y.copy(), self.values[:, col].copy()

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable representation (lists, not arrays)."""
        return {
            "x": self.x.tolist(),
            "y": self.y.tolist(),
            "values": self.values.tolist(),
            "gpr": self.gpr,
            "metadata": dict(self.metadata),
        }


class PotentialEvaluator:
    """Evaluates ground potentials from the solved leakage-current densities."""

    def __init__(
        self,
        mesh: Mesh,
        soil: SoilModel,
        kernel: LayeredKernel,
        dof_manager: DofManager,
        dof_values: np.ndarray,
        gpr: float = 1.0,
    ) -> None:
        dof_values = np.asarray(dof_values, dtype=float)
        if dof_values.shape != (dof_manager.n_dofs,):
            raise AssemblyError(
                f"dof vector has shape {dof_values.shape}, expected ({dof_manager.n_dofs},)"
            )
        self.mesh = mesh
        self.soil = soil
        self.kernel = kernel
        self.dof_manager = dof_manager
        self.dof_values = dof_values
        self.gpr = float(gpr)

        self._p0, self._p1 = mesh.element_endpoints()
        self._radii = mesh.element_radii()
        self._layers = mesh.element_layers()
        self._dof_matrix = dof_manager.element_dof_matrix()

    # ------------------------------------------------------------------ evaluation

    def potential_at(self, points: np.ndarray, batch_size: int = 4096) -> np.ndarray:
        """Potential at arbitrary points of the ground (or on its surface).

        Parameters
        ----------
        points:
            Array of shape ``(n, 3)`` (or a single point of shape ``(3,)``);
            depths must be non-negative.
        batch_size:
            Number of field points processed per vectorised batch (memory
            control for dense contour maps).

        Returns
        -------
        numpy.ndarray
            Potentials in volts, shape ``(n,)`` (or a scalar for a single point).
        """
        pts = np.asarray(points, dtype=float)
        single = pts.ndim == 1
        pts = np.atleast_2d(pts)
        if pts.shape[1] != 3:
            raise AssemblyError("field points must have three coordinates")
        if np.any(pts[:, 2] < -1e-12):
            raise AssemblyError("field points must lie on or below the earth surface")

        result = np.empty(pts.shape[0])
        for start in range(0, pts.shape[0], int(batch_size)):
            chunk = pts[start : start + int(batch_size)]
            result[start : start + chunk.shape[0]] = self._potential_batch(chunk)
        return result[0] if single else result

    def _potential_batch(self, points: np.ndarray) -> np.ndarray:
        field_layers = np.array(
            [self.soil.layer_index(max(float(z), 0.0)) for z in points[:, 2]], dtype=int
        )
        values = np.zeros(points.shape[0])
        nb = self.dof_manager.element_type.basis_per_element

        for element_index in range(self.mesh.n_elements):
            element_dofs = self._dof_matrix[element_index]
            densities = self.dof_values[element_dofs]
            if not np.any(densities):
                continue
            source_layer = int(self._layers[element_index])
            normalization = self.kernel.normalization(source_layer)
            p0 = self._p0[element_index]
            p1 = self._p1[element_index]
            radius = float(self._radii[element_index])

            for field_layer in np.unique(field_layers):
                mask = field_layers == field_layer
                series = self.kernel.image_series(source_layer, int(field_layer))
                q0 = np.broadcast_to(p0, (len(series), 3)).copy()
                q1 = np.broadcast_to(p1, (len(series), 3)).copy()
                q0[:, 2] = series.signs * p0[2] + series.offsets
                q1[:, 2] = series.signs * p1[2] + series.offsets

                i0, i1 = line_integrals(
                    points[mask][None, :, :], q0[:, None, :], q1[:, None, :], min_distance=radius
                )
                w0 = np.einsum("l,ln->n", series.weights, i0)
                w1 = np.einsum("l,ln->n", series.weights, i1)
                if nb == 1:
                    contribution = densities[0] * w0
                else:
                    contribution = densities[0] * (w0 - w1) + densities[1] * w1
                values[mask] += normalization * contribution
        return values

    # ------------------------------------------------------------------ surface maps

    def surface_potential(
        self,
        x: Sequence[float] | np.ndarray,
        y: Sequence[float] | np.ndarray,
        batch_size: int = 4096,
    ) -> SurfaceGrid:
        """Earth-surface potential on the tensor grid ``x × y`` (at ``z = 0``)."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        xx, yy = np.meshgrid(x, y)
        points = np.column_stack((xx.ravel(), yy.ravel(), np.zeros(xx.size)))
        values = self.potential_at(points, batch_size=batch_size)
        return SurfaceGrid(x=x, y=y, values=values.reshape(y.size, x.size), gpr=self.gpr)

    def surface_potential_over_grid(
        self,
        margin: float = 20.0,
        n_x: int = 61,
        n_y: int = 61,
        batch_size: int = 4096,
    ) -> SurfaceGrid:
        """Surface potential over the grid's bounding box extended by ``margin`` [m]."""
        lower, upper = self.mesh.grid.bounding_box()
        x = np.linspace(lower[0] - margin, upper[0] + margin, int(n_x))
        y = np.linspace(lower[1] - margin, upper[1] + margin, int(n_y))
        return self.surface_potential(x, y, batch_size=batch_size)
