"""Result container of a grounding analysis.

Gathers everything a designer needs from one solve (the paper's equation (2.2)
quantities plus diagnostics): the leakage current density on every element, the
total surge current ``I_Γ``, the equivalent resistance ``R_eq = GPR / I_Γ``,
timings of every pipeline phase and the solver report.  The heavy surface
potential maps are *not* computed eagerly — :meth:`AnalysisResults.evaluator`
returns the lazily-built :class:`~repro.bem.potential.PotentialEvaluator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.bem.elements import DofManager
from repro.bem.potential import PotentialEvaluator
from repro.exceptions import AssemblyError
from repro.geometry.discretize import Mesh
from repro.kernels.base import LayeredKernel
from repro.soil.base import SoilModel
from repro.solvers.result import SolveResult

__all__ = ["AnalysisResults"]


@dataclass
class AnalysisResults:
    """Outcome of one grounding-system analysis."""

    #: Discretised grid that was analysed.
    mesh: Mesh
    #: Soil model used.
    soil: SoilModel
    #: Kernel used for assembly and post-processing.
    kernel: LayeredKernel
    #: Degree-of-freedom manager (element type, dof numbering).
    dof_manager: DofManager
    #: Ground Potential Rise applied to the electrode [V].
    gpr: float
    #: Solved leakage current per unit length at every dof [A/m].
    dof_values: np.ndarray
    #: Linear-solver diagnostics.
    solver: SolveResult
    #: Wall-clock seconds of every pipeline phase (Table 6.1 structure).
    timings: dict[str, float] = field(default_factory=dict)
    #: Free-form metadata (assembly backend, schedule, processor count ...).
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.dof_values = np.asarray(self.dof_values, dtype=float)
        if self.dof_values.shape != (self.dof_manager.n_dofs,):
            raise AssemblyError(
                f"dof vector has shape {self.dof_values.shape}, expected "
                f"({self.dof_manager.n_dofs},)"
            )

    # ------------------------------------------------------------------ key quantities

    @property
    def total_current(self) -> float:
        """Total surge current leaked into the ground, ``I_Γ`` [A]."""
        weights = self.dof_manager.assemble_basis_integrals()
        return float(weights @ self.dof_values)

    @property
    def total_current_ka(self) -> float:
        """Total surge current in kA (the unit used by the paper's tables)."""
        return self.total_current / 1.0e3

    @property
    def equivalent_resistance(self) -> float:
        """Equivalent resistance of the earthing system ``R_eq = GPR / I_Γ`` [Ω]."""
        current = self.total_current
        if current <= 0.0:
            raise AssemblyError(
                "the computed total current is not positive; the analysis looks invalid"
            )
        return self.gpr / current

    @property
    def ground_potential_rise(self) -> float:
        """The applied GPR [V] (alias kept for readability in reports)."""
        return self.gpr

    def leakage_per_element(self) -> np.ndarray:
        """Average leakage current per unit length of every element [A/m]."""
        return self.dof_manager.element_mean_density(self.dof_values)

    def element_currents(self) -> np.ndarray:
        """Current leaked by each element [A] (density × element length)."""
        return self.leakage_per_element() * self.mesh.element_lengths()

    def current_by_layer(self) -> dict[int, float]:
        """Total current leaked from the elements of each soil layer [A]."""
        currents = self.element_currents()
        layers = self.mesh.element_layers()
        return {int(layer): float(currents[layers == layer].sum()) for layer in np.unique(layers)}

    # ------------------------------------------------------------------ post-processing

    def evaluator(self) -> PotentialEvaluator:
        """Potential evaluator bound to this solution."""
        return PotentialEvaluator(
            mesh=self.mesh,
            soil=self.soil,
            kernel=self.kernel,
            dof_manager=self.dof_manager,
            dof_values=self.dof_values,
            gpr=self.gpr,
        )

    # ------------------------------------------------------------------ reporting

    @property
    def total_seconds(self) -> float:
        """Sum of all recorded phase timings [s]."""
        return float(sum(self.timings.values()))

    def summary(self) -> dict[str, Any]:
        """Compact dictionary with the headline results."""
        return {
            "grid": self.mesh.grid.name,
            "soil": self.soil.describe(),
            "n_elements": self.mesh.n_elements,
            "n_dofs": self.dof_manager.n_dofs,
            "element_type": self.dof_manager.element_type.value,
            "gpr_v": self.gpr,
            "equivalent_resistance_ohm": self.equivalent_resistance,
            "total_current_ka": self.total_current_ka,
            "solver": self.solver.summary(),
            "timings_s": {k: round(v, 6) for k, v in self.timings.items()},
            **{k: v for k, v in self.metadata.items() if np.isscalar(v)},
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AnalysisResults(grid={self.mesh.grid.name!r}, "
            f"Req={self.equivalent_resistance:.4f} Ω, "
            f"I={self.total_current_ka:.2f} kA)"
        )
