"""High-level facade running a complete grounding analysis.

:class:`GroundingAnalysis` wires the whole pipeline together in the order the
paper's CAD program uses (Table 6.1): data input, data pre-processing
(discretisation and dof numbering), matrix generation, linear-system solving
and results storage.  Every phase is timed individually so the pipeline-cost
table of the paper can be reproduced.

Matrix generation — by far the dominant phase — can be executed sequentially or
handed to one of the parallel backends of :mod:`repro.parallel` by passing a
:class:`repro.parallel.ParallelOptions` instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.bem.assembly import AssemblyOptions, assemble_system
from repro.bem.elements import DofManager, ElementType
from repro.bem.results import AnalysisResults
from repro.constants import DEFAULT_GAUSS_POINTS, DEFAULT_GPR
from repro.exceptions import ReproError
from repro.geometry.discretize import Mesh, discretize_grid
from repro.geometry.grid import GroundingGrid
from repro.geometry.validation import validate_grid
from repro.kernels.base import kernel_for_soil
from repro.kernels.series import SeriesControl
from repro.kernels.truncation import AdaptiveControl
from repro.observe import ensure_tracer
from repro.soil.base import SoilModel
from repro.solvers import solve_system
from repro.timing import PhaseTimer, Timer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.operator import HierarchicalControl
    from repro.parallel.options import ParallelOptions
    from repro.parallel.pool import WorkerPool

__all__ = ["GroundingAnalysis"]


@dataclass
class GroundingAnalysis:
    """Complete BEM analysis of a grounding grid in a layered soil.

    Parameters
    ----------
    grid:
        The grounding grid geometry.
    soil:
        Uniform or two-layer soil model.
    gpr:
        Ground Potential Rise applied to the electrode [V] (10 kV in the
        paper's case studies; results scale linearly with it).
    element_type:
        Constant or linear leakage elements.
    n_gauss:
        Gauss points of the outer Galerkin integral.
    series_control:
        Truncation of the layered-soil image series.
    solver:
        ``"pcg"`` (default, the paper's diagonally preconditioned CG),
        ``"cg"``, ``"cholesky"`` or ``"lu"``.
    solver_tolerance:
        Relative residual tolerance of the iterative solvers (ignored by the
        direct ones).  Comparisons between runs that should agree to a given
        level — e.g. campaign-vs-standalone acceptance checks — solve a
        couple of orders tighter than that level, since the solutions of two
        near-identical systems can differ by one PCG iteration's correction
        (~ the tolerance) when their final residuals straddle the threshold.
    max_element_length:
        Optional subdivision of long conductors for refinement studies [m].
    parallel:
        Optional :class:`repro.parallel.ParallelOptions`; ``None`` runs the
        matrix generation sequentially.
    validate:
        Whether to run the geometric validation rules before analysing.
    collect_column_times:
        Record the per-column assembly times in the result metadata (needed by
        the scheduler simulator and by the parallel benchmarks).
    adaptive:
        :class:`repro.kernels.truncation.AdaptiveControl` driving the
        distance-adaptive image-series evaluation of the matrix generation.
        Enabled by default (matrices match the exact engine to
        ``1e-8 * ||A||_max``); pass ``None`` to force the exact full-series
        engine.  Post-processing through :meth:`AnalysisResults.evaluator`
        always uses the adaptive kernel.
    hierarchical:
        Optional :class:`repro.cluster.operator.HierarchicalControl` (or
        ``True`` for the defaults) switching the matrix generation to the
        matrix-free hierarchical far-field engine — the scalable path for
        grids of >= 10^4 elements.  Requires an iterative solver (``"pcg"``
        or ``"cg"``).  ``HierarchicalControl(workers=...)`` shards the block
        assembly (and the matvec) across worker processes through
        :mod:`repro.parallel.block_backend`; the column-level ``parallel``
        options do not apply and must stay ``None``.
    pool:
        Optional persistent :class:`repro.parallel.pool.WorkerPool` shared
        across analyses (requires ``hierarchical``): repeated runs then reuse
        the pool's spawn-once workers instead of forking a fresh worker set
        per call — the batch path :mod:`repro.campaign` is built on.
    tracer:
        Optional :class:`repro.observe.Tracer` recording the pipeline's span
        tree: one ``analysis`` root with a ``phase.*`` child per Table-6.1
        phase, the assembly spans nested under ``phase.matrix_generation``
        and the solver's convergence telemetry under ``solve``.  ``None``
        (the default) traces nothing at single-attribute-check cost.
    """

    grid: GroundingGrid
    soil: SoilModel
    gpr: float = DEFAULT_GPR
    element_type: ElementType = ElementType.LINEAR
    n_gauss: int = DEFAULT_GAUSS_POINTS
    series_control: SeriesControl = field(default_factory=SeriesControl)
    solver: str = "pcg"
    solver_tolerance: float = 1.0e-10
    max_element_length: float = float("inf")
    parallel: "ParallelOptions | None" = None
    validate: bool = True
    collect_column_times: bool = False
    adaptive: "AdaptiveControl | None" = field(default_factory=AdaptiveControl)
    hierarchical: "HierarchicalControl | bool | None" = None
    pool: "WorkerPool | None" = None
    tracer: Any = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.gpr <= 0.0:
            raise ReproError(f"the GPR must be positive, got {self.gpr!r}")
        if not isinstance(self.element_type, ElementType):
            self.element_type = ElementType(self.element_type)
        if self.pool is not None and (self.hierarchical is None or self.hierarchical is False):
            raise ReproError(
                "a persistent WorkerPool executes the sharded block-task protocol; "
                "pass hierarchical=HierarchicalControl(...) (or True) to use it"
            )
        if self.hierarchical is not None and self.hierarchical is not False:
            if self.parallel is not None:
                raise ReproError(
                    "the hierarchical engine decomposes work into cluster blocks, "
                    "not columns; pass parallel=None and use "
                    "HierarchicalControl(workers=...) for the sharded block backend"
                )
            if self.solver not in ("pcg", "cg"):
                raise ReproError(
                    "the hierarchical engine is matrix-free; choose the 'pcg' or "
                    f"'cg' solver instead of {self.solver!r}"
                )
            if self.collect_column_times:
                raise ReproError(
                    "collect_column_times does not apply to the hierarchical "
                    "engine (work is decomposed into cluster blocks, not columns)"
                )

    # ------------------------------------------------------------------ pipeline phases

    def load(self) -> GroundingGrid:
        """"Data input" phase: validate the grid and return it.

        The quadratic conductor-overlap check is skipped here (it is an offline
        design-review check, see :func:`repro.geometry.validation.validate_grid`)
        so that the data-input phase stays negligible compared with the matrix
        generation, as in the paper's Table 6.1.
        """
        if self.validate:
            validate_grid(self.grid, soil=self.soil, check_overlaps=False, raise_on_error=True)
        return self.grid

    def preprocess(self) -> Mesh:
        """"Data preprocessing" phase: discretise the grid into elements."""
        return discretize_grid(
            self.grid, soil=self.soil, max_element_length=self.max_element_length
        )

    # ------------------------------------------------------------------ full run

    def run(self) -> AnalysisResults:
        """Execute the whole pipeline and return the analysis results."""
        tracer = ensure_tracer(self.tracer)
        phases = PhaseTimer()
        metadata: dict[str, Any] = {}

        with tracer.span(
            "analysis",
            solver=self.solver,
            element_type=self.element_type.value,
            n_gauss=self.n_gauss,
            soil_layers=self.soil.n_layers,
        ):
            with phases.phase("data_input"), tracer.span("phase.data_input"):
                grid = self.load()

            with phases.phase("data_preprocessing"), tracer.span(
                "phase.data_preprocessing"
            ):
                mesh = self.preprocess()
                kernel = kernel_for_soil(self.soil, self.series_control)
                options = AssemblyOptions(
                    element_type=self.element_type,
                    n_gauss=self.n_gauss,
                    series_control=self.series_control,
                    adaptive=self.adaptive,
                    hierarchical=self.hierarchical,
                )
            tracer.annotate(n_elements=mesh.n_elements)

            with phases.phase("matrix_generation"), tracer.span(
                "phase.matrix_generation"
            ):
                if self.parallel is None:
                    system = assemble_system(
                        mesh,
                        self.soil,
                        gpr=self.gpr,
                        options=options,
                        kernel=kernel,
                        collect_column_times=self.collect_column_times,
                        pool=self.pool,
                        tracer=tracer,
                    )
                else:
                    # Imported lazily so the bem package has no hard dependency
                    # on the parallel machinery (and to avoid an import cycle).
                    from repro.parallel.parallel_assembly import assemble_system_parallel

                    system = assemble_system_parallel(
                        mesh,
                        self.soil,
                        gpr=self.gpr,
                        options=options,
                        kernel=kernel,
                        parallel=self.parallel,
                        collect_column_times=self.collect_column_times,
                    )
            metadata.update(
                {
                    key: value
                    for key, value in system.metadata.items()
                    if key not in ("column_seconds",)
                }
            )
            if "column_seconds" in system.metadata:
                metadata["column_seconds"] = system.metadata["column_seconds"]

            with phases.phase("linear_system_solving"), tracer.span(
                "solve", method=self.solver, n_unknowns=system.dof_manager.n_dofs
            ):
                on_iteration = None
                if tracer.enabled:
                    metrics = tracer.metrics

                    def on_iteration(iteration: int, residual: float) -> None:
                        metrics.observe("solve.residual", residual)

                solve_result = solve_system(
                    system.matrix,
                    system.rhs,
                    method=self.solver,
                    tolerance=self.solver_tolerance,
                    on_iteration=on_iteration,
                )
                # The PCG residual history is bit-identical across worker
                # counts (the sharded backend's deterministic-reduction
                # contract), so convergence facts are deterministic attrs.
                tracer.annotate(
                    iterations=solve_result.iterations,
                    converged=solve_result.converged,
                    residual=float(solve_result.residual),
                )

            phases.add("results_storage", 0.0)
            timings = phases.as_dict()
            storage = Timer()
            with storage, tracer.span("phase.results_storage"):
                results = AnalysisResults(
                    mesh=mesh,
                    soil=self.soil,
                    kernel=kernel,
                    dof_manager=system.dof_manager,
                    gpr=self.gpr,
                    dof_values=solve_result.solution,
                    solver=solve_result,
                    timings=timings,
                    metadata=metadata,
                )
            phases.add("results_storage", storage.elapsed)
            timings["results_storage"] = phases["results_storage"]
        del grid
        return results

    # ------------------------------------------------------------------ helpers

    def dof_count(self) -> int:
        """Number of unknowns the analysis will solve for (without running it)."""
        mesh = self.preprocess()
        return DofManager(mesh, self.element_type).n_dofs
