"""Analytic integrals of ``1/r`` along straight source elements.

These closed forms are the work-horse of the 1D approximated BEM (paper,
Section 4.2): every image contribution to the potential produced by a source
element at a field point reduces to

    ``I₀ = ∫₀^L dl / |x − ξ(l)|``            (constant trial function)
    ``I₁ = ∫₀^L (l / L) dl / |x − ξ(l)|``    (linear trial function)

with ``ξ(l)`` running along the (possibly image-transformed) element axis.
Writing ``s`` for the projection of the field point on the axis and ``d`` for
its distance to the axis,

    ``I₀ = asinh((L − s)/d) − asinh(−s/d)``
    ``I₁ = ( sqrt((L−s)² + d²) − sqrt(s² + d²) + s · I₀ ) / L``.

The thin-wire hypothesis of the paper (circumferential uniformity) is applied
by clamping ``d`` to the conductor radius: when the field point lies on (or
numerically near) the source axis — which happens for the self-influence of an
element — the potential is evaluated on the conductor *surface* instead, which
regularises the ``1/r`` singularity exactly as in the analytical integration
techniques of the original TOTBEM system.

All functions broadcast over arbitrary leading dimensions so the assembly can
evaluate every (image, target Gauss point) combination of an element pair in a
single vectorised call.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import AssemblyError

__all__ = ["line_integrals", "potential_integrals"]

#: Relative floor applied to ``d`` to avoid division by zero even when the
#: caller passes a zero minimum distance (e.g. for far-field image segments).
_D_FLOOR = 1.0e-12


def line_integrals(
    field_points: np.ndarray,
    q0: np.ndarray,
    q1: np.ndarray,
    min_distance: float | np.ndarray = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Analytic ``∫ 1/r`` and ``∫ (l/L)/r`` along segments ``q0 → q1``.

    Parameters
    ----------
    field_points:
        Field points, shape ``(..., 3)``.
    q0, q1:
        Source segment end points, broadcastable against ``field_points``
        (shape ``(..., 3)``).
    min_distance:
        Lower bound applied to the point-to-axis distance (the source conductor
        radius); scalar or broadcastable array.

    Returns
    -------
    (I0, I1)
        Arrays with the broadcast shape of the inputs (without the trailing
        coordinate axis).  ``I0`` integrates a unit density, ``I1`` integrates
        the normalised coordinate ``l / L`` (i.e. the second linear shape
        function); the first linear shape function integrates to ``I0 − I1``.
    """
    x = np.asarray(field_points, dtype=float)
    a = np.asarray(q0, dtype=float)
    b = np.asarray(q1, dtype=float)
    if x.shape[-1] != 3 or a.shape[-1] != 3 or b.shape[-1] != 3:
        raise AssemblyError("field points and segment end points must have a trailing 3-axis")

    direction = b - a
    length = np.sqrt(np.einsum("...k,...k->...", direction, direction))
    if np.any(length <= 0.0):
        raise AssemblyError("source segments must have positive length")
    unit = direction / length[..., None]

    w = x - a
    s = np.einsum("...k,...k->...", w, unit)
    d_sq = np.einsum("...k,...k->...", w, w) - s**2
    # Numerical round-off can push d_sq slightly negative for points on the axis.
    d_sq = np.maximum(d_sq, 0.0)
    d_min = np.maximum(np.asarray(min_distance, dtype=float), _D_FLOOR)
    d = np.maximum(np.sqrt(d_sq), d_min)

    upper = length - s
    i0 = np.arcsinh(upper / d) - np.arcsinh(-s / d)
    r1 = np.sqrt(upper**2 + d**2)
    r0 = np.sqrt(s**2 + d**2)
    i1 = (r1 - r0 + s * i0) / length
    return i0, i1


def potential_integrals(
    field_points: np.ndarray,
    q0: np.ndarray,
    q1: np.ndarray,
    min_distance: float | np.ndarray = 0.0,
) -> np.ndarray:
    """Shape-function integrals ``[∫ N₁/r, ∫ N₂/r]`` for linear elements.

    Convenience wrapper around :func:`line_integrals`: ``N₁ = 1 − l/L`` and
    ``N₂ = l/L``.  The result has one extra trailing axis of size two.
    """
    i0, i1 = line_integrals(field_points, q0, q1, min_distance)
    return np.stack((i0 - i1, i1), axis=-1)
