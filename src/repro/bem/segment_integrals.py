"""Analytic integrals of ``1/r`` along straight source elements.

These closed forms are the work-horse of the 1D approximated BEM (paper,
Section 4.2): every image contribution to the potential produced by a source
element at a field point reduces to

    ``I₀ = ∫₀^L dl / |x − ξ(l)|``            (constant trial function)
    ``I₁ = ∫₀^L (l / L) dl / |x − ξ(l)|``    (linear trial function)

with ``ξ(l)`` running along the (possibly image-transformed) element axis.
Writing ``s`` for the projection of the field point on the axis and ``d`` for
its distance to the axis,

    ``I₀ = asinh((L − s)/d) − asinh(−s/d)``
    ``I₁ = ( sqrt((L−s)² + d²) − sqrt(s² + d²) + s · I₀ ) / L``.

The thin-wire hypothesis of the paper (circumferential uniformity) is applied
by clamping ``d`` to the conductor radius: when the field point lies on (or
numerically near) the source axis — which happens for the self-influence of an
element — the potential is evaluated on the conductor *surface* instead, which
regularises the ``1/r`` singularity exactly as in the analytical integration
techniques of the original TOTBEM system.

All functions broadcast over arbitrary leading dimensions so the assembly can
evaluate every (image, target Gauss point) combination of an element pair in a
single vectorised call.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.exceptions import AssemblyError

__all__ = [
    "line_integrals",
    "potential_integrals",
    "image_segment_integrals",
    "adaptive_segment_sums",
]

#: Relative floor applied to ``d`` to avoid division by zero even when the
#: caller passes a zero minimum distance (e.g. for far-field image segments).
_D_FLOOR = 1.0e-12


def line_integrals(
    field_points: np.ndarray,
    q0: np.ndarray,
    q1: np.ndarray,
    min_distance: float | np.ndarray = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Analytic ``∫ 1/r`` and ``∫ (l/L)/r`` along segments ``q0 → q1``.

    Parameters
    ----------
    field_points:
        Field points, shape ``(..., 3)``.
    q0, q1:
        Source segment end points, broadcastable against ``field_points``
        (shape ``(..., 3)``).
    min_distance:
        Lower bound applied to the point-to-axis distance (the source conductor
        radius); scalar or broadcastable array.

    Returns
    -------
    (I0, I1)
        Arrays with the broadcast shape of the inputs (without the trailing
        coordinate axis).  ``I0`` integrates a unit density, ``I1`` integrates
        the normalised coordinate ``l / L`` (i.e. the second linear shape
        function); the first linear shape function integrates to ``I0 − I1``.
    """
    x = np.asarray(field_points, dtype=float)
    a = np.asarray(q0, dtype=float)
    b = np.asarray(q1, dtype=float)
    if x.shape[-1] != 3 or a.shape[-1] != 3 or b.shape[-1] != 3:
        raise AssemblyError("field points and segment end points must have a trailing 3-axis")

    direction = b - a
    length = np.sqrt(np.einsum("...k,...k->...", direction, direction))
    if np.any(length <= 0.0):
        raise AssemblyError("source segments must have positive length")
    unit = direction / length[..., None]

    w = x - a
    s = np.einsum("...k,...k->...", w, unit)
    d_sq = np.einsum("...k,...k->...", w, w) - s**2
    # Numerical round-off can push d_sq slightly negative for points on the axis.
    d_sq = np.maximum(d_sq, 0.0)
    d_min = np.maximum(np.asarray(min_distance, dtype=float), _D_FLOOR)
    d = np.maximum(np.sqrt(d_sq), d_min)

    upper = length - s
    i0 = np.arcsinh(upper / d) - np.arcsinh(-s / d)
    r1 = np.sqrt(upper**2 + d**2)
    r0 = np.sqrt(s**2 + d**2)
    i1 = (r1 - r0 + s * i0) / length
    return i0, i1


def image_segment_integrals(
    gauss_points: np.ndarray,
    p0: np.ndarray,
    p1: np.ndarray,
    lengths: np.ndarray,
    signs: np.ndarray,
    offsets: np.ndarray,
    radii: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched ``line_integrals`` over the image transforms of source segments.

    Specialised hot path of the batched assembly engine: the images of a
    layered-soil kernel only flip and shift the *z* coordinate of a source
    segment (``z ↦ sign·z + offset``), so the in-plane geometry — the axial
    projection of the field points and their squared distance to the segment
    axis — is identical for every image and is computed once per
    (target point, source) pair instead of once per image.  The per-image work
    reduces to a handful of cheap broadcast operations plus the two ``asinh``
    evaluations of the analytic ``1/r`` integral, with the same floating-point
    associations as :func:`line_integrals`.

    Parameters
    ----------
    gauss_points:
        Field points, shape ``(T, G, 3)``.
    p0, p1:
        Untransformed source segment end points, shape ``(S, 3)``.
    lengths:
        Segment lengths ``|p1 − p0|`` (image transforms preserve them),
        shape ``(S,)``.
    signs, offsets:
        The ``z ↦ sign·z + offset`` image transforms, each shape ``(L,)``.
    radii:
        Minimum point-to-axis distance per source (the conductor radius),
        shape ``(S,)``.

    Returns
    -------
    (I0, I1)
        Arrays of shape ``(L, T, G, S)`` with the same semantics as
        :func:`line_integrals`.
    """
    x_xy = gauss_points[..., :2]  # (T, G, 2)
    x_z = np.ascontiguousarray(gauss_points[..., 2])  # (T, G)
    a_xy = p0[:, :2]  # (S, 2)
    length = np.asarray(lengths, dtype=float)
    if np.any(length <= 0.0):
        raise AssemblyError("source segments must have positive length")

    # In-plane geometry, shared by every image: the xy displacement of each
    # (field point, source) pair, its projection on the unit axis direction and
    # its squared norm.
    u_xy = (p1[:, :2] - a_xy) / length[:, None]  # (S, 2)
    displacement_xy = x_xy[:, :, None, :] - a_xy[None, None, :, :]  # (T, G, S, 2)
    p_axis = np.einsum("tgsk,sk->tgs", displacement_xy, u_xy)  # (T, G, S)
    q_norm = np.einsum("tgsk,tgsk->tgs", displacement_xy, displacement_xy)

    # Per-image z geometry (small arrays, shape (L, S)).
    source_z0 = p0[:, 2]
    u_z = np.asarray(signs, dtype=float)[:, None] * (
        (p1[:, 2] - source_z0) / length
    )[None, :]
    a_z = np.asarray(signs, dtype=float)[:, None] * source_z0[None, :] + np.asarray(
        offsets, dtype=float
    )[:, None]

    # Assemble the axial coordinate s and the axis distance d for every
    # (image, field point, source) combination; associations match
    # line_integrals: s = (w_xy · u_xy) + w_z u_z and d² = (|w_xy|² + w_z²) − s².
    delta_z = x_z[None, :, :, None] - a_z[:, None, None, :]  # (L, T, G, S)
    s = delta_z * u_z[:, None, None, :]
    s += p_axis[None, :, :, :]
    d = delta_z
    np.multiply(d, d, out=d)  # reuse the Δz buffer as |w|² − |w_xy|²
    d += q_norm[None, :, :, :]
    d -= s * s
    np.maximum(d, 0.0, out=d)
    np.sqrt(d, out=d)
    d_min = np.maximum(np.asarray(radii, dtype=float), _D_FLOOR)
    np.maximum(d, d_min[None, None, None, :], out=d)

    upper = length[None, None, None, :] - s
    i0 = np.arcsinh(upper / d)
    i0 -= np.arcsinh(-s / d)
    r1 = upper
    np.multiply(r1, r1, out=r1)
    d_sq = d
    np.multiply(d, d, out=d_sq)
    r1 += d_sq
    np.sqrt(r1, out=r1)
    r0 = s * s
    r0 += d_sq
    np.sqrt(r0, out=r0)
    i1 = r1
    i1 -= r0
    i1 += s * i0
    i1 /= length[None, None, None, :]
    return i0, i1


class _Workspace:
    """Grow-only scratch buffers for the adaptive hot loop.

    The adaptive kernels run the same handful of element-wise operations over
    arrays of a few hundred kilobytes; allocating fresh temporaries for each
    of them roughly doubles the runtime (measured 1.7x on the reference
    container).  One workspace per thread keeps every intermediate in
    pre-allocated, cache-resident buffers.
    """

    __slots__ = ("_buffers",)

    def __init__(self) -> None:
        self._buffers: dict[tuple[int, object], np.ndarray] = {}

    def array(self, slot: int, n_rows: int, n_cols: int, dtype=np.float64) -> np.ndarray:
        """A scratch array of shape ``(n_rows, n_cols)`` backed by ``slot``."""
        size = n_rows * n_cols
        key = (slot, dtype)
        buffer = self._buffers.get(key)
        if buffer is None or buffer.size < size:
            buffer = np.empty(max(size, 1), dtype=dtype)
            self._buffers[key] = buffer
        return buffer[:size].reshape(n_rows, n_cols)


_workspace_local = threading.local()


def _workspace() -> _Workspace:
    workspace = getattr(_workspace_local, "workspace", None)
    if workspace is None:
        workspace = _Workspace()
        _workspace_local.workspace = workspace
    return workspace


def _exact_term_sums(
    p_axis: np.ndarray,
    q_norm: np.ndarray,
    x_z: np.ndarray,
    z0,
    z_slope,
    length,
    d_min,
    weights: np.ndarray,
    signs: np.ndarray,
    offsets: np.ndarray,
    w0: np.ndarray,
    w1: np.ndarray,
    ws: _Workspace,
    slot_base: int,
    dtype=np.float64,
) -> None:
    """Accumulate exact weighted image sums into ``w0``/``w1`` (in place).

    ``I1`` uses the cancellation-free identity
    ``r1 − r0 = L (L − 2 s) / (r1 + r0)``, so the chain stays accurate in
    single precision for far pairs (``r1 ≈ r0 ≫ L``).
    """
    n_terms = weights.size
    n_pairs = p_axis.size

    delta = ws.array(slot_base + 0, n_terms, n_pairs, dtype)
    s = ws.array(slot_base + 1, n_terms, n_pairs, dtype)
    t2 = ws.array(slot_base + 2, n_terms, n_pairs, dtype)
    t3 = ws.array(slot_base + 3, n_terms, n_pairs, dtype)
    t4 = ws.array(slot_base + 4, n_terms, n_pairs, dtype)
    t5 = ws.array(slot_base + 5, n_terms, n_pairs, dtype)

    if np.ndim(z0) == 0:
        a_z = (signs * z0 + offsets).astype(dtype)
        u_z = (signs * z_slope).astype(dtype)
        np.subtract(x_z[None, :], a_z[:, None], out=delta)
        np.multiply(delta, u_z[:, None], out=s)
    else:
        # Per-pair source data: z0, z_slope broadcast along the pair axis.
        np.multiply(signs[:, None], z0[None, :], out=delta)
        delta += offsets[:, None]
        np.subtract(x_z[None, :], delta, out=delta)
        np.multiply(signs[:, None], z_slope[None, :], out=s)
        np.multiply(delta, s, out=s)
    s += p_axis[None, :]

    # d = max(sqrt(|w|^2 - s^2), d_min) with |w|^2 = q_norm + delta^2.
    np.multiply(delta, delta, out=delta)
    delta += q_norm[None, :]
    np.multiply(s, s, out=t2)
    delta -= t2
    np.maximum(delta, 0.0, out=delta)
    np.sqrt(delta, out=delta)
    np.maximum(delta, d_min, out=delta)
    d = delta

    upper = t2
    np.subtract(length, s, out=upper)
    i0 = t3
    np.divide(upper, d, out=i0)
    np.arcsinh(i0, out=i0)
    np.divide(s, d, out=t4)
    np.arcsinh(t4, out=t4)
    i0 += t4

    d_sq = t5
    np.multiply(d, d, out=d_sq)
    r1 = upper
    np.multiply(upper, upper, out=r1)
    r1 += d_sq
    np.sqrt(r1, out=r1)
    r0 = t4
    np.multiply(s, s, out=r0)
    r0 += d_sq
    np.sqrt(r0, out=r0)
    # i1 = (L − 2 s) / (r1 + r0) + s · i0 / L   (stable form of (r1−r0+s·i0)/L).
    r1 += r0
    i1 = r0
    np.multiply(s, -2.0, out=i1)
    i1 += length
    i1 /= r1
    np.multiply(s, i0, out=t5)
    t5 /= length
    i1 += t5

    w0 += weights.astype(dtype) @ i0
    w1 += weights.astype(dtype) @ i1


def _exact_term_sums_flat(
    shared: dict,
    x_z: np.ndarray,
    length,
    d_min,
    weights: np.ndarray,
    signs: np.ndarray,
    offsets: np.ndarray,
    z0: float,
    w0: np.ndarray,
    w1: np.ndarray,
    ws: _Workspace,
    slot_base: int,
    dtype=np.float64,
) -> None:
    """Exact sums specialised to a horizontal source segment (``u_z = 0``).

    The axial projection ``s`` is then identical for every image, so all its
    derived quantities (``L − s``, ``s²``, the in-plane axis distance) are
    per-pair precomputes shared across terms — the per-term chain shrinks to
    the ``z``-displacement, one ``sqrt`` and the two ``asinh``.
    """
    n_terms = weights.size
    n_pairs = x_z.size
    a_z = (signs * z0 + offsets).astype(dtype)
    s = shared["s"]
    upper = shared["upper"]
    d_xy2 = shared["d_xy2"]
    s_sq = shared["s_sq"]
    u_sq = shared["u_sq"]
    l_minus_2s = shared["l_minus_2s"]
    s_over_l = shared["s_over_l"]

    delta = ws.array(slot_base + 0, n_terms, n_pairs, dtype)
    d = ws.array(slot_base + 1, n_terms, n_pairs, dtype)
    i0 = ws.array(slot_base + 2, n_terms, n_pairs, dtype)
    t3 = ws.array(slot_base + 3, n_terms, n_pairs, dtype)
    t4 = ws.array(slot_base + 4, n_terms, n_pairs, dtype)

    # d² = d_xy² + Δz²  (both non-negative: no clamp needed before the sqrt).
    np.subtract(x_z[None, :], a_z[:, None], out=delta)
    np.multiply(delta, delta, out=delta)
    delta += d_xy2[None, :]
    np.sqrt(delta, out=d)
    np.maximum(d, d_min, out=d)

    np.divide(upper[None, :], d, out=i0)
    np.arcsinh(i0, out=i0)
    np.divide(s[None, :], d, out=t3)
    np.arcsinh(t3, out=t3)
    i0 += t3

    d_sq = d
    np.multiply(d, d, out=d_sq)
    r1 = t3
    np.add(u_sq[None, :], d_sq, out=r1)
    np.sqrt(r1, out=r1)
    r0 = t4
    np.add(s_sq[None, :], d_sq, out=r0)
    np.sqrt(r0, out=r0)
    r1 += r0
    # i1 = (L − 2 s)/(r1 + r0) + (s/L)·i0  (stable form).
    i1 = t4
    np.divide(l_minus_2s[None, :], r1, out=i1)
    np.multiply(i0, s_over_l[None, :], out=r1)
    i1 += r1

    w0 += weights.astype(dtype) @ i0
    w1 += weights.astype(dtype) @ i1


def _midpoint_term_sums_flat(
    shared: dict,
    x_z: np.ndarray,
    length: float,
    weights: np.ndarray,
    signs: np.ndarray,
    offsets: np.ndarray,
    z0: float,
    w0: np.ndarray,
    w1: np.ndarray,
    ws: _Workspace,
    slot_base: int,
    dtype=np.float32,
) -> None:
    """Midpoint-tail sums specialised to a horizontal source segment."""
    n_terms = weights.size
    n_pairs = x_z.size
    a_z = (signs * z0 + offsets).astype(dtype)
    rc_base = shared["rc_base"]  # d_xy² + sc²
    sc3 = shared["sc3"]  # 3 sc²
    sc = shared["sc"]

    rc2 = ws.array(slot_base + 0, n_terms, n_pairs, dtype)
    inv = ws.array(slot_base + 1, n_terms, n_pairs, dtype)
    inv2 = ws.array(slot_base + 2, n_terms, n_pairs, dtype)
    corr = ws.array(slot_base + 3, n_terms, n_pairs, dtype)

    np.subtract(x_z[None, :], a_z[:, None], out=rc2)
    np.multiply(rc2, rc2, out=rc2)
    rc2 += rc_base[None, :]
    np.maximum(rc2, 1.0e-24, out=rc2)
    np.sqrt(rc2, out=inv)
    np.divide(1.0, inv, out=inv)
    np.multiply(inv, inv, out=inv2)

    length_sq = length * length
    np.subtract(sc3[None, :], rc2, out=corr)
    corr *= length_sq * length / 24.0
    corr *= inv2
    corr *= inv2
    corr *= inv
    i0 = rc2
    np.multiply(inv, length, out=i0)
    i0 += corr

    i1 = corr
    np.multiply(sc[None, :], inv2, out=i1)
    i1 *= inv
    i1 *= length_sq / 12.0
    half = inv
    np.multiply(i0, 0.5, out=half)
    half -= i1

    w0 += weights.astype(dtype) @ i0
    w1 += weights.astype(dtype) @ half


def _midpoint_term_sums(
    p_axis: np.ndarray,
    q_norm: np.ndarray,
    x_z: np.ndarray,
    z0,
    z_slope,
    length,
    weights: np.ndarray,
    signs: np.ndarray,
    offsets: np.ndarray,
    w0: np.ndarray,
    w1: np.ndarray,
    ws: _Workspace,
    slot_base: int,
    dtype=np.float64,
) -> None:
    """Accumulate midpoint-tail weighted sums into ``w0``/``w1`` (in place).

    Second-order expansion of the analytic integrals around the segment
    midpoint (``sc = L/2 − s``, ``rc² = d² + sc²``):

        ``I0 ≈ L/rc + (L³/24) (3 sc² − rc²) / rc⁵``
        ``I1 ≈ I0/2 − (L²/12) sc / rc³``

    Valid (relative error below ``(L/rc)⁴``) for ``rc ≳ 1.5 L``; the caller's
    :class:`~repro.kernels.truncation.TruncationPlan` guarantees that.
    """
    n_terms = weights.size
    n_pairs = p_axis.size

    delta = ws.array(slot_base + 0, n_terms, n_pairs, dtype)
    s = ws.array(slot_base + 1, n_terms, n_pairs, dtype)
    t2 = ws.array(slot_base + 2, n_terms, n_pairs, dtype)
    t3 = ws.array(slot_base + 3, n_terms, n_pairs, dtype)
    t4 = ws.array(slot_base + 4, n_terms, n_pairs, dtype)

    if np.ndim(z0) == 0:
        a_z = (signs * z0 + offsets).astype(dtype)
        u_z = (signs * z_slope).astype(dtype)
        np.subtract(x_z[None, :], a_z[:, None], out=delta)
        np.multiply(delta, u_z[:, None], out=s)
    else:
        np.multiply(signs[:, None], z0[None, :], out=delta)
        delta += offsets[:, None]
        np.subtract(x_z[None, :], delta, out=delta)
        np.multiply(signs[:, None], z_slope[None, :], out=s)
        np.multiply(delta, s, out=s)
    s += p_axis[None, :]

    # rc² = d² + sc² = (q_norm + delta² − s²) + (L/2 − s)².
    np.multiply(delta, delta, out=delta)
    delta += q_norm[None, :]
    np.multiply(s, s, out=t2)
    delta -= t2
    np.maximum(delta, 0.0, out=delta)
    sc = s
    np.subtract(0.5 * length, s, out=sc)
    np.multiply(sc, sc, out=t2)
    rc2 = delta
    rc2 += t2
    np.maximum(rc2, 1.0e-24, out=rc2)

    inv = t3
    np.sqrt(rc2, out=inv)
    np.divide(1.0, inv, out=inv)
    inv2 = t4
    np.multiply(inv, inv, out=inv2)

    # i0 = L·inv + (L³/24)(3 sc² − rc²)·inv⁵  (t2 currently holds sc²).
    length_sq = length * length
    corr = t2
    corr *= 3.0
    corr -= rc2
    corr *= length_sq * length / 24.0
    corr *= inv2
    corr *= inv2
    corr *= inv
    i0 = rc2
    np.multiply(inv, length, out=i0)
    i0 += corr

    # i1 = i0/2 − (L²/12)·sc·inv³.
    i1 = corr
    np.multiply(sc, inv2, out=i1)
    i1 *= inv
    i1 *= length_sq / 12.0
    np.multiply(i0, 0.5, out=sc)
    sc -= i1

    w0 += weights.astype(dtype) @ i0
    w1 += weights.astype(dtype) @ sc


#: Elements (terms x pairs) per evaluation chunk of
#: :func:`adaptive_segment_sums`, chosen so the ``(n_terms, chunk)`` scratch
#: buffers stay L2-resident (interleaved timing on the reference container:
#: 40k beats both 12k, where call overhead dominates, and 260k, which spills
#: to L3).
_ADAPTIVE_CHUNK_ELEMENTS: int = 40_000


def adaptive_segment_sums(
    p_axis: np.ndarray,
    q_norm: np.ndarray,
    x_z: np.ndarray,
    z0,
    z_slope,
    length,
    radius,
    weights: np.ndarray,
    signs: np.ndarray,
    offsets: np.ndarray,
    exact_idx: np.ndarray,
    exact32_idx: np.ndarray,
    midpoint_idx: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Weighted image sums ``(Σ w_l I0_l, Σ w_l I1_l)`` of one term partition.

    The in-plane geometry (axial projection ``p_axis`` and squared in-plane
    distance ``q_norm`` of each field point, both flattened over the pair
    axis) is shared by every image; the per-term work runs entirely in
    pre-allocated scratch buffers.  Terms listed in ``exact_idx`` use the
    analytic integrals in double precision, ``exact32_idx`` the same chain in
    single precision, and ``midpoint_idx`` the single-precision second-order
    midpoint expansion (see :class:`~repro.kernels.truncation.TruncationPlan`
    for the admissibility bounds of each mode).

    Parameters
    ----------
    p_axis, q_norm, x_z:
        In-plane projection, squared in-plane displacement norm and depth of
        every field point, each shape ``(P,)``.
    z0, z_slope, length, radius:
        Source-segment data: start depth, axial depth slope
        ``(z1 − z0)/L``, length and conductor radius.  Scalars for a single
        shared source, or shape ``(P,)`` arrays for per-pair sources.
    weights, signs, offsets:
        The (possibly merged) image-term arrays, shape ``(L,)``.
    exact_idx, exact32_idx, midpoint_idx:
        Disjoint index arrays selecting the terms of each evaluation mode.

    Returns
    -------
    (w0, w1)
        Weighted sums over the selected terms, each shape ``(P,)`` float64.
    """
    n_pairs = p_axis.size
    w0 = np.zeros(n_pairs)
    w1 = np.zeros(n_pairs)
    ws = _workspace()
    d_min = np.maximum(radius, _D_FLOOR)

    scalar_source = np.ndim(z0) == 0 and np.ndim(z_slope) == 0 and np.ndim(length) == 0
    flat = scalar_source and float(z_slope) == 0.0  # contracts: disable=API001 -- exact flat-mesh sentinel: builders assign z_slope = 0.0 literally
    use_f32 = exact32_idx.size or midpoint_idx.size
    if use_f32:
        x_z32 = x_z.astype(np.float32)
        if not flat:
            p_axis32 = p_axis.astype(np.float32)
            q_norm32 = q_norm.astype(np.float32)
            per_pair = np.ndim(z0) != 0
            z0_32 = np.asarray(z0, dtype=np.float32) if per_pair else float(z0)
            slope_32 = np.asarray(z_slope, dtype=np.float32) if per_pair else float(z_slope)
            length_32 = np.asarray(length, dtype=np.float32) if np.ndim(length) else float(length)

    if flat:
        # Horizontal source: the axial projection is image-independent, so
        # everything derived from it is a shared per-pair precompute.
        length = float(length)
        s = p_axis
        upper = length - s
        d_xy2 = np.maximum(q_norm - s * s, 0.0)
        shared64 = {
            "s": s,
            "upper": upper,
            "d_xy2": d_xy2,
            "s_sq": s * s,
            "u_sq": upper * upper,
            "l_minus_2s": length - 2.0 * s,
            "s_over_l": s / length,
        }
        if use_f32:
            shared32 = {key: value.astype(np.float32) for key, value in shared64.items()}
            sc = 0.5 * length - s
            shared32["sc"] = sc.astype(np.float32)
            shared32["sc3"] = (3.0 * sc * sc).astype(np.float32)
            shared32["rc_base"] = (d_xy2 + sc * sc).astype(np.float32)

    n_terms_max = max(exact_idx.size, exact32_idx.size, midpoint_idx.size, 1)
    step = max(1, _ADAPTIVE_CHUNK_ELEMENTS // n_terms_max)
    for start in range(0, n_pairs, step):
        sl = slice(start, min(start + step, n_pairs))
        if flat:
            if exact_idx.size:
                _exact_term_sums_flat(
                    {key: value[sl] for key, value in shared64.items()},
                    x_z[sl], length, d_min,
                    weights[exact_idx], signs[exact_idx], offsets[exact_idx],
                    float(z0), w0[sl], w1[sl], ws, slot_base=0, dtype=np.float64,
                )
            if exact32_idx.size:
                _exact_term_sums_flat(
                    {key: value[sl] for key, value in shared32.items()},
                    x_z32[sl], length, float(d_min),
                    weights[exact32_idx], signs[exact32_idx], offsets[exact32_idx],
                    float(z0), w0[sl], w1[sl], ws, slot_base=8, dtype=np.float32,
                )
            if midpoint_idx.size:
                _midpoint_term_sums_flat(
                    {key: value[sl] for key, value in shared32.items()},
                    x_z32[sl], length,
                    weights[midpoint_idx], signs[midpoint_idx], offsets[midpoint_idx],
                    float(z0), w0[sl], w1[sl], ws, slot_base=16, dtype=np.float32,
                )
            continue
        if exact_idx.size:
            _exact_term_sums(
                p_axis[sl], q_norm[sl], x_z[sl],
                z0[sl] if np.ndim(z0) else z0,
                z_slope[sl] if np.ndim(z_slope) else z_slope,
                length[sl] if np.ndim(length) else length,
                d_min[sl] if np.ndim(d_min) else d_min,
                weights[exact_idx], signs[exact_idx], offsets[exact_idx],
                w0[sl], w1[sl], ws, slot_base=0, dtype=np.float64,
            )
        if exact32_idx.size:
            _exact_term_sums(
                p_axis32[sl], q_norm32[sl], x_z32[sl],
                z0_32[sl] if np.ndim(z0_32) else z0_32,
                slope_32[sl] if np.ndim(slope_32) else slope_32,
                length_32[sl] if np.ndim(length_32) else length_32,
                d_min[sl].astype(np.float32) if np.ndim(d_min) else float(d_min),
                weights[exact32_idx], signs[exact32_idx], offsets[exact32_idx],
                w0[sl], w1[sl], ws, slot_base=8, dtype=np.float32,
            )
        if midpoint_idx.size:
            _midpoint_term_sums(
                p_axis32[sl], q_norm32[sl], x_z32[sl],
                z0_32[sl] if np.ndim(z0_32) else z0_32,
                slope_32[sl] if np.ndim(slope_32) else slope_32,
                length_32[sl] if np.ndim(length_32) else length_32,
                weights[midpoint_idx], signs[midpoint_idx], offsets[midpoint_idx],
                w0[sl], w1[sl], ws, slot_base=16, dtype=np.float32,
            )
    return w0, w1


def potential_integrals(
    field_points: np.ndarray,
    q0: np.ndarray,
    q1: np.ndarray,
    min_distance: float | np.ndarray = 0.0,
) -> np.ndarray:
    """Shape-function integrals ``[∫ N₁/r, ∫ N₂/r]`` for linear elements.

    Convenience wrapper around :func:`line_integrals`: ``N₁ = 1 − l/L`` and
    ``N₂ = l/L``.  The result has one extra trailing axis of size two.
    """
    i0, i1 = line_integrals(field_points, q0, q1, min_distance)
    return np.stack((i0 - i1, i1), axis=-1)
