"""Analytic integrals of ``1/r`` along straight source elements.

These closed forms are the work-horse of the 1D approximated BEM (paper,
Section 4.2): every image contribution to the potential produced by a source
element at a field point reduces to

    ``I₀ = ∫₀^L dl / |x − ξ(l)|``            (constant trial function)
    ``I₁ = ∫₀^L (l / L) dl / |x − ξ(l)|``    (linear trial function)

with ``ξ(l)`` running along the (possibly image-transformed) element axis.
Writing ``s`` for the projection of the field point on the axis and ``d`` for
its distance to the axis,

    ``I₀ = asinh((L − s)/d) − asinh(−s/d)``
    ``I₁ = ( sqrt((L−s)² + d²) − sqrt(s² + d²) + s · I₀ ) / L``.

The thin-wire hypothesis of the paper (circumferential uniformity) is applied
by clamping ``d`` to the conductor radius: when the field point lies on (or
numerically near) the source axis — which happens for the self-influence of an
element — the potential is evaluated on the conductor *surface* instead, which
regularises the ``1/r`` singularity exactly as in the analytical integration
techniques of the original TOTBEM system.

All functions broadcast over arbitrary leading dimensions so the assembly can
evaluate every (image, target Gauss point) combination of an element pair in a
single vectorised call.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import AssemblyError

__all__ = ["line_integrals", "potential_integrals", "image_segment_integrals"]

#: Relative floor applied to ``d`` to avoid division by zero even when the
#: caller passes a zero minimum distance (e.g. for far-field image segments).
_D_FLOOR = 1.0e-12


def line_integrals(
    field_points: np.ndarray,
    q0: np.ndarray,
    q1: np.ndarray,
    min_distance: float | np.ndarray = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Analytic ``∫ 1/r`` and ``∫ (l/L)/r`` along segments ``q0 → q1``.

    Parameters
    ----------
    field_points:
        Field points, shape ``(..., 3)``.
    q0, q1:
        Source segment end points, broadcastable against ``field_points``
        (shape ``(..., 3)``).
    min_distance:
        Lower bound applied to the point-to-axis distance (the source conductor
        radius); scalar or broadcastable array.

    Returns
    -------
    (I0, I1)
        Arrays with the broadcast shape of the inputs (without the trailing
        coordinate axis).  ``I0`` integrates a unit density, ``I1`` integrates
        the normalised coordinate ``l / L`` (i.e. the second linear shape
        function); the first linear shape function integrates to ``I0 − I1``.
    """
    x = np.asarray(field_points, dtype=float)
    a = np.asarray(q0, dtype=float)
    b = np.asarray(q1, dtype=float)
    if x.shape[-1] != 3 or a.shape[-1] != 3 or b.shape[-1] != 3:
        raise AssemblyError("field points and segment end points must have a trailing 3-axis")

    direction = b - a
    length = np.sqrt(np.einsum("...k,...k->...", direction, direction))
    if np.any(length <= 0.0):
        raise AssemblyError("source segments must have positive length")
    unit = direction / length[..., None]

    w = x - a
    s = np.einsum("...k,...k->...", w, unit)
    d_sq = np.einsum("...k,...k->...", w, w) - s**2
    # Numerical round-off can push d_sq slightly negative for points on the axis.
    d_sq = np.maximum(d_sq, 0.0)
    d_min = np.maximum(np.asarray(min_distance, dtype=float), _D_FLOOR)
    d = np.maximum(np.sqrt(d_sq), d_min)

    upper = length - s
    i0 = np.arcsinh(upper / d) - np.arcsinh(-s / d)
    r1 = np.sqrt(upper**2 + d**2)
    r0 = np.sqrt(s**2 + d**2)
    i1 = (r1 - r0 + s * i0) / length
    return i0, i1


def image_segment_integrals(
    gauss_points: np.ndarray,
    p0: np.ndarray,
    p1: np.ndarray,
    lengths: np.ndarray,
    signs: np.ndarray,
    offsets: np.ndarray,
    radii: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched ``line_integrals`` over the image transforms of source segments.

    Specialised hot path of the batched assembly engine: the images of a
    layered-soil kernel only flip and shift the *z* coordinate of a source
    segment (``z ↦ sign·z + offset``), so the in-plane geometry — the axial
    projection of the field points and their squared distance to the segment
    axis — is identical for every image and is computed once per
    (target point, source) pair instead of once per image.  The per-image work
    reduces to a handful of cheap broadcast operations plus the two ``asinh``
    evaluations of the analytic ``1/r`` integral, with the same floating-point
    associations as :func:`line_integrals`.

    Parameters
    ----------
    gauss_points:
        Field points, shape ``(T, G, 3)``.
    p0, p1:
        Untransformed source segment end points, shape ``(S, 3)``.
    lengths:
        Segment lengths ``|p1 − p0|`` (image transforms preserve them),
        shape ``(S,)``.
    signs, offsets:
        The ``z ↦ sign·z + offset`` image transforms, each shape ``(L,)``.
    radii:
        Minimum point-to-axis distance per source (the conductor radius),
        shape ``(S,)``.

    Returns
    -------
    (I0, I1)
        Arrays of shape ``(L, T, G, S)`` with the same semantics as
        :func:`line_integrals`.
    """
    x_xy = gauss_points[..., :2]  # (T, G, 2)
    x_z = np.ascontiguousarray(gauss_points[..., 2])  # (T, G)
    a_xy = p0[:, :2]  # (S, 2)
    length = np.asarray(lengths, dtype=float)
    if np.any(length <= 0.0):
        raise AssemblyError("source segments must have positive length")

    # In-plane geometry, shared by every image: the xy displacement of each
    # (field point, source) pair, its projection on the unit axis direction and
    # its squared norm.
    u_xy = (p1[:, :2] - a_xy) / length[:, None]  # (S, 2)
    displacement_xy = x_xy[:, :, None, :] - a_xy[None, None, :, :]  # (T, G, S, 2)
    p_axis = np.einsum("tgsk,sk->tgs", displacement_xy, u_xy)  # (T, G, S)
    q_norm = np.einsum("tgsk,tgsk->tgs", displacement_xy, displacement_xy)

    # Per-image z geometry (small arrays, shape (L, S)).
    source_z0 = p0[:, 2]
    u_z = np.asarray(signs, dtype=float)[:, None] * (
        (p1[:, 2] - source_z0) / length
    )[None, :]
    a_z = np.asarray(signs, dtype=float)[:, None] * source_z0[None, :] + np.asarray(
        offsets, dtype=float
    )[:, None]

    # Assemble the axial coordinate s and the axis distance d for every
    # (image, field point, source) combination; associations match
    # line_integrals: s = (w_xy · u_xy) + w_z u_z and d² = (|w_xy|² + w_z²) − s².
    delta_z = x_z[None, :, :, None] - a_z[:, None, None, :]  # (L, T, G, S)
    s = delta_z * u_z[:, None, None, :]
    s += p_axis[None, :, :, :]
    d = delta_z
    np.multiply(d, d, out=d)  # reuse the Δz buffer as |w|² − |w_xy|²
    d += q_norm[None, :, :, :]
    d -= s * s
    np.maximum(d, 0.0, out=d)
    np.sqrt(d, out=d)
    d_min = np.maximum(np.asarray(radii, dtype=float), _D_FLOOR)
    np.maximum(d, d_min[None, None, None, :], out=d)

    upper = length[None, None, None, :] - s
    i0 = np.arcsinh(upper / d)
    i0 -= np.arcsinh(-s / d)
    r1 = upper
    np.multiply(r1, r1, out=r1)
    d_sq = d
    np.multiply(d, d, out=d_sq)
    r1 += d_sq
    np.sqrt(r1, out=r1)
    r0 = s * s
    r0 += d_sq
    np.sqrt(r0, out=r0)
    i1 = r1
    i1 -= r0
    i1 += s * i0
    i1 /= length[None, None, None, :]
    return i0, i1


def potential_integrals(
    field_points: np.ndarray,
    q0: np.ndarray,
    q1: np.ndarray,
    min_distance: float | np.ndarray = 0.0,
) -> np.ndarray:
    """Shape-function integrals ``[∫ N₁/r, ∫ N₂/r]`` for linear elements.

    Convenience wrapper around :func:`line_integrals`: ``N₁ = 1 − l/L`` and
    ``N₂ = l/L``.  The result has one extra trailing axis of size two.
    """
    i0, i1 = line_integrals(field_points, q0, q1, min_distance)
    return np.stack((i0 - i1, i1), axis=-1)
