"""Sequential assembly of the Galerkin boundary-element system.

Following Section 6.2 of the paper, the matrix generation is organised as a
loop over the ``M (M + 1) / 2`` element pairs arranged as a *triangle of M
columns*: the column of source element α couples it with every element
``β ≥ α``.  :func:`assemble_system` runs those columns in schedule-sized
batches through the vectorised :meth:`~repro.bem.influence.ColumnAssembler.column_batch`
engine and scatters the resulting elemental blocks into the global matrix; the
parallel backends of :mod:`repro.parallel.parallel_assembly` reuse exactly the
same batched column tasks and the same scatter step (computation of elemental
matrices in parallel, assembly performed afterwards — the scheme the paper
adopts to break the assembly dependency between threads).

The scatter itself is vectorised: the elemental blocks of a whole batch are
flattened into (row dof, source dof, value) triples and accumulated into a
narrow ``(n, C)`` column slab (``C`` = the few distinct source dofs of the
batch) with one ``numpy.bincount``, then added into the matrix columns and —
transposed — into the mirrored rows.  This replaces the earlier bincount over
the full ``n x n`` index space, whose ``O(n^2)`` output allocation dominated
the scatter on coarse meshes once the adaptive kernels made the arithmetic
cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.bem.elements import DofManager, ElementType
from repro.bem.influence import ColumnAssembler
from repro.bem.system import LinearSystem
from repro.constants import DEFAULT_GAUSS_POINTS, DEFAULT_GPR
from repro.exceptions import AssemblyError
from repro.geometry.discretize import Mesh
from repro.kernels.base import LayeredKernel, kernel_for_soil
from repro.kernels.series import SeriesControl
from repro.kernels.truncation import AdaptiveControl
from repro.soil.base import SoilModel
from repro.timing import wall_clock

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.cluster.operator import HierarchicalControl

__all__ = [
    "AssemblyOptions",
    "assemble_rhs",
    "assemble_system",
    "assemble_system_steps",
    "scatter_column",
    "scatter_columns",
    "ColumnResult",
    "compute_column",
    "compute_column_batch",
]


@dataclass(frozen=True)
class AssemblyOptions:
    """Parameters of the Galerkin assembly.

    Parameters
    ----------
    element_type:
        Constant or linear leakage elements.
    n_gauss:
        Gauss points of the outer (test) integral.
    series_control:
        Truncation of the layered-soil image series.
    adaptive:
        Distance-adaptive evaluation of the image series (see
        :class:`repro.kernels.truncation.AdaptiveControl`).  The *default* is
        an ``AdaptiveControl()`` instance — the truncated/merged/
        midpoint-tail fast path whose matrices match the exact ones to
        ``tolerance * ||A||_max`` (1e-8 by default).  Pass ``None`` to force
        the exact full-series engine (reference comparisons, accuracy
        studies).
    hierarchical:
        ``None`` (default) assembles the dense matrix.  A
        :class:`repro.cluster.operator.HierarchicalControl` instance (or
        ``True`` for the defaults) switches :func:`assemble_system` to the
        matrix-free hierarchical far-field engine: the returned system then
        carries a :class:`~repro.cluster.operator.HierarchicalOperator`
        instead of a dense array and is solved with the (matrix-free)
        conjugate-gradient solvers.
    """

    element_type: ElementType = ElementType.LINEAR
    n_gauss: int = DEFAULT_GAUSS_POINTS
    series_control: SeriesControl = field(default_factory=SeriesControl)
    adaptive: "AdaptiveControl | None" = field(default_factory=AdaptiveControl)
    hierarchical: "HierarchicalControl | bool | None" = None

    def __post_init__(self) -> None:
        if self.n_gauss < 1:
            raise AssemblyError("n_gauss must be at least 1")
        if not isinstance(self.element_type, ElementType):
            object.__setattr__(self, "element_type", ElementType(self.element_type))
        if self.hierarchical is not None:
            # Imported lazily: repro.cluster depends on repro.bem.
            from repro.cluster.operator import HierarchicalControl

            if self.hierarchical is True:
                object.__setattr__(self, "hierarchical", HierarchicalControl())
            elif self.hierarchical is False:
                object.__setattr__(self, "hierarchical", None)
            elif not isinstance(self.hierarchical, HierarchicalControl):
                raise AssemblyError(
                    "hierarchical must be a HierarchicalControl instance, True/False "
                    f"or None, got {self.hierarchical!r}"
                )


@dataclass
class ColumnResult:
    """Elemental blocks of one assembly column (one outer-loop cycle)."""

    #: Index of the source element (the column).
    source_index: int
    #: Indices of the target elements of the column.
    targets: np.ndarray
    #: Blocks of shape ``(len(targets), nb, nb)``.
    blocks: np.ndarray
    #: Wall-clock seconds spent computing the column (used by the scheduler
    #: simulator and the timing tables).  For batched evaluations this is the
    #: column's share of the batch time, apportioned by the analytic cost
    #: estimate.
    elapsed_seconds: float = 0.0


def assemble_rhs(dof_manager: DofManager, gpr: float = DEFAULT_GPR) -> np.ndarray:
    """Right-hand side ``ν_j = GPR ∫ w_j dΓ`` of the Galerkin system."""
    if gpr <= 0.0:
        raise AssemblyError(f"the Ground Potential Rise must be positive, got {gpr}")
    return float(gpr) * dof_manager.assemble_basis_integrals()


#: Flush threshold (in pending flat updates) of :func:`scatter_columns`, so
#: scattering a whole mesh at once stays within a bounded transient footprint.
_SCATTER_FLUSH_ENTRIES: int = 2_000_000


def scatter_columns(
    matrix: np.ndarray,
    dof_matrix: np.ndarray,
    columns: Iterable[ColumnResult],
) -> None:
    """Scatter-add the blocks of a batch of columns into the global matrix.

    A batch of source columns only touches the few global dofs of its source
    elements on the column axis, so instead of binning flat ``row * n + col``
    indices over the full ``n x n`` matrix (the previous engine — its
    ``O(n^2)`` bincount *output* dominated the scatter on coarse meshes once
    the adaptive kernels made the arithmetic cheap), the updates are
    accumulated into a narrow ``(n, C)`` column slab with ``C`` the distinct
    source dofs of the flush.  The slab is then added into the matrix columns
    and — transposed — into the mirrored rows, which realises the same
    "discard approximately half" symmetrisation as before (diagonal pairs
    contribute half of their block to each orientation).
    """
    n = matrix.shape[0]
    #: (target-dof rows (T*nb,), source dofs (nb,), halved values (T*nb, nb)).
    pending_columns: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    pending = 0

    def _flush() -> None:
        nonlocal pending
        if not pending_columns:
            return
        # The slab's column space is just the source dofs of the flushed
        # columns — a few per column, so the unique/compaction step works on
        # tiny arrays, never on the concatenated update stream.
        unique_cols = np.unique(np.concatenate([sd for _, sd, _ in pending_columns]))
        c = unique_cols.size
        flat_parts: list[np.ndarray] = []
        value_parts: list[np.ndarray] = []
        for rows_flat, source_dofs, values in pending_columns:
            compact = np.searchsorted(unique_cols, source_dofs)
            flat_parts.append((rows_flat[:, None] * c + compact[None, :]).ravel())
            value_parts.append(values.ravel())
        pending_columns.clear()
        pending = 0
        slab = np.bincount(
            np.concatenate(flat_parts),
            weights=np.concatenate(value_parts),
            minlength=n * c,
        ).reshape(n, c)
        matrix[:, unique_cols] += slab
        matrix[unique_cols, :] += slab.T

    for column in columns:
        targets = np.asarray(column.targets, dtype=int)
        if targets.size == 0:
            continue
        alpha = column.source_index
        source_dofs = dof_matrix[alpha]  # (nb,)
        target_dofs = dof_matrix[targets]  # (T, nb)
        weights = np.where(targets == alpha, 0.5, 1.0)  # halve the diagonal pair
        values = column.blocks * weights[:, None, None]  # (T, nb_j, nb_i)
        pending_columns.append(
            (target_dofs.ravel(), source_dofs, values.reshape(-1, values.shape[2]))
        )
        pending += values.size
        if pending >= _SCATTER_FLUSH_ENTRIES:
            _flush()
    _flush()


def scatter_column(
    matrix: np.ndarray,
    dof_matrix: np.ndarray,
    column: ColumnResult,
) -> None:
    """Scatter-add the blocks of one column into the global matrix."""
    scatter_columns(matrix, dof_matrix, [column])


def compute_column(assembler: ColumnAssembler, source_index: int) -> ColumnResult:
    """Compute (and time) the elemental blocks of one column."""
    start = wall_clock()
    targets, blocks = assembler.column_blocks(source_index)
    elapsed = wall_clock() - start
    return ColumnResult(
        source_index=source_index, targets=targets, blocks=blocks, elapsed_seconds=elapsed
    )


def compute_column_batch(
    assembler: ColumnAssembler,
    source_indices: Sequence[int],
    cost_hint: "np.ndarray | None | str" = None,
) -> list[ColumnResult]:
    """Compute a batch of columns in one vectorised pass, timing the batch.

    The batch wall time is apportioned to the individual columns according to
    ``cost_hint`` (the analytic per-column cost estimate by default), so the
    per-column profile consumed by the schedule simulator stays meaningful.
    Pass the string ``"uniform"`` to skip the estimate entirely and split the
    batch time evenly — appropriate when the per-column profile is not
    collected, since the estimate costs a few percent of the assembly.
    """
    # Local import: repro.parallel imports repro.bem at package load time.
    from repro.parallel.costs import cost_shares

    indices = [int(i) for i in source_indices]
    start = wall_clock()
    pairs = assembler.column_batch(indices)
    elapsed = wall_clock() - start

    if isinstance(cost_hint, str):
        if cost_hint != "uniform":
            raise AssemblyError(f"unknown cost_hint mode {cost_hint!r}")
        cost_hint = None  # cost_shares(None, ...) yields uniform shares
    elif cost_hint is None:
        cost_hint = assembler.column_cost_estimate()
    shares = cost_shares(cost_hint, indices)

    return [
        ColumnResult(
            source_index=index,
            targets=targets,
            blocks=blocks,
            elapsed_seconds=float(elapsed * share),
        )
        for index, (targets, blocks), share in zip(indices, pairs, shares)
    ]


def assemble_system(
    mesh: Mesh,
    soil: SoilModel,
    gpr: float = DEFAULT_GPR,
    options: AssemblyOptions | None = None,
    kernel: LayeredKernel | None = None,
    column_order: Sequence[int] | None = None,
    collect_column_times: bool = False,
    batch_size: int | None = None,
    pool=None,
    cluster_cache=None,
    tracer=None,
) -> LinearSystem:
    """Assemble the dense Galerkin system sequentially (batched columns).

    Parameters
    ----------
    mesh:
        Discretised grounding grid.
    soil:
        Layered soil model (one or two layers for the analytic kernels).
    gpr:
        Ground Potential Rise [V].
    options:
        Element type, quadrature order and series truncation.
    kernel:
        Pre-built kernel; by default one is created for ``soil`` with the
        options' series control.
    column_order:
        Optional explicit ordering of the columns (used by tests and by the
        deterministic replay of parallel schedules); default ``0..M-1``.
    collect_column_times:
        When ``True`` the per-column wall-clock times are stored in the system
        metadata under ``"column_seconds"`` — this is the task-cost profile
        consumed by the scheduler simulator of :mod:`repro.parallel.simulator`.
        Unless a ``batch_size`` is forced, the columns are then computed one at
        a time so each timing is a genuine measurement.
    batch_size:
        Number of columns evaluated per vectorised batch.  Default: a
        memory-bounded automatic size (see
        :meth:`~repro.bem.influence.ColumnAssembler.max_batch_size`), or 1 when
        ``collect_column_times`` is requested.
    pool:
        Optional persistent :class:`repro.parallel.pool.WorkerPool` shared
        across assemblies.  Requires the hierarchical engine (the pool's
        task protocol is the sharded block-task protocol): the block assembly
        then runs on the pool's spawn-once workers instead of forking a fresh
        worker set for this call.
    cluster_cache:
        Optional :class:`repro.cluster.block_assembly.ClusterPlanCache`
        reusing the geometry-determined cluster tree/partition across
        repeated hierarchical assemblies of the same mesh.
    tracer:
        Optional :class:`repro.observe.Tracer` recording the assembly span
        tree (dense column phase, or the hierarchical plan/far/near tree).
        Defaults to the no-op tracer: the disabled cost is one attribute
        check.

    Returns
    -------
    LinearSystem
        The assembled system with assembly metadata.

    This is the blocking driver over :func:`assemble_system_steps`.
    """
    # Imported lazily: repro.parallel imports repro.bem at package load time.
    from repro.parallel.executor import drive_pool_steps

    return drive_pool_steps(
        assemble_system_steps(
            mesh,
            soil,
            gpr=gpr,
            options=options,
            kernel=kernel,
            column_order=column_order,
            collect_column_times=collect_column_times,
            batch_size=batch_size,
            pool=pool,
            cluster_cache=cluster_cache,
            tracer=tracer,
        ),
        pool,
    )


def assemble_system_steps(
    mesh: Mesh,
    soil: SoilModel,
    gpr: float = DEFAULT_GPR,
    options: AssemblyOptions | None = None,
    kernel: LayeredKernel | None = None,
    column_order: Sequence[int] | None = None,
    collect_column_times: bool = False,
    batch_size: int | None = None,
    pool=None,
    cluster_cache=None,
    tracer=None,
):
    """Generator form of :func:`assemble_system`.

    The hierarchical engine's pool dispatches surface as yielded
    :class:`~repro.parallel.executor.PoolJob` requests; the dense column
    engine runs inline without yielding.  Returns the assembled
    :class:`~repro.bem.system.LinearSystem`; drive with
    :func:`~repro.parallel.executor.drive_pool_steps` or a multiplexing
    scheduler (the campaign runner).
    """
    options = options or AssemblyOptions()
    if options.hierarchical is None and pool is not None:
        raise AssemblyError(
            "a persistent WorkerPool executes the sharded block-task protocol; "
            "pass AssemblyOptions(hierarchical=...) to use it (the dense column "
            "engine does not consume pools)"
        )
    if options.hierarchical is not None:
        if column_order is not None or collect_column_times:
            raise AssemblyError(
                "the hierarchical engine decomposes work into cluster blocks, not "
                "columns; column_order / collect_column_times do not apply"
            )
        # Imported lazily: repro.cluster depends on repro.bem.
        from repro.cluster.operator import assemble_hierarchical_steps

        system = yield from assemble_hierarchical_steps(
            mesh,
            soil,
            gpr=gpr,
            options=options,
            kernel=kernel,
            pool=pool,
            cluster_cache=cluster_cache,
            tracer=tracer,
        )
        return system
    if kernel is None:
        kernel = kernel_for_soil(soil, options.series_control)
    dof_manager = DofManager(mesh, options.element_type)
    assembler = ColumnAssembler(
        mesh, kernel, dof_manager, options.n_gauss, adaptive=options.adaptive
    )
    dof_matrix = dof_manager.element_dof_matrix()

    if batch_size is None:
        batch_size = 1 if collect_column_times else assembler.max_batch_size()
    batch_size = max(1, int(batch_size))

    n = dof_manager.n_dofs
    matrix = np.zeros((n, n))
    columns = list(range(mesh.n_elements)) if column_order is None else list(column_order)
    # The per-column cost shares only matter when the caller collects the
    # per-column timing profile; use uniform shares otherwise (the estimate
    # costs a few percent of the assembly itself).
    cost_hint: np.ndarray | None | str
    if batch_size <= 1:
        cost_hint = None
    elif collect_column_times:
        cost_hint = assembler.column_cost_estimate()
    else:
        cost_hint = "uniform"

    start = wall_clock()
    column_seconds = np.zeros(mesh.n_elements)
    for batch_start in range(0, len(columns), batch_size):
        batch = columns[batch_start : batch_start + batch_size]
        if batch_size == 1:
            batch_results = [compute_column(assembler, int(batch[0]))]
        else:
            batch_results = compute_column_batch(assembler, batch, cost_hint)
        scatter_columns(matrix, dof_matrix, batch_results)
        for column in batch_results:
            column_seconds[column.source_index] = column.elapsed_seconds
    generation_seconds = wall_clock() - start
    if tracer is not None and tracer.enabled:
        # batch_size is memory/host-derived (max_batch_size), hence volatile.
        tracer.record_span(
            "assemble.columns",
            duration_seconds=generation_seconds,
            volatile={"batch_size": batch_size},
            n_elements=mesh.n_elements,
            n_dofs=n,
            element_type=options.element_type.value,
            n_gauss=options.n_gauss,
            soil_layers=soil.n_layers,
        )

    rhs = assemble_rhs(dof_manager, gpr)

    metadata: dict = {
        "matrix_generation_seconds": generation_seconds,
        "n_elements": mesh.n_elements,
        "n_dofs": n,
        "element_type": options.element_type.value,
        "n_gauss": options.n_gauss,
        "soil_layers": soil.n_layers,
        "kernel_terms": {
            f"k{b}{c}": kernel.series_length(b, c)
            for b in range(1, soil.n_layers + 1)
            for c in range(1, soil.n_layers + 1)
        },
        "backend": "sequential",
        "batch_size": batch_size,
        "adaptive": None
        if options.adaptive is None
        else {
            "tolerance": options.adaptive.tolerance,
            "safety": options.adaptive.safety,
            "use_midpoint_tail": options.adaptive.use_midpoint_tail,
            "merge_degenerate": options.adaptive.merge_degenerate,
        },
    }
    if collect_column_times:
        metadata["column_seconds"] = column_seconds

    return LinearSystem(
        matrix=matrix, rhs=rhs, dof_manager=dof_manager, gpr=float(gpr), metadata=metadata
    )


def assemble_from_columns(
    columns: Iterable[ColumnResult],
    dof_manager: DofManager,
    gpr: float = DEFAULT_GPR,
    metadata: dict | None = None,
) -> LinearSystem:
    """Build a :class:`LinearSystem` from pre-computed column blocks.

    This is the sequential "assembly" stage that follows the (possibly
    parallel) computation of the elemental matrices, mirroring the paper's
    scheme of taking the assembly out of the parallel loop.
    """
    dof_matrix = dof_manager.element_dof_matrix()
    n = dof_manager.n_dofs
    matrix = np.zeros((n, n))
    seen: set[int] = set()
    batch: list[ColumnResult] = []
    for column in columns:
        if column.source_index in seen:
            raise AssemblyError(f"column {column.source_index} provided twice")
        seen.add(column.source_index)
        batch.append(column)
    if len(seen) != dof_manager.n_elements:
        missing = sorted(set(range(dof_manager.n_elements)) - seen)
        raise AssemblyError(f"missing columns in assembly: {missing[:10]} ...")
    scatter_columns(matrix, dof_matrix, batch)
    rhs = assemble_rhs(dof_manager, gpr)
    return LinearSystem(
        matrix=matrix,
        rhs=rhs,
        dof_manager=dof_manager,
        gpr=float(gpr),
        metadata=dict(metadata or {}),
    )
